
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/annealing.cpp" "src/CMakeFiles/sfqpart.dir/baseline/annealing.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/baseline/annealing.cpp.o.d"
  "/root/repo/src/baseline/fm_kway.cpp" "src/CMakeFiles/sfqpart.dir/baseline/fm_kway.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/baseline/fm_kway.cpp.o.d"
  "/root/repo/src/baseline/layered_partition.cpp" "src/CMakeFiles/sfqpart.dir/baseline/layered_partition.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/baseline/layered_partition.cpp.o.d"
  "/root/repo/src/baseline/random_partition.cpp" "src/CMakeFiles/sfqpart.dir/baseline/random_partition.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/baseline/random_partition.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/sfqpart.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/feedback.cpp" "src/CMakeFiles/sfqpart.dir/core/feedback.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/feedback.cpp.o.d"
  "/root/repo/src/core/kres_search.cpp" "src/CMakeFiles/sfqpart.dir/core/kres_search.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/kres_search.cpp.o.d"
  "/root/repo/src/core/move_eval.cpp" "src/CMakeFiles/sfqpart.dir/core/move_eval.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/move_eval.cpp.o.d"
  "/root/repo/src/core/multilevel.cpp" "src/CMakeFiles/sfqpart.dir/core/multilevel.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/multilevel.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/CMakeFiles/sfqpart.dir/core/optimizer.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/optimizer.cpp.o.d"
  "/root/repo/src/core/partition_io.cpp" "src/CMakeFiles/sfqpart.dir/core/partition_io.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/partition_io.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/CMakeFiles/sfqpart.dir/core/partitioner.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/partitioner.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/CMakeFiles/sfqpart.dir/core/refine.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/refine.cpp.o.d"
  "/root/repo/src/core/soft_assign.cpp" "src/CMakeFiles/sfqpart.dir/core/soft_assign.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/soft_assign.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/CMakeFiles/sfqpart.dir/core/solver.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/core/solver.cpp.o.d"
  "/root/repo/src/def/def_parser.cpp" "src/CMakeFiles/sfqpart.dir/def/def_parser.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/def/def_parser.cpp.o.d"
  "/root/repo/src/def/def_writer.cpp" "src/CMakeFiles/sfqpart.dir/def/def_writer.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/def/def_writer.cpp.o.d"
  "/root/repo/src/def/lef_parser.cpp" "src/CMakeFiles/sfqpart.dir/def/lef_parser.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/def/lef_parser.cpp.o.d"
  "/root/repo/src/def/lexer.cpp" "src/CMakeFiles/sfqpart.dir/def/lexer.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/def/lexer.cpp.o.d"
  "/root/repo/src/floorplan/floorplan.cpp" "src/CMakeFiles/sfqpart.dir/floorplan/floorplan.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/floorplan/floorplan.cpp.o.d"
  "/root/repo/src/gen/alu.cpp" "src/CMakeFiles/sfqpart.dir/gen/alu.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/alu.cpp.o.d"
  "/root/repo/src/gen/divider.cpp" "src/CMakeFiles/sfqpart.dir/gen/divider.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/divider.cpp.o.d"
  "/root/repo/src/gen/fold.cpp" "src/CMakeFiles/sfqpart.dir/gen/fold.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/fold.cpp.o.d"
  "/root/repo/src/gen/ksa.cpp" "src/CMakeFiles/sfqpart.dir/gen/ksa.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/ksa.cpp.o.d"
  "/root/repo/src/gen/logic_builder.cpp" "src/CMakeFiles/sfqpart.dir/gen/logic_builder.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/logic_builder.cpp.o.d"
  "/root/repo/src/gen/multiplier.cpp" "src/CMakeFiles/sfqpart.dir/gen/multiplier.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/multiplier.cpp.o.d"
  "/root/repo/src/gen/random_logic.cpp" "src/CMakeFiles/sfqpart.dir/gen/random_logic.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/random_logic.cpp.o.d"
  "/root/repo/src/gen/sim.cpp" "src/CMakeFiles/sfqpart.dir/gen/sim.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/sim.cpp.o.d"
  "/root/repo/src/gen/suite.cpp" "src/CMakeFiles/sfqpart.dir/gen/suite.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/gen/suite.cpp.o.d"
  "/root/repo/src/metrics/partition_metrics.cpp" "src/CMakeFiles/sfqpart.dir/metrics/partition_metrics.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/metrics/partition_metrics.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/sfqpart.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/metrics/report.cpp.o.d"
  "/root/repo/src/netlist/cell_library.cpp" "src/CMakeFiles/sfqpart.dir/netlist/cell_library.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/netlist/cell_library.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "src/CMakeFiles/sfqpart.dir/netlist/dot.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/netlist/dot.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/sfqpart.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/stats.cpp" "src/CMakeFiles/sfqpart.dir/netlist/stats.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/netlist/stats.cpp.o.d"
  "/root/repo/src/netlist/validate.cpp" "src/CMakeFiles/sfqpart.dir/netlist/validate.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/netlist/validate.cpp.o.d"
  "/root/repo/src/pulse/pulse_sim.cpp" "src/CMakeFiles/sfqpart.dir/pulse/pulse_sim.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/pulse/pulse_sim.cpp.o.d"
  "/root/repo/src/recycling/bias_plan.cpp" "src/CMakeFiles/sfqpart.dir/recycling/bias_plan.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/recycling/bias_plan.cpp.o.d"
  "/root/repo/src/recycling/coupling.cpp" "src/CMakeFiles/sfqpart.dir/recycling/coupling.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/recycling/coupling.cpp.o.d"
  "/root/repo/src/recycling/insertion.cpp" "src/CMakeFiles/sfqpart.dir/recycling/insertion.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/recycling/insertion.cpp.o.d"
  "/root/repo/src/recycling/power.cpp" "src/CMakeFiles/sfqpart.dir/recycling/power.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/recycling/power.cpp.o.d"
  "/root/repo/src/sfq/balance.cpp" "src/CMakeFiles/sfqpart.dir/sfq/balance.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/sfq/balance.cpp.o.d"
  "/root/repo/src/sfq/clocktree.cpp" "src/CMakeFiles/sfqpart.dir/sfq/clocktree.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/sfq/clocktree.cpp.o.d"
  "/root/repo/src/sfq/fanout.cpp" "src/CMakeFiles/sfqpart.dir/sfq/fanout.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/sfq/fanout.cpp.o.d"
  "/root/repo/src/sfq/mapper.cpp" "src/CMakeFiles/sfqpart.dir/sfq/mapper.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/sfq/mapper.cpp.o.d"
  "/root/repo/src/timing/timing.cpp" "src/CMakeFiles/sfqpart.dir/timing/timing.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/timing/timing.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/sfqpart.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/sfqpart.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/json.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/sfqpart.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/sfqpart.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/options.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/sfqpart.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/sfqpart.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/sfqpart.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/sfqpart.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/verilog/verilog_parser.cpp" "src/CMakeFiles/sfqpart.dir/verilog/verilog_parser.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/verilog/verilog_parser.cpp.o.d"
  "/root/repo/src/verilog/verilog_writer.cpp" "src/CMakeFiles/sfqpart.dir/verilog/verilog_writer.cpp.o" "gcc" "src/CMakeFiles/sfqpart.dir/verilog/verilog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
