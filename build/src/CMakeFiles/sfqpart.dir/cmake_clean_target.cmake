file(REMOVE_RECURSE
  "libsfqpart.a"
)
