# Empty compiler generated dependencies file for sfqpart.
# This may be replaced when dependencies are built.
