file(REMOVE_RECURSE
  "CMakeFiles/recycling_plan.dir/recycling_plan.cpp.o"
  "CMakeFiles/recycling_plan.dir/recycling_plan.cpp.o.d"
  "recycling_plan"
  "recycling_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recycling_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
