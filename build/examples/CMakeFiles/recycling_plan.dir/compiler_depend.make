# Empty compiler generated dependencies file for recycling_plan.
# This may be replaced when dependencies are built.
