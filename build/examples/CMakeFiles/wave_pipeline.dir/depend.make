# Empty dependencies file for wave_pipeline.
# This may be replaced when dependencies are built.
