file(REMOVE_RECURSE
  "CMakeFiles/wave_pipeline.dir/wave_pipeline.cpp.o"
  "CMakeFiles/wave_pipeline.dir/wave_pipeline.cpp.o.d"
  "wave_pipeline"
  "wave_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
