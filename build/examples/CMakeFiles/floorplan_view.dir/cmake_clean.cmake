file(REMOVE_RECURSE
  "CMakeFiles/floorplan_view.dir/floorplan_view.cpp.o"
  "CMakeFiles/floorplan_view.dir/floorplan_view.cpp.o.d"
  "floorplan_view"
  "floorplan_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
