# Empty compiler generated dependencies file for floorplan_view.
# This may be replaced when dependencies are built.
