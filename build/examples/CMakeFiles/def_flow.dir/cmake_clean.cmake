file(REMOVE_RECURSE
  "CMakeFiles/def_flow.dir/def_flow.cpp.o"
  "CMakeFiles/def_flow.dir/def_flow.cpp.o.d"
  "def_flow"
  "def_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/def_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
