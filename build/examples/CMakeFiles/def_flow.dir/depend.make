# Empty dependencies file for def_flow.
# This may be replaced when dependencies are built.
