# Empty dependencies file for sfqpart_cli.
# This may be replaced when dependencies are built.
