file(REMOVE_RECURSE
  "CMakeFiles/sfqpart_cli.dir/sfqpart_cli.cpp.o"
  "CMakeFiles/sfqpart_cli.dir/sfqpart_cli.cpp.o.d"
  "sfqpart"
  "sfqpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfqpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
