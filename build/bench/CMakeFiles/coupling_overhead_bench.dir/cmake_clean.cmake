file(REMOVE_RECURSE
  "CMakeFiles/coupling_overhead_bench.dir/coupling_overhead_bench.cpp.o"
  "CMakeFiles/coupling_overhead_bench.dir/coupling_overhead_bench.cpp.o.d"
  "coupling_overhead_bench"
  "coupling_overhead_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupling_overhead_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
