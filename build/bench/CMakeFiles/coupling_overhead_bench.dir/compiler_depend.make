# Empty compiler generated dependencies file for coupling_overhead_bench.
# This may be replaced when dependencies are built.
