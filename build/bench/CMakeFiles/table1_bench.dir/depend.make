# Empty dependencies file for table1_bench.
# This may be replaced when dependencies are built.
