# Empty dependencies file for table3_bench.
# This may be replaced when dependencies are built.
