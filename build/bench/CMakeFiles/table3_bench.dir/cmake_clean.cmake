file(REMOVE_RECURSE
  "CMakeFiles/table3_bench.dir/table3_bench.cpp.o"
  "CMakeFiles/table3_bench.dir/table3_bench.cpp.o.d"
  "table3_bench"
  "table3_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
