file(REMOVE_RECURSE
  "CMakeFiles/fmax_vs_k_bench.dir/fmax_vs_k_bench.cpp.o"
  "CMakeFiles/fmax_vs_k_bench.dir/fmax_vs_k_bench.cpp.o.d"
  "fmax_vs_k_bench"
  "fmax_vs_k_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmax_vs_k_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
