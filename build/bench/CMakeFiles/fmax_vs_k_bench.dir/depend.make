# Empty dependencies file for fmax_vs_k_bench.
# This may be replaced when dependencies are built.
