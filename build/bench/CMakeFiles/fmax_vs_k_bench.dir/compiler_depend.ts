# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fmax_vs_k_bench.
