# Empty compiler generated dependencies file for fig1_stack_bench.
# This may be replaced when dependencies are built.
