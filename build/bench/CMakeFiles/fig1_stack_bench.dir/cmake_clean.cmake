file(REMOVE_RECURSE
  "CMakeFiles/fig1_stack_bench.dir/fig1_stack_bench.cpp.o"
  "CMakeFiles/fig1_stack_bench.dir/fig1_stack_bench.cpp.o.d"
  "fig1_stack_bench"
  "fig1_stack_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_stack_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
