# Empty dependencies file for ablation_exponent_bench.
# This may be replaced when dependencies are built.
