file(REMOVE_RECURSE
  "CMakeFiles/ablation_exponent_bench.dir/ablation_exponent_bench.cpp.o"
  "CMakeFiles/ablation_exponent_bench.dir/ablation_exponent_bench.cpp.o.d"
  "ablation_exponent_bench"
  "ablation_exponent_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exponent_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
