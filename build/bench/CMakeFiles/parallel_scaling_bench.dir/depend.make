# Empty dependencies file for parallel_scaling_bench.
# This may be replaced when dependencies are built.
