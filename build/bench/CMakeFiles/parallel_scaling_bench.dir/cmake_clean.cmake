file(REMOVE_RECURSE
  "CMakeFiles/parallel_scaling_bench.dir/parallel_scaling_bench.cpp.o"
  "CMakeFiles/parallel_scaling_bench.dir/parallel_scaling_bench.cpp.o.d"
  "parallel_scaling_bench"
  "parallel_scaling_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_scaling_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
