# Empty compiler generated dependencies file for ablation_weights_bench.
# This may be replaced when dependencies are built.
