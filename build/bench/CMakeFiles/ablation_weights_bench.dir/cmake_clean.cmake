file(REMOVE_RECURSE
  "CMakeFiles/ablation_weights_bench.dir/ablation_weights_bench.cpp.o"
  "CMakeFiles/ablation_weights_bench.dir/ablation_weights_bench.cpp.o.d"
  "ablation_weights_bench"
  "ablation_weights_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weights_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
