file(REMOVE_RECURSE
  "CMakeFiles/baseline_compare_bench.dir/baseline_compare_bench.cpp.o"
  "CMakeFiles/baseline_compare_bench.dir/baseline_compare_bench.cpp.o.d"
  "baseline_compare_bench"
  "baseline_compare_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_compare_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
