# Empty dependencies file for baseline_compare_bench.
# This may be replaced when dependencies are built.
