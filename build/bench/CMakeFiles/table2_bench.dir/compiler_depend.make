# Empty compiler generated dependencies file for table2_bench.
# This may be replaced when dependencies are built.
