file(REMOVE_RECURSE
  "CMakeFiles/table2_bench.dir/table2_bench.cpp.o"
  "CMakeFiles/table2_bench.dir/table2_bench.cpp.o.d"
  "table2_bench"
  "table2_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
