file(REMOVE_RECURSE
  "CMakeFiles/sfq_fanout_test.dir/sfq/fanout_test.cpp.o"
  "CMakeFiles/sfq_fanout_test.dir/sfq/fanout_test.cpp.o.d"
  "sfq_fanout_test"
  "sfq_fanout_test.pdb"
  "sfq_fanout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfq_fanout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
