# Empty compiler generated dependencies file for integration_flow_consistency_test.
# This may be replaced when dependencies are built.
