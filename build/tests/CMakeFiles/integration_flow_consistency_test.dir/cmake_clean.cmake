file(REMOVE_RECURSE
  "CMakeFiles/integration_flow_consistency_test.dir/integration/flow_consistency_test.cpp.o"
  "CMakeFiles/integration_flow_consistency_test.dir/integration/flow_consistency_test.cpp.o.d"
  "integration_flow_consistency_test"
  "integration_flow_consistency_test.pdb"
  "integration_flow_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_flow_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
