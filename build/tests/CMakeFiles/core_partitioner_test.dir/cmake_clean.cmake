file(REMOVE_RECURSE
  "CMakeFiles/core_partitioner_test.dir/core/partitioner_test.cpp.o"
  "CMakeFiles/core_partitioner_test.dir/core/partitioner_test.cpp.o.d"
  "core_partitioner_test"
  "core_partitioner_test.pdb"
  "core_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
