file(REMOVE_RECURSE
  "CMakeFiles/sfq_clocktree_test.dir/sfq/clocktree_test.cpp.o"
  "CMakeFiles/sfq_clocktree_test.dir/sfq/clocktree_test.cpp.o.d"
  "sfq_clocktree_test"
  "sfq_clocktree_test.pdb"
  "sfq_clocktree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfq_clocktree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
