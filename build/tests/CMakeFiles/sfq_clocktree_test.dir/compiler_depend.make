# Empty compiler generated dependencies file for sfq_clocktree_test.
# This may be replaced when dependencies are built.
