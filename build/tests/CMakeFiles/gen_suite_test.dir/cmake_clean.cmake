file(REMOVE_RECURSE
  "CMakeFiles/gen_suite_test.dir/gen/suite_test.cpp.o"
  "CMakeFiles/gen_suite_test.dir/gen/suite_test.cpp.o.d"
  "gen_suite_test"
  "gen_suite_test.pdb"
  "gen_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
