# Empty dependencies file for core_cost_properties_test.
# This may be replaced when dependencies are built.
