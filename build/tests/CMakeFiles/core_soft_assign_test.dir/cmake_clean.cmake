file(REMOVE_RECURSE
  "CMakeFiles/core_soft_assign_test.dir/core/soft_assign_test.cpp.o"
  "CMakeFiles/core_soft_assign_test.dir/core/soft_assign_test.cpp.o.d"
  "core_soft_assign_test"
  "core_soft_assign_test.pdb"
  "core_soft_assign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_soft_assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
