# Empty dependencies file for core_soft_assign_test.
# This may be replaced when dependencies are built.
