file(REMOVE_RECURSE
  "CMakeFiles/gen_ksa_test.dir/gen/ksa_test.cpp.o"
  "CMakeFiles/gen_ksa_test.dir/gen/ksa_test.cpp.o.d"
  "gen_ksa_test"
  "gen_ksa_test.pdb"
  "gen_ksa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_ksa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
