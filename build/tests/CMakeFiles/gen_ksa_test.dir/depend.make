# Empty dependencies file for gen_ksa_test.
# This may be replaced when dependencies are built.
