# Empty compiler generated dependencies file for core_optimizer_suite_test.
# This may be replaced when dependencies are built.
