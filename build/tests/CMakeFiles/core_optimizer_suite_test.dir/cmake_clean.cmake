file(REMOVE_RECURSE
  "CMakeFiles/core_optimizer_suite_test.dir/core/optimizer_suite_test.cpp.o"
  "CMakeFiles/core_optimizer_suite_test.dir/core/optimizer_suite_test.cpp.o.d"
  "core_optimizer_suite_test"
  "core_optimizer_suite_test.pdb"
  "core_optimizer_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_optimizer_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
