file(REMOVE_RECURSE
  "CMakeFiles/pulse_pulse_sim_test.dir/pulse/pulse_sim_test.cpp.o"
  "CMakeFiles/pulse_pulse_sim_test.dir/pulse/pulse_sim_test.cpp.o.d"
  "pulse_pulse_sim_test"
  "pulse_pulse_sim_test.pdb"
  "pulse_pulse_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_pulse_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
