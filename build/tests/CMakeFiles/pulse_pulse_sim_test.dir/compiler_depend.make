# Empty compiler generated dependencies file for pulse_pulse_sim_test.
# This may be replaced when dependencies are built.
