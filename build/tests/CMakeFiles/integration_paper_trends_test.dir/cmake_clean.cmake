file(REMOVE_RECURSE
  "CMakeFiles/integration_paper_trends_test.dir/integration/paper_trends_test.cpp.o"
  "CMakeFiles/integration_paper_trends_test.dir/integration/paper_trends_test.cpp.o.d"
  "integration_paper_trends_test"
  "integration_paper_trends_test.pdb"
  "integration_paper_trends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_paper_trends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
