# Empty compiler generated dependencies file for integration_paper_trends_test.
# This may be replaced when dependencies are built.
