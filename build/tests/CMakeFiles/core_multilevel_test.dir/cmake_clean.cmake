file(REMOVE_RECURSE
  "CMakeFiles/core_multilevel_test.dir/core/multilevel_test.cpp.o"
  "CMakeFiles/core_multilevel_test.dir/core/multilevel_test.cpp.o.d"
  "core_multilevel_test"
  "core_multilevel_test.pdb"
  "core_multilevel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multilevel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
