file(REMOVE_RECURSE
  "CMakeFiles/recycling_insertion_test.dir/recycling/insertion_test.cpp.o"
  "CMakeFiles/recycling_insertion_test.dir/recycling/insertion_test.cpp.o.d"
  "recycling_insertion_test"
  "recycling_insertion_test.pdb"
  "recycling_insertion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recycling_insertion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
