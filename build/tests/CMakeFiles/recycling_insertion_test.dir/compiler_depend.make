# Empty compiler generated dependencies file for recycling_insertion_test.
# This may be replaced when dependencies are built.
