file(REMOVE_RECURSE
  "CMakeFiles/gen_multiplier_test.dir/gen/multiplier_test.cpp.o"
  "CMakeFiles/gen_multiplier_test.dir/gen/multiplier_test.cpp.o.d"
  "gen_multiplier_test"
  "gen_multiplier_test.pdb"
  "gen_multiplier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_multiplier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
