# Empty compiler generated dependencies file for gen_random_logic_test.
# This may be replaced when dependencies are built.
