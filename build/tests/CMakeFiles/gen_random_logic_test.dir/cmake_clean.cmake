file(REMOVE_RECURSE
  "CMakeFiles/gen_random_logic_test.dir/gen/random_logic_test.cpp.o"
  "CMakeFiles/gen_random_logic_test.dir/gen/random_logic_test.cpp.o.d"
  "gen_random_logic_test"
  "gen_random_logic_test.pdb"
  "gen_random_logic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_random_logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
