# Empty compiler generated dependencies file for recycling_power_test.
# This may be replaced when dependencies are built.
