file(REMOVE_RECURSE
  "CMakeFiles/recycling_power_test.dir/recycling/power_test.cpp.o"
  "CMakeFiles/recycling_power_test.dir/recycling/power_test.cpp.o.d"
  "recycling_power_test"
  "recycling_power_test.pdb"
  "recycling_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recycling_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
