file(REMOVE_RECURSE
  "CMakeFiles/def_lef_parser_test.dir/def/lef_parser_test.cpp.o"
  "CMakeFiles/def_lef_parser_test.dir/def/lef_parser_test.cpp.o.d"
  "def_lef_parser_test"
  "def_lef_parser_test.pdb"
  "def_lef_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/def_lef_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
