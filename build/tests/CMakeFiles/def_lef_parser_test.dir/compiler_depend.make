# Empty compiler generated dependencies file for def_lef_parser_test.
# This may be replaced when dependencies are built.
