# Empty compiler generated dependencies file for timing_clock_skew_test.
# This may be replaced when dependencies are built.
