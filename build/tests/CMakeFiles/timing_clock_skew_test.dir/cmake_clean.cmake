file(REMOVE_RECURSE
  "CMakeFiles/timing_clock_skew_test.dir/timing/clock_skew_test.cpp.o"
  "CMakeFiles/timing_clock_skew_test.dir/timing/clock_skew_test.cpp.o.d"
  "timing_clock_skew_test"
  "timing_clock_skew_test.pdb"
  "timing_clock_skew_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_clock_skew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
