file(REMOVE_RECURSE
  "CMakeFiles/gen_alu_test.dir/gen/alu_test.cpp.o"
  "CMakeFiles/gen_alu_test.dir/gen/alu_test.cpp.o.d"
  "gen_alu_test"
  "gen_alu_test.pdb"
  "gen_alu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_alu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
