# Empty dependencies file for gen_alu_test.
# This may be replaced when dependencies are built.
