file(REMOVE_RECURSE
  "CMakeFiles/core_move_eval_test.dir/core/move_eval_test.cpp.o"
  "CMakeFiles/core_move_eval_test.dir/core/move_eval_test.cpp.o.d"
  "core_move_eval_test"
  "core_move_eval_test.pdb"
  "core_move_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_move_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
