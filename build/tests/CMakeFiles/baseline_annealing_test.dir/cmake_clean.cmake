file(REMOVE_RECURSE
  "CMakeFiles/baseline_annealing_test.dir/baseline/annealing_test.cpp.o"
  "CMakeFiles/baseline_annealing_test.dir/baseline/annealing_test.cpp.o.d"
  "baseline_annealing_test"
  "baseline_annealing_test.pdb"
  "baseline_annealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_annealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
