# Empty compiler generated dependencies file for recycling_recycling_test.
# This may be replaced when dependencies are built.
