file(REMOVE_RECURSE
  "CMakeFiles/recycling_recycling_test.dir/recycling/recycling_test.cpp.o"
  "CMakeFiles/recycling_recycling_test.dir/recycling/recycling_test.cpp.o.d"
  "recycling_recycling_test"
  "recycling_recycling_test.pdb"
  "recycling_recycling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recycling_recycling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
