# Empty dependencies file for def_def_parser_test.
# This may be replaced when dependencies are built.
