file(REMOVE_RECURSE
  "CMakeFiles/netlist_stats_test.dir/netlist/stats_test.cpp.o"
  "CMakeFiles/netlist_stats_test.dir/netlist/stats_test.cpp.o.d"
  "netlist_stats_test"
  "netlist_stats_test.pdb"
  "netlist_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
