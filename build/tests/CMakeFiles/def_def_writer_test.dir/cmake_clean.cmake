file(REMOVE_RECURSE
  "CMakeFiles/def_def_writer_test.dir/def/def_writer_test.cpp.o"
  "CMakeFiles/def_def_writer_test.dir/def/def_writer_test.cpp.o.d"
  "def_def_writer_test"
  "def_def_writer_test.pdb"
  "def_def_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/def_def_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
