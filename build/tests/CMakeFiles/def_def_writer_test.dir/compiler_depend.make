# Empty compiler generated dependencies file for def_def_writer_test.
# This may be replaced when dependencies are built.
