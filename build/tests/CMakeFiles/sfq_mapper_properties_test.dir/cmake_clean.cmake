file(REMOVE_RECURSE
  "CMakeFiles/sfq_mapper_properties_test.dir/sfq/mapper_properties_test.cpp.o"
  "CMakeFiles/sfq_mapper_properties_test.dir/sfq/mapper_properties_test.cpp.o.d"
  "sfq_mapper_properties_test"
  "sfq_mapper_properties_test.pdb"
  "sfq_mapper_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfq_mapper_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
