# Empty dependencies file for sfq_mapper_properties_test.
# This may be replaced when dependencies are built.
