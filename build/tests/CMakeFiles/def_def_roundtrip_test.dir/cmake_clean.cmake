file(REMOVE_RECURSE
  "CMakeFiles/def_def_roundtrip_test.dir/def/def_roundtrip_test.cpp.o"
  "CMakeFiles/def_def_roundtrip_test.dir/def/def_roundtrip_test.cpp.o.d"
  "def_def_roundtrip_test"
  "def_def_roundtrip_test.pdb"
  "def_def_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/def_def_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
