# Empty dependencies file for gen_divider_test.
# This may be replaced when dependencies are built.
