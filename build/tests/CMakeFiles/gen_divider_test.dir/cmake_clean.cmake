file(REMOVE_RECURSE
  "CMakeFiles/gen_divider_test.dir/gen/divider_test.cpp.o"
  "CMakeFiles/gen_divider_test.dir/gen/divider_test.cpp.o.d"
  "gen_divider_test"
  "gen_divider_test.pdb"
  "gen_divider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_divider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
