# Empty compiler generated dependencies file for core_kres_test.
# This may be replaced when dependencies are built.
