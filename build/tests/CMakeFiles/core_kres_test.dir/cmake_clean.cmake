file(REMOVE_RECURSE
  "CMakeFiles/core_kres_test.dir/core/kres_test.cpp.o"
  "CMakeFiles/core_kres_test.dir/core/kres_test.cpp.o.d"
  "core_kres_test"
  "core_kres_test.pdb"
  "core_kres_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_kres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
