file(REMOVE_RECURSE
  "CMakeFiles/sfq_mapper_test.dir/sfq/mapper_test.cpp.o"
  "CMakeFiles/sfq_mapper_test.dir/sfq/mapper_test.cpp.o.d"
  "sfq_mapper_test"
  "sfq_mapper_test.pdb"
  "sfq_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfq_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
