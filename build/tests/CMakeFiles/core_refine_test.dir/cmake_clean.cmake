file(REMOVE_RECURSE
  "CMakeFiles/core_refine_test.dir/core/refine_test.cpp.o"
  "CMakeFiles/core_refine_test.dir/core/refine_test.cpp.o.d"
  "core_refine_test"
  "core_refine_test.pdb"
  "core_refine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_refine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
