# Empty compiler generated dependencies file for core_refine_test.
# This may be replaced when dependencies are built.
