file(REMOVE_RECURSE
  "CMakeFiles/netlist_validate_test.dir/netlist/validate_test.cpp.o"
  "CMakeFiles/netlist_validate_test.dir/netlist/validate_test.cpp.o.d"
  "netlist_validate_test"
  "netlist_validate_test.pdb"
  "netlist_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
