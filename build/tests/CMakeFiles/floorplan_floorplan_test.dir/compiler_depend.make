# Empty compiler generated dependencies file for floorplan_floorplan_test.
# This may be replaced when dependencies are built.
