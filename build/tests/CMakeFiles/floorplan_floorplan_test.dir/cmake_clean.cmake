file(REMOVE_RECURSE
  "CMakeFiles/floorplan_floorplan_test.dir/floorplan/floorplan_test.cpp.o"
  "CMakeFiles/floorplan_floorplan_test.dir/floorplan/floorplan_test.cpp.o.d"
  "floorplan_floorplan_test"
  "floorplan_floorplan_test.pdb"
  "floorplan_floorplan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_floorplan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
