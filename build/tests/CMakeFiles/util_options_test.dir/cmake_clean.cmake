file(REMOVE_RECURSE
  "CMakeFiles/util_options_test.dir/util/options_test.cpp.o"
  "CMakeFiles/util_options_test.dir/util/options_test.cpp.o.d"
  "util_options_test"
  "util_options_test.pdb"
  "util_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
