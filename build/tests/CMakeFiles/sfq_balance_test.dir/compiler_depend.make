# Empty compiler generated dependencies file for sfq_balance_test.
# This may be replaced when dependencies are built.
