file(REMOVE_RECURSE
  "CMakeFiles/sfq_balance_test.dir/sfq/balance_test.cpp.o"
  "CMakeFiles/sfq_balance_test.dir/sfq/balance_test.cpp.o.d"
  "sfq_balance_test"
  "sfq_balance_test.pdb"
  "sfq_balance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfq_balance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
