file(REMOVE_RECURSE
  "CMakeFiles/def_lexer_test.dir/def/lexer_test.cpp.o"
  "CMakeFiles/def_lexer_test.dir/def/lexer_test.cpp.o.d"
  "def_lexer_test"
  "def_lexer_test.pdb"
  "def_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/def_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
