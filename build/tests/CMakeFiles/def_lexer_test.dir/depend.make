# Empty dependencies file for def_lexer_test.
# This may be replaced when dependencies are built.
