// Quickstart: generate an SFQ benchmark circuit, partition it into K
// serially-biased ground planes with the Solver facade, and inspect the
// result.
//
//   ./quickstart [--circuit ksa8] [--planes 5] [--seed 1] [--threads 0]
#include <cstdio>

#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "metrics/report.h"
#include "netlist/stats.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Partition an SFQ benchmark circuit into K ground planes.");
  options.add_string("circuit", "ksa8", "benchmark name (ksa4..ksa32, mult4/8, id4/8, c432...)");
  options.add_int("planes", 5, "number of ground planes K");
  options.add_int("seed", 1, "random seed");
  options.add_int("threads", 0,
                  "worker threads for the restarts (0 = hardware concurrency)");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }

  const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'; available:\n",
                 options.get_string("circuit").c_str());
    for (const SuiteEntry& e : benchmark_suite()) {
      std::fprintf(stderr, "  %-7s %s\n", e.name.c_str(), e.description.c_str());
    }
    return 1;
  }

  // 1. Generate the circuit and map it onto the SFQ cell library.
  const Netlist netlist = build_mapped(*entry);
  const NetlistStats stats = compute_stats(netlist);
  std::fputs(format_stats(netlist, stats).c_str(), stdout);

  // 2. Partition it (gradient descent over the relaxed cost, Algorithm 1;
  // restarts run in parallel but the result is seed-deterministic at any
  // thread count).
  SolverConfig config;
  config.num_planes = static_cast<int>(options.get_int("planes"));
  config.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  config.threads = static_cast<int>(options.get_int("threads"));
  const Solver solver(std::move(config));
  const auto solved = solver.run(netlist);
  if (!solved) {
    std::fprintf(stderr, "%s\n", solved.status().message().c_str());
    return 1;
  }
  const SolverResult& result = *solved;
  std::printf("\noptimizer (%d threads): %d iterations, %s, discrete cost %.6f "
              "(F1=%.4f F2=%.4f F3=%.4f)\n\n",
              solver.effective_threads(), result.iterations,
              result.converged ? "converged" : "hit max-iters",
              result.discrete_total, result.discrete_terms.f1,
              result.discrete_terms.f2, result.discrete_terms.f3);

  // 3. Inspect the partition quality (the Table I metrics).
  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);
  std::fputs(format_partition_report(netlist, result.partition, metrics).c_str(),
             stdout);
  return 0;
}
