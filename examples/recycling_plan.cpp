// Current-recycling planner: the machine-generated equivalent of the
// paper's Fig. 1. Partitions a circuit, then prints the serial bias stack
// (per-plane currents, dummy loads, plane potentials), the inductive
// coupling insertion plan, and the bias-pad saving vs parallel biasing.
//
//   ./recycling_plan [--circuit ksa8] [--planes 4] [--pad-limit 100]
#include <cstdio>

#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "metrics/report.h"
#include "recycling/bias_plan.h"
#include "recycling/coupling.h"
#include "recycling/power.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Plan a current-recycling bias stack for a benchmark circuit.");
  options.add_string("circuit", "ksa8", "benchmark name");
  options.add_int("planes", 4, "number of ground planes K");
  options.add_double("pad-limit", 100.0, "max current per bias pad [mA]");
  options.add_double("rail", 2.5, "bias rail voltage per plane [mV]");
  options.add_int("seed", 1, "random seed");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }

  const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", options.get_string("circuit").c_str());
    return 1;
  }
  const Netlist netlist = build_mapped(*entry);

  SolverConfig popt;
  popt.num_planes = static_cast<int>(options.get_int("planes"));
  popt.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  const SolverResult result = Solver(popt).run(netlist).value();
  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);
  std::fputs(format_partition_report(netlist, result.partition, metrics).c_str(),
             stdout);
  std::printf("\n");

  BiasPlanOptions bias_options;
  bias_options.pad_limit_ma = options.get_double("pad-limit");
  bias_options.rail_mv = options.get_double("rail");
  const BiasPlan plan = make_bias_plan(netlist, result.partition, bias_options);
  std::fputs(format_bias_plan(plan).c_str(), stdout);
  std::printf("\n");

  const CouplingReport coupling = plan_coupling(netlist, result.partition);
  std::fputs(format_coupling_report(coupling).c_str(), stdout);
  std::printf("\n");

  std::fputs(format_power_report(analyze_power(netlist, result.partition)).c_str(),
             stdout);
  return 0;
}
