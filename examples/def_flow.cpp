// LEF/DEF flow: the paper's actual tool interface ("The algorithm takes a
// circuit netlist ... in DEF format"). This example
//   1. generates a benchmark and writes its LEF library + DEF design,
//   2. re-reads both files,
//   3. partitions the parsed netlist, and
//   4. writes the gate-to-plane assignment as CSV.
//
//   ./def_flow [--circuit mult4] [--planes 5] [--dir /tmp]
// or, to consume an external post-P&R design:
//   ./def_flow --def mydesign.def [--planes 5]
#include <cstdio>
#include <fstream>

#include "core/solver.h"
#include "def/def_parser.h"
#include "def/def_writer.h"
#include "def/lef_parser.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "metrics/report.h"
#include "util/csv.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Partition a DEF design into K ground planes.");
  options.add_string("circuit", "mult4", "benchmark to generate when --def is not given");
  options.add_string("def", "", "existing DEF file to read instead of generating");
  options.add_string("dir", ".", "output directory");
  options.add_int("planes", 5, "number of ground planes K");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }
  const std::string dir = options.get_string("dir");

  std::string def_path = options.get_string("def");
  if (def_path.empty()) {
    const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown circuit '%s'\n",
                   options.get_string("circuit").c_str());
      return 1;
    }
    const Netlist generated = build_mapped(*entry);

    const std::string lef_path = dir + "/" + generated.name() + ".lef";
    std::ofstream lef_file(lef_path);
    lef_file << def::write_lef(generated.library());
    std::printf("wrote %s\n", lef_path.c_str());

    def_path = dir + "/" + generated.name() + ".def";
    std::ofstream def_file(def_path);
    def_file << def::write_def(generated);
    std::printf("wrote %s\n", def_path.c_str());
  }

  auto design = def::read_def_file(def_path);
  if (!design) {
    std::fprintf(stderr, "DEF parse error: %s\n", design.status().message().c_str());
    return 1;
  }
  std::printf("parsed DEF '%s': %zu components, %zu pins, %zu nets, die %.4f mm^2\n",
              design->name.c_str(), design->components.size(), design->pins.size(),
              design->nets.size(), design->die_area_mm2());

  auto netlist = def::def_to_netlist(*design, default_sfq_library());
  if (!netlist) {
    std::fprintf(stderr, "netlist build error: %s\n", netlist.status().message().c_str());
    return 1;
  }

  SolverConfig popt;
  popt.num_planes = static_cast<int>(options.get_int("planes"));
  const SolverResult result = Solver(popt).run(*netlist).value();
  const PartitionMetrics metrics = compute_metrics(*netlist, result.partition);
  std::fputs(format_partition_report(*netlist, result.partition, metrics).c_str(),
             stdout);

  CsvWriter csv({"gate", "cell", "plane"});
  for (GateId g = 0; g < netlist->num_gates(); ++g) {
    if (!netlist->is_partitionable(g)) continue;
    csv.add_row({netlist->gate(g).name, netlist->cell_of(g).name,
                 std::to_string(result.partition.plane(g))});
  }
  const std::string csv_path = dir + "/" + netlist->name() + "_planes.csv";
  if (auto status = csv.write_file(csv_path); !status) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu gate assignments)\n", csv_path.c_str(),
              static_cast<std::size_t>(csv.num_rows()));
  return 0;
}
