// The adopter's end-to-end script: everything the library does, chained
// on one circuit.
//
//   generate -> SFQ map -> validate -> partition (gradient descent) ->
//   metrics -> serial bias plan -> coupling insertion -> floorplan ->
//   timing (wire + coupling aware) -> power -> emit DEF/Verilog
//
//   ./full_flow [--circuit ksa8] [--planes 4] [--dir /tmp]
#include <cstdio>
#include <fstream>

#include "core/solver.h"
#include "def/def_writer.h"
#include "floorplan/floorplan.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "metrics/report.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "recycling/bias_plan.h"
#include "recycling/insertion.h"
#include "recycling/power.h"
#include "timing/timing.h"
#include "util/options.h"
#include "verilog/verilog_writer.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Full current-recycling implementation flow.");
  options.add_string("circuit", "ksa8", "benchmark name");
  options.add_int("planes", 4, "number of ground planes K");
  options.add_string("dir", "", "also write <name>_recycled.{def,v} here");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }
  const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", options.get_string("circuit").c_str());
    return 1;
  }
  const int planes = static_cast<int>(options.get_int("planes"));

  std::printf("=== 1. generate + SFQ map ===\n");
  const Netlist netlist = build_mapped(*entry);
  std::fputs(format_stats(netlist, compute_stats(netlist)).c_str(), stdout);
  const auto check = validate(netlist);
  std::printf("validation: %s\n\n", check.ok() ? "clean" : check.issues[0].c_str());

  std::printf("=== 2. partition into %d ground planes ===\n", planes);
  SolverConfig config;
  config.num_planes = planes;
  config.threads = 0;  // all hardware threads; the result is still seed-exact
  const auto solved = Solver(std::move(config)).run(netlist);
  if (!solved) {
    std::fprintf(stderr, "%s\n", solved.status().message().c_str());
    return 1;
  }
  const SolverResult& result = *solved;
  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);
  std::fputs(format_partition_report(netlist, result.partition, metrics).c_str(),
             stdout);

  std::printf("\n=== 3. serial bias plan ===\n");
  const BiasPlan plan = make_bias_plan(netlist, result.partition);
  std::fputs(format_bias_plan(plan).c_str(), stdout);

  std::printf("\n=== 4. coupling insertion (implemented netlist) ===\n");
  const CouplingInsertion inserted = apply_coupling_insertion(netlist, result.partition);
  const PartitionMetrics after = compute_metrics(inserted.netlist, inserted.partition);
  std::printf("%d driver/receiver pairs inserted: %d -> %d gates, "
              "I_comp %.2f%% -> %.2f%%\n",
              inserted.pairs_inserted, metrics.num_gates, after.num_gates,
              100 * metrics.icomp_frac(), 100 * after.icomp_frac());
  const auto post_check = validate(inserted.netlist);
  std::printf("validation: %s\n", post_check.ok() ? "clean" : post_check.issues[0].c_str());

  std::printf("\n=== 5. stripe floorplan ===\n");
  const Floorplan floorplan = build_floorplan(inserted.netlist, inserted.partition);
  std::fputs(format_floorplan(inserted.netlist, floorplan).c_str(), stdout);

  std::printf("\n=== 6. timing (wire + coupling aware) ===\n");
  std::fputs(format_timing_report(analyze_timing(inserted.netlist, {}, &floorplan,
                                                 &inserted.partition))
                 .c_str(),
             stdout);

  std::printf("\n=== 7. power ===\n");
  std::fputs(format_power_report(analyze_power(netlist, result.partition)).c_str(),
             stdout);

  const std::string dir = options.get_string("dir");
  if (!dir.empty()) {
    const std::string base = dir + "/" + netlist.name() + "_recycled";
    std::ofstream def_file(base + ".def");
    def_file << def::write_def(inserted.netlist);
    std::ofstream verilog_file(base + ".v");
    verilog_file << write_verilog(inserted.netlist);
    std::printf("\nwrote %s.def and %s.v\n", base.c_str(), base.c_str());
  }
  return 0;
}
