// Pulse-level demonstration of SFQ gate-level pipelining: stream a new
// operand pair into a mapped adder every clock cycle and watch the sums
// emerge one per cycle after the pipeline latency -- the behaviour full
// path balancing buys (and the reason the mapped netlists carry so many
// DFFs, which is what makes the bias currents of Table I so large).
//
//   ./wave_pipeline [--width 8] [--words 12]
#include <cstdio>

#include "gen/ksa.h"
#include "netlist/stats.h"
#include "pulse/pulse_sim.h"
#include "sfq/mapper.h"
#include "util/options.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Wave-pipelined SFQ adder demo (pulse-level simulation).");
  options.add_int("width", 8, "adder width in bits");
  options.add_int("words", 12, "number of operand pairs to stream");
  options.add_int("seed", 1, "random seed");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }
  const int width = static_cast<int>(options.get_int("width"));
  const int words = static_cast<int>(options.get_int("words"));

  const Netlist mapped = map_to_sfq(build_ksa(width));
  const NetlistStats stats = compute_stats(mapped);
  PulseSimulator sim(mapped);
  std::printf("ksa%d mapped to SFQ: %d gates (%d DFFs for balancing), "
              "pipeline latency %d cycles\n\n",
              width, stats.num_gates,
              stats.by_kind.count(CellKind::kDff) ? stats.by_kind.at(CellKind::kDff) : 0,
              sim.latency());

  Rng rng(static_cast<std::uint64_t>(options.get_int("seed")));
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  const std::uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
  for (int i = 0; i < words; ++i) {
    a.push_back(rng.next_u64() & mask);
    b.push_back(rng.next_u64() & mask);
  }
  const auto sums = sim.stream_words("a", a, "b", b, width, "s", width);

  std::printf("cycle  in: a + b          out (arrives at cycle+%d)\n", sim.latency());
  int wrong = 0;
  for (int i = 0; i < words; ++i) {
    const std::uint64_t expected = (a[static_cast<std::size_t>(i)] +
                                    b[static_cast<std::size_t>(i)]) & mask;
    const bool ok = sums[static_cast<std::size_t>(i)] == expected;
    wrong += ok ? 0 : 1;
    std::printf("%5d  %3llu + %-3llu = %-4llu  got %-4llu %s\n", i,
                static_cast<unsigned long long>(a[static_cast<std::size_t>(i)]),
                static_cast<unsigned long long>(b[static_cast<std::size_t>(i)]),
                static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(sums[static_cast<std::size_t>(i)]),
                ok ? "ok" : "WRONG");
  }
  std::printf("\n%d/%d words correct at full throughput (one word per clock).\n",
              words - wrong, words);
  return wrong == 0 ? 0 : 1;
}
