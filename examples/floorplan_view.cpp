// Floorplan the partition as the paper's stripe layout (Fig. 1): one
// full-width stripe of cell rows per ground plane, coupling moats between
// stripes, and barycenter-ordered rows. Prints the stripe table, the
// wirelength, and an ASCII density map of the die.
//
//   ./floorplan_view [--circuit ksa8] [--planes 4] [--passes 4]
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "floorplan/floorplan.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "recycling/coupling.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Stripe floorplan of a partitioned SFQ circuit.");
  options.add_string("circuit", "ksa8", "benchmark name");
  options.add_int("planes", 4, "number of ground planes K");
  options.add_int("passes", 4, "barycenter ordering passes");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }
  const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", options.get_string("circuit").c_str());
    return 1;
  }
  const Netlist netlist = build_mapped(*entry);

  SolverConfig popt;
  popt.num_planes = static_cast<int>(options.get_int("planes"));
  const SolverResult result = Solver(popt).run(netlist).value();

  FloorplanOptions fopt;
  fopt.ordering_passes = static_cast<int>(options.get_int("passes"));
  const Floorplan plan = build_floorplan(netlist, result.partition, fopt);
  std::fputs(format_floorplan(netlist, plan).c_str(), stdout);

  FloorplanOptions unordered = fopt;
  unordered.ordering_passes = 0;
  const double hpwl0 =
      total_hpwl_um(netlist, build_floorplan(netlist, result.partition, unordered));
  std::printf("swap refinement: HPWL %.2f mm -> %.2f mm (%.0f%% of initial)\n",
              hpwl0 * 1e-3, total_hpwl_um(netlist, plan) * 1e-3,
              100.0 * total_hpwl_um(netlist, plan) / hpwl0);

  // ASCII density map: '#' dense, '.' sparse, '=' the coupling moats.
  constexpr int kCols = 64;
  constexpr int kRowsPerStripe = 2;
  const CouplingReport coupling = plan_coupling(netlist, result.partition);
  for (const PlaneStripe& stripe : plan.stripes) {
    std::vector<std::vector<int>> density(
        kRowsPerStripe, std::vector<int>(kCols, 0));
    for (GateId g = 0; g < netlist.num_gates(); ++g) {
      if (!result.partition.assigned(g) ||
          result.partition.plane(g) != stripe.plane) {
        continue;
      }
      const int col = std::min(kCols - 1,
          static_cast<int>(plan.x_um[static_cast<std::size_t>(g)] /
                           plan.die_width_um * kCols));
      const double rel = (plan.y_um[static_cast<std::size_t>(g)] - stripe.y_lo_um) /
                         (stripe.y_hi_um - stripe.y_lo_um);
      const int row = std::min(kRowsPerStripe - 1,
                               static_cast<int>((1.0 - rel) * kRowsPerStripe));
      ++density[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
    }
    std::printf("GP%d\n", stripe.plane);
    for (const auto& row : density) {
      std::string line;
      for (const int d : row) line += d == 0 ? ' ' : (d < 3 ? '.' : '#');
      std::printf("  |%s|\n", line.c_str());
    }
    const auto boundary = static_cast<std::size_t>(stripe.plane);
    if (boundary < coupling.pairs_per_boundary.size()) {
      std::printf("  %s  <- moat, %d coupling pairs\n",
                  std::string(kCols + 2, '=').c_str(),
                  coupling.pairs_per_boundary[boundary]);
    }
  }
  return 0;
}
