// Baseline comparison: the paper's gradient-descent partitioner vs the
// classic alternatives it argues against (section IV-A) on one circuit —
// one loop over every engine in the registry.
//
//   ./baseline_compare [--circuit ksa8] [--planes 5] [--seed 1]
#include <cstdio>

#include "core/engine.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "util/options.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Compare every registered engine on one benchmark circuit.");
  options.add_string("circuit", "ksa8", "benchmark name");
  options.add_int("planes", 5, "number of ground planes K");
  options.add_int("seed", 1, "random seed");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }
  const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", options.get_string("circuit").c_str());
    return 1;
  }
  const Netlist netlist = build_mapped(*entry);

  EngineContext context;
  context.num_planes = static_cast<int>(options.get_int("planes"));
  context.seed = static_cast<std::uint64_t>(options.get_int("seed"));

  TablePrinter table({"engine", "d<=1", "d<=2", "cut", "I_comp", "A_FS",
                      "cost", "ms"});
  for (const std::string& name : EngineRegistry::names()) {
    // The exhaustive reference only accepts tiny instances; skip it here
    // rather than fail the whole comparison on a normal-sized circuit.
    if (name == "exact") continue;
    auto engine = EngineRegistry::create(name);
    if (!engine) {
      std::fprintf(stderr, "%s\n", engine.status().message().c_str());
      return 1;
    }
    auto run = (*engine)->run(netlist, context);
    if (!run) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), run.status().message().c_str());
      return 1;
    }
    const PartitionMetrics m = compute_metrics(netlist, run->partition);
    table.add_row({name, fmt_percent(m.frac_within(1)), fmt_percent(m.frac_within(2)),
                   std::to_string(cut_count(netlist, run->partition)),
                   fmt_percent(m.icomp_frac()), fmt_percent(m.afs_frac()),
                   fmt_double(run->discrete_total, 4), fmt_double(run->wall_ms, 1)});
  }

  std::printf("circuit %s, K=%d, %d gates\n", entry->name.c_str(),
              context.num_planes, netlist.num_partitionable_gates());
  table.print();
  return 0;
}
