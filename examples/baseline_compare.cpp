// Baseline comparison: the paper's gradient-descent partitioner vs the
// classic alternatives it argues against (section IV-A) on one circuit.
//
//   ./baseline_compare [--circuit ksa8] [--planes 5]
#include <cstdio>

#include "baseline/fm_kway.h"
#include "baseline/layered_partition.h"
#include "baseline/random_partition.h"
#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "util/options.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser options("Compare partitioners on one benchmark circuit.");
  options.add_string("circuit", "ksa8", "benchmark name");
  options.add_int("planes", 5, "number of ground planes K");
  options.add_int("seed", 1, "random seed");
  if (auto status = options.parse(argc - 1, argv + 1); !status) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(), options.usage().c_str());
    return 1;
  }
  const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", options.get_string("circuit").c_str());
    return 1;
  }
  const int planes = static_cast<int>(options.get_int("planes"));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed"));
  const Netlist netlist = build_mapped(*entry);

  TablePrinter table({"method", "d<=1", "d<=2", "cut", "I_comp", "A_FS"});
  auto report = [&](const char* method, const Partition& partition) {
    const PartitionMetrics m = compute_metrics(netlist, partition);
    table.add_row({method, fmt_percent(m.frac_within(1)), fmt_percent(m.frac_within(2)),
                   std::to_string(cut_count(netlist, partition)),
                   fmt_percent(m.icomp_frac()), fmt_percent(m.afs_frac())});
  };

  PartitionOptions popt;
  popt.num_planes = planes;
  popt.seed = seed;
  report("gradient-descent (paper)", Solver(SolverConfig::from(popt)).run(netlist).value().partition);

  PartitionOptions refined = popt;
  refined.refine = true;
  report("gradient-descent + refine", Solver(SolverConfig::from(refined)).run(netlist).value().partition);

  report("layered (topological)", layered_partition(netlist, planes));
  FmOptions fm_options;
  fm_options.seed = seed;
  report("FM k-way (cut objective)", fm_kway_partition(netlist, planes, fm_options).partition);
  report("random balanced", random_partition(netlist, planes, seed));

  std::printf("circuit %s, K=%d, %d gates\n", entry->name.c_str(), planes,
              netlist.num_partitionable_gates());
  table.print();
  return 0;
}
