// Constrained-K search (Table III of the paper).
//
// A bias pad sustains at most B_limit (100 mA in the paper, after [23]);
// the externally supplied current equals B_max of the partition, so K must
// be raised until B_max <= B_limit. The search starts from the lower bound
// K_LB = ceil(B_cir / B_limit) and increases K until the partitioner
// produces a feasible stack.
//
// Solver failures propagate: an attempt that fails (bad base config,
// degenerate problem) aborts the search with that Status instead of
// silently skipping the K — a skipped failure used to masquerade as
// "infeasible at this K", which inflated K_res. Parameter sweeps beyond
// K live in core/sweep.h, which generalizes this search to arbitrary
// engine-option axes.
#pragma once

#include "core/solver.h"
#include "util/status.h"

namespace sfqpart {

struct KresOptions {
  double bias_limit_ma = 100.0;
  // Give up beyond this many planes (a malformed limit would otherwise
  // loop toward K = G).
  int max_planes = 256;
  // Base options for each partitioning attempt; num_planes is overwritten
  // by the search.
  SolverConfig base;
};

struct KresResult {
  bool found = false;
  int k_lb = 0;   // ceil(B_cir / B_limit)
  int k_res = 0;  // smallest feasible K found
  double bmax_ma = 0.0;
  SolverResult result;  // the feasible partition (valid when found)
};

// kInvalidArgument on a non-positive bias limit; any failed partitioning
// attempt aborts the search with the solver's Status.
StatusOr<KresResult> find_min_planes(const Netlist& netlist,
                                     const KresOptions& options = {});

}  // namespace sfqpart
