// Solver — the library's single partitioning entry point.
//
// One SolverConfig aggregates every knob of the gradient-descent flow
// (netlist + K -> PartitionProblem -> random soft init -> gradient descent
// (Algorithm 1) -> argmax hardening (-> optional greedy refinement) ->
// Partition), one StatusOr-returning run() replaces asserts at the API
// boundary, and the independent random restarts of the search execute on a
// thread pool. The pre-facade option/result structs that used to live in
// core/partitioner.h were removed with
// the DESIGN.md section 8.4 deprecation; SolverConfig / SolverResult /
// LabelResult below are their only successors, and the EngineRegistry
// (core/engine.h) is the uniform surface over every engine.
//
// Determinism contract (DESIGN.md section 7): for a fixed seed the output
// — labels, cost terms, winning restart — is bit-identical at every
// `threads` value. Restart r always consumes the r-th split() of the root
// Rng, restart results are selected by (cost, lowest restart index), and
// every floating-point reduction uses a fixed chunk order.
//
//   Solver solver({.num_planes = 5, .seed = 1, .threads = 0});
//   auto result = solver.run(netlist);
//   if (!result) { /* result.status().message() */ }
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "core/optimizer.h"
#include "core/partition.h"
#include "core/refine.h"
#include "util/status.h"

namespace sfqpart {

class ThreadPool;

namespace obs {
class SolverObserver;
}  // namespace obs

struct SolverConfig {
  int num_planes = 5;  // K (Table I uses 5)
  // Independent random restarts; the best discrete-cost result wins, ties
  // broken toward the lowest restart index.
  int restarts = 3;
  std::uint64_t seed = 1;
  // Worker threads for restarts and cost-model reductions. 1 = serial
  // (no pool is created); 0 = hardware concurrency.
  int threads = 1;
  // Post-hardening greedy improvement (not part of the published
  // algorithm; see DESIGN.md section 6 and ablation A2).
  bool refine = false;

  CostWeights weights;
  GradientStyle gradient_style = GradientStyle::kAnalytic;
  OptimizerOptions optimizer;
  RefineOptions refine_options;

  // Opt-in reassociated vector reductions in the gradient hot path
  // (DESIGN.md section 15). Off (the default) keeps labels bit-identical
  // to the scalar kernels; on allows lane-parallel accumulation on the
  // vector tiers — a tolerance-bounded, not bit-pinned, result. No-op
  // when dispatch selects the scalar tier.
  bool fast_math = false;

  // Per-gate fixed planes (compact problem indices, -1 = free; not owned,
  // must outlive the run). Fixed gates start every restart as an exact
  // one-hot row, are re-clamped after hardening, and are skipped by the
  // refinement pass. Null = unconstrained, byte-identical to the
  // pre-constraint solver.
  const std::vector<int>* fixed_labels = nullptr;

  // Optional warm-start labels (compact problem indices, -1 = unassigned;
  // not owned, must outlive the run). Restart 0 overrides its random soft
  // assignment with exact one-hot rows for every assigned label (fixed
  // rows still win); restarts 1..R-1 stay fully random so the search keeps
  // its diversity. Null = cold, byte-identical to the pre-warm-start
  // solver.
  const std::vector<int>* warm_labels = nullptr;

  // Structured observability hook (not owned; may be null). Receives the
  // full event stream of every run: run/restart lifecycles, per-iteration
  // CostTerms, hardening, refine passes, named stage timers and counters
  // — serialized by the Solver's TraceSink, so implementations need no
  // locking of their own. Attach an obs::RunReport to capture a
  // machine-readable report, an obs::StreamTracer for live logs, or an
  // obs::MulticastObserver for both. With no observer attached the
  // instrumented paths cost one branch (DESIGN.md section 8).
  obs::SolverObserver* observer = nullptr;
};

// One Solver::run outcome: the hardened netlist-level partition plus the
// soft/discrete costs and convergence facts of the winning restart.
struct SolverResult {
  Partition partition;
  CostTerms soft_terms;        // relaxed cost at the winning restart's W
  CostTerms discrete_terms;    // cost of the hardened assignment
  double discrete_total = 0.0; // weighted discrete cost used for selection
  int iterations = 0;          // optimizer iterations of the winning restart
  int winning_restart = 0;
  bool converged = false;
};

// Core-solve result as compact labels (0-based planes indexed like the
// problem), for callers that manage their own problems (e.g. the
// multilevel driver, whose coarse problems do not map to netlist gates).
// Produced by Solver::solve.
struct LabelResult {
  std::vector<int> labels;
  CostTerms soft_terms;
  CostTerms discrete_terms;
  double discrete_total = 0.0;
  int iterations = 0;
  int winning_restart = 0;
  bool converged = false;
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {});
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  const SolverConfig& config() const { return config_; }
  // Threads actually used (resolves threads == 0 to the hardware count).
  int effective_threads() const;

  // Partition a netlist end to end. Errors (K < 2, no partitionable
  // gates, non-positive learning rate, ...) come back as Status instead
  // of tripping asserts.
  StatusOr<SolverResult> run(const Netlist& netlist) const;

  // Same flow on a prebuilt problem (benches that sweep K without
  // re-extracting the netlist). `netlist_num_gates` sizes the expanded
  // Partition. The problem's num_planes takes precedence over
  // config().num_planes.
  StatusOr<SolverResult> run(const PartitionProblem& problem,
                                int netlist_num_gates) const;

  // Core solve returning compact labels for callers that manage their own
  // problems (e.g. the multilevel driver).
  StatusOr<LabelResult> solve(const PartitionProblem& problem) const;

 private:
  SolverConfig config_;
  // Created once when effective_threads() > 1; restarts and reductions
  // of every run() share it.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sfqpart
