// Solver — the library's single partitioning entry point.
//
// One SolverConfig aggregates every knob that used to be scattered across
// PartitionOptions / OptimizerOptions / RefineOptions / CostWeights (those
// structs remain, as implementation detail), one StatusOr-returning run()
// replaces asserts at the API boundary, and the independent random
// restarts of the search execute on a thread pool.
//
// Determinism contract (DESIGN.md section 7): for a fixed seed the output
// — labels, cost terms, winning restart — is bit-identical at every
// `threads` value. Restart r always consumes the r-th split() of the root
// Rng, restart results are selected by (cost, lowest restart index), and
// every floating-point reduction uses a fixed chunk order.
//
//   Solver solver({.num_planes = 5, .seed = 1, .threads = 0});
//   auto result = solver.run(netlist);
//   if (!result) { /* result.status().message() */ }
#pragma once

#include <cstdint>
#include <memory>

#include "core/partitioner.h"
#include "util/status.h"

namespace sfqpart {

class ThreadPool;

namespace obs {
class SolverObserver;
}  // namespace obs

struct SolverConfig {
  int num_planes = 5;  // K (Table I uses 5)
  // Independent random restarts; the best discrete-cost result wins, ties
  // broken toward the lowest restart index.
  int restarts = 3;
  std::uint64_t seed = 1;
  // Worker threads for restarts and cost-model reductions. 1 = serial
  // (no pool is created); 0 = hardware concurrency.
  int threads = 1;
  // Post-hardening greedy improvement (not part of the published
  // algorithm; see DESIGN.md section 6 and ablation A2).
  bool refine = false;

  CostWeights weights;
  GradientStyle gradient_style = GradientStyle::kAnalytic;
  OptimizerOptions optimizer;
  RefineOptions refine_options;

  // Structured observability hook (not owned; may be null). Receives the
  // full event stream of every run: run/restart lifecycles, per-iteration
  // CostTerms, hardening, refine passes, named stage timers and counters
  // — serialized by the Solver's TraceSink, so implementations need no
  // locking of their own. Attach an obs::RunReport to capture a
  // machine-readable report, an obs::StreamTracer for live logs, or an
  // obs::MulticastObserver for both. With no observer attached the
  // instrumented paths cost one branch (DESIGN.md section 8).
  obs::SolverObserver* observer = nullptr;

  // Bridge for legacy call sites still holding a PartitionOptions.
  static SolverConfig from(const PartitionOptions& options, int threads = 1);
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {});
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  const SolverConfig& config() const { return config_; }
  // Threads actually used (resolves threads == 0 to the hardware count).
  int effective_threads() const;

  // Partition a netlist end to end. Errors (K < 2, no partitionable
  // gates, non-positive learning rate, ...) come back as Status instead
  // of tripping asserts.
  StatusOr<PartitionResult> run(const Netlist& netlist) const;

  // Same flow on a prebuilt problem (benches that sweep K without
  // re-extracting the netlist). `netlist_num_gates` sizes the expanded
  // Partition. The problem's num_planes takes precedence over
  // config().num_planes.
  StatusOr<PartitionResult> run(const PartitionProblem& problem,
                                int netlist_num_gates) const;

  // Core solve returning compact labels for callers that manage their own
  // problems (e.g. the multilevel driver).
  StatusOr<LabelResult> solve(const PartitionProblem& problem) const;

 private:
  SolverConfig config_;
  // Created once when effective_threads() > 1; restarts and reductions
  // of every run() share it.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sfqpart
