// Unified engine surface: every partitioning algorithm in the library
// behind one interface and one registry.
//
// The paper's gradient-descent relaxation is one of seven engines; the
// others (multilevel, annealing, FM k-way, layered, random) exist to
// quantify the paper's section IV-A claim that classic K-way cut
// objectives cannot capture plane-distance cost. Historically each had
// its own options struct, result struct and free-function entry point, so
// every bench/example/CLI comparison hand-wired six call sites. A
// PartitionEngine normalizes all of them:
//
//   auto engine = EngineRegistry::create("annealing");
//   if (!engine) { /* engine.status(): NotFound for unknown names */ }
//   EngineContext ctx;
//   ctx.num_planes = 5;
//   ctx.seed = 1;
//   auto run = (*engine)->run(netlist, ctx);
//   // run->partition, run->discrete_terms, run->counters, run->wall_ms
//
// Determinism contract: for a fixed EngineContext every engine reproduces
// the exact labels its pre-registry entry point produced with the same
// options (tests/core/engine_test.cpp pins this with golden labels), and
// attaching an observer never changes the result.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/constraints.h"
#include "core/cost_model.h"
#include "core/partition.h"
#include "util/json.h"
#include "util/status.h"

namespace sfqpart {

// Debug builds certify every engine run against core/certify.h by
// default (cheap insurance while the engines multiply); release builds
// opt in per run via EngineContext::certify / `--certify` / the daemon
// option.
#ifdef NDEBUG
inline constexpr bool kCertifyDefault = false;
#else
inline constexpr bool kCertifyDefault = true;
#endif

namespace obs {
class SolverObserver;
}  // namespace obs

// One engine knob, machine-readable: name, value type, default, inclusive
// numeric range and a one-line doc. Engines advertise their knobs as a
// list of these (PartitionEngine::describe_options); the sfqpartd daemon
// validates job options against them, and `sfqpart --list-engines --json`
// serializes them for tooling. The names map onto EngineContext fields
// ("planes", "seed", "restarts", "threads", "refine", "c1".."c4",
// "distance_exponent"); apply_engine_options() below performs the mapping.
struct OptionSpec {
  enum class Type { kBool, kInt, kDouble, kString };

  std::string name;
  Type type = Type::kDouble;
  // Default as a double; bools use 0/1, integers are exact up to 2^53.
  // Ignored for kString (default_text below).
  double default_value = 0.0;
  // Inclusive range; +-infinity means unbounded on that side (and the
  // bound is omitted from the JSON form). Ignored for kString.
  double min_value;
  double max_value;
  std::string doc;
  // kString only: the default, and the closed set of accepted values
  // (validation rejects anything else; never empty for a kString spec).
  std::string default_text;
  std::vector<std::string> enum_values;

  // {"name":..., "type":"bool|int|double|string", "default":...,
  //  "min":..., "max":..., "values":[...], "doc":...}
  Json to_json() const;
};

const char* option_type_name(OptionSpec::Type type);

// Validates `options` (a JSON object of name -> scalar) against `specs`
// and applies the values onto `context`: unknown names, non-scalar or
// type-mismatched values, non-finite numbers and out-of-range values all
// fail with kInvalidArgument naming the offending option. Omitted options
// keep the spec default. When `canonical` is non-null it receives the
// canonical form of the *effective* configuration — every spec in list
// order with its resolved value, independent of option order, spelling or
// whitespace in `options` — except "threads", which never changes results
// (the determinism contract: bit-identical labels at any thread count) and
// is therefore excluded so result caches can key on the canonical string.
Status apply_engine_options(const std::vector<OptionSpec>& specs,
                            const Json& options, struct EngineContext& context,
                            std::string* canonical = nullptr);

// The knobs shared by every engine. Engine-specific tuning (cooling
// schedules, FM pass limits, coarsening targets) keeps its historical
// defaults; the context carries only what the uniform surface needs to
// thread through: problem shape, determinism, parallelism and
// observability. Fields an engine has no use for are ignored (threads by
// everything but gradient, refine by everything but gradient, seed by
// layered).
struct EngineContext {
  int num_planes = 5;  // K (Table I uses 5)
  std::uint64_t seed = 1;
  // Worker threads for engines with parallel phases (the gradient
  // Solver's restarts and reductions). 1 = serial, 0 = hardware
  // concurrency.
  int threads = 1;
  // Independent random restarts for restart-based engines.
  int restarts = 3;
  // Post-hardening greedy improvement (gradient engine only; not part of
  // the published algorithm).
  bool refine = false;
  // Reassociated vector reductions in the gradient hot path (gradient
  // engine only; DESIGN.md section 15). Off keeps the bit-identity pin;
  // on trades it for lane-parallel accumulation within a tested
  // tolerance. No-op on the scalar kernel tier.
  bool fast_math = false;
  // V-cycle shape knobs (vcycle engine only): banded-refinement plane
  // radius, coarsest-level size target, level cap, refinement pass cap.
  int band = 1;
  int coarse_target = 1024;
  int max_levels = 64;
  int max_passes = 8;
  // Largest instance the exhaustive `exact` engine accepts (branch-and-
  // bound cost grows as K^G; the engine rejects bigger netlists with
  // kInvalidArgument instead of hanging).
  int max_gates = 20;
  // Uncoarsening refinement flavor of the vcycle engine: "banded"
  // (parallel propose/commit sweeps, the default) or "buckets" (serial
  // FM-style best-gain bucket moves).
  std::string refine_style = "banded";
  // ECO engine only: BFS halo around the dirty region — how many
  // adjacency hops beyond the changed gates the restricted refinement may
  // still move.
  int halo = 2;
  // ECO engine only: additionally run a scratch vcycle on the same
  // netlist and report "speedup_vs_scratch" / "cost_drift_pct" counters
  // (the scratch run's wall-clock is *not* part of the eco run's
  // wall_ms). Off by default — it costs a full cold solve.
  bool compare_scratch = false;
  // Run the independent certifier (core/certify.h) over the result and
  // fail the run on any non-valid verdict. Debug builds default to on.
  bool certify = kCertifyDefault;
  // Pinned / grouped gate constraints, compiled against the netlist by
  // the adapter and enforced by every engine; empty means unconstrained
  // (bit-identical to the pre-constraint behavior).
  GateConstraints constraints;
  // Optional warm start (not owned; must outlive the run; null = cold,
  // bit-identical to the pre-warm-start behavior). Validated once by the
  // adapter against the netlist (size, label range); pins win over warm
  // labels. Every registry engine honors it: gradient seeds restart 0's
  // soft assignment, vcycle/multilevel restrict it through the coarsening
  // stack into the coarse solve, annealing/fm_kway/layered/random start
  // from the given labels instead of their seed heuristic, exact uses it
  // as the branch-and-bound incumbent, and eco *requires* it (it defines
  // the clean region). When every partitionable gate is assigned, the
  // adapter additionally guarantees the run never scores worse than the
  // seed (counter "warm_start_kept" marks the fallback).
  const InitialPartition* warm_start = nullptr;
  // Weights of the shared discrete objective every EngineRun is scored
  // with; engines that optimize the same objective (gradient, multilevel,
  // annealing) also run with them.
  CostWeights weights;
  // Structured observability hook (not owned; may be null). Every engine
  // emits its run lifecycle through this observer; the registry rewrites
  // the outermost RunInfo::engine to the registry name so a RunReport
  // always carries the engine it was produced by.
  obs::SolverObserver* observer = nullptr;

  // Uniform API-boundary validation, shared by the CLI and the adapters:
  // one Status instead of six engine-dependent failure modes (asserts,
  // hangs, silent nonsense) for out-of-range planes/threads/restarts or
  // non-finite weights.
  Status validate() const;
};

// One engine run, normalized across engines: the hardened partition, the
// discrete cost terms of the *shared* CostModel (so rows from different
// engines are directly comparable), engine-specific counters as
// name -> value pairs (iterations, moves_tried, final_cut, ...), and the
// wall-clock of the whole run.
struct EngineRun {
  Partition partition;
  CostTerms discrete_terms;
  double discrete_total = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  double wall_ms = 0.0;

  // Convenience lookup; 0.0 when the engine did not report the counter.
  double counter(const std::string& name) const;
};

class PartitionEngine {
 public:
  virtual ~PartitionEngine() = default;

  // Registry name ("gradient", "multilevel", "annealing", "fm_kway",
  // "layered", "random").
  virtual const char* name() const = 0;
  // One-line human-readable description of the engine's objective (CLI
  // --list-engines).
  virtual const char* description() const = 0;
  // The structured list of knobs the engine honors: every EngineContext
  // field the engine actually reads, with type, default, range and doc.
  // Knobs absent from the list are ignored by the engine (and rejected by
  // the daemon's job validation). Serialized by --list-engines --json.
  virtual std::vector<OptionSpec> describe_options() const = 0;

  virtual StatusOr<EngineRun> run(const Netlist& netlist,
                                  const EngineContext& context) const = 0;
};

// Static registry of every known engine. The seven built-ins register
// themselves on first use; external code can add more with
// register_engine (names must be unique).
class EngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<PartitionEngine>()>;

  // Registers a factory under `name`. Fails with kInvalidArgument on a
  // duplicate or empty name.
  static Status register_engine(const std::string& name, Factory factory);

  // All registered names, sorted; stable across calls.
  static std::vector<std::string> names();

  // Instantiates an engine; kNotFound for unknown names (never a crash).
  static StatusOr<std::unique_ptr<PartitionEngine>> create(const std::string& name);
};

}  // namespace sfqpart
