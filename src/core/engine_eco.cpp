// "eco" engine: incremental re-partition after a netlist revision.
//
// Requires a warm start (core/delta.h warm_start_from, or any partial
// InitialPartition): the assigned gates are the clean region, the
// unassigned gates are the dirty seeds. The engine places each seed
// greedily against its already-assigned neighbors, then runs the
// FM-style bucket refinement restricted to the dirty region plus a BFS
// halo of `halo` adjacency hops — the rest of the graph is never
// touched, which is what makes a 1% ECO on a million-gate netlist orders
// of magnitude cheaper than a scratch V-cycle. With compare_scratch the
// engine additionally runs a scratch vcycle on the same netlist and
// reports "speedup_vs_scratch" / "cost_drift_pct" counters.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_adapter.h"
#include "core/move_eval.h"
#include "core/problem_view.h"
#include "core/refine.h"
#include "core/vcycle.h"
#include "util/strings.h"

namespace sfqpart::engine_detail {

namespace {

// |d|^p by repeated multiplication (matches CostModel's discrete F1).
double dist_pow(double d, int p) {
  double magnitude = std::abs(d);
  double result = 1.0;
  for (int i = 0; i < p; ++i) result *= magnitude;
  return result;
}

OptionSpec compare_scratch_spec() {
  OptionSpec spec;
  spec.name = "compare_scratch";
  spec.type = OptionSpec::Type::kBool;
  spec.default_value = 0;
  spec.min_value = -std::numeric_limits<double>::infinity();
  spec.max_value = std::numeric_limits<double>::infinity();
  spec.doc =
      "also run a scratch vcycle and report speedup_vs_scratch / "
      "cost_drift_pct counters (costs a full cold solve)";
  return spec;
}

class EcoAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "eco"; }
  const char* description() const override {
    return "incremental ECO re-partition: greedy placement of the warm "
           "start's unassigned gates + bucket refinement restricted to the "
           "dirty region and a BFS halo (requires a warm start)";
  }
  // The restricted refinement emits no observer events of its own; the
  // adapter narrates the run lifecycle (so reports carry engine "eco").
  bool self_observing() const override { return false; }

  std::vector<OptionSpec> describe_options() const override {
    std::vector<OptionSpec> specs = {
        planes_spec(),     seed_spec(),    restarts_spec(),
        threads_spec(),    band_spec(),    max_passes_spec(),
        halo_spec(),       compare_scratch_spec(), certify_spec()};
    for (OptionSpec& spec : weight_specs()) specs.push_back(std::move(spec));
    return specs;
  }

 protected:
  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    if (warm == nullptr) {
      return Status::invalid_argument(
          "engine 'eco': requires a warm start (EngineContext::warm_start, "
          "e.g. from core/delta.h warm_start_from); for a cold solve use "
          "engine 'vcycle'");
    }
    using Clock = std::chrono::steady_clock;
    const Clock::time_point eco_start = Clock::now();

    const PartitionProblem problem =
        PartitionProblem::from_netlist(netlist, context.num_planes);
    const int n = problem.num_gates;
    const int k = context.num_planes;
    std::vector<int> labels = *warm;

    // Dirty seeds: the warm start's unassigned compact entries (pins were
    // folded into `warm` by the adapter, so a pinned gate is never a seed).
    std::vector<int> seeds;
    for (int i = 0; i < n; ++i) {
      if (labels[static_cast<std::size_t>(i)] == kUnassignedPlane) {
        seeds.push_back(i);
      }
    }

    const ProblemView view(problem);

    // BFS halo: the dirty region the restricted refinement may move.
    // `hops[i]` is the BFS depth (0 = seed); gates beyond `halo` hops are
    // frozen. The frontier is processed in ascending gate order per
    // level, so the active set is deterministic.
    std::vector<int> hops(static_cast<std::size_t>(n), -1);
    std::vector<int> frontier = seeds;
    for (const int gate : seeds) hops[static_cast<std::size_t>(gate)] = 0;
    for (int depth = 1; depth <= context.halo && !frontier.empty(); ++depth) {
      std::vector<int> next;
      for (const int gate : frontier) {
        const std::uint32_t* offsets = view.offsets();
        const std::int32_t* adj = view.neighbors();
        for (std::uint32_t s = offsets[static_cast<std::size_t>(gate)];
             s < offsets[static_cast<std::size_t>(gate) + 1]; ++s) {
          const int neighbor = adj[s];
          if (hops[static_cast<std::size_t>(neighbor)] == -1) {
            hops[static_cast<std::size_t>(neighbor)] = depth;
            next.push_back(neighbor);
          }
        }
      }
      std::sort(next.begin(), next.end());
      frontier = std::move(next);
    }
    std::vector<int> active;
    for (int i = 0; i < n; ++i) {
      if (hops[static_cast<std::size_t>(i)] >= 0) active.push_back(i);
    }

    // Greedy placement of the seeds in ascending compact order: the plane
    // minimizing the F1 contribution against already-assigned neighbors,
    // ties to the least-loaded (bias) plane, then the lowest index.
    std::vector<double> plane_bias(static_cast<std::size_t>(k), 0.0);
    for (int i = 0; i < n; ++i) {
      const int label = labels[static_cast<std::size_t>(i)];
      if (label != kUnassignedPlane) {
        plane_bias[static_cast<std::size_t>(label)] +=
            problem.bias[static_cast<std::size_t>(i)];
      }
    }
    const int exponent = context.weights.distance_exponent;
    for (const int gate : seeds) {
      int best_plane = 0;
      double best_pull = std::numeric_limits<double>::infinity();
      double best_load = std::numeric_limits<double>::infinity();
      const std::uint32_t* offsets = view.offsets();
      const std::int32_t* adj = view.neighbors();
      for (int plane = 0; plane < k; ++plane) {
        double pull = 0.0;
        for (std::uint32_t s = offsets[static_cast<std::size_t>(gate)];
             s < offsets[static_cast<std::size_t>(gate) + 1]; ++s) {
          const int neighbor_label = labels[static_cast<std::size_t>(adj[s])];
          if (neighbor_label == kUnassignedPlane) continue;
          pull += dist_pow(plane - neighbor_label, exponent);
        }
        const double load = plane_bias[static_cast<std::size_t>(plane)];
        if (pull < best_pull || (pull == best_pull && load < best_load)) {
          best_pull = pull;
          best_load = load;
          best_plane = plane;
        }
      }
      labels[static_cast<std::size_t>(gate)] = best_plane;
      plane_bias[static_cast<std::size_t>(best_plane)] +=
          problem.bias[static_cast<std::size_t>(gate)];
    }

    // Restricted refinement: FM-style bucket moves over the dirty region
    // only. band <= 0 would lift the plane band; eco keeps the engine
    // default (context.band) like the vcycle refiner.
    const CostModel model(view, context.weights);
    MoveEvaluator eval(model, std::move(labels));
    RefineOptions refine_options;
    refine_options.max_passes = context.max_passes;
    const BucketRefineStats stats =
        bucket_refine(eval, context.band, refine_options,
                      constraints.compact_or_null(), &active);

    counters.emplace_back("dirty_seeds", static_cast<double>(seeds.size()));
    counters.emplace_back("dirty_gates", static_cast<double>(active.size()));
    counters.emplace_back("halo", static_cast<double>(context.halo));
    counters.emplace_back("eco_moves", static_cast<double>(stats.moves));
    const double eco_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - eco_start)
            .count();

    if (context.compare_scratch) {
      const Clock::time_point scratch_start = Clock::now();
      VcycleOptions scratch;
      scratch.seed = context.seed;
      scratch.coarse.restarts = context.restarts;
      scratch.coarse.weights = context.weights;
      scratch.threads = context.threads;
      scratch.band = context.band;
      scratch.refine.max_passes = context.max_passes;
      scratch.fixed = constraints.compact_or_null();
      const VcycleResult cold =
          vcycle_partition(netlist, context.num_planes, scratch);
      const double scratch_ms = std::chrono::duration<double, std::milli>(
                                    Clock::now() - scratch_start)
                                    .count();
      const double eco_cost = stats.cost_after;
      counters.emplace_back("scratch_ms", scratch_ms);
      counters.emplace_back("eco_ms", eco_ms);
      counters.emplace_back("speedup_vs_scratch",
                            eco_ms > 0.0 ? scratch_ms / eco_ms : 0.0);
      if (cold.discrete_total != 0.0) {
        counters.emplace_back(
            "cost_drift_pct",
            (eco_cost - cold.discrete_total) / cold.discrete_total * 100.0);
      }
    }

    return problem.to_partition(eval.labels(), netlist.num_gates());
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_eco_engine() {
  return std::make_unique<EcoAdapter>();
}

}  // namespace sfqpart::engine_detail
