// Options and result types of the gradient-descent partitioning flow:
// netlist + K -> PartitionProblem -> random soft init -> gradient descent
// (Algorithm 1) -> argmax hardening (-> optional greedy refinement) ->
// Partition. Multiple random restarts keep the best hardened result; one
// restart with refinement off reproduces the published algorithm verbatim.
//
// The free-function entry points that used to live here
// (partition_netlist / partition_problem / solve_labels) were deprecated
// in favor of the `sfqpart::Solver` facade (core/solver.h) and have been
// removed (DESIGN.md section 8.4). Use
// `Solver(SolverConfig::from(options)).run(netlist)` — bit-identical to
// the old single-threaded wrappers for the same options — or the
// EngineRegistry (core/engine.h) for uniform access to every engine.
#pragma once

#include <cstdint>

#include "core/cost_model.h"
#include "core/optimizer.h"
#include "core/partition.h"
#include "core/refine.h"

namespace sfqpart {

struct PartitionOptions {
  int num_planes = 5;  // K (Table I uses 5)
  CostWeights weights;
  GradientStyle gradient_style = GradientStyle::kAnalytic;
  OptimizerOptions optimizer;
  // Independent random restarts; the best discrete-cost result wins.
  int restarts = 3;
  std::uint64_t seed = 1;
  // Post-hardening greedy improvement (not part of the published
  // algorithm; see DESIGN.md section 6 and ablation A2).
  bool refine = false;
  RefineOptions refine_options;
};

struct PartitionResult {
  Partition partition;
  CostTerms soft_terms;        // relaxed cost at the winning restart's W
  CostTerms discrete_terms;    // cost of the hardened assignment
  double discrete_total = 0.0; // weighted discrete cost used for selection
  int iterations = 0;          // optimizer iterations of the winning restart
  int winning_restart = 0;
  bool converged = false;
};

// Core-solve result as compact labels (0-based planes indexed like the
// problem), for callers that manage their own problems (e.g. the
// multilevel driver, whose coarse problems do not map to netlist gates).
// Produced by Solver::solve.
struct LabelResult {
  std::vector<int> labels;
  CostTerms soft_terms;
  CostTerms discrete_terms;
  double discrete_total = 0.0;
  int iterations = 0;
  int winning_restart = 0;
  bool converged = false;
};

}  // namespace sfqpart
