// Top-level ground-plane partitioner: the paper's contribution, end to end.
//
// netlist + K -> PartitionProblem -> random soft init -> gradient descent
// (Algorithm 1) -> argmax hardening (-> optional greedy refinement) ->
// Partition. Multiple random restarts keep the best hardened result; one
// restart with refinement off reproduces the published algorithm verbatim.
//
// DEPRECATED ENTRY POINTS: the free functions below predate the unified
// `sfqpart::Solver` facade (core/solver.h), which aggregates all the
// option structs into one SolverConfig, validates input with StatusOr
// instead of asserts, runs restarts in parallel (`threads`), and feeds the
// observability layer (obs/observer.h). They are now marked
// [[deprecated]] and scheduled for removal in the release after next
// (DESIGN.md section 8.4); the wrappers remain bit-identical to a
// single-threaded Solver run with the same options. The only in-tree
// callers left are the legacy-contract tests, which suppress the warning
// on purpose.
#pragma once

#include <cstdint>

#include "core/cost_model.h"
#include "core/optimizer.h"
#include "core/partition.h"
#include "core/refine.h"

namespace sfqpart {

struct PartitionOptions {
  int num_planes = 5;  // K (Table I uses 5)
  CostWeights weights;
  GradientStyle gradient_style = GradientStyle::kAnalytic;
  OptimizerOptions optimizer;
  // Independent random restarts; the best discrete-cost result wins.
  int restarts = 3;
  std::uint64_t seed = 1;
  // Post-hardening greedy improvement (not part of the published
  // algorithm; see DESIGN.md section 6 and ablation A2).
  bool refine = false;
  RefineOptions refine_options;
};

struct PartitionResult {
  Partition partition;
  CostTerms soft_terms;        // relaxed cost at the winning restart's W
  CostTerms discrete_terms;    // cost of the hardened assignment
  double discrete_total = 0.0; // weighted discrete cost used for selection
  int iterations = 0;          // optimizer iterations of the winning restart
  int winning_restart = 0;
  bool converged = false;
};

// Thin wrapper over a single-threaded Solver.
[[deprecated("use sfqpart::Solver(SolverConfig::from(options)).run(netlist)")]]
PartitionResult partition_netlist(const Netlist& netlist,
                                  const PartitionOptions& options = {});

// Same flow on a prebuilt problem (used by benches that sweep K without
// re-extracting the netlist).
[[deprecated(
    "use sfqpart::Solver(SolverConfig::from(options)).run(problem, n)")]]
PartitionResult partition_problem(const PartitionProblem& problem,
                                  int netlist_num_gates,
                                  const PartitionOptions& options);

// Core solve returning compact labels (0-based planes indexed like the
// problem), for callers that manage their own problems (e.g. the
// multilevel driver, whose coarse problems do not map to netlist gates).
struct LabelResult {
  std::vector<int> labels;
  CostTerms soft_terms;
  CostTerms discrete_terms;
  double discrete_total = 0.0;
  int iterations = 0;
  int winning_restart = 0;
  bool converged = false;
};
[[deprecated("use sfqpart::Solver(SolverConfig::from(options)).solve(problem)")]]
LabelResult solve_labels(const PartitionProblem& problem,
                         const PartitionOptions& options);

}  // namespace sfqpart
