#include "core/cost_model.h"

#include <cassert>
#include <cmath>

#include "core/simd/dispatch.h"
#include "core/soft_assign.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

double ipow(double base, int exponent) {
  // Negative exponents would silently evaluate to 1.0 and zero F1's
  // contribution; the Solver facade rejects them with a Status before any
  // CostModel exists, direct users fail here.
  assert(exponent >= 0 && "ipow: negative exponents are not supported");
  double result = 1.0;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}

// Chunk size of the parallel reductions. The boundaries depend only on the
// problem size, so per-chunk partials combined in chunk order give the
// same floating-point result at every thread count (see thread_pool.h).
// Sized so the paper-suite unit circuits stay single-chunk and only the
// thousands-of-gates benches actually split. A multiple of the widest
// vector block (8 gates), so kernel blocks never straddle a chunk edge.
constexpr std::size_t kReductionGrain = 1024;

// Per-item cost hints for the executor's adaptive serial threshold
// (thread_pool.h): rough nanoseconds of kernel work per gate/edge, so
// passes too small to amortize a region open run inline instead.
double gate_pass_cost(std::size_t k) { return 3.0 * static_cast<double>(k); }
constexpr double kEdgePassCost = 10.0;

// The hot per-chunk loops live in the dispatched kernel layer
// (core/simd/) — scalar, AVX2 or AVX-512, selected once at startup, all
// bit-identical in default mode. The structs below are the thin
// parallel_chunks adapters: they pick the chunk's partial-accumulator
// rows out of the workspace slabs and forward to the table function.

struct AggregateBody {
  const simd::AggregateArgs* args;
  simd::AggregateFn fn;
  ChunkSlab* bias_area;  // per-chunk [bias[0..stride); area[0..stride))
  ChunkSlab* f4;         // null when the F4 term is not wanted
  std::size_t stride;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    double* bias_acc = bias_area->chunk(chunk);
    fn(*args, begin, end, bias_acc, bias_acc + stride,
       f4 != nullptr ? f4->chunk(chunk) : nullptr);
  }
};

struct StepAggregateBody {
  const simd::AggregateArgs* args;
  simd::StepAggregateFn fn;
  double* w;
  const double* grad;
  double scale;
  ChunkSlab* bias_area;
  ChunkSlab* f4;
  std::size_t stride;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    double* bias_acc = bias_area->chunk(chunk);
    fn(*args, w, grad, scale, begin, end, bias_acc, bias_acc + stride,
       f4 != nullptr ? f4->chunk(chunk) : nullptr);
  }
};

struct F1TermBody {
  const simd::EdgeArgs* args;
  simd::F1TermFn fn;
  ChunkSlab* partials;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    partials->chunk(chunk)[0] = fn(*args, begin, end);
  }
};

struct EdgeGradBody {
  const simd::EdgeGradArgs* args;
  simd::EdgeGradFn fn;
  ChunkSlab* partials;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    partials->chunk(chunk)[0] = fn(*args, begin, end);
  }
};

struct FusedGateBody {
  const simd::FusedGateArgs* args;
  simd::FusedGateFn fn;
  ChunkSlab* f4;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    fn(*args, begin, end, f4->chunk(chunk));
  }
};

// scatter_gradient_pass(): the reference engine's element-wise fill. Each
// gate's gradient row is independent; no reduction, so running the chunks
// on the pool cannot change any value. Stays a plain scalar loop — it is
// the historical bit-anchor the kernel layer is measured against.
struct ScatterFillKernel {
  const Matrix* w;
  Matrix* grad;
  const double* dlabel;
  const double* row_mean;
  const double* plane_bias;
  const double* plane_area;
  double mean_bias;
  double mean_area;
  const double* bias;
  const double* area;
  std::size_t k;
  CostWeights weights;
  double n2;
  double n3;
  double n4;
  bool analytic;

  void operator()(std::size_t, std::size_t begin, std::size_t end) const {
    const double kd = static_cast<double>(k);
    const double bias_coef = 2.0 / (kd * n2);
    const double area_coef = 2.0 / (kd * n3);
    for (std::size_t i = begin; i < end; ++i) {
      const auto grow = grad->row(i);
      const double mean = row_mean[i];
      for (std::size_t kk = 0; kk < k; ++kk) {
        double value = weights.c1 * dlabel[i] * static_cast<double>(kk + 1);
        value += weights.c2 * bias_coef * bias[i] *
                 (plane_bias[kk] - mean_bias);
        value += weights.c3 * area_coef * area[i] *
                 (plane_area[kk] - mean_area);
        if (analytic) {
          value += weights.c4 * (2.0 / n4) *
                   ((kd * mean - 1.0) - ((*w)(i, kk) - mean) / kd);
        } else {
          value += weights.c4 * (2.0 / n4) *
                   ((kd + 1.0 / kd) * (mean - (*w)(i, kk)) + kd - 1.0);
        }
        grow[kk] = value;
      }
    }
  }
};

}  // namespace

PartitionProblem PartitionProblem::from_netlist(const Netlist& netlist, int num_planes) {
  assert(num_planes >= 2);
  PartitionProblem problem;
  problem.num_planes = num_planes;

  std::vector<int> compact(static_cast<std::size_t>(netlist.num_gates()), -1);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    compact[static_cast<std::size_t>(g)] = problem.num_gates++;
    problem.gate_ids.push_back(g);
    problem.bias.push_back(netlist.bias_of(g));
    problem.area.push_back(netlist.area_of(g));
  }
  for (const Connection& edge : netlist.unique_edges()) {
    problem.edges.emplace_back(compact[static_cast<std::size_t>(edge.from)],
                               compact[static_cast<std::size_t>(edge.to)]);
  }
  return problem;
}

Partition PartitionProblem::to_partition(const std::vector<int>& labels,
                                         int netlist_num_gates) const {
  assert(static_cast<int>(labels.size()) == num_gates);
  Partition partition;
  partition.num_planes = num_planes;
  partition.plane_of.assign(static_cast<std::size_t>(netlist_num_gates),
                            kUnassignedPlane);
  for (int i = 0; i < num_gates; ++i) {
    partition.plane_of[static_cast<std::size_t>(gate_ids[static_cast<std::size_t>(i)])] =
        labels[static_cast<std::size_t>(i)];
  }
  return partition;
}

CostModel::CostModel(const PartitionProblem& problem, const CostWeights& weights,
                     GradientStyle style)
    : owned_view_(std::make_unique<ProblemView>(problem)),
      view_(owned_view_.get()),
      weights_(weights),
      style_(style) {
  init(weights);
}

CostModel::CostModel(const ProblemView& view, const CostWeights& weights,
                     GradientStyle style)
    : view_(&view), weights_(weights), style_(style) {
  init(weights);
}

void CostModel::init(const CostWeights& weights) {
  const PartitionProblem& problem = view_->problem();
  const int k = problem.num_planes;
  const int g = problem.num_gates;
  assert(k >= 2);
  assert(weights.distance_exponent >= 1 &&
         "distance_exponent must be >= 1 (the Solver facade validates this)");
  // N1 = |E| (K-1)^p; N2 = (K-1) Bbar^2 with the ideal Bbar = B_cir / K;
  // N3 analogous; N4 = G (K-1)^2. Degenerate problems (no edges, zero
  // bias) fall back to 1 to keep the terms finite.
  const double k1 = static_cast<double>(k - 1);
  double total_bias = 0.0;
  double total_area = 0.0;
  for (const double b : problem.bias) total_bias += b;
  for (const double a : problem.area) total_area += a;
  const double mean_bias = total_bias / k;
  const double mean_area = total_area / k;
  n1_ = static_cast<double>(problem.edges.size()) * ipow(k1, weights.distance_exponent);
  n2_ = k1 * mean_bias * mean_bias;
  n3_ = k1 * mean_area * mean_area;
  n4_ = static_cast<double>(g) * k1 * k1;
  if (n1_ <= 0.0) n1_ = 1.0;
  if (n2_ <= 0.0) n2_ = 1.0;
  if (n3_ <= 0.0) n3_ = 1.0;
  if (n4_ <= 0.0) n4_ = 1.0;
  // The CSR incidence adjacency lives in the shared ProblemView
  // (core/problem_view.h): the edge pass writes each edge's two signed
  // contributions into its view slots, and the gather just sums a gate's
  // slot range in ascending edge order.
}

void CostModel::combine_plane_sums(Workspace& ws, std::size_t chunks,
                                   std::size_t stride) const {
  const auto k = static_cast<std::size_t>(problem().num_planes);
  Aggregates& agg = ws.agg;
  for (std::size_t c = 0; c < chunks; ++c) {
    const double* bias_row = ws.bias_area_partial.chunk(c);
    const double* area_row = bias_row + stride;
    for (std::size_t kk = 0; kk < k; ++kk) {
      agg.plane_bias[kk] += bias_row[kk];
      agg.plane_area[kk] += area_row[kk];
    }
  }
  for (const double b : agg.plane_bias) agg.mean_bias += b;
  for (const double a : agg.plane_area) agg.mean_area += a;
  agg.mean_bias /= static_cast<double>(k);
  agg.mean_area /= static_cast<double>(k);
}

void CostModel::aggregate(const Matrix& w, Workspace& ws, bool with_f4) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  assert(w.rows() == g && w.cols() == k);
  const std::size_t stride = w.stride();

  Aggregates& agg = ws.agg;
  // labels and row_mean are unconditionally overwritten for every gate
  // below, so resize (a no-op on a warm workspace) instead of paying an
  // assign's zero-fill on the hot path.
  agg.labels.resize(g);
  agg.row_mean.resize(g);
  agg.plane_bias.assign(k, 0.0);
  agg.plane_area.assign(k, 0.0);
  agg.mean_bias = 0.0;
  agg.mean_area = 0.0;

  // Per-chunk B/A partial rows (stride-spaced so the vector tiers store
  // whole registers), combined in chunk order below; labels and row_mean
  // are element-wise and need no combine step. The F4 partials ride the
  // same read of W when requested.
  const std::size_t chunks = chunk_count(g, kReductionGrain);
  ws.bias_area_partial.reset(chunks, 2 * stride);
  if (with_f4) ws.f4_partial.reset(chunks, 1);
  const simd::KernelTable& kt = simd::kernels();
  simd::AggregateArgs args{w.flat().data(), stride,
                           k,               problem().bias.data(),
                           problem().area.data(), agg.labels.data(),
                           agg.row_mean.data()};
  AggregateBody body{&args, kt.aggregate, &ws.bias_area_partial,
                     with_f4 ? &ws.f4_partial : nullptr, stride};
  parallel_chunks(pool_, g, kReductionGrain, body, gate_pass_cost(k));
  combine_plane_sums(ws, chunks, stride);
  ws.agg_has_f4 = with_f4;
}

void CostModel::step_and_aggregate(Matrix& w, const Matrix& grad, double scale,
                                   Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  assert(w.rows() == g && w.cols() == k);
  assert(grad.rows() == g && grad.cols() == k);
  const std::size_t stride = w.stride();

  Aggregates& agg = ws.agg;
  agg.labels.resize(g);
  agg.row_mean.resize(g);
  agg.plane_bias.assign(k, 0.0);
  agg.plane_area.assign(k, 0.0);
  agg.mean_bias = 0.0;
  agg.mean_area = 0.0;

  const std::size_t chunks = chunk_count(g, kReductionGrain);
  ws.bias_area_partial.reset(chunks, 2 * stride);
  const simd::KernelTable& kt = simd::kernels();
  simd::AggregateArgs args{w.flat().data(), stride,
                           k,               problem().bias.data(),
                           problem().area.data(), agg.labels.data(),
                           agg.row_mean.data()};
  // The F4 partials are skipped: the gather engine's fused fill computes
  // them anyway, and the reference scatter path re-aggregates (see
  // evaluate_with_gradient_aggregated).
  StepAggregateBody body{&args,
                         kt.step_aggregate,
                         w.flat().data(),
                         grad.flat().data(),
                         scale,
                         &ws.bias_area_partial,
                         nullptr,
                         stride};
  parallel_chunks(pool_, g, kReductionGrain, body,
                  gate_pass_cost(k) + 2.0 * static_cast<double>(stride));
  combine_plane_sums(ws, chunks, stride);
  ws.agg_has_f4 = false;
}

double CostModel::f1_and_slot_grad(const Aggregates& agg, Workspace& ws) const {
  const std::size_t edges = problem().edges.size();
  const std::size_t edge_chunks = chunk_count(edges, kReductionGrain);
  ws.f1_partial.reset(edge_chunks, 1);
  ws.slot_grad.resize(2 * edges);
  const simd::KernelTable& kt = simd::kernels();
  const simd::EdgeGradFn fn =
      (fast_math_ && kt.edge_grad_fast != nullptr) ? kt.edge_grad_fast
                                                   : kt.edge_grad;
  simd::EdgeGradArgs args{problem().edges.data(),
                          agg.labels.data(),
                          view_->slot_of_first(),
                          view_->slot_of_second(),
                          ws.slot_grad.data(),
                          weights_.distance_exponent,
                          n1_,
                          style_ == GradientStyle::kAnalytic};
  EdgeGradBody body{&args, fn, &ws.f1_partial};
  parallel_chunks(pool_, edges, kReductionGrain, body, kEdgePassCost);
  double f1 = 0.0;
  for (std::size_t c = 0; c < edge_chunks; ++c) {
    f1 += ws.f1_partial.chunk(c)[0];
  }
  return f1 / n1_;
}

double CostModel::f1_term(const Aggregates& agg, Workspace& ws) const {
  const std::size_t edges = problem().edges.size();
  const std::size_t edge_chunks = chunk_count(edges, kReductionGrain);
  ws.f1_partial.reset(edge_chunks, 1);
  const simd::KernelTable& kt = simd::kernels();
  simd::EdgeArgs args{problem().edges.data(), agg.labels.data(),
                      weights_.distance_exponent};
  F1TermBody body{&args, kt.f1_term, &ws.f1_partial};
  parallel_chunks(pool_, edges, kReductionGrain, body, kEdgePassCost);
  double f1 = 0.0;
  for (std::size_t c = 0; c < edge_chunks; ++c) {
    f1 += ws.f1_partial.chunk(c)[0];
  }
  return f1 / n1_;
}

void CostModel::f2_f3_terms(const Aggregates& agg, CostTerms& terms) const {
  const auto k = static_cast<std::size_t>(problem().num_planes);
  const double kd = static_cast<double>(k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double db = agg.plane_bias[kk] - agg.mean_bias;
    const double da = agg.plane_area[kk] - agg.mean_area;
    terms.f2 += db * db;
    terms.f3 += da * da;
  }
  terms.f2 /= kd * n2_;
  terms.f3 /= kd * n3_;
}

CostTerms CostModel::terms_from_aggregated(Workspace& ws) const {
  assert(ws.agg_has_f4 &&
         "terms_from_aggregated requires aggregate(w, ws, /*with_f4=*/true)");
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const Aggregates& agg = ws.agg;
  CostTerms terms;

  terms.f1 = f1_term(agg, ws);
  f2_f3_terms(agg, terms);

  // F4 rode the aggregate pass: same grain, same per-chunk sums, same
  // combine order as the historical standalone pass — and W was read
  // once for the whole evaluation.
  const std::size_t gate_chunks = chunk_count(g, kReductionGrain);
  for (std::size_t c = 0; c < gate_chunks; ++c) {
    terms.f4 += ws.f4_partial.chunk(c)[0];
  }
  terms.f4 /= n4_;
  return terms;
}

CostTerms CostModel::evaluate(const Matrix& w) const {
  Workspace workspace;
  return evaluate(w, workspace);
}

CostTerms CostModel::evaluate(const Matrix& w, Workspace& ws) const {
  aggregate(w, ws, /*with_f4=*/true);
  return terms_from_aggregated(ws);
}

CostTerms CostModel::evaluate_with_gradient(const Matrix& w, Matrix& grad) const {
  Workspace workspace;
  return evaluate_with_gradient(w, grad, workspace);
}

CostTerms CostModel::evaluate_with_gradient(const Matrix& w, Matrix& grad,
                                            Workspace& ws) const {
  // The gather engine's fused fill recomputes F4 on its own pass; only
  // the scatter reference needs it from the aggregate.
  aggregate(w, ws, /*with_f4=*/engine_ == GradientEngine::kSerialScatter);
  return gradient_terms(w, grad, ws);
}

CostTerms CostModel::evaluate_with_gradient_aggregated(const Matrix& w,
                                                       Matrix& grad,
                                                       Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  assert(w.rows() == g && w.cols() == k);
  assert(ws.agg.labels.size() == g &&
         "evaluate_with_gradient_aggregated requires step_and_aggregate");
  (void)g;
  (void)k;
  if (engine_ == GradientEngine::kSerialScatter && !ws.agg_has_f4) {
    // The reference engine wants the aggregate-borne F4 partials;
    // re-running the aggregate keeps it exactly on its historical path.
    aggregate(w, ws, /*with_f4=*/true);
  }
  return gradient_terms(w, grad, ws);
}

CostTerms CostModel::gradient_terms(const Matrix& w, Matrix& grad,
                                    Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  if (grad.rows() != g || grad.cols() != k) grad = Matrix(g, k);

  if (engine_ == GradientEngine::kSerialScatter) {
    const CostTerms terms = terms_from_aggregated(ws);
    scatter_gradient_pass(w, grad, ws);
    return terms;
  }

  CostTerms terms;
  terms.f1 = f1_and_slot_grad(ws.agg, ws);
  f2_f3_terms(ws.agg, terms);
  // The F4 term rides the fused gather/fill pass below: same grain, same
  // per-chunk sums, same combine order as terms_from_aggregated, so
  // evaluate() and evaluate_with_gradient() report bit-identical terms.
  fused_gradient_pass(w, grad, ws, terms);
  return terms;
}

void CostModel::fused_gradient_pass(const Matrix& w, Matrix& grad,
                                    Workspace& ws, CostTerms& terms) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  const double kd = static_cast<double>(k);
  const std::size_t stride = w.stride();
  const Aggregates& agg = ws.agg;

  // The per-plane deviations are row-invariant; computing them once per
  // call (the identical subtraction, just cached) saves 2K flops per
  // gate. Padded to the row stride with zeros so the vector tiers load
  // whole registers.
  ws.plane_diff.assign(2 * stride, 0.0);
  for (std::size_t kk = 0; kk < k; ++kk) {
    ws.plane_diff[kk] = agg.plane_bias[kk] - agg.mean_bias;
    ws.plane_diff[stride + kk] = agg.plane_area[kk] - agg.mean_area;
  }
  const std::size_t gate_chunks = chunk_count(g, kReductionGrain);
  ws.f4_partial.reset(gate_chunks, 1);
  const simd::KernelTable& kt = simd::kernels();
  const simd::FusedGateFn fn =
      (fast_math_ && kt.fused_gate_fast != nullptr) ? kt.fused_gate_fast
                                                    : kt.fused_gate;
  simd::FusedGateArgs args{w.flat().data(),
                           grad.flat().data(),
                           stride,
                           k,
                           agg.row_mean.data(),
                           problem().bias.data(),
                           problem().area.data(),
                           ws.plane_diff.data(),
                           ws.plane_diff.data() + stride,
                           ws.slot_grad.data(),
                           view_->offsets(),
                           weights_.c1,
                           weights_.c2 * (2.0 / (kd * n2_)),
                           weights_.c3 * (2.0 / (kd * n3_)),
                           weights_.c4 * (2.0 / n4_),
                           style_ == GradientStyle::kAnalytic};
  FusedGateBody body{&args, fn, &ws.f4_partial};
  parallel_chunks(pool_, g, kReductionGrain, body, gate_pass_cost(k));
  for (std::size_t c = 0; c < gate_chunks; ++c) {
    terms.f4 += ws.f4_partial.chunk(c)[0];
  }
  terms.f4 /= n4_;
}

// The pre-CSR reference path: a serial per-edge scatter into dlabel, then
// a separate parallel fill pass. Kept only for A/B regression coverage.
void CostModel::scatter_gradient_pass(const Matrix& w, Matrix& grad,
                                      Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  const int p = weights_.distance_exponent;
  const Aggregates& agg = ws.agg;

  // F1: dF1/dl_i accumulated per gate, then dl_i/dw_{i,k} = (k+1).
  ws.dlabel.assign(g, 0.0);
  for (const auto& [a, b] : problem().edges) {
    const auto ua = static_cast<std::size_t>(a);
    const auto ub = static_cast<std::size_t>(b);
    const double delta = agg.labels[ua] - agg.labels[ub];
    const double magnitude = p * ipow(std::abs(delta), p - 1) / n1_;
    if (style_ == GradientStyle::kAnalytic) {
      const double signed_term = delta >= 0.0 ? magnitude : -magnitude;
      ws.dlabel[ua] += signed_term;
      ws.dlabel[ub] -= signed_term;
    } else {
      ws.dlabel[ua] += magnitude;
      ws.dlabel[ub] -= magnitude;
    }
  }

  ScatterFillKernel kernel{&w,
                           &grad,
                           ws.dlabel.data(),
                           agg.row_mean.data(),
                           agg.plane_bias.data(),
                           agg.plane_area.data(),
                           agg.mean_bias,
                           agg.mean_area,
                           problem().bias.data(),
                           problem().area.data(),
                           k,
                           weights_,
                           n2_,
                           n3_,
                           n4_,
                           style_ == GradientStyle::kAnalytic};
  parallel_chunks(pool_, g, kReductionGrain, kernel, gate_pass_cost(k));
}

CostTerms CostModel::evaluate_discrete(const std::vector<int>& labels) const {
  return evaluate(one_hot(labels, problem().num_planes));
}

}  // namespace sfqpart
