#include "core/cost_model.h"

#include <cassert>
#include <cmath>

#include "core/soft_assign.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

double ipow(double base, int exponent) {
  // Negative exponents would silently evaluate to 1.0 and zero F1's
  // contribution; the Solver facade rejects them with a Status before any
  // CostModel exists, direct users fail here.
  assert(exponent >= 0 && "ipow: negative exponents are not supported");
  double result = 1.0;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}

// ipow with the small exponents unrolled for the hot edge pass. Every
// branch reproduces ipow's left-to-right multiply chain exactly
// (1.0 * b == b in IEEE), so the bits never depend on which is called.
inline double pow_chain(double base, int exponent) {
  switch (exponent) {
    case 0: return 1.0;
    case 1: return base;
    case 2: return base * base;
    case 3: return (base * base) * base;
    default: return ipow(base, exponent);
  }
}

// Chunk size of the parallel reductions. The boundaries depend only on the
// problem size, so per-chunk partials combined in chunk order give the
// same floating-point result at every thread count (see thread_pool.h).
// Sized so the paper-suite unit circuits stay single-chunk and only the
// thousands-of-gates benches actually split.
constexpr std::size_t kReductionGrain = 1024;

// Per-item cost hints for the executor's adaptive serial threshold
// (thread_pool.h): rough nanoseconds of kernel work per gate/edge, so
// passes too small to amortize a region open run inline instead.
double gate_pass_cost(std::size_t k) { return 3.0 * static_cast<double>(k); }
constexpr double kEdgePassCost = 10.0;

// The parallel kernels, hoisted out of the member functions as plain
// structs of raw pointers: one instance per pass, built on the stack and
// handed to parallel_chunks by address — never copied, never allocated.

// aggregate(): per-gate soft labels and row means (element-wise) plus the
// per-plane bias/area sums as per-chunk partial rows.
struct AggregateKernel {
  const Matrix* w;
  const double* bias;
  const double* area;
  double* labels;
  double* row_mean;
  ChunkSlab* partials;  // per-chunk rows: [bias[0..K); area[0..K)]
  std::size_t k;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    double* bias_out = partials->chunk(chunk);
    double* area_out = bias_out + k;
    for (std::size_t i = begin; i < end; ++i) {
      const auto row = w->row(i);
      // Hoisted: the compiler cannot prove bias_out/area_out do not alias
      // the problem arrays, so without locals it reloads them every kk.
      const double bias_i = bias[i];
      const double area_i = area[i];
      double label = 0.0;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double value = row[kk];
        label += static_cast<double>(kk + 1) * value;  // plane values 1..K
        sum += value;
        bias_out[kk] += bias_i * value;
        area_out[kk] += area_i * value;
      }
      labels[i] = label;
      row_mean[i] = sum / static_cast<double>(k);
    }
  }
};

// f1_term(): the F1 edge sum as per-chunk partials.
struct F1TermKernel {
  const std::pair<int, int>* edges;
  const double* labels;
  ChunkSlab* partials;  // one F1 partial per chunk
  int exponent;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    double sum = 0.0;
    for (std::size_t e = begin; e < end; ++e) {
      const auto& [a, b] = edges[e];
      const double delta = std::abs(labels[static_cast<std::size_t>(a)] -
                                    labels[static_cast<std::size_t>(b)]);
      sum += ipow(delta, exponent);
    }
    partials->chunk(chunk)[0] = sum;
  }
};

// f1_and_slot_grad(): the F1 term and both signed per-endpoint gradient
// contributions of every edge, one power chain per edge. Bit-identity
// bookkeeping:
//  - `chain * ad` extends pow_chain(ad, p-1)'s multiply sequence by one
//    factor, which IS ipow(ad, p)'s sequence, so the F1 chunk partials
//    match F1TermKernel exactly (same grain, same combine order).
//  - The first endpoint's slot takes the scatter's `+= signed_term` value
//    and the second takes `-signed_term` (IEEE negation is exact), so
//    summing a gate's slots in ascending edge order replays the exact
//    additions the scatter applied to dlabel[i].
struct EdgeGradientKernel {
  const std::pair<int, int>* edges;
  const double* labels;
  const std::uint32_t* slot_of_first;
  const std::uint32_t* slot_of_second;
  double* slot_grad;
  ChunkSlab* partials;  // one F1 partial per chunk
  int exponent;
  double n1;
  bool analytic;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    double sum = 0.0;
    for (std::size_t e = begin; e < end; ++e) {
      const auto& [a, b] = edges[e];
      const double delta = labels[static_cast<std::size_t>(a)] -
                           labels[static_cast<std::size_t>(b)];
      const double ad = std::abs(delta);
      const double chain = pow_chain(ad, exponent - 1);
      sum += chain * ad;
      const double magnitude = exponent * chain / n1;
      const double first =
          analytic ? (delta >= 0.0 ? magnitude : -magnitude)
                   : magnitude;  // eq. 10 as printed: unsigned, +first/-second
      slot_grad[slot_of_first[e]] = first;
      slot_grad[slot_of_second[e]] = -first;
    }
    partials->chunk(chunk)[0] = sum;
  }
};

// terms_from(): the F4 constraint sum as per-chunk partials.
struct F4TermKernel {
  const Matrix* w;
  const double* row_mean;
  ChunkSlab* partials;  // one F4 partial per chunk
  std::size_t k;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    const double kd = static_cast<double>(k);
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double mean = row_mean[i];
      const double sum_term = kd * mean - 1.0;
      double variance = 0.0;
      const auto row = w->row(i);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double dev = row[kk] - mean;
        variance += dev * dev;
      }
      sum += sum_term * sum_term - variance / kd;
    }
    partials->chunk(chunk)[0] = sum;
  }
};

// fused_gradient_pass(): one pass over W doing all the per-gate work — the
// gather of dF1/dl_i from the slot values the edge pass precomputed, the
// F4 term partial, and the gradient row fill for every term. Everything a
// chunk writes is either element-wise (gradient rows) or a chunk-indexed
// partial combined in ascending chunk order, so the result is
// bit-identical at any thread count. A gate's slots sit in ascending edge
// order — the exact addition sequence the reference scatter applies to
// dlabel[i] — which keeps the two engines bit-identical too. The hoisted
// coefficient products keep the scatter fill's left-to-right association,
// so hoisting cannot change a bit either.
struct FusedGradientKernel {
  const Matrix* w;
  Matrix* grad;
  const double* row_mean;
  const double* bias;
  const double* area;
  const double* bias_diff;
  const double* area_diff;
  const double* slot_grad;
  const std::uint32_t* inc_offsets;
  ChunkSlab* partials;  // one F4 partial per chunk
  std::size_t k;
  double c1;
  double bias_coef;
  double area_coef;
  double c4_coef;
  bool analytic;

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    const double kd = static_cast<double>(k);
    double f4_sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      double dlabel = 0.0;
      for (std::uint32_t inc = inc_offsets[i]; inc < inc_offsets[i + 1];
           ++inc) {
        dlabel += slot_grad[inc];
      }

      const auto grow = grad->row(i);
      const auto wrow = w->row(i);
      const double mean = row_mean[i];
      const double c1_dlabel = c1 * dlabel;
      const double bias_i = bias_coef * bias[i];
      const double area_i = area_coef * area[i];
      const double sum_term = kd * mean - 1.0;
      double variance = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        double value = c1_dlabel * static_cast<double>(kk + 1);
        value += bias_i * bias_diff[kk];
        value += area_i * area_diff[kk];
        const double dev = wrow[kk] - mean;
        if (analytic) {
          value += c4_coef * (sum_term - dev / kd);
        } else {
          value += c4_coef * ((kd + 1.0 / kd) * (mean - wrow[kk]) + kd - 1.0);
        }
        grow[kk] = value;
        variance += dev * dev;
      }
      f4_sum += sum_term * sum_term - variance / kd;
    }
    partials->chunk(chunk)[0] = f4_sum;
  }
};

// scatter_gradient_pass(): the reference engine's element-wise fill. Each
// gate's gradient row is independent; no reduction, so running the chunks
// on the pool cannot change any value.
struct ScatterFillKernel {
  const Matrix* w;
  Matrix* grad;
  const double* dlabel;
  const double* row_mean;
  const double* plane_bias;
  const double* plane_area;
  double mean_bias;
  double mean_area;
  const double* bias;
  const double* area;
  std::size_t k;
  CostWeights weights;
  double n2;
  double n3;
  double n4;
  bool analytic;

  void operator()(std::size_t, std::size_t begin, std::size_t end) const {
    const double kd = static_cast<double>(k);
    const double bias_coef = 2.0 / (kd * n2);
    const double area_coef = 2.0 / (kd * n3);
    for (std::size_t i = begin; i < end; ++i) {
      const auto grow = grad->row(i);
      const double mean = row_mean[i];
      for (std::size_t kk = 0; kk < k; ++kk) {
        double value = weights.c1 * dlabel[i] * static_cast<double>(kk + 1);
        value += weights.c2 * bias_coef * bias[i] *
                 (plane_bias[kk] - mean_bias);
        value += weights.c3 * area_coef * area[i] *
                 (plane_area[kk] - mean_area);
        if (analytic) {
          value += weights.c4 * (2.0 / n4) *
                   ((kd * mean - 1.0) - ((*w)(i, kk) - mean) / kd);
        } else {
          value += weights.c4 * (2.0 / n4) *
                   ((kd + 1.0 / kd) * (mean - (*w)(i, kk)) + kd - 1.0);
        }
        grow[kk] = value;
      }
    }
  }
};

}  // namespace

PartitionProblem PartitionProblem::from_netlist(const Netlist& netlist, int num_planes) {
  assert(num_planes >= 2);
  PartitionProblem problem;
  problem.num_planes = num_planes;

  std::vector<int> compact(static_cast<std::size_t>(netlist.num_gates()), -1);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    compact[static_cast<std::size_t>(g)] = problem.num_gates++;
    problem.gate_ids.push_back(g);
    problem.bias.push_back(netlist.bias_of(g));
    problem.area.push_back(netlist.area_of(g));
  }
  for (const Connection& edge : netlist.unique_edges()) {
    problem.edges.emplace_back(compact[static_cast<std::size_t>(edge.from)],
                               compact[static_cast<std::size_t>(edge.to)]);
  }
  return problem;
}

Partition PartitionProblem::to_partition(const std::vector<int>& labels,
                                         int netlist_num_gates) const {
  assert(static_cast<int>(labels.size()) == num_gates);
  Partition partition;
  partition.num_planes = num_planes;
  partition.plane_of.assign(static_cast<std::size_t>(netlist_num_gates),
                            kUnassignedPlane);
  for (int i = 0; i < num_gates; ++i) {
    partition.plane_of[static_cast<std::size_t>(gate_ids[static_cast<std::size_t>(i)])] =
        labels[static_cast<std::size_t>(i)];
  }
  return partition;
}

CostModel::CostModel(const PartitionProblem& problem, const CostWeights& weights,
                     GradientStyle style)
    : owned_view_(std::make_unique<ProblemView>(problem)),
      view_(owned_view_.get()),
      weights_(weights),
      style_(style) {
  init(weights);
}

CostModel::CostModel(const ProblemView& view, const CostWeights& weights,
                     GradientStyle style)
    : view_(&view), weights_(weights), style_(style) {
  init(weights);
}

void CostModel::init(const CostWeights& weights) {
  const PartitionProblem& problem = view_->problem();
  const int k = problem.num_planes;
  const int g = problem.num_gates;
  assert(k >= 2);
  assert(weights.distance_exponent >= 1 &&
         "distance_exponent must be >= 1 (the Solver facade validates this)");
  // N1 = |E| (K-1)^p; N2 = (K-1) Bbar^2 with the ideal Bbar = B_cir / K;
  // N3 analogous; N4 = G (K-1)^2. Degenerate problems (no edges, zero
  // bias) fall back to 1 to keep the terms finite.
  const double k1 = static_cast<double>(k - 1);
  double total_bias = 0.0;
  double total_area = 0.0;
  for (const double b : problem.bias) total_bias += b;
  for (const double a : problem.area) total_area += a;
  const double mean_bias = total_bias / k;
  const double mean_area = total_area / k;
  n1_ = static_cast<double>(problem.edges.size()) * ipow(k1, weights.distance_exponent);
  n2_ = k1 * mean_bias * mean_bias;
  n3_ = k1 * mean_area * mean_area;
  n4_ = static_cast<double>(g) * k1 * k1;
  if (n1_ <= 0.0) n1_ = 1.0;
  if (n2_ <= 0.0) n2_ = 1.0;
  if (n3_ <= 0.0) n3_ = 1.0;
  if (n4_ <= 0.0) n4_ = 1.0;
  // The CSR incidence adjacency lives in the shared ProblemView
  // (core/problem_view.h): the edge pass writes each edge's two signed
  // contributions into its view slots, and the gather just sums a gate's
  // slot range in ascending edge order.
}

void CostModel::aggregate(const Matrix& w, Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  assert(w.rows() == g && w.cols() == k);

  Aggregates& agg = ws.agg;
  // labels and row_mean are unconditionally overwritten for every gate
  // below, so resize (a no-op on a warm workspace) instead of paying an
  // assign's zero-fill on the hot path.
  agg.labels.resize(g);
  agg.row_mean.resize(g);
  agg.plane_bias.assign(k, 0.0);
  agg.plane_area.assign(k, 0.0);
  agg.mean_bias = 0.0;
  agg.mean_area = 0.0;

  // Per-chunk B/A partial rows, combined in chunk order below; labels and
  // row_mean are element-wise and need no combine step.
  const std::size_t chunks = chunk_count(g, kReductionGrain);
  ws.bias_area_partial.reset(chunks, 2 * k);
  AggregateKernel kernel{&w,
                         problem().bias.data(),
                         problem().area.data(),
                         agg.labels.data(),
                         agg.row_mean.data(),
                         &ws.bias_area_partial,
                         k};
  parallel_chunks(pool_, g, kReductionGrain, kernel, gate_pass_cost(k));
  for (std::size_t c = 0; c < chunks; ++c) {
    const double* bias_row = ws.bias_area_partial.chunk(c);
    const double* area_row = bias_row + k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      agg.plane_bias[kk] += bias_row[kk];
      agg.plane_area[kk] += area_row[kk];
    }
  }
  for (const double b : agg.plane_bias) agg.mean_bias += b;
  for (const double a : agg.plane_area) agg.mean_area += a;
  agg.mean_bias /= static_cast<double>(k);
  agg.mean_area /= static_cast<double>(k);
}

double CostModel::f1_and_slot_grad(const Aggregates& agg, Workspace& ws) const {
  const std::size_t edges = problem().edges.size();
  const std::size_t edge_chunks = chunk_count(edges, kReductionGrain);
  ws.f1_partial.reset(edge_chunks, 1);
  ws.slot_grad.resize(2 * edges);
  EdgeGradientKernel kernel{problem().edges.data(),
                            agg.labels.data(),
                            view_->slot_of_first(),
                            view_->slot_of_second(),
                            ws.slot_grad.data(),
                            &ws.f1_partial,
                            weights_.distance_exponent,
                            n1_,
                            style_ == GradientStyle::kAnalytic};
  parallel_chunks(pool_, edges, kReductionGrain, kernel, kEdgePassCost);
  double f1 = 0.0;
  for (std::size_t c = 0; c < edge_chunks; ++c) {
    f1 += ws.f1_partial.chunk(c)[0];
  }
  return f1 / n1_;
}

double CostModel::f1_term(const Aggregates& agg, Workspace& ws) const {
  const std::size_t edges = problem().edges.size();
  const std::size_t edge_chunks = chunk_count(edges, kReductionGrain);
  ws.f1_partial.reset(edge_chunks, 1);
  F1TermKernel kernel{problem().edges.data(), agg.labels.data(),
                      &ws.f1_partial, weights_.distance_exponent};
  parallel_chunks(pool_, edges, kReductionGrain, kernel, kEdgePassCost);
  double f1 = 0.0;
  for (std::size_t c = 0; c < edge_chunks; ++c) {
    f1 += ws.f1_partial.chunk(c)[0];
  }
  return f1 / n1_;
}

void CostModel::f2_f3_terms(const Aggregates& agg, CostTerms& terms) const {
  const auto k = static_cast<std::size_t>(problem().num_planes);
  const double kd = static_cast<double>(k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double db = agg.plane_bias[kk] - agg.mean_bias;
    const double da = agg.plane_area[kk] - agg.mean_area;
    terms.f2 += db * db;
    terms.f3 += da * da;
  }
  terms.f2 /= kd * n2_;
  terms.f3 /= kd * n3_;
}

CostTerms CostModel::terms_from(const Matrix& w, Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  const Aggregates& agg = ws.agg;
  CostTerms terms;

  terms.f1 = f1_term(agg, ws);
  f2_f3_terms(agg, terms);

  const std::size_t gate_chunks = chunk_count(g, kReductionGrain);
  ws.f4_partial.reset(gate_chunks, 1);
  F4TermKernel kernel{&w, agg.row_mean.data(), &ws.f4_partial, k};
  parallel_chunks(pool_, g, kReductionGrain, kernel, gate_pass_cost(k));
  for (std::size_t c = 0; c < gate_chunks; ++c) {
    terms.f4 += ws.f4_partial.chunk(c)[0];
  }
  terms.f4 /= n4_;
  return terms;
}

CostTerms CostModel::evaluate(const Matrix& w) const {
  Workspace workspace;
  return evaluate(w, workspace);
}

CostTerms CostModel::evaluate(const Matrix& w, Workspace& ws) const {
  aggregate(w, ws);
  return terms_from(w, ws);
}

CostTerms CostModel::evaluate_with_gradient(const Matrix& w, Matrix& grad) const {
  Workspace workspace;
  return evaluate_with_gradient(w, grad, workspace);
}

CostTerms CostModel::evaluate_with_gradient(const Matrix& w, Matrix& grad,
                                            Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);

  aggregate(w, ws);
  if (grad.rows() != g || grad.cols() != k) grad = Matrix(g, k);

  if (engine_ == GradientEngine::kSerialScatter) {
    const CostTerms terms = terms_from(w, ws);
    scatter_gradient_pass(w, grad, ws);
    return terms;
  }

  CostTerms terms;
  terms.f1 = f1_and_slot_grad(ws.agg, ws);
  f2_f3_terms(ws.agg, terms);
  // The F4 term rides the fused gather/fill pass below: same grain, same
  // per-chunk sums, same combine order as terms_from, so evaluate() and
  // evaluate_with_gradient() report bit-identical terms.
  fused_gradient_pass(w, grad, ws, terms);
  return terms;
}

void CostModel::fused_gradient_pass(const Matrix& w, Matrix& grad,
                                    Workspace& ws, CostTerms& terms) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  const double kd = static_cast<double>(k);
  const Aggregates& agg = ws.agg;

  // The per-plane deviations are row-invariant; computing them once per
  // call (the identical subtraction, just cached) saves 2K flops per gate.
  ws.plane_diff.assign(2 * k, 0.0);
  for (std::size_t kk = 0; kk < k; ++kk) {
    ws.plane_diff[kk] = agg.plane_bias[kk] - agg.mean_bias;
    ws.plane_diff[k + kk] = agg.plane_area[kk] - agg.mean_area;
  }
  const std::size_t gate_chunks = chunk_count(g, kReductionGrain);
  ws.f4_partial.reset(gate_chunks, 1);
  FusedGradientKernel kernel{&w,
                             &grad,
                             agg.row_mean.data(),
                             problem().bias.data(),
                             problem().area.data(),
                             ws.plane_diff.data(),
                             ws.plane_diff.data() + k,
                             ws.slot_grad.data(),
                             view_->offsets(),
                             &ws.f4_partial,
                             k,
                             weights_.c1,
                             weights_.c2 * (2.0 / (kd * n2_)),
                             weights_.c3 * (2.0 / (kd * n3_)),
                             weights_.c4 * (2.0 / n4_),
                             style_ == GradientStyle::kAnalytic};
  parallel_chunks(pool_, g, kReductionGrain, kernel, gate_pass_cost(k));
  for (std::size_t c = 0; c < gate_chunks; ++c) {
    terms.f4 += ws.f4_partial.chunk(c)[0];
  }
  terms.f4 /= n4_;
}

// The pre-CSR reference path: a serial per-edge scatter into dlabel, then
// a separate parallel fill pass. Kept only for A/B regression coverage.
void CostModel::scatter_gradient_pass(const Matrix& w, Matrix& grad,
                                      Workspace& ws) const {
  const auto g = static_cast<std::size_t>(problem().num_gates);
  const auto k = static_cast<std::size_t>(problem().num_planes);
  const int p = weights_.distance_exponent;
  const Aggregates& agg = ws.agg;

  // F1: dF1/dl_i accumulated per gate, then dl_i/dw_{i,k} = (k+1).
  ws.dlabel.assign(g, 0.0);
  for (const auto& [a, b] : problem().edges) {
    const auto ua = static_cast<std::size_t>(a);
    const auto ub = static_cast<std::size_t>(b);
    const double delta = agg.labels[ua] - agg.labels[ub];
    const double magnitude = p * ipow(std::abs(delta), p - 1) / n1_;
    if (style_ == GradientStyle::kAnalytic) {
      const double signed_term = delta >= 0.0 ? magnitude : -magnitude;
      ws.dlabel[ua] += signed_term;
      ws.dlabel[ub] -= signed_term;
    } else {
      ws.dlabel[ua] += magnitude;
      ws.dlabel[ub] -= magnitude;
    }
  }

  ScatterFillKernel kernel{&w,
                           &grad,
                           ws.dlabel.data(),
                           agg.row_mean.data(),
                           agg.plane_bias.data(),
                           agg.plane_area.data(),
                           agg.mean_bias,
                           agg.mean_area,
                           problem().bias.data(),
                           problem().area.data(),
                           k,
                           weights_,
                           n2_,
                           n3_,
                           n4_,
                           style_ == GradientStyle::kAnalytic};
  parallel_chunks(pool_, g, kReductionGrain, kernel, gate_pass_cost(k));
}

CostTerms CostModel::evaluate_discrete(const std::vector<int>& labels) const {
  return evaluate(one_hot(labels, problem().num_planes));
}

}  // namespace sfqpart
