#include "core/cost_model.h"

#include <cassert>
#include <cmath>

#include "core/soft_assign.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

double ipow(double base, int exponent) {
  double result = 1.0;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}

// Chunk size of the parallel reductions. The boundaries depend only on the
// problem size, so per-chunk partials combined in chunk order give the
// same floating-point result at every thread count (see thread_pool.h).
// Sized so the paper-suite unit circuits stay single-chunk and only the
// thousands-of-gates benches actually split.
constexpr std::size_t kReductionGrain = 1024;

}  // namespace

PartitionProblem PartitionProblem::from_netlist(const Netlist& netlist, int num_planes) {
  assert(num_planes >= 2);
  PartitionProblem problem;
  problem.num_planes = num_planes;

  std::vector<int> compact(static_cast<std::size_t>(netlist.num_gates()), -1);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    compact[static_cast<std::size_t>(g)] = problem.num_gates++;
    problem.gate_ids.push_back(g);
    problem.bias.push_back(netlist.bias_of(g));
    problem.area.push_back(netlist.area_of(g));
  }
  for (const Connection& edge : netlist.unique_edges()) {
    problem.edges.emplace_back(compact[static_cast<std::size_t>(edge.from)],
                               compact[static_cast<std::size_t>(edge.to)]);
  }
  return problem;
}

Partition PartitionProblem::to_partition(const std::vector<int>& labels,
                                         int netlist_num_gates) const {
  assert(static_cast<int>(labels.size()) == num_gates);
  Partition partition;
  partition.num_planes = num_planes;
  partition.plane_of.assign(static_cast<std::size_t>(netlist_num_gates),
                            kUnassignedPlane);
  for (int i = 0; i < num_gates; ++i) {
    partition.plane_of[static_cast<std::size_t>(gate_ids[static_cast<std::size_t>(i)])] =
        labels[static_cast<std::size_t>(i)];
  }
  return partition;
}

CostModel::CostModel(const PartitionProblem& problem, const CostWeights& weights,
                     GradientStyle style)
    : problem_(&problem), weights_(weights), style_(style) {
  const int k = problem.num_planes;
  const int g = problem.num_gates;
  assert(k >= 2);
  // N1 = |E| (K-1)^p; N2 = (K-1) Bbar^2 with the ideal Bbar = B_cir / K;
  // N3 analogous; N4 = G (K-1)^2. Degenerate problems (no edges, zero
  // bias) fall back to 1 to keep the terms finite.
  const double k1 = static_cast<double>(k - 1);
  double total_bias = 0.0;
  double total_area = 0.0;
  for (const double b : problem.bias) total_bias += b;
  for (const double a : problem.area) total_area += a;
  const double mean_bias = total_bias / k;
  const double mean_area = total_area / k;
  n1_ = static_cast<double>(problem.edges.size()) * ipow(k1, weights.distance_exponent);
  n2_ = k1 * mean_bias * mean_bias;
  n3_ = k1 * mean_area * mean_area;
  n4_ = static_cast<double>(g) * k1 * k1;
  if (n1_ <= 0.0) n1_ = 1.0;
  if (n2_ <= 0.0) n2_ = 1.0;
  if (n3_ <= 0.0) n3_ = 1.0;
  if (n4_ <= 0.0) n4_ = 1.0;
}

CostModel::Aggregates CostModel::aggregate(const Matrix& w) const {
  const auto g = static_cast<std::size_t>(problem_->num_gates);
  const auto k = static_cast<std::size_t>(problem_->num_planes);
  assert(w.rows() == g && w.cols() == k);

  Aggregates agg;
  agg.labels.assign(g, 0.0);
  agg.plane_bias.assign(k, 0.0);
  agg.plane_area.assign(k, 0.0);
  agg.row_mean.assign(g, 0.0);

  // Per-chunk B/A partials, combined in chunk order below; labels and
  // row_mean are element-wise and need no combine step.
  const std::size_t chunks = chunk_count(g, kReductionGrain);
  std::vector<double> bias_partial(chunks * k, 0.0);
  std::vector<double> area_partial(chunks * k, 0.0);
  parallel_chunks(pool_, g, kReductionGrain,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    double* bias_out = bias_partial.data() + chunk * k;
    double* area_out = area_partial.data() + chunk * k;
    for (std::size_t i = begin; i < end; ++i) {
      const auto row = w.row(i);
      double label = 0.0;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double value = row[kk];
        label += static_cast<double>(kk + 1) * value;  // plane values 1..K
        sum += value;
        bias_out[kk] += problem_->bias[i] * value;
        area_out[kk] += problem_->area[i] * value;
      }
      agg.labels[i] = label;
      agg.row_mean[i] = sum / static_cast<double>(k);
    }
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      agg.plane_bias[kk] += bias_partial[c * k + kk];
      agg.plane_area[kk] += area_partial[c * k + kk];
    }
  }
  for (const double b : agg.plane_bias) agg.mean_bias += b;
  for (const double a : agg.plane_area) agg.mean_area += a;
  agg.mean_bias /= static_cast<double>(k);
  agg.mean_area /= static_cast<double>(k);
  return agg;
}

CostTerms CostModel::terms_from(const Matrix& w, const Aggregates& agg) const {
  const auto g = static_cast<std::size_t>(problem_->num_gates);
  const auto k = static_cast<std::size_t>(problem_->num_planes);
  const double kd = static_cast<double>(k);
  CostTerms terms;

  const std::size_t edge_chunks =
      chunk_count(problem_->edges.size(), kReductionGrain);
  std::vector<double> f1_partial(edge_chunks, 0.0);
  parallel_chunks(pool_, problem_->edges.size(), kReductionGrain,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    double sum = 0.0;
    for (std::size_t e = begin; e < end; ++e) {
      const auto& [a, b] = problem_->edges[e];
      const double delta = std::abs(agg.labels[static_cast<std::size_t>(a)] -
                                    agg.labels[static_cast<std::size_t>(b)]);
      sum += ipow(delta, weights_.distance_exponent);
    }
    f1_partial[chunk] = sum;
  });
  for (const double sum : f1_partial) terms.f1 += sum;
  terms.f1 /= n1_;

  for (std::size_t kk = 0; kk < k; ++kk) {
    const double db = agg.plane_bias[kk] - agg.mean_bias;
    const double da = agg.plane_area[kk] - agg.mean_area;
    terms.f2 += db * db;
    terms.f3 += da * da;
  }
  terms.f2 /= kd * n2_;
  terms.f3 /= kd * n3_;

  const std::size_t gate_chunks = chunk_count(g, kReductionGrain);
  std::vector<double> f4_partial(gate_chunks, 0.0);
  parallel_chunks(pool_, g, kReductionGrain,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double mean = agg.row_mean[i];
      const double sum_term = kd * mean - 1.0;
      double variance = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double dev = w(i, kk) - mean;
        variance += dev * dev;
      }
      sum += sum_term * sum_term - variance / kd;
    }
    f4_partial[chunk] = sum;
  });
  for (const double sum : f4_partial) terms.f4 += sum;
  terms.f4 /= n4_;
  return terms;
}

CostTerms CostModel::evaluate(const Matrix& w) const {
  return terms_from(w, aggregate(w));
}

CostTerms CostModel::evaluate_with_gradient(const Matrix& w, Matrix& grad) const {
  const auto g = static_cast<std::size_t>(problem_->num_gates);
  const auto k = static_cast<std::size_t>(problem_->num_planes);
  const double kd = static_cast<double>(k);
  const int p = weights_.distance_exponent;

  const Aggregates agg = aggregate(w);
  const CostTerms terms = terms_from(w, agg);

  if (grad.rows() != g || grad.cols() != k) {
    grad = Matrix(g, k);
  } else {
    grad.fill(0.0);
  }

  // F1: dF1/dl_i accumulated per gate, then dl_i/dw_{i,k} = (k+1).
  std::vector<double> dlabel(g, 0.0);
  for (const auto& [a, b] : problem_->edges) {
    const auto ua = static_cast<std::size_t>(a);
    const auto ub = static_cast<std::size_t>(b);
    const double delta = agg.labels[ua] - agg.labels[ub];
    const double magnitude = p * ipow(std::abs(delta), p - 1) / n1_;
    if (style_ == GradientStyle::kAnalytic) {
      const double signed_term = delta >= 0.0 ? magnitude : -magnitude;
      dlabel[ua] += signed_term;
      dlabel[ub] -= signed_term;
    } else {
      // Equation 10 as printed: first-endpoint sum minus second-endpoint
      // sum of unsigned |l_i1 - l_i2|^3 terms.
      dlabel[ua] += magnitude;
      dlabel[ub] -= magnitude;
    }
  }

  const double bias_coef = 2.0 / (kd * n2_);
  const double area_coef = 2.0 / (kd * n3_);
  // Each gate's gradient row is independent; no reduction, so running the
  // chunks on the pool cannot change any value.
  parallel_chunks(pool_, g, kReductionGrain,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto grow = grad.row(i);
      const double mean = agg.row_mean[i];
      for (std::size_t kk = 0; kk < k; ++kk) {
        double value = weights_.c1 * dlabel[i] * static_cast<double>(kk + 1);
        value += weights_.c2 * bias_coef * problem_->bias[i] *
                 (agg.plane_bias[kk] - agg.mean_bias);
        value += weights_.c3 * area_coef * problem_->area[i] *
                 (agg.plane_area[kk] - agg.mean_area);
        if (style_ == GradientStyle::kAnalytic) {
          value += weights_.c4 * (2.0 / n4_) *
                   ((kd * mean - 1.0) - (w(i, kk) - mean) / kd);
        } else {
          value += weights_.c4 * (2.0 / n4_) *
                   ((kd + 1.0 / kd) * (mean - w(i, kk)) + kd - 1.0);
        }
        grow[kk] += value;
      }
    }
  });
  return terms;
}

CostTerms CostModel::evaluate_discrete(const std::vector<int>& labels) const {
  return evaluate(one_hot(labels, problem_->num_planes));
}

}  // namespace sfqpart
