// "exact" engine: exhaustive branch-and-bound over the K^G label space,
// scored by the certifier's independent re-derivation (core/certify.h) —
// deliberately not by CostModel, so the optimum it proves is an
// *external* reference against which every heuristic engine's optimality
// gap is measured. Guarded by max_gates (default 20): the instance must
// be small enough that exhaustive search is meaningful at all.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/certify.h"
#include "core/engine_adapter.h"
#include "util/strings.h"

namespace sfqpart::engine_detail {

namespace {

// |d|^p by repeated multiplication, mirroring the certifier's scoring so
// the incremental bound and the leaf score agree exactly.
double dist_pow(double d, int p) {
  double magnitude = std::abs(d);
  double result = 1.0;
  for (int i = 0; i < p; ++i) result *= magnitude;
  return result;
}

struct SearchStats {
  long long nodes_explored = 0;
  long long leaves_evaluated = 0;
  long long pruned = 0;
};

class ExactAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "exact"; }
  const char* description() const override {
    return "exhaustive branch-and-bound over all K^G labelings, scored by "
           "the independent certifier (proves the optimum; gated by "
           "max_gates)";
  }
  std::vector<OptionSpec> describe_options() const override {
    std::vector<OptionSpec> specs = {planes_spec(), max_gates_spec(),
                                     certify_spec()};
    for (OptionSpec& spec : weight_specs()) specs.push_back(std::move(spec));
    return specs;
  }

 protected:
  bool self_observing() const override { return false; }

  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    const CertifiedInstance inst =
        build_certified_instance(netlist, context.num_planes, context.weights);
    const int num_gates = inst.num_gates();
    const int num_planes = context.num_planes;
    if (num_gates > context.max_gates) {
      return Status::invalid_argument(str_format(
          "engine 'exact': %d partitionable gates exceed max_gates=%d; the "
          "exhaustive search is only meaningful on small instances (raise "
          "max_gates deliberately or use a heuristic engine)",
          num_gates, context.max_gates));
    }

    // Compact adjacency for the incremental F1 bound.
    std::vector<std::vector<int>> neighbors(
        static_cast<std::size_t>(num_gates));
    for (const auto& [u, v] : inst.edges) {
      neighbors[static_cast<std::size_t>(u)].push_back(v);
      neighbors[static_cast<std::size_t>(v)].push_back(u);
    }

    std::vector<int> labels(static_cast<std::size_t>(num_gates), 0);
    std::vector<bool> assigned(static_cast<std::size_t>(num_gates), false);
    const std::vector<int>* fixed = constraints.compact_or_null();
    if (fixed != nullptr) {
      for (int i = 0; i < num_gates; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        if ((*fixed)[ui] >= 0) {
          labels[ui] = (*fixed)[ui];
          assigned[ui] = true;
        }
      }
    }

    // Branch on the free gates in order of descending degree (ties by
    // compact index): high-degree gates bind the partial F1 bound early.
    std::vector<int> order;
    for (int i = 0; i < num_gates; ++i) {
      if (!assigned[static_cast<std::size_t>(i)]) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return neighbors[static_cast<std::size_t>(a)].size() >
             neighbors[static_cast<std::size_t>(b)].size();
    });

    // The partial unnormalized F1 over fully-assigned edges only grows as
    // labels are added, and F2/F3 are non-negative sums of squares, so
    // c1 * partial_f1 / n1 + c4 * F4_const lower-bounds every completion —
    // provided no balance weight is negative (a negative c2/c3 could pay
    // back F1 cost, voiding the bound).
    const bool prune_enabled = context.weights.c1 >= 0.0 &&
                               context.weights.c2 >= 0.0 &&
                               context.weights.c3 >= 0.0;
    const double f4_part = context.weights.c4 * inst.f4_constant;

    SearchStats stats;
    std::vector<int> best_labels = labels;
    double best_total = std::numeric_limits<double>::infinity();
    // A fully-assigned warm start becomes the branch-and-bound incumbent:
    // the search still proves the optimum, but prunes against the seed's
    // score from the first node (same compact order as the instance).
    if (warm != nullptr && static_cast<int>(warm->size()) == num_gates &&
        std::none_of(warm->begin(), warm->end(),
                     [](int label) { return label < 0; })) {
      best_labels = *warm;
      best_total = inst.score(*warm, context.weights);
      counters.emplace_back("warm_incumbent", best_total);
    }
    // With no constraints the objective is invariant under the plane
    // reversal k -> K-1-k (F1 sees distances, F2/F3 sum over planes), so
    // the first branched gate only needs the lower half of the planes.
    const bool break_symmetry = constraints.empty();

    auto descend = [&](auto&& self, std::size_t depth,
                       double partial_f1) -> void {
      ++stats.nodes_explored;
      if (depth == order.size()) {
        ++stats.leaves_evaluated;
        const double total = inst.score(labels, context.weights);
        if (total < best_total) {
          best_total = total;
          best_labels = labels;
        }
        return;
      }
      const int gate = order[depth];
      const auto ug = static_cast<std::size_t>(gate);
      const int max_plane =
          break_symmetry && depth == 0 ? (num_planes - 1) / 2 : num_planes - 1;
      for (int plane = 0; plane <= max_plane; ++plane) {
        double delta = 0.0;
        for (const int j : neighbors[ug]) {
          if (!assigned[static_cast<std::size_t>(j)]) continue;
          delta += dist_pow(plane - labels[static_cast<std::size_t>(j)],
                            context.weights.distance_exponent);
        }
        const double f1_next = partial_f1 + delta;
        if (prune_enabled &&
            context.weights.c1 * f1_next / inst.n1 + f4_part >= best_total) {
          ++stats.pruned;
          continue;
        }
        labels[ug] = plane;
        assigned[ug] = true;
        self(self, depth + 1, f1_next);
        assigned[ug] = false;
      }
    };

    // Seed the partial F1 with the edges already bound by fixed gates.
    double fixed_f1 = 0.0;
    for (const auto& [u, v] : inst.edges) {
      if (assigned[static_cast<std::size_t>(u)] &&
          assigned[static_cast<std::size_t>(v)]) {
        fixed_f1 += dist_pow(labels[static_cast<std::size_t>(u)] -
                                 labels[static_cast<std::size_t>(v)],
                             context.weights.distance_exponent);
      }
    }
    descend(descend, 0, fixed_f1);

    counters.emplace_back("nodes_explored",
                          static_cast<double>(stats.nodes_explored));
    counters.emplace_back("leaves_evaluated",
                          static_cast<double>(stats.leaves_evaluated));
    counters.emplace_back("pruned", static_cast<double>(stats.pruned));
    counters.emplace_back("proved_optimal", 1.0);

    Partition partition;
    partition.num_planes = num_planes;
    partition.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                              kUnassignedPlane);
    for (int i = 0; i < num_gates; ++i) {
      partition.plane_of[static_cast<std::size_t>(
          inst.gate_ids[static_cast<std::size_t>(i)])] =
          best_labels[static_cast<std::size_t>(i)];
    }
    return partition;
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_exact_engine() {
  return std::make_unique<ExactAdapter>();
}

}  // namespace sfqpart::engine_detail
