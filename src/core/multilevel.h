// Multilevel ground-plane partitioning (extension).
//
// The paper's conclusion leaves scaling beyond ~4k gates open; the classic
// answer (Karypis/Kumar, the paper's reference [18]) is multilevel:
// coarsen the connection graph by heavy-edge matching until it is small,
// run the gradient-descent partitioner on the coarse graph (where the
// relaxation is cheap and the landscape smooth), then project the labels
// back level by level with greedy refinement at each step. Bias and area
// weights accumulate through the merges, so the coarse problem optimizes
// the same F1..F3 objective; contracted parallel edges keep their
// multiplicity, preserving F1's edge weighting.
#pragma once

#include "core/solver.h"

namespace sfqpart {

namespace obs {
class SolverObserver;
}  // namespace obs

struct MultilevelOptions {
  // Coarsen until at most this many vertices (never below 4*K).
  int coarse_target = 160;
  // Safety cap on coarsening levels.
  int max_levels = 20;
  // Options for the coarse-level gradient-descent solve; num_planes is
  // overwritten by the multilevel driver.
  SolverConfig coarse;
  // Refinement applied after each projection.
  RefineOptions refine;
  std::uint64_t seed = 1;
  // Worker threads for the coarse-level solve's restart fan-out (0 = all
  // hardware threads, 1 = serial). Projection refinement is inherently
  // sequential and ignores this.
  int threads = 1;
  // Structured observability hook (not owned; may be null). Receives
  // LevelEvents for each coarsening level, stage timers ("coarsen",
  // "coarse_solve", "uncoarsen"), projection RefinePassEvents (tagged
  // restart = -1), and — forwarded to the coarse Solver — the full event
  // stream of the coarse-level solve.
  obs::SolverObserver* observer = nullptr;
  // Finest-level fixed planes (compact problem indices, -1 = free; not
  // owned). Pins propagate through coarsening, constrain the coarse solve
  // and are skipped by every projection refinement. Null = unconstrained
  // (bit-identical to the pre-constraint driver).
  const std::vector<int>* fixed = nullptr;
  // Finest-level warm-start labels (compact indices, -1 = unassigned; not
  // owned). Restricted down the level stack and handed to the coarse
  // Solver as its warm seed. Null = cold, bit-identical to the pre-warm
  // driver.
  const std::vector<int>* warm = nullptr;
};

struct MultilevelResult {
  Partition partition;
  int levels = 0;            // coarsening levels actually used
  int coarse_gates = 0;      // vertex count of the coarsest graph
  double discrete_total = 0.0;
};

MultilevelResult multilevel_partition(const Netlist& netlist, int num_planes,
                                      const MultilevelOptions& options = {});

}  // namespace sfqpart
