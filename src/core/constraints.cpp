#include "core/constraints.h"

#include <algorithm>
#include <numeric>

#include "core/partition.h"

namespace sfqpart {
namespace {

Status bad(const std::string& message) {
  return Status::invalid_argument("constraint: " + message);
}

// Resolves one named gate to a partitionable GateId.
StatusOr<GateId> resolve_gate(const Netlist& netlist, const std::string& name) {
  const GateId id = netlist.find_gate(name);
  if (id == kInvalidGate) {
    return bad("unknown gate '" + name + "'");
  }
  if (!netlist.is_partitionable(id)) {
    return bad("gate '" + name +
               "' is an I/O interface cell on the shared pad-ring ground "
               "and cannot be pinned to a plane");
  }
  return id;
}

// Fixes `gate` to `plane`, rejecting a conflict with an earlier fix.
Status fix_gate(const Netlist& netlist, std::vector<int>& fixed, GateId gate,
                int plane) {
  int& slot = fixed[static_cast<std::size_t>(gate)];
  if (slot != kUnassignedPlane && slot != plane) {
    return bad("gate '" + netlist.gate(gate).name + "' is pinned to plane " +
               std::to_string(slot) + " and plane " + std::to_string(plane));
  }
  slot = plane;
  return Status::ok();
}

}  // namespace

StatusOr<CompiledConstraints> compile_constraints(
    const Netlist& netlist, const GateConstraints& constraints,
    int num_planes) {
  CompiledConstraints out;
  out.fixed_of_gate.assign(static_cast<std::size_t>(netlist.num_gates()),
                           kUnassignedPlane);

  for (const auto& [name, plane] : constraints.pins) {
    if (plane < 0 || plane >= num_planes) {
      return bad("pin '" + name + "=" + std::to_string(plane) +
                 "' names a plane outside [0, " + std::to_string(num_planes) +
                 ")");
    }
    auto gate = resolve_gate(netlist, name);
    if (!gate) return gate.status();
    if (auto status = fix_gate(netlist, out.fixed_of_gate, *gate, plane);
        !status) {
      return status;
    }
  }

  // Resolve every group to gate ids and, where a member is pinned, to a
  // required plane.
  struct Group {
    std::vector<GateId> members;
    int plane = kUnassignedPlane;
    double bias = 0.0;
    std::size_t index = 0;
  };
  std::vector<Group> groups;
  groups.reserve(constraints.groups.size());
  for (std::size_t gi = 0; gi < constraints.groups.size(); ++gi) {
    Group group;
    group.index = gi;
    for (const std::string& name : constraints.groups[gi]) {
      auto gate = resolve_gate(netlist, name);
      if (!gate) return gate.status();
      group.members.push_back(*gate);
      group.bias += netlist.bias_of(*gate);
      const int pinned = out.fixed_of_gate[static_cast<std::size_t>(*gate)];
      if (pinned == kUnassignedPlane) continue;
      if (group.plane != kUnassignedPlane && group.plane != pinned) {
        return bad("group " + std::to_string(gi) +
                   " contains gates pinned to plane " +
                   std::to_string(group.plane) + " and plane " +
                   std::to_string(pinned));
      }
      group.plane = pinned;
    }
    if (!group.members.empty()) groups.push_back(std::move(group));
  }

  // Accumulated fixed bias per plane, seeded by the explicit pins, drives
  // the election of unpinned groups.
  std::vector<double> plane_bias(static_cast<std::size_t>(num_planes), 0.0);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const int plane = out.fixed_of_gate[static_cast<std::size_t>(g)];
    if (plane != kUnassignedPlane) {
      plane_bias[static_cast<std::size_t>(plane)] += netlist.bias_of(g);
    }
  }

  // Heaviest groups first so they land on the emptiest planes; the stable
  // (bias desc, declaration index asc) order makes the election
  // deterministic across runs.
  std::vector<std::size_t> order(groups.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (groups[a].bias != groups[b].bias) return groups[a].bias > groups[b].bias;
    return groups[a].index < groups[b].index;
  });
  for (std::size_t oi : order) {
    Group& group = groups[oi];
    int plane = group.plane;
    if (plane == kUnassignedPlane) {
      plane = 0;
      for (int k = 1; k < num_planes; ++k) {
        if (plane_bias[static_cast<std::size_t>(k)] <
            plane_bias[static_cast<std::size_t>(plane)]) {
          plane = k;
        }
      }
    }
    for (GateId gate : group.members) {
      if (auto status = fix_gate(netlist, out.fixed_of_gate, gate, plane);
          !status) {
        return status;
      }
    }
    plane_bias[static_cast<std::size_t>(plane)] += group.bias;
  }

  // Compact view: partitionable gates in ascending GateId order, matching
  // PartitionProblem::from_netlist.
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    const int plane = out.fixed_of_gate[static_cast<std::size_t>(g)];
    out.fixed_compact.push_back(plane);
    if (plane != kUnassignedPlane) ++out.num_fixed;
  }
  return out;
}

}  // namespace sfqpart
