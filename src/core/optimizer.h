// Gradient descent over the relaxed cost (Algorithm 1 of the paper).
//
// Starting from a random row-normalized W, the loop computes the weighted
// cost and its gradient, steps against the gradient, clips W into [0,1],
// and stops when the relative cost change drops below `margin` (the paper
// uses 1e-4). Deviations from the verbatim pseudo-code are opt-in and
// documented in DESIGN.md section 6: an explicit learning rate (the paper
// folds it into the c-constants) and optional gradient-norm step scaling
// that makes one tuning work across circuit sizes.
#pragma once

#include <functional>
#include <vector>

#include "core/cost_model.h"
#include "util/matrix.h"

namespace sfqpart {

namespace obs {
class TraceSink;
}  // namespace obs

struct OptimizerOptions {
  // Relative cost-change stopping margin (Algorithm 1 line 14).
  double margin = 1e-4;
  // Hard iteration cap; Algorithm 1 has none, but gradient descent on a
  // non-convex relaxation can plateau-cycle.
  int max_iterations = 500;
  // Step size. With normalize_step the update is
  //   W -= learning_rate * grad / max|grad|,
  // i.e. the largest per-entry move is exactly learning_rate; without it
  // the raw gradient is applied as in the paper's pseudo-code.
  double learning_rate = 0.05;
  bool normalize_step = true;
  // Record the cost after every iteration (for convergence tests/plots).
  bool record_trace = false;
  // Called once per iteration with the just-evaluated cost terms and the
  // weighted total. Purely observational: it must not mutate the
  // optimizer's state. The Solver facade uses it to feed its
  // SolverObserver (obs/observer.h) iteration events.
  std::function<void(int iteration, const CostTerms& terms, double cost)>
      on_iteration;
  // Optional stage-timing sink: when set (and enabled), the descent
  // accumulates the wall time spent in the gradient evaluation and in the
  // step/clamp update and emits two TimerEvents ("gradient", "step")
  // tagged with `observer_restart` when it finishes. Purely observational:
  // with a null or disabled sink no clock is ever read, and clocks never
  // feed back into the math either way.
  obs::TraceSink* sink = nullptr;
  int observer_restart = -1;
};

struct OptimizerResult {
  Matrix w;                        // final soft assignment
  CostTerms final_terms;           // cost terms at w
  int iterations = 0;
  bool converged = false;          // stopped by margin (not by max_iterations)
  std::vector<double> cost_trace;  // weighted totals, if record_trace
};

OptimizerResult run_gradient_descent(const CostModel& model, Matrix w0,
                                     const OptimizerOptions& options = {});

}  // namespace sfqpart
