// Coupling-aware partitioning loop (extension).
//
// A5 of EXPERIMENTS.md shows the gap the paper's flow leaves open: the
// partition is balanced *before* coupling insertion, but the inserted
// TXDRV/TXRCV cells draw bias on their own planes, so the implemented
// chip is unbalanced again (I_comp roughly triples at K = 5). This driver
// closes the loop: after each round it folds the coupling cells each
// gate's connectivity implied into the gate's effective bias weight and
// re-partitions, converging to an assignment whose *implemented* balance
// is good.
#pragma once

#include "core/solver.h"

namespace sfqpart {

struct FeedbackOptions {
  SolverConfig base;
  // Maximum partition/insert/re-weight rounds (the first round is the
  // plain paper flow).
  int max_rounds = 4;
  // Stop when the implemented I_comp fraction improves by less than this
  // between rounds.
  double min_improvement = 0.005;
};

struct FeedbackResult {
  Partition partition;          // over the original netlist
  int rounds = 0;
  // Implemented (post-insertion) compensation current fraction, before
  // (round 1) and after the feedback loop.
  double icomp_first = 0.0;
  double icomp_final = 0.0;
  int pairs_final = 0;
};

FeedbackResult partition_with_coupling_feedback(const Netlist& netlist,
                                                const FeedbackOptions& options = {});

}  // namespace sfqpart
