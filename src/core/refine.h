// Greedy discrete refinement of a hardened partition.
//
// The paper stops at the argmax of the converged soft assignment. This
// optional pass (off by default for paper fidelity, see SolverConfig)
// sweeps gates in random order and applies single-gate moves that reduce
// the *discrete* weighted cost, using incremental delta evaluation. It is
// the ablation point A2 of DESIGN.md.
#pragma once

#include <vector>

#include "core/cost_model.h"
#include "core/move_eval.h"
#include "util/rng.h"

namespace sfqpart {

namespace obs {
class TraceSink;
}  // namespace obs

struct RefineOptions {
  int max_passes = 8;
  // Stop a pass early once fewer than this many moves were applied.
  int min_moves_per_pass = 1;
};

struct RefineResult {
  int passes = 0;
  int moves = 0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
};

// Improves `labels` in place (compact indices, 0-based planes). When a
// TraceSink is supplied, one RefinePassEvent per pass is emitted, tagged
// with `restart` (restart < 0 marks refits outside the restart loop, e.g.
// the multilevel projection polish). `fixed` (compact-indexed, -1 = free;
// null = unconstrained) marks gates the pass must not move — the null
// path is byte-identical to the pre-constraint code.
RefineResult refine_partition(const CostModel& model, std::vector<int>& labels,
                              Rng& rng, const RefineOptions& options = {},
                              obs::TraceSink* sink = nullptr, int restart = -1,
                              const std::vector<int>* fixed = nullptr);

struct BucketRefineStats {
  long long moves = 0;
  long long stale_pops = 0;   // lazy-queue entries discarded as outdated
  double cost_after = 0.0;    // exact re-evaluation of the final labels
};

// FM-style best-gain refinement: a lazy priority queue pops the single
// most-improving move in the whole (restricted) graph, re-validates it
// against the evolving labels, applies it and requeues the moved gate and
// its neighbors. Serial by construction and fully deterministic: the pop
// order is (gain, gate, target) lexicographic, independent of insertion
// order. `band` limits targets to +-band planes around a gate's current
// plane (band <= 0 lifts the limit); `fixed` (compact, -1 = free) marks
// immovable gates; `active` (optional) restricts the movable set to the
// listed compact indices — the eco engine's dirty region. Applied moves
// are capped at options.max_passes * movable-gate-count so a pathological
// gain surface cannot spin forever; each applied move strictly improves
// the cost, so the labels never regress.
BucketRefineStats bucket_refine(MoveEvaluator& eval, int band,
                                const RefineOptions& options,
                                const std::vector<int>* fixed = nullptr,
                                const std::vector<int>* active = nullptr);

}  // namespace sfqpart
