#include "core/vcycle.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <vector>

#include "core/coarsen.h"
#include "core/move_eval.h"
#include "core/problem_view.h"
#include "obs/trace_sink.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Matches refine.cpp's strict-improvement threshold: a move must beat
// this to be proposed or committed, so zero-delta oscillation is
// impossible and the per-level cost is strictly non-increasing.
constexpr double kImprovementThreshold = -1e-12;

// Proposal grain: coarse levels collapse to one chunk (inline), only the
// 10^5+-gate levels actually fan out.
constexpr std::size_t kProposalGrain = 2048;
// Rough ns per gate of a proposal: a handful of delta() evaluations,
// each walking the gate's CSR neighbor range.
constexpr double kProposalItemCost = 60.0;

// One parallel proposal sweep: for every gate, the best strictly
// improving move within the gain band, evaluated against the frozen
// pass-start labels. delta() only reads the (const) evaluator state and
// proposal writes are element-wise, so the sweep is bit-identical at any
// thread count.
struct ProposalKernel {
  const MoveEvaluator* eval;
  const int* labels;
  std::int32_t* proposal;
  int band;
  int num_planes;
  const int* fixed;  // per-gate fixed plane (-1 = free); null when none

  void operator()(std::size_t, std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end; ++i) {
      const int gate = static_cast<int>(i);
      if (fixed != nullptr && fixed[i] >= 0) {
        proposal[i] = -1;
        continue;
      }
      const int source = labels[i];
      const int lo = std::max(0, source - band);
      const int hi = std::min(num_planes - 1, source + band);
      int best = -1;
      double best_delta = kImprovementThreshold;
      for (int target = lo; target <= hi; ++target) {
        if (target == source) continue;
        const double delta = eval->delta(gate, target);
        if (delta < best_delta) {
          best_delta = delta;
          best = target;
        }
      }
      proposal[i] = best;
    }
  }
};

struct BandedRefineStats {
  int passes = 0;
  long long moves = 0;
  double cost_after = 0.0;  // full re-evaluation of the final labels
};

// Propose in parallel, commit serially in ascending gate order. The
// commit re-evaluates each proposal against the labels as they evolve
// within the pass, applying only the still-improving ones — proposals
// invalidated by an earlier commit are simply skipped, and the applied
// delta sequence (hence the final labels) never depends on how the
// proposal sweep was chunked across threads.
BandedRefineStats banded_refine(MoveEvaluator& eval, int band,
                                const RefineOptions& options, ThreadPool* pool,
                                double cost_before,
                                const std::vector<int>* fixed) {
  const int n = eval.num_gates();
  const int k = eval.num_planes();
  BandedRefineStats stats;
  stats.cost_after = cost_before;
  std::vector<std::int32_t> proposal(static_cast<std::size_t>(n));
  for (int pass = 0; pass < options.max_passes; ++pass) {
    ProposalKernel kernel{&eval,
                          eval.labels().data(),
                          proposal.data(),
                          band,
                          k,
                          fixed != nullptr ? fixed->data() : nullptr};
    parallel_chunks(pool, static_cast<std::size_t>(n), kProposalGrain, kernel,
                    kProposalItemCost);
    int moves = 0;
    for (int gate = 0; gate < n; ++gate) {
      const int target = proposal[static_cast<std::size_t>(gate)];
      if (target < 0) continue;
      const double delta = eval.delta(gate, target);
      if (delta < kImprovementThreshold) {
        eval.apply(gate, target);
        ++moves;
      }
    }
    ++stats.passes;
    stats.moves += moves;
    if (moves < options.min_moves_per_pass) break;
  }
  // Re-score the final labels instead of accumulating committed deltas
  // onto cost_before: summed deltas drift from the true cost in floating
  // point over many passes, and the level report must agree with what a
  // fresh evaluation of the labels says.
  if (stats.moves > 0) stats.cost_after = eval.current_cost();
  return stats;
}

}  // namespace

VcycleResult vcycle_partition(const Netlist& netlist, int num_planes,
                              const VcycleOptions& options) {
  assert(num_planes >= 2);
  obs::TraceSink sink(options.observer);

  PartitionProblem finest = PartitionProblem::from_netlist(netlist, num_planes);

  if (sink.enabled()) {
    obs::RunInfo info;
    info.engine = "vcycle";
    info.num_planes = num_planes;
    info.restarts = options.coarse.restarts;
    info.seed = options.seed;
    info.refine = true;  // banded refinement always runs on uncoarsen
    info.weights = options.coarse.weights;
    info.gradient_style = options.coarse.gradient_style;
    info.learning_rate = options.coarse.optimizer.learning_rate;
    info.max_iterations = options.coarse.optimizer.max_iterations;
    info.margin = options.coarse.optimizer.margin;
    info.normalize_step = options.coarse.optimizer.normalize_step;
    info.problem_gates = finest.num_gates;
    info.problem_edges = static_cast<long long>(finest.edges.size());
    sink.run_start(info);
  }

  // Coarsen in the pinned kDegreeSorted order: level shape is a pure
  // function of the graph — no Rng draw, no dependence on thread count
  // or on what earlier stages consumed.
  LevelStack stack;
  {
    obs::ScopedTimer timer(&sink, "coarsen");
    if (sink.enabled()) {
      sink.level({0, finest.num_gates,
                  static_cast<long long>(finest.edges.size())});
    }
    CoarsenOptions coarsen_options;
    coarsen_options.coarse_target = options.coarse_target;
    coarsen_options.max_levels = options.max_levels;
    coarsen_options.order = MatchOrder::kDegreeSorted;
    Clock::time_point level_start = Clock::now();
    stack = build_level_stack(
        finest, coarsen_options, nullptr,
        [&sink, &level_start](int level, const PartitionProblem& coarse) {
          const double elapsed = ms_since(level_start);
          level_start = Clock::now();
          if (sink.enabled()) {
            obs::LevelEvent event;
            event.level = level;
            event.num_vertices = coarse.num_gates;
            event.num_edges = static_cast<long long>(coarse.edges.size());
            event.coarsen_ms = elapsed;
            sink.level(event);
          }
        },
        options.fixed);
  }
  const PartitionProblem& coarsest = stack.coarsest(finest);

  // Restrict the warm start down the stack: a coarse vertex inherits the
  // first (lowest fine index) assigned label among its children. The
  // restriction is deterministic and Rng-free, like the coarsening order.
  std::vector<int> warm_restricted;
  const std::vector<int>* coarse_warm = options.warm;
  if (options.warm != nullptr) {
    warm_restricted = *options.warm;
    for (const CoarseLevel& level : stack.levels) {
      std::vector<int> next(static_cast<std::size_t>(level.problem.num_gates),
                            kUnassignedPlane);
      for (std::size_t f = 0; f < level.parent_of_fine.size(); ++f) {
        const int label = warm_restricted[f];
        const auto parent =
            static_cast<std::size_t>(level.parent_of_fine[f]);
        if (label != kUnassignedPlane && next[parent] == kUnassignedPlane) {
          next[parent] = label;
        }
      }
      warm_restricted = std::move(next);
    }
    coarse_warm = &warm_restricted;
  }

  VcycleResult result;
  result.levels = stack.num_levels();
  result.coarse_gates = coarsest.num_gates;

  // The paper's descent runs only here, where G*K is small. The coarse
  // Solver inherits the observer (its event stream lands in the same
  // report/trace) and the driver seed/threads.
  std::vector<int> labels;
  {
    obs::ScopedTimer timer(&sink, "coarse_solve");
    SolverConfig coarse_config = options.coarse;
    coarse_config.num_planes = num_planes;
    coarse_config.seed = options.seed;
    coarse_config.threads = options.threads;
    coarse_config.observer = options.observer;
    coarse_config.fixed_labels = stack.coarsest_fixed(options.fixed);
    coarse_config.warm_labels = coarse_warm;
    // Inputs were validated by the engine adapter; failure here is a
    // programmer bug, mirroring the multilevel driver.
    labels = Solver(coarse_config).solve(coarsest).value().labels;
  }

  // Uncoarsen: project, then banded parallel refinement per level. The
  // pool is shared by the proposal sweeps and the cost-model reductions;
  // per the executor's determinism contract it changes wall-clock only.
  const int threads = options.threads == 0 ? ThreadPool::hardware_concurrency()
                                           : std::max(1, options.threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  {
    obs::ScopedTimer timer(&sink, "uncoarsen");
    for (std::size_t i = stack.levels.size(); i-- > 0;) {
      const Clock::time_point level_start = Clock::now();
      const PartitionProblem& fine =
          i == 0 ? finest : stack.levels[i - 1].problem;
      const std::vector<int>* fine_fixed =
          i == 0 ? options.fixed
                 : (stack.levels[i - 1].fixed.empty()
                        ? nullptr
                        : &stack.levels[i - 1].fixed);
      std::vector<int> fine_labels = stack.levels[i].project(labels);

      // One shared CSR view per level: the cost model, the move
      // evaluator and (during coarsening) the matcher all read it.
      const ProblemView view(fine);
      CostModel model(view, options.coarse.weights,
                      options.coarse.gradient_style);
      model.set_thread_pool(pool.get());
      MoveEvaluator eval(model, std::move(fine_labels));
      const double projected_cost = eval.current_cost();
      BandedRefineStats stats;
      if (options.refine_style == VcycleRefineStyle::kBuckets) {
        const BucketRefineStats bucket =
            bucket_refine(eval, options.band, options.refine, fine_fixed);
        stats.moves = bucket.moves;
        stats.cost_after = bucket.cost_after;
      } else {
        stats = banded_refine(eval, options.band, options.refine, pool.get(),
                              projected_cost, fine_fixed);
      }
      result.refine_moves += stats.moves;
      labels = eval.labels();

      if (sink.enabled()) {
        obs::LevelEvent event;
        event.level = static_cast<int>(i);
        event.num_vertices = fine.num_gates;
        event.num_edges = static_cast<long long>(fine.edges.size());
        event.refine_ms = ms_since(level_start);
        event.projected_cost = projected_cost;
        event.refined_cost = stats.cost_after;
        event.refine_moves = static_cast<int>(stats.moves);
        sink.level(event);
      }
    }
  }

  result.partition = finest.to_partition(labels, netlist.num_gates());
  {
    CostModel model(finest, options.coarse.weights);
    model.set_thread_pool(pool.get());
    result.discrete_total =
        model.evaluate_discrete(labels).total(options.coarse.weights);
  }
  if (sink.enabled()) {
    sink.run_end({-1, result.discrete_total, 0, true});
  }
  return result;
}

}  // namespace sfqpart
