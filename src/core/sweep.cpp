#include "core/sweep.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "core/partition.h"
#include "util/strings.h"

namespace sfqpart {
namespace {

// Max per-plane bias of a partition, over partitionable gates only
// (matches metrics/partition_metrics.h and the kres search).
double max_plane_bias(const Netlist& netlist, const Partition& partition) {
  if (partition.num_planes <= 0) return 0.0;
  std::vector<double> plane_bias(static_cast<std::size_t>(partition.num_planes),
                                 0.0);
  for (GateId id = 0; id < netlist.num_gates(); ++id) {
    if (!netlist.is_partitionable(id)) continue;
    const int plane = partition.plane(id);
    if (plane == kUnassignedPlane) continue;
    plane_bias[static_cast<std::size_t>(plane)] += netlist.bias_of(id);
  }
  return *std::max_element(plane_bias.begin(), plane_bias.end());
}

Status validate_axes(const std::vector<SweepAxis>& axes) {
  if (axes.empty()) {
    return Status::invalid_argument("run_sweep: at least one axis required");
  }
  long long total = 1;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const SweepAxis& axis = axes[i];
    if (axis.name.empty()) {
      return Status::invalid_argument("run_sweep: axis with empty name");
    }
    if (axis.values.empty()) {
      return Status::invalid_argument(
          str_format("run_sweep: axis '%s' has no values", axis.name.c_str()));
    }
    for (std::size_t j = i + 1; j < axes.size(); ++j) {
      if (axes[j].name == axis.name) {
        return Status::invalid_argument(str_format(
            "run_sweep: duplicate axis '%s'", axis.name.c_str()));
      }
    }
    total *= static_cast<long long>(axis.values.size());
    if (total > kMaxSweepPoints) {
      return Status::invalid_argument(
          str_format("run_sweep: cross-product exceeds %lld points",
                     kMaxSweepPoints));
    }
  }
  return Status::ok();
}

// The point's option object: base options first, then the axis values
// (Json::set is last-wins, so an axis overrides a base entry).
Json point_options(const Json& base, const std::vector<SweepAxis>& axes,
                   const std::vector<int>& index) {
  Json options = Json::object();
  if (base.is_object()) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      options.set(base.key_at(i), *base.find(base.key_at(i)));
    }
  }
  for (std::size_t a = 0; a < axes.size(); ++a) {
    options.set(axes[a].name,
                axes[a].values[static_cast<std::size_t>(index[a])]);
  }
  return options;
}

}  // namespace

Json SweepResult::to_json(const std::string& circuit) const {
  Json axes_json = Json::array();
  for (const SweepAxis& axis : axes) {
    Json values = Json::array();
    for (const Json& value : axis.values) values.append(value);
    axes_json.append(Json::object()
                         .set("name", Json::string(axis.name))
                         .set("values", std::move(values)));
  }
  Json points_json = Json::array();
  for (const SweepPoint& point : points) {
    Json entry = Json::object()
                     .set("options", point.options)
                     .set("canonical", Json::string(point.canonical))
                     .set("discrete_total",
                          Json::number(point.run.discrete_total))
                     .set("bmax_ma", Json::number(point.bmax_ma))
                     .set("pareto", Json::boolean(point.pareto));
    if (point.warm_started) {
      entry.set("warm_started", Json::boolean(true));
    }
    points_json.append(std::move(entry));
  }
  Json pareto_json = Json::array();
  for (const int index : pareto) {
    pareto_json.append(Json::number(static_cast<long long>(index)));
  }
  return Json::object()
      .set("schema", Json::string("sfqpart.sweep.v1"))
      .set("circuit", Json::string(circuit))
      .set("engine", Json::string(engine))
      .set("axes", std::move(axes_json))
      .set("points", std::move(points_json))
      .set("pareto", std::move(pareto_json));
}

StatusOr<SweepResult> run_sweep(const Netlist& netlist,
                                const SweepOptions& options) {
  Status axes_status = validate_axes(options.axes);
  if (!axes_status.is_ok()) return axes_status;

  StatusOr<std::unique_ptr<PartitionEngine>> engine =
      EngineRegistry::create(options.engine);
  if (!engine) return engine.status();
  const std::vector<OptionSpec> specs = (*engine)->describe_options();

  SweepResult result;
  result.engine = options.engine;
  result.axes = options.axes;

  const std::size_t num_axes = options.axes.size();
  std::vector<int> index(num_axes, 0);
  while (true) {
    SweepPoint point;
    point.index = index;
    point.options = point_options(options.base_options, options.axes, index);

    EngineContext context;
    Status applied =
        apply_engine_options(specs, point.options, context, &point.canonical);
    if (!applied.is_ok()) {
      return Status::error(str_format("run_sweep: point %s: %s",
                                      point.options.dump(0).c_str(),
                                      applied.message().c_str()));
    }

    // Warm mode: seed from the best-scoring completed neighbor that
    // differs in exactly one axis index. The InitialPartition must
    // outlive the run, so it lives in this scope.
    InitialPartition warm;
    if (options.warm_neighbors) {
      int best = -1;
      double best_total = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < result.points.size(); ++p) {
        const SweepPoint& prior = result.points[p];
        int differing = 0;
        for (std::size_t a = 0; a < num_axes; ++a) {
          if (prior.index[a] != index[a]) ++differing;
        }
        if (differing != 1) continue;
        if (prior.run.discrete_total < best_total) {
          best_total = prior.run.discrete_total;
          best = static_cast<int>(p);
        }
      }
      // A neighbor's labels only seed a same-K problem; a "planes" axis
      // neighbor with a different K is skipped (its labels may be out of
      // range for this point).
      if (best >= 0 &&
          result.points[static_cast<std::size_t>(best)].run.partition
                  .num_planes == context.num_planes) {
        warm.plane_of =
            result.points[static_cast<std::size_t>(best)].run.partition.plane_of;
        context.warm_start = &warm;
        point.warm_started = true;
      }
    }

    StatusOr<EngineRun> run = (*engine)->run(netlist, context);
    if (!run) {
      // A silently skipped failure would misreport the Pareto front as
      // computed over the full cross-product; abort instead.
      return Status::error(str_format("run_sweep: point %s failed: %s",
                                      point.canonical.c_str(),
                                      run.status().message().c_str()));
    }
    point.run = *std::move(run);
    point.bmax_ma = max_plane_bias(netlist, point.run.partition);
    result.points.push_back(std::move(point));

    // Lexicographic advance, last axis fastest; wrapping the first axis
    // means the cross-product is exhausted.
    std::size_t a = num_axes;
    bool wrapped = true;
    while (a > 0 && wrapped) {
      --a;
      if (++index[a] < static_cast<int>(options.axes[a].values.size())) {
        wrapped = false;
      } else {
        index[a] = 0;
      }
    }
    if (wrapped) break;
  }

  // Pareto front, minimizing (discrete_total, bmax_ma): a point is kept
  // unless some other point is <= in both objectives and < in one.
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < result.points.size() && !dominated; ++j) {
      if (i == j) continue;
      const SweepPoint& a = result.points[i];
      const SweepPoint& b = result.points[j];
      const bool no_worse = b.run.discrete_total <= a.run.discrete_total &&
                            b.bmax_ma <= a.bmax_ma;
      const bool better = b.run.discrete_total < a.run.discrete_total ||
                          b.bmax_ma < a.bmax_ma;
      dominated = no_worse && better;
    }
    if (!dominated) {
      result.points[i].pareto = true;
      result.pareto.push_back(static_cast<int>(i));
    }
  }
  return result;
}

}  // namespace sfqpart
