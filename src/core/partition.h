// Partition result type shared by the core partitioner, the baselines and
// the metrics/recycling consumers.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace sfqpart {

inline constexpr int kUnassignedPlane = -1;

// Assignment of gates to serially-biased ground planes. Planes are indexed
// 0..num_planes-1 in bias-stack order: plane p and plane p+1 are physically
// adjacent, so a connection between planes p and q needs |p - q| inductive
// coupling hops. I/O gates keep kUnassignedPlane (they live on the shared
// pad-ring ground).
struct Partition {
  int num_planes = 0;
  std::vector<int> plane_of;  // indexed by GateId

  int plane(GateId gate) const { return plane_of.at(static_cast<std::size_t>(gate)); }
  bool assigned(GateId gate) const { return plane(gate) != kUnassignedPlane; }
};

// An optional warm-start labeling: a prior (possibly partial) assignment
// an engine may seed its search from instead of its cold-start heuristic.
// Indexed by netlist GateId like Partition::plane_of; kUnassignedPlane
// marks gates the engine must place itself (gates added since the seed
// partition was produced, or gates deliberately released for re-solve).
// Validated once by the EngineAdapter alongside the compiled constraints:
// pins always win over warm labels, and a fully-assigned warm start is
// also a quality floor — an engine run never returns a worse-scoring
// partition than its seed (the adapter falls back to the seed labels).
struct InitialPartition {
  std::vector<int> plane_of;  // indexed by GateId; kUnassignedPlane = free

  int plane(GateId gate) const {
    return plane_of.at(static_cast<std::size_t>(gate));
  }
};

// The compact optimization problem the paper formulates: G partitionable
// gates with bias/area weights, the undirected connection set E, and K.
// Compact indices 0..G-1 map back to netlist gate ids via gate_ids.
struct PartitionProblem {
  int num_gates = 0;   // G
  int num_planes = 0;  // K
  std::vector<double> bias;                 // b_i, size G
  std::vector<double> area;                 // a_i, size G
  std::vector<std::pair<int, int>> edges;   // E (compact indices)
  std::vector<GateId> gate_ids;             // compact -> GateId

  static PartitionProblem from_netlist(const Netlist& netlist, int num_planes);

  // Expands compact labels (size G, 0-based planes) into a Partition over
  // the full netlist.
  Partition to_partition(const std::vector<int>& labels, int netlist_num_gates) const;
};

}  // namespace sfqpart
