#include "core/soft_assign.h"

#include <algorithm>
#include <cassert>

namespace sfqpart {

Matrix random_soft_assignment(int num_gates, int num_planes, Rng& rng) {
  assert(num_gates >= 0 && num_planes >= 1);
  Matrix w(static_cast<std::size_t>(num_gates), static_cast<std::size_t>(num_planes));
  // Row-wise fill, not flat(): the flat storage is padded (util/matrix.h)
  // and drawing uniforms for padding lanes would shift the RNG stream every
  // later draw sees — the per-restart sequences are pinned by goldens.
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (double& value : w.row(r)) value = rng.uniform();
  }
  normalize_rows(w);
  return w;
}

void normalize_rows(Matrix& w) {
  const std::size_t cols = w.cols();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    auto row = w.row(r);
    double sum = 0.0;
    for (const double value : row) sum += value;
    if (sum <= 0.0) {
      for (double& value : row) value = 1.0 / static_cast<double>(cols);
    } else {
      for (double& value : row) value /= sum;
    }
  }
}

void clip01(Matrix& w) {
  for (double& value : w.flat()) value = std::clamp(value, 0.0, 1.0);
}

std::vector<int> harden(const Matrix& w) {
  std::vector<int> labels(w.rows(), 0);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const auto row = w.row(r);
    labels[r] = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return labels;
}

Matrix one_hot(const std::vector<int>& labels, int num_planes) {
  Matrix w(labels.size(), static_cast<std::size_t>(num_planes));
  for (std::size_t r = 0; r < labels.size(); ++r) {
    assert(labels[r] >= 0 && labels[r] < num_planes);
    w(r, static_cast<std::size_t>(labels[r])) = 1.0;
  }
  return w;
}

}  // namespace sfqpart
