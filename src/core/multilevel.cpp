#include "core/multilevel.h"

#include <cassert>

#include "core/coarsen.h"
#include "core/refine.h"
#include "core/solver.h"
#include "obs/trace_sink.h"
#include "util/rng.h"

namespace sfqpart {

MultilevelResult multilevel_partition(const Netlist& netlist, int num_planes,
                                      const MultilevelOptions& options) {
  assert(num_planes >= 2);
  Rng rng(options.seed);
  obs::TraceSink sink(options.observer);

  PartitionProblem finest = PartitionProblem::from_netlist(netlist, num_planes);

  // The outer multilevel drive announces itself first; the nested coarse
  // Solver's run_start then loses the RunReport first-wins race, so the
  // report's engine/problem shape describe this level, not the coarse one.
  if (sink.enabled()) {
    obs::RunInfo info;
    info.engine = "multilevel";
    info.num_planes = num_planes;
    info.restarts = options.coarse.restarts;
    info.seed = options.seed;
    info.refine = true;  // projection refinement always runs
    info.weights = options.coarse.weights;
    info.gradient_style = options.coarse.gradient_style;
    info.learning_rate = options.coarse.optimizer.learning_rate;
    info.max_iterations = options.coarse.optimizer.max_iterations;
    info.margin = options.coarse.optimizer.margin;
    info.normalize_step = options.coarse.optimizer.normalize_step;
    info.problem_gates = finest.num_gates;
    info.problem_edges = static_cast<long long>(finest.edges.size());
    sink.run_start(info);
  }

  // Coarsen on the shared level builder, in the legacy Rng-shuffled visit
  // order: the continuing `rng` feeds the projection refits below, so the
  // draw sequence (including draws of a stall-discarded level) is part of
  // the engine's pinned golden-label behavior.
  LevelStack stack;
  {
    obs::ScopedTimer timer(&sink, "coarsen");
    if (sink.enabled()) {
      sink.level({0, finest.num_gates,
                  static_cast<long long>(finest.edges.size())});
    }
    CoarsenOptions coarsen_options;
    coarsen_options.coarse_target = options.coarse_target;
    coarsen_options.max_levels = options.max_levels;
    coarsen_options.order = MatchOrder::kLegacyShuffle;
    stack = build_level_stack(
        finest, coarsen_options, &rng,
        [&sink](int level, const PartitionProblem& coarse) {
          if (sink.enabled()) {
            sink.level({level, coarse.num_gates,
                        static_cast<long long>(coarse.edges.size())});
          }
        },
        options.fixed);
  }
  const PartitionProblem& coarsest = stack.coarsest(finest);

  // Restrict the warm start down the stack: a coarse vertex inherits the
  // first (lowest fine index) assigned label among its children. No Rng
  // draw, so the legacy shuffle sequence above is untouched.
  std::vector<int> warm_restricted;
  const std::vector<int>* coarse_warm = options.warm;
  if (options.warm != nullptr) {
    warm_restricted = *options.warm;
    for (const CoarseLevel& level : stack.levels) {
      std::vector<int> next(static_cast<std::size_t>(level.problem.num_gates),
                            kUnassignedPlane);
      for (std::size_t f = 0; f < level.parent_of_fine.size(); ++f) {
        const int label = warm_restricted[f];
        const auto parent = static_cast<std::size_t>(level.parent_of_fine[f]);
        if (label != kUnassignedPlane && next[parent] == kUnassignedPlane) {
          next[parent] = label;
        }
      }
      warm_restricted = std::move(next);
    }
    coarse_warm = &warm_restricted;
  }

  MultilevelResult result;
  result.levels = stack.num_levels();
  result.coarse_gates = coarsest.num_gates;

  // Solve the coarsest problem with the paper's optimizer. The coarse
  // Solver inherits the observer, so its event stream (run lifecycle,
  // iterations, ...) lands in the same report/trace; RunReport keeps the
  // outermost run_start and the final run_end when engines nest.
  SolverConfig coarse_options = options.coarse;
  coarse_options.num_planes = num_planes;
  std::vector<int> labels;
  {
    obs::ScopedTimer timer(&sink, "coarse_solve");
    SolverConfig coarse_config = coarse_options;
    coarse_config.threads = options.threads;
    coarse_config.observer = options.observer;
    coarse_config.fixed_labels = stack.coarsest_fixed(options.fixed);
    coarse_config.warm_labels = coarse_warm;
    // The asserts in StatusOr::value mirror the old solve_labels contract:
    // the inputs were validated above, so failure here is a programmer bug.
    labels = Solver(coarse_config).solve(coarsest).value().labels;
  }

  // Uncoarsen: project each coarse label onto its merged fine vertices,
  // then polish with greedy refinement at the finer level.
  {
    obs::ScopedTimer timer(&sink, "uncoarsen");
    for (std::size_t i = stack.levels.size(); i-- > 0;) {
      const PartitionProblem& fine =
          i == 0 ? finest : stack.levels[i - 1].problem;
      const std::vector<int>* fine_fixed =
          i == 0 ? options.fixed
                 : (stack.levels[i - 1].fixed.empty()
                        ? nullptr
                        : &stack.levels[i - 1].fixed);
      std::vector<int> fine_labels = stack.levels[i].project(labels);
      const CostModel model(fine, coarse_options.weights);
      refine_partition(model, fine_labels, rng, options.refine, &sink, -1,
                       fine_fixed);
      labels = std::move(fine_labels);
    }
  }

  result.partition = finest.to_partition(labels, netlist.num_gates());
  const CostModel model(finest, coarse_options.weights);
  result.discrete_total =
      model.evaluate_discrete(labels).total(coarse_options.weights);
  if (sink.enabled()) {
    // Last run_end wins in RunReport: the final projected cost replaces
    // the coarse Solver's summary. winning_restart -1 = "not applicable".
    sink.run_end({-1, result.discrete_total, 0, true});
  }
  return result;
}

}  // namespace sfqpart
