#include "core/multilevel.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/refine.h"
#include "core/solver.h"
#include "obs/trace_sink.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

// One coarsening level: heavy-edge matching on the (multi-)graph.
struct Level {
  PartitionProblem problem;        // the coarser problem
  std::vector<int> parent_of_fine; // fine vertex -> coarse vertex
};

Level coarsen(const PartitionProblem& fine, Rng& rng) {
  const int n = fine.num_gates;

  // Accumulate edge multiplicities into adjacency (neighbor, weight).
  std::vector<std::vector<std::pair<int, int>>> adjacency(static_cast<std::size_t>(n));
  {
    // Count parallel edges via sorting.
    std::vector<std::pair<int, int>> edges = fine.edges;
    for (auto& [a, b] : edges) {
      if (a > b) std::swap(a, b);
    }
    std::sort(edges.begin(), edges.end());
    for (std::size_t i = 0; i < edges.size();) {
      std::size_t j = i;
      while (j < edges.size() && edges[j] == edges[i]) ++j;
      const int weight = static_cast<int>(j - i);
      adjacency[static_cast<std::size_t>(edges[i].first)].emplace_back(edges[i].second, weight);
      adjacency[static_cast<std::size_t>(edges[i].second)].emplace_back(edges[i].first, weight);
      i = j;
    }
  }

  // Heavy-edge matching in random visit order.
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (const int v : order) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    int best = -1;
    int best_weight = 0;
    for (const auto& [u, weight] : adjacency[static_cast<std::size_t>(v)]) {
      if (u == v || match[static_cast<std::size_t>(u)] >= 0) continue;
      if (weight > best_weight) {
        best_weight = weight;
        best = u;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  Level level;
  level.parent_of_fine.assign(static_cast<std::size_t>(n), -1);
  PartitionProblem& coarse = level.problem;
  coarse.num_planes = fine.num_planes;
  for (const int v : order) {
    const auto uv = static_cast<std::size_t>(v);
    if (level.parent_of_fine[uv] >= 0) continue;
    const int partner = match[uv];
    const int coarse_id = coarse.num_gates++;
    level.parent_of_fine[uv] = coarse_id;
    if (partner != v) level.parent_of_fine[static_cast<std::size_t>(partner)] = coarse_id;
    coarse.bias.push_back(fine.bias[uv] +
                          (partner != v ? fine.bias[static_cast<std::size_t>(partner)] : 0.0));
    coarse.area.push_back(fine.area[uv] +
                          (partner != v ? fine.area[static_cast<std::size_t>(partner)] : 0.0));
    // gate_ids at coarse levels index the *fine* problem's vertices (the
    // representative); only the finest level's ids refer to the netlist.
    coarse.gate_ids.push_back(v);
  }
  for (const auto& [a, b] : fine.edges) {
    const int ca = level.parent_of_fine[static_cast<std::size_t>(a)];
    const int cb = level.parent_of_fine[static_cast<std::size_t>(b)];
    if (ca != cb) coarse.edges.emplace_back(ca, cb);  // keep multiplicity
  }
  return level;
}

}  // namespace

MultilevelResult multilevel_partition(const Netlist& netlist, int num_planes,
                                      const MultilevelOptions& options) {
  assert(num_planes >= 2);
  Rng rng(options.seed);
  obs::TraceSink sink(options.observer);

  std::vector<Level> levels;
  PartitionProblem finest = PartitionProblem::from_netlist(netlist, num_planes);
  const PartitionProblem* current = &finest;
  const int floor_size = std::max(options.coarse_target, 4 * num_planes);

  // The outer multilevel drive announces itself first; the nested coarse
  // Solver's run_start then loses the RunReport first-wins race, so the
  // report's engine/problem shape describe this level, not the coarse one.
  if (sink.enabled()) {
    obs::RunInfo info;
    info.engine = "multilevel";
    info.num_planes = num_planes;
    info.restarts = options.coarse.restarts;
    info.seed = options.seed;
    info.refine = true;  // projection refinement always runs
    info.weights = options.coarse.weights;
    info.gradient_style = options.coarse.gradient_style;
    info.learning_rate = options.coarse.optimizer.learning_rate;
    info.max_iterations = options.coarse.optimizer.max_iterations;
    info.margin = options.coarse.optimizer.margin;
    info.normalize_step = options.coarse.optimizer.normalize_step;
    info.problem_gates = finest.num_gates;
    info.problem_edges = static_cast<long long>(finest.edges.size());
    sink.run_start(info);
  }

  {
    obs::ScopedTimer timer(&sink, "coarsen");
    if (sink.enabled()) {
      sink.level({0, finest.num_gates,
                  static_cast<long long>(finest.edges.size())});
    }
    while (current->num_gates > floor_size &&
           static_cast<int>(levels.size()) < options.max_levels) {
      Level level = coarsen(*current, rng);
      // Matching can stall on star-shaped graphs; stop when progress fades.
      if (level.problem.num_gates > current->num_gates * 95 / 100) break;
      levels.push_back(std::move(level));
      current = &levels.back().problem;
      if (sink.enabled()) {
        sink.level({static_cast<int>(levels.size()), current->num_gates,
                    static_cast<long long>(current->edges.size())});
      }
    }
  }

  MultilevelResult result;
  result.levels = static_cast<int>(levels.size());
  result.coarse_gates = current->num_gates;

  // Solve the coarsest problem with the paper's optimizer. The coarse
  // Solver inherits the observer, so its event stream (run lifecycle,
  // iterations, ...) lands in the same report/trace; RunReport keeps the
  // outermost run_start and the final run_end when engines nest.
  SolverConfig coarse_options = options.coarse;
  coarse_options.num_planes = num_planes;
  std::vector<int> labels;
  {
    obs::ScopedTimer timer(&sink, "coarse_solve");
    SolverConfig coarse_config = coarse_options;
    coarse_config.threads = options.threads;
    coarse_config.observer = options.observer;
    // The asserts in StatusOr::value mirror the old solve_labels contract:
    // the inputs were validated above, so failure here is a programmer bug.
    labels = Solver(coarse_config).solve(*current).value().labels;
  }

  // Uncoarsen: project each coarse label onto its merged fine vertices,
  // then polish with greedy refinement at the finer level.
  {
    obs::ScopedTimer timer(&sink, "uncoarsen");
    for (std::size_t i = levels.size(); i-- > 0;) {
      const PartitionProblem& fine = i == 0 ? finest : levels[i - 1].problem;
      std::vector<int> fine_labels(static_cast<std::size_t>(fine.num_gates));
      for (int v = 0; v < fine.num_gates; ++v) {
        fine_labels[static_cast<std::size_t>(v)] =
            labels[static_cast<std::size_t>(levels[i].parent_of_fine[static_cast<std::size_t>(v)])];
      }
      const CostModel model(fine, coarse_options.weights);
      refine_partition(model, fine_labels, rng, options.refine, &sink, -1);
      labels = std::move(fine_labels);
    }
  }

  result.partition = finest.to_partition(labels, netlist.num_gates());
  const CostModel model(finest, coarse_options.weights);
  result.discrete_total =
      model.evaluate_discrete(labels).total(coarse_options.weights);
  if (sink.enabled()) {
    // Last run_end wins in RunReport: the final projected cost replaces
    // the coarse Solver's summary. winning_restart -1 = "not applicable".
    sink.run_end({-1, result.discrete_total, 0, true});
  }
  return result;
}

}  // namespace sfqpart
