#include "core/certify.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <unordered_set>

#include "util/strings.h"

namespace sfqpart {
namespace {

// Relative tolerance of the cost comparison. The engines and the
// certifier sum the same mathematical series in different orders, so
// agreement is to rounding, not to the bit.
constexpr double kRelTolerance = 1e-9;

bool close_enough(double expected, double derived) {
  const double scale =
      std::max({1.0, std::abs(expected), std::abs(derived)});
  return std::abs(expected - derived) <= kRelTolerance * scale;
}

// |d|^p by repeated multiplication (p >= 1, small).
double dist_pow(double d, int p) {
  double magnitude = std::abs(d);
  double result = 1.0;
  for (int i = 0; i < p; ++i) result *= magnitude;
  return result;
}

}  // namespace

const char* certify_verdict_name(CertifyVerdict verdict) {
  switch (verdict) {
    case CertifyVerdict::kValid: return "valid";
    case CertifyVerdict::kLabelOutOfRange: return "label_out_of_range";
    case CertifyVerdict::kPlaneCountMismatch: return "plane_count_mismatch";
    case CertifyVerdict::kCostMismatch: return "cost_mismatch";
    case CertifyVerdict::kConstraintViolation: return "constraint_violation";
  }
  return "unknown";
}

CertifiedInstance build_certified_instance(const Netlist& netlist,
                                           int num_planes,
                                           const CostWeights& weights) {
  CertifiedInstance instance;
  instance.num_planes = num_planes;
  instance.compact_of_gate.assign(
      static_cast<std::size_t>(netlist.num_gates()), -1);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    instance.compact_of_gate[static_cast<std::size_t>(g)] =
        static_cast<int>(instance.gate_ids.size());
    instance.gate_ids.push_back(g);
    instance.bias.push_back(netlist.bias_of(g));
    instance.area.push_back(netlist.area_of(g));
    instance.total_bias += netlist.bias_of(g);
    instance.total_area += netlist.area_of(g);
  }

  // The undirected connection set E, re-derived net by net with hash-set
  // deduplication (netlist.cpp sorts a vector; a shared dedup bug cannot
  // survive two implementations).
  std::unordered_set<std::uint64_t> seen;
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    const int from =
        instance.compact_of_gate[static_cast<std::size_t>(net.driver.gate)];
    if (from < 0) continue;
    for (const PinRef& sink : net.sinks) {
      const int to =
          instance.compact_of_gate[static_cast<std::size_t>(sink.gate)];
      if (to < 0 || to == from) continue;
      const int lo = std::min(from, to);
      const int hi = std::max(from, to);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
          static_cast<std::uint32_t>(hi);
      if (seen.insert(key).second) instance.edges.emplace_back(lo, hi);
    }
  }

  const double k1 = static_cast<double>(num_planes - 1);
  const double mean_bias = instance.total_bias / num_planes;
  const double mean_area = instance.total_area / num_planes;
  instance.n1 = static_cast<double>(instance.edges.size()) *
                dist_pow(k1, weights.distance_exponent);
  instance.n2 = k1 * mean_bias * mean_bias;
  instance.n3 = k1 * mean_area * mean_area;
  instance.n4 = static_cast<double>(instance.num_gates()) * k1 * k1;
  if (instance.n1 <= 0.0) instance.n1 = 1.0;
  if (instance.n2 <= 0.0) instance.n2 = 1.0;
  if (instance.n3 <= 0.0) instance.n3 = 1.0;
  if (instance.n4 <= 0.0) instance.n4 = 1.0;
  const double kd = static_cast<double>(num_planes);
  instance.f4_constant = static_cast<double>(instance.num_gates()) *
                         (-(kd - 1.0) / (kd * kd)) / instance.n4;
  return instance;
}

CostTerms CertifiedInstance::terms_of(const std::vector<int>& labels,
                                      const CostWeights& weights) const {
  CostTerms terms;
  for (const auto& [u, v] : edges) {
    terms.f1 += dist_pow(labels[static_cast<std::size_t>(u)] -
                             labels[static_cast<std::size_t>(v)],
                         weights.distance_exponent);
  }
  terms.f1 /= n1;

  const auto kd = static_cast<double>(num_planes);
  std::vector<double> plane_bias(static_cast<std::size_t>(num_planes), 0.0);
  std::vector<double> plane_area(static_cast<std::size_t>(num_planes), 0.0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto plane = static_cast<std::size_t>(labels[i]);
    plane_bias[plane] += bias[i];
    plane_area[plane] += area[i];
  }
  const double mean_bias = total_bias / kd;
  const double mean_area = total_area / kd;
  for (int k = 0; k < num_planes; ++k) {
    const double db = plane_bias[static_cast<std::size_t>(k)] - mean_bias;
    const double da = plane_area[static_cast<std::size_t>(k)] - mean_area;
    terms.f2 += db * db;
    terms.f3 += da * da;
  }
  terms.f2 /= kd * n2;
  terms.f3 /= kd * n3;
  terms.f4 = f4_constant;
  return terms;
}

CertifyReport certify_partition(const Netlist& netlist,
                                const Partition& partition, int num_planes,
                                const CostWeights& weights,
                                const CertifyExpectation* expect,
                                const CompiledConstraints* constraints) {
  CertifyReport report;

  // 1. Shape: the partition must cover every gate with the requested K.
  if (partition.num_planes != num_planes ||
      static_cast<int>(partition.plane_of.size()) != netlist.num_gates()) {
    report.verdict = CertifyVerdict::kPlaneCountMismatch;
    report.message = str_format(
        "partition has num_planes=%d over %zu gates; expected K=%d over %d "
        "gates",
        partition.num_planes, partition.plane_of.size(), num_planes,
        netlist.num_gates());
    return report;
  }

  // 2. Label range: partitionable gates in [0, K), I/O gates unassigned.
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const int plane = partition.plane(g);
    if (netlist.is_partitionable(g)) {
      if (plane < 0 || plane >= num_planes) {
        report.verdict = CertifyVerdict::kLabelOutOfRange;
        report.message = str_format(
            "gate %d ('%s') has plane %d outside [0, %d)", g,
            netlist.gate(g).name.c_str(), plane, num_planes);
        return report;
      }
    } else if (plane != kUnassignedPlane) {
      report.verdict = CertifyVerdict::kLabelOutOfRange;
      report.message = str_format(
          "I/O gate %d ('%s') was assigned plane %d; interface cells stay "
          "on the shared pad-ring ground",
          g, netlist.gate(g).name.c_str(), plane);
      return report;
    }
  }

  // Labels are well-formed: re-derive everything (even when a later check
  // fails, the derived numbers are reported for diagnosis).
  const CertifiedInstance instance =
      build_certified_instance(netlist, num_planes, weights);
  std::vector<int> labels(static_cast<std::size_t>(instance.num_gates()));
  for (int i = 0; i < instance.num_gates(); ++i) {
    labels[static_cast<std::size_t>(i)] =
        partition.plane(instance.gate_ids[static_cast<std::size_t>(i)]);
  }
  report.terms = instance.terms_of(labels, weights);
  report.total = report.terms.total(weights);

  // I_comp / A_FS (equation 11): per-plane bias/area sums vs the heaviest
  // plane.
  {
    std::vector<double> plane_bias(static_cast<std::size_t>(num_planes), 0.0);
    std::vector<double> plane_area(static_cast<std::size_t>(num_planes), 0.0);
    for (int i = 0; i < instance.num_gates(); ++i) {
      const auto plane = static_cast<std::size_t>(labels[static_cast<std::size_t>(i)]);
      plane_bias[plane] += instance.bias[static_cast<std::size_t>(i)];
      plane_area[plane] += instance.area[static_cast<std::size_t>(i)];
    }
    const double bmax = *std::max_element(plane_bias.begin(), plane_bias.end());
    const double amax = *std::max_element(plane_area.begin(), plane_area.end());
    for (int k = 0; k < num_planes; ++k) {
      report.icomp_ma += bmax - plane_bias[static_cast<std::size_t>(k)];
      report.afs_um2 += amax - plane_area[static_cast<std::size_t>(k)];
    }
  }

  // Coupling pairs: one directed link per net sink (clock edges
  // included), each crossing |plane(sink) - plane(driver)| boundaries and
  // needing that many driver/receiver pairs.
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    if (!partition.assigned(net.driver.gate)) continue;
    const int from = partition.plane(net.driver.gate);
    for (const PinRef& sink : net.sinks) {
      if (!partition.assigned(sink.gate)) continue;
      report.coupling_pairs += std::abs(partition.plane(sink.gate) - from);
    }
  }

  // 3. Constraints: every fixed gate on its required plane.
  if (constraints != nullptr && !constraints->empty()) {
    for (GateId g = 0; g < netlist.num_gates(); ++g) {
      const int required =
          constraints->fixed_of_gate[static_cast<std::size_t>(g)];
      if (required == kUnassignedPlane) continue;
      if (partition.plane(g) != required) {
        report.verdict = CertifyVerdict::kConstraintViolation;
        report.message = str_format(
            "gate %d ('%s') is constrained to plane %d but sits on plane %d",
            g, netlist.gate(g).name.c_str(), required, partition.plane(g));
        return report;
      }
    }
  }

  // 4. Cost agreement with the engine's claim.
  if (expect != nullptr) {
    const struct {
      const char* name;
      double expected;
      double derived;
    } checks[] = {
        {"f1", expect->terms.f1, report.terms.f1},
        {"f2", expect->terms.f2, report.terms.f2},
        {"f3", expect->terms.f3, report.terms.f3},
        {"f4", expect->terms.f4, report.terms.f4},
        {"total", expect->total, report.total},
    };
    for (const auto& check : checks) {
      if (!close_enough(check.expected, check.derived)) {
        report.verdict = CertifyVerdict::kCostMismatch;
        report.message = str_format(
            "reported %s=%.17g disagrees with the independent re-derivation "
            "%.17g (relative tolerance %g)",
            check.name, check.expected, check.derived, kRelTolerance);
        return report;
      }
    }
  }
  return report;
}

}  // namespace sfqpart
