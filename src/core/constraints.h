// Pinned / grouped gate constraints for the partitioning engines.
//
// The paper partitions every (non-I/O) gate freely, but real floorplans
// carry placement obligations: pad-adjacent logic pinned to the plane
// nearest the pad ring, user-specified regions that must stay together.
// GateConstraints is the user-facing declaration (names, because it is
// typed on a CLI or in a job); compile_constraints() resolves it against
// a concrete Netlist into CompiledConstraints — per-gate fixed planes in
// both netlist and compact indexing — with uniform kInvalidArgument on
// anything infeasible (unknown gate, I/O gate, plane out of range,
// conflicting pins). Groups are *elected* onto a plane at compile time
// (the pinned member's plane when one exists, a deterministic
// least-loaded plane otherwise), so every engine sees one vocabulary:
// a gate is either free or fixed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.h"
#include "util/status.h"

namespace sfqpart {

// User-facing constraint declaration, by gate name.
struct GateConstraints {
  // gate name -> plane index in [0, K). Duplicate pins of the same gate
  // to the same plane are tolerated; to different planes they conflict.
  std::vector<std::pair<std::string, int>> pins;
  // Each group is a set of gate names that must share one plane. A group
  // containing a pinned gate inherits that pin; two pinned members on
  // different planes conflict.
  std::vector<std::vector<std::string>> groups;

  bool empty() const { return pins.empty() && groups.empty(); }
};

// Constraints resolved against one netlist: the only form the engines
// consume. Gates not mentioned by any constraint are free (-1).
struct CompiledConstraints {
  // Indexed by netlist GateId; -1 = free, else the required plane.
  std::vector<int> fixed_of_gate;
  // Indexed by compact gate index (PartitionProblem::from_netlist order:
  // partitionable gates in ascending GateId order); -1 = free.
  std::vector<int> fixed_compact;
  int num_fixed = 0;

  bool empty() const { return num_fixed == 0; }
  // The compact fixed array, or nullptr when no constraint is active —
  // engines thread this pointer so the unconstrained path stays
  // byte-identical to the pre-constraint code.
  const std::vector<int>* compact_or_null() const {
    return empty() ? nullptr : &fixed_compact;
  }
  // Same, netlist-indexed (for engines that never compact).
  const std::vector<int>* gate_or_null() const {
    return empty() ? nullptr : &fixed_of_gate;
  }
};

// Resolves `constraints` against `netlist` for a K-plane partition.
// Fails with kInvalidArgument (never asserts) on: an unknown gate name,
// a pin or group member naming an I/O gate, a plane outside [0, K), or
// two constraints forcing one gate onto different planes. Groups without
// a pinned member are assigned deterministically: groups in declaration
// order of descending total bias (ties by declaration index) go to the
// plane with the least accumulated fixed bias (ties to the lowest
// plane), so reruns and cache replays see identical assignments.
StatusOr<CompiledConstraints> compile_constraints(
    const Netlist& netlist, const GateConstraints& constraints,
    int num_planes);

}  // namespace sfqpart
