#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>

#include "core/certify.h"
#include "core/engine_adapter.h"
#include "netlist/netlist.h"
#include "obs/trace_sink.h"
#include "util/strings.h"

namespace sfqpart {

const char* option_type_name(OptionSpec::Type type) {
  switch (type) {
    case OptionSpec::Type::kBool: return "bool";
    case OptionSpec::Type::kInt: return "int";
    case OptionSpec::Type::kDouble: return "double";
    case OptionSpec::Type::kString: return "string";
  }
  return "unknown";
}

Json OptionSpec::to_json() const {
  Json json = Json::object()
                  .set("name", Json::string(name))
                  .set("type", Json::string(option_type_name(type)));
  if (type == OptionSpec::Type::kString) {
    Json values = Json::array();
    for (const std::string& value : enum_values) {
      values.append(Json::string(value));
    }
    return json.set("default", Json::string(default_text))
        .set("values", std::move(values))
        .set("doc", Json::string(doc));
  }
  if (type == OptionSpec::Type::kBool) {
    json.set("default", Json::boolean(default_value != 0.0));
  } else if (type == OptionSpec::Type::kInt) {
    json.set("default", Json::number(static_cast<long long>(default_value)));
  } else {
    json.set("default", Json::number(default_value));
  }
  if (std::isfinite(min_value)) {
    json.set("min", type == OptionSpec::Type::kDouble
                        ? Json::number(min_value)
                        : Json::number(static_cast<long long>(min_value)));
  }
  if (std::isfinite(max_value)) {
    json.set("max", type == OptionSpec::Type::kDouble
                        ? Json::number(max_value)
                        : Json::number(static_cast<long long>(max_value)));
  }
  return json.set("doc", Json::string(doc));
}

namespace {

// Numeric value of one validated option; bools are 0/1.
Status option_value(const OptionSpec& spec, const Json& value, double& out) {
  if (spec.type == OptionSpec::Type::kBool) {
    if (!value.is_bool()) {
      return Status::invalid_argument(str_format(
          "option '%s' must be a bool", spec.name.c_str()));
    }
    out = value.as_bool() ? 1.0 : 0.0;
    return Status::ok();
  }
  if (!value.is_number()) {
    return Status::invalid_argument(str_format(
        "option '%s' must be a number", spec.name.c_str()));
  }
  const double number = value.as_number();
  if (!std::isfinite(number)) {
    return Status::invalid_argument(str_format(
        "option '%s' must be finite", spec.name.c_str()));
  }
  if (spec.type == OptionSpec::Type::kInt &&
      number != static_cast<double>(static_cast<long long>(number))) {
    return Status::invalid_argument(str_format(
        "option '%s' must be an integer, got %g", spec.name.c_str(), number));
  }
  if (number < spec.min_value || number > spec.max_value) {
    return Status::invalid_argument(str_format(
        "option '%s' = %g is out of range [%g, %g]", spec.name.c_str(),
        number, spec.min_value, spec.max_value));
  }
  out = number;
  return Status::ok();
}

// Text value of one validated kString option: must be a JSON string and a
// member of the spec's closed enum set.
Status option_text(const OptionSpec& spec, const Json& value,
                   std::string& out) {
  if (!value.is_string()) {
    return Status::invalid_argument(
        str_format("option '%s' must be a string", spec.name.c_str()));
  }
  const std::string& text = value.as_string();
  for (const std::string& allowed : spec.enum_values) {
    if (text == allowed) {
      out = text;
      return Status::ok();
    }
  }
  std::string allowed;
  for (const std::string& candidate : spec.enum_values) {
    if (!allowed.empty()) allowed += ", ";
    allowed += candidate;
  }
  return Status::invalid_argument(
      str_format("option '%s' = '%s' is not one of: %s", spec.name.c_str(),
                 text.c_str(), allowed.c_str()));
}

// Writes one resolved option onto the EngineContext field it names.
Status set_context_field(const std::string& name, double value,
                         EngineContext& context) {
  if (name == "planes") context.num_planes = static_cast<int>(value);
  else if (name == "seed") context.seed = static_cast<std::uint64_t>(value);
  else if (name == "restarts") context.restarts = static_cast<int>(value);
  else if (name == "threads") context.threads = static_cast<int>(value);
  else if (name == "refine") context.refine = value != 0.0;
  else if (name == "fast_math") context.fast_math = value != 0.0;
  else if (name == "band") context.band = static_cast<int>(value);
  else if (name == "coarse_target") context.coarse_target = static_cast<int>(value);
  else if (name == "max_levels") context.max_levels = static_cast<int>(value);
  else if (name == "max_passes") context.max_passes = static_cast<int>(value);
  else if (name == "max_gates") context.max_gates = static_cast<int>(value);
  else if (name == "halo") context.halo = static_cast<int>(value);
  else if (name == "compare_scratch") context.compare_scratch = value != 0.0;
  else if (name == "certify") context.certify = value != 0.0;
  else if (name == "c1") context.weights.c1 = value;
  else if (name == "c2") context.weights.c2 = value;
  else if (name == "c3") context.weights.c3 = value;
  else if (name == "c4") context.weights.c4 = value;
  else if (name == "distance_exponent")
    context.weights.distance_exponent = static_cast<int>(value);
  else
    return Status::invalid_argument(str_format(
        "option spec '%s' maps to no EngineContext field", name.c_str()));
  return Status::ok();
}

// String-typed counterpart of set_context_field.
Status set_context_string_field(const std::string& name,
                                const std::string& value,
                                EngineContext& context) {
  if (name == "refine_style") {
    context.refine_style = value;
    return Status::ok();
  }
  return Status::invalid_argument(str_format(
      "option spec '%s' maps to no EngineContext string field", name.c_str()));
}

}  // namespace

Status apply_engine_options(const std::vector<OptionSpec>& specs,
                            const Json& options, EngineContext& context,
                            std::string* canonical) {
  if (!options.is_object() && !options.is_null()) {
    return Status::invalid_argument("options must be a JSON object");
  }
  // Reject unknown names first: a typo'd knob silently keeping its default
  // is the failure mode a serving API cannot afford.
  for (std::size_t i = 0; i < options.size(); ++i) {
    const std::string& key = options.key_at(i);
    bool known = false;
    for (const OptionSpec& spec : specs) known |= spec.name == key;
    if (!known) {
      std::string names;
      for (const OptionSpec& spec : specs) {
        if (!names.empty()) names += ", ";
        names += spec.name;
      }
      return Status::invalid_argument(str_format(
          "unknown option '%s' (known: %s)", key.c_str(), names.c_str()));
    }
  }
  if (canonical != nullptr) canonical->clear();
  for (const OptionSpec& spec : specs) {
    if (spec.type == OptionSpec::Type::kString) {
      std::string text = spec.default_text;
      if (const Json* provided = options.find(spec.name); provided != nullptr) {
        if (Status status = option_text(spec, *provided, text); !status) {
          return status;
        }
      }
      if (Status status = set_context_string_field(spec.name, text, context);
          !status) {
        return status;
      }
      if (canonical != nullptr) {
        *canonical += str_format("%s=%s;", spec.name.c_str(), text.c_str());
      }
      continue;
    }
    double value = spec.default_value;
    if (const Json* provided = options.find(spec.name); provided != nullptr) {
      if (Status status = option_value(spec, *provided, value); !status) {
        return status;
      }
    }
    if (Status status = set_context_field(spec.name, value, context); !status) {
      return status;
    }
    // "threads" is excluded from the canonical form: the determinism
    // contract makes results bit-identical at any thread count, so two
    // jobs differing only in their thread budget are the same result.
    if (canonical != nullptr && spec.name != "threads") {
      *canonical += str_format("%s=%.17g;", spec.name.c_str(), value);
    }
  }
  return Status::ok();
}

Status EngineContext::validate() const {
  if (num_planes < 2) {
    return Status::invalid_argument(
        str_format("num_planes must be >= 2, got %d", num_planes));
  }
  if (restarts < 1) {
    return Status::invalid_argument(
        str_format("restarts must be >= 1, got %d", restarts));
  }
  if (threads < 0) {
    return Status::invalid_argument(
        str_format("threads must be >= 0 (0 = hardware concurrency), got %d",
                   threads));
  }
  if (!std::isfinite(weights.c1) || !std::isfinite(weights.c2) ||
      !std::isfinite(weights.c3) || !std::isfinite(weights.c4)) {
    return Status::invalid_argument("cost weights must be finite");
  }
  if (weights.distance_exponent < 1) {
    return Status::invalid_argument(
        str_format("distance_exponent must be >= 1, got %d",
                   weights.distance_exponent));
  }
  if (band < 1) {
    return Status::invalid_argument(
        str_format("band must be >= 1, got %d", band));
  }
  if (coarse_target < 1) {
    return Status::invalid_argument(
        str_format("coarse_target must be >= 1, got %d", coarse_target));
  }
  if (max_levels < 1) {
    return Status::invalid_argument(
        str_format("max_levels must be >= 1, got %d", max_levels));
  }
  if (max_passes < 1) {
    return Status::invalid_argument(
        str_format("max_passes must be >= 1, got %d", max_passes));
  }
  if (max_gates < 1) {
    return Status::invalid_argument(
        str_format("max_gates must be >= 1, got %d", max_gates));
  }
  if (halo < 0) {
    return Status::invalid_argument(
        str_format("halo must be >= 0, got %d", halo));
  }
  if (refine_style != "banded" && refine_style != "buckets") {
    return Status::invalid_argument(
        str_format("refine_style must be 'banded' or 'buckets', got '%s'",
                   refine_style.c_str()));
  }
  return Status::ok();
}

double EngineRun::counter(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0.0;
}

namespace {

// The registry's backing store. A function-local static (not namespace-scope
// static-init self-registration, which a static-library link may drop): the
// built-ins are registered on first use, and std::map keeps names() sorted
// without re-sorting on every call.
struct RegistryState {
  std::mutex mutex;
  std::map<std::string, EngineRegistry::Factory> factories;
};

RegistryState& registry_state() {
  static RegistryState* state = [] {
    auto* s = new RegistryState;
    using namespace engine_detail;
    s->factories.emplace("gradient", make_gradient_engine);
    s->factories.emplace("multilevel", make_multilevel_engine);
    s->factories.emplace("vcycle", make_vcycle_engine);
    s->factories.emplace("annealing", make_annealing_engine);
    s->factories.emplace("fm_kway", make_fm_kway_engine);
    s->factories.emplace("layered", make_layered_engine);
    s->factories.emplace("random", make_random_engine);
    s->factories.emplace("exact", make_exact_engine);
    s->factories.emplace("eco", make_eco_engine);
    return s;
  }();
  return *state;
}

}  // namespace

Status EngineRegistry::register_engine(const std::string& name,
                                       Factory factory) {
  if (name.empty()) {
    return Status::invalid_argument("engine name must not be empty");
  }
  if (factory == nullptr) {
    return Status::invalid_argument(
        str_format("engine '%s': factory must not be null", name.c_str()));
  }
  RegistryState& state = registry_state();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const auto [it, inserted] = state.factories.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::invalid_argument(
        str_format("engine '%s' is already registered", name.c_str()));
  }
  return Status::ok();
}

std::vector<std::string> EngineRegistry::names() {
  RegistryState& state = registry_state();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<std::string> names;
  names.reserve(state.factories.size());
  for (const auto& [name, factory] : state.factories) names.push_back(name);
  return names;
}

StatusOr<std::unique_ptr<PartitionEngine>> EngineRegistry::create(
    const std::string& name) {
  Factory factory;
  {
    RegistryState& state = registry_state();
    const std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.factories.find(name);
    if (it == state.factories.end()) {
      std::string available;
      for (const auto& [known, unused] : state.factories) {
        if (!available.empty()) available += ", ";
        available += known;
      }
      return Status::not_found(str_format("unknown engine '%s' (available: %s)",
                                          name.c_str(), available.c_str()));
    }
    factory = it->second;
  }
  std::unique_ptr<PartitionEngine> engine = factory();
  if (engine == nullptr) {
    return Status::error(
        str_format("engine '%s': factory returned null", name.c_str()));
  }
  return engine;
}

namespace engine_detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

OptionSpec make_spec(const char* name, OptionSpec::Type type,
                     double default_value, double min_value, double max_value,
                     const char* doc) {
  OptionSpec spec;
  spec.name = name;
  spec.type = type;
  spec.default_value = default_value;
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.doc = doc;
  return spec;
}

}  // namespace

void apply_warm_overrides(const Netlist& netlist, const std::vector<int>* warm,
                          Partition& partition) {
  if (warm == nullptr) return;
  std::size_t compact = 0;
  for (GateId gate = 0; gate < netlist.num_gates(); ++gate) {
    if (!netlist.is_partitionable(gate)) continue;
    const int label = (*warm)[compact++];
    if (label != kUnassignedPlane) {
      partition.plane_of[static_cast<std::size_t>(gate)] = label;
    }
  }
}

OptionSpec planes_spec() {
  return make_spec("planes", OptionSpec::Type::kInt, 5, 2, 1024,
                   "number of ground planes K");
}

OptionSpec seed_spec() {
  return make_spec("seed", OptionSpec::Type::kInt, 1, 0, 9.007199254740992e15,
                   "random seed; results are deterministic per seed");
}

OptionSpec restarts_spec() {
  return make_spec("restarts", OptionSpec::Type::kInt, 3, 1, 4096,
                   "independent random restarts; best discrete cost wins");
}

OptionSpec threads_spec() {
  return make_spec("threads", OptionSpec::Type::kInt, 1, 0, 512,
                   "worker threads (0 = hardware concurrency); never changes "
                   "the result");
}

OptionSpec refine_spec() {
  return make_spec("refine", OptionSpec::Type::kBool, 0, -kInf, kInf,
                   "post-hardening greedy refinement (not part of the "
                   "published algorithm)");
}

OptionSpec fast_math_spec() {
  return make_spec("fast_math", OptionSpec::Type::kBool, 0, -kInf, kInf,
                   "reassociated vector reductions in the gradient hot path; "
                   "trades the bit-identity pin for speed within a tested "
                   "tolerance (no-op on the scalar kernel tier)");
}

OptionSpec certify_spec() {
  return make_spec("certify", OptionSpec::Type::kBool, kCertifyDefault ? 1 : 0,
                   -kInf, kInf,
                   "independently re-derive and check the result "
                   "(core/certify.h); the run fails on any non-valid verdict");
}

OptionSpec band_spec() {
  return make_spec("band", OptionSpec::Type::kInt, 1, 1, 1023,
                   "plane radius of the banded uncoarsening refinement");
}

OptionSpec coarse_target_spec() {
  return make_spec("coarse_target", OptionSpec::Type::kInt, 1024, 16, 1048576,
                   "stop coarsening at this many vertices; the gradient "
                   "descent runs on the coarsest level only");
}

OptionSpec max_levels_spec() {
  return make_spec("max_levels", OptionSpec::Type::kInt, 64, 1, 128,
                   "maximum coarsening levels");
}

OptionSpec max_passes_spec() {
  return make_spec("max_passes", OptionSpec::Type::kInt, 8, 1, 4096,
                   "maximum banded refinement passes per level");
}

OptionSpec max_gates_spec() {
  return make_spec("max_gates", OptionSpec::Type::kInt, 20, 1, 64,
                   "largest partitionable gate count the exhaustive search "
                   "accepts (cost grows as K^G)");
}

OptionSpec refine_style_spec() {
  OptionSpec spec;
  spec.name = "refine_style";
  spec.type = OptionSpec::Type::kString;
  spec.default_text = "banded";
  spec.enum_values = {"banded", "buckets"};
  spec.doc =
      "uncoarsening refinement flavor: 'banded' parallel propose/commit "
      "sweeps or 'buckets' serial FM-style best-gain moves";
  return spec;
}

OptionSpec halo_spec() {
  return make_spec("halo", OptionSpec::Type::kInt, 2, 0, 64,
                   "adjacency hops beyond the dirty region the restricted "
                   "refinement may still move");
}

std::vector<OptionSpec> weight_specs() {
  return {
      make_spec("c1", OptionSpec::Type::kDouble, CostWeights{}.c1, -kInf, kInf,
                "weight of the F1 locality term"),
      make_spec("c2", OptionSpec::Type::kDouble, CostWeights{}.c2, -kInf, kInf,
                "weight of the F2 bias-balance term"),
      make_spec("c3", OptionSpec::Type::kDouble, CostWeights{}.c3, -kInf, kInf,
                "weight of the F3 area-balance term"),
      make_spec("c4", OptionSpec::Type::kDouble, CostWeights{}.c4, -kInf, kInf,
                "weight of the F4 one-hot pressure term"),
      make_spec("distance_exponent", OptionSpec::Type::kInt,
                CostWeights{}.distance_exponent, 1, 12,
                "plane-distance exponent of the F1 term"),
  };
}

namespace {

// Rewrites the outermost RunInfo::engine to the registry name and forwards
// everything else untouched, so a RunReport attached through the registry
// carries the name the engine was created under (e.g. "gradient" rather
// than the Solver's internal "solver"). Nested run_start events (the
// multilevel driver forwards its coarse Solver's stream) keep their own
// engine tag. Delivery is already serialized by the engine's TraceSink, so
// the depth counter needs no lock.
class EngineNameObserver final : public obs::SolverObserver {
 public:
  EngineNameObserver(obs::SolverObserver* inner, const char* engine)
      : inner_(inner), engine_(engine) {}

  void on_run_start(const obs::RunInfo& e) override {
    if (runs_seen_++ == 0) {
      obs::RunInfo renamed = e;
      renamed.engine = engine_;
      inner_->on_run_start(renamed);
      return;
    }
    inner_->on_run_start(e);
  }
  void on_restart_start(const obs::RestartStartEvent& e) override {
    inner_->on_restart_start(e);
  }
  void on_iteration(const obs::IterationEvent& e) override {
    inner_->on_iteration(e);
  }
  void on_harden(const obs::HardenEvent& e) override { inner_->on_harden(e); }
  void on_refine_pass(const obs::RefinePassEvent& e) override {
    inner_->on_refine_pass(e);
  }
  void on_restart_end(const obs::RestartEndEvent& e) override {
    inner_->on_restart_end(e);
  }
  void on_level(const obs::LevelEvent& e) override { inner_->on_level(e); }
  void on_timer(const obs::TimerEvent& e) override { inner_->on_timer(e); }
  void on_counter(const obs::CounterEvent& e) override {
    inner_->on_counter(e);
  }
  void on_run_end(const obs::RunEndEvent& e) override {
    inner_->on_run_end(e);
  }

 private:
  obs::SolverObserver* inner_;
  const char* engine_;
  int runs_seen_ = 0;
};

}  // namespace

StatusOr<EngineRun> EngineAdapter::run(const Netlist& netlist,
                                       const EngineContext& context) const {
  if (Status status = context.validate(); !status) {
    return Status::invalid_argument(
        str_format("engine '%s': %s", name(), status.message().c_str()));
  }
  const PartitionProblem problem =
      PartitionProblem::from_netlist(netlist, context.num_planes);
  if (problem.num_gates < 1) {
    return Status::invalid_argument(str_format(
        "engine '%s': the netlist has no partitionable gates", name()));
  }
  StatusOr<CompiledConstraints> compiled =
      compile_constraints(netlist, context.constraints, context.num_planes);
  if (!compiled) {
    return Status::invalid_argument(
        str_format("engine '%s': %s", name(), compiled.status().message().c_str()));
  }

  // Warm start: validated once here, like the constraints, so every engine
  // sees a clean compact labeling (-1 = unassigned). Pins win over warm
  // labels — a pinned gate carries its pin in the compact view.
  std::vector<int> warm_compact;
  const std::vector<int>* warm = nullptr;
  int warm_assigned = 0;
  if (context.warm_start != nullptr) {
    const InitialPartition& seed = *context.warm_start;
    if (static_cast<int>(seed.plane_of.size()) != netlist.num_gates()) {
      return Status::invalid_argument(str_format(
          "engine '%s': warm start covers %d gates, netlist has %d", name(),
          static_cast<int>(seed.plane_of.size()), netlist.num_gates()));
    }
    warm_compact.reserve(static_cast<std::size_t>(problem.num_gates));
    for (int i = 0; i < problem.num_gates; ++i) {
      const GateId gate = problem.gate_ids[static_cast<std::size_t>(i)];
      int label = seed.plane(gate);
      if (label != kUnassignedPlane &&
          (label < 0 || label >= context.num_planes)) {
        return Status::invalid_argument(str_format(
            "engine '%s': warm start labels gate %d with plane %d, valid "
            "range is [0, %d)",
            name(), gate, label, context.num_planes));
      }
      const int pinned = compiled->fixed_compact.empty()
                             ? kUnassignedPlane
                             : compiled->fixed_compact[static_cast<std::size_t>(i)];
      if (pinned != kUnassignedPlane) label = pinned;
      if (label != kUnassignedPlane) ++warm_assigned;
      warm_compact.push_back(label);
    }
    warm = &warm_compact;
  }

  EngineNameObserver renamed(context.observer, name());
  EngineContext inner = context;
  inner.observer = context.observer != nullptr ? &renamed : nullptr;

  // Lifecycle narration for engines whose legacy implementation emits no
  // events of its own (layered, random): one run with one "restart", so
  // --report-json carries an `engine` field for every registry engine.
  obs::TraceSink sink(self_observing() ? nullptr : inner.observer);
  if (sink.enabled()) {
    obs::RunInfo info;
    info.engine = name();
    info.num_planes = context.num_planes;
    info.restarts = 1;
    info.threads = 1;
    info.seed = context.seed;
    info.weights = context.weights;
    info.problem_gates = problem.num_gates;
    info.problem_edges = static_cast<long long>(problem.edges.size());
    sink.run_start(info);
    sink.restart_start({0});
  }

  const auto start = std::chrono::steady_clock::now();
  EngineRun result;
  if (warm != nullptr) {
    result.counters.emplace_back("warm_start", 1.0);
    result.counters.emplace_back("warm_assigned",
                                 static_cast<double>(warm_assigned));
  }
  StatusOr<Partition> partition =
      solve(netlist, inner, *compiled, warm, result.counters);
  if (!partition) return partition.status();
  result.partition = *std::move(partition);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  // Normalize the score with the *shared* discrete cost model so rows from
  // different engines are directly comparable regardless of the objective
  // the engine itself optimized.
  const CostModel model(problem, context.weights);
  std::vector<int> labels;
  labels.reserve(static_cast<std::size_t>(problem.num_gates));
  for (GateId gate : problem.gate_ids) {
    labels.push_back(result.partition.plane(gate));
  }
  result.discrete_terms = model.evaluate_discrete(labels);
  result.discrete_total = result.discrete_terms.total(context.weights);

  // Quality floor of a fully-assigned warm start: if the engine somehow
  // scored worse than its own seed, return the seed labels instead. The
  // fallback runs before certification so the certified labels are the
  // returned labels.
  if (warm != nullptr && warm_assigned == problem.num_gates) {
    const CostTerms seed_terms = model.evaluate_discrete(warm_compact);
    const double seed_total = seed_terms.total(context.weights);
    if (seed_total < result.discrete_total) {
      result.partition = problem.to_partition(warm_compact, netlist.num_gates());
      result.discrete_terms = seed_terms;
      result.discrete_total = seed_total;
      result.counters.emplace_back("warm_start_kept", 1.0);
    }
  }

  // Independent certification (core/certify.h): re-derive the cost and
  // the physical quantities from the raw netlist through a separate code
  // path and reject the run on any non-valid verdict. The verdict is
  // recorded as counters either way, so run_report.v2 carries it.
  if (context.certify) {
    CertifyExpectation expect;
    expect.terms = result.discrete_terms;
    expect.total = result.discrete_total;
    const CertifyReport cert =
        certify_partition(netlist, result.partition, context.num_planes,
                          context.weights, &expect, &*compiled);
    result.counters.emplace_back("certified", 1.0);
    result.counters.emplace_back("certify_verdict",
                                 static_cast<double>(cert.verdict));
    if (inner.observer != nullptr) {
      inner.observer->on_counter({"certified", 1});
      inner.observer->on_counter(
          {"certify_verdict", static_cast<long long>(cert.verdict)});
    }
    if (!cert.valid()) {
      return Status::error(str_format(
          "engine '%s': certification failed (%s): %s", name(),
          certify_verdict_name(cert.verdict), cert.message.c_str()));
    }
  }

  if (sink.enabled()) {
    obs::RestartEndEvent restart_end;
    restart_end.restart = 0;
    restart_end.discrete_terms = result.discrete_terms;
    restart_end.discrete_total = result.discrete_total;
    sink.restart_end(restart_end);
    obs::RunEndEvent run_end;
    run_end.winning_restart = 0;
    run_end.discrete_total = result.discrete_total;
    sink.run_end(run_end);
  }
  return result;
}

}  // namespace engine_detail

}  // namespace sfqpart
