// Heavy-edge-matching coarsening — the level builder behind the
// multilevel and V-cycle engines.
//
// Extracted from core/multilevel.cpp so every multilevel-style engine
// shares one implementation: coarsen_once() contracts a matching of the
// (multi-)graph into the next coarser PartitionProblem, and
// build_level_stack() iterates it into an explicit LevelStack — the
// per-level problems plus the fine->coarse projection arrays the
// uncoarsening sweep walks back up.
//
// Two match-visit orders are provided:
//
//  * kLegacyShuffle reproduces the historical multilevel engine bit for
//    bit: the visit order is an Rng shuffle, coarse ids are assigned in
//    that same shuffled order, and the Rng draws happen even for a level
//    the stall check later discards. The golden-label parity tests in
//    tests/core/engine_test.cpp pin this path.
//  * kDegreeSorted is the determinism-contract order the V-cycle uses:
//    vertices are visited by descending weighted degree (parallel edges
//    counted with multiplicity) with ascending-index tie-break. No Rng is
//    consumed, so the level shape is a pure function of the graph — the
//    historical Rng-shuffled order made level shape depend on how many
//    draws earlier stages had consumed, which is exactly the
//    iteration-order dependence the determinism contract (DESIGN.md
//    section 7) forbids.
//
// Matching itself is the classic heavy-edge rule: visit vertices in
// order, match each unmatched vertex to its unmatched neighbor of
// maximal edge weight (first such neighbor in adjacency order wins
// ties), merge matched pairs, keep inter-cluster edges with
// multiplicity. Bias and area accumulate through merges, so every coarse
// problem optimizes the same F1..F3 objective.
#pragma once

#include <functional>
#include <vector>

#include "core/partition.h"

namespace sfqpart {

class ProblemView;
class Rng;

enum class MatchOrder {
  kLegacyShuffle,  // Rng-shuffled visit order (bit-compatible legacy path)
  kDegreeSorted,   // weighted-degree-descending, index tie-break; Rng-free
};

// One coarsening step: the coarser problem plus the projection array.
// parent_of_fine is total (every fine vertex has a coarse parent) and
// onto (every coarse id 0..num_gates-1 owns at least one fine vertex).
struct CoarseLevel {
  PartitionProblem problem;
  std::vector<int> parent_of_fine;  // fine vertex -> coarse vertex
  // Coarse-level fixed planes (-1 = free), present only when the fine
  // level was coarsened under constraints: a merged vertex inherits the
  // fixed plane of its pinned child (matching never pairs two vertices
  // pinned to different planes, so the inheritance is conflict-free).
  std::vector<int> fixed;

  // Projects labels of this level's coarse problem onto its fine problem.
  std::vector<int> project(const std::vector<int>& coarse_labels) const;
};

struct CoarsenOptions {
  // Stop coarsening at this many vertices (never below 4*K).
  int coarse_target = 160;
  // Safety cap on coarsening levels.
  int max_levels = 20;
  // Stop when a level shrinks by less than this percentage (matching
  // stalls on star-shaped graphs).
  int min_shrink_percent = 5;
  MatchOrder order = MatchOrder::kLegacyShuffle;
};

// The explicit level hierarchy. levels[i] coarsens problem i into problem
// i+1, where problem 0 is the caller's finest problem and problem i+1 is
// levels[i].problem; levels.back().problem is the coarsest.
struct LevelStack {
  std::vector<CoarseLevel> levels;

  int num_levels() const { return static_cast<int>(levels.size()); }
  const PartitionProblem& coarsest(const PartitionProblem& finest) const {
    return levels.empty() ? finest : levels.back().problem;
  }
  // The coarsest level's fixed-plane array (null when unconstrained);
  // `finest_fixed` is the caller's finest-level array, returned verbatim
  // when no coarsening happened.
  const std::vector<int>* coarsest_fixed(
      const std::vector<int>* finest_fixed) const {
    if (levels.empty()) return finest_fixed;
    return levels.back().fixed.empty() ? nullptr : &levels.back().fixed;
  }
};

// One heavy-edge-matching contraction of the viewed problem. `rng` is
// consumed (one shuffle) only by kLegacyShuffle and may be null for
// kDegreeSorted. `fixed` (per fine vertex, -1 = free; null =
// unconstrained) forbids matching two vertices pinned to different
// planes and fills CoarseLevel::fixed.
CoarseLevel coarsen_once(const ProblemView& fine, MatchOrder order,
                         Rng* rng = nullptr,
                         const std::vector<int>* fixed = nullptr);

// Builds the full hierarchy: repeat coarsen_once until the vertex count
// reaches max(coarse_target, 4*K), max_levels is hit, or matching stalls
// (a discarded stalled level still consumes its kLegacyShuffle Rng draws,
// preserving the legacy draw sequence). `on_level` (optional) observes
// each accepted level: (1-based level index, the coarse problem).
// `fixed` pins finest-level vertices; the pins propagate level by level.
LevelStack build_level_stack(
    const PartitionProblem& finest, const CoarsenOptions& options,
    Rng* rng = nullptr,
    const std::function<void(int, const PartitionProblem&)>& on_level = {},
    const std::vector<int>* fixed = nullptr);

}  // namespace sfqpart
