// Incremental evaluation of single-gate moves against the discrete
// weighted cost (c1*F1 + c2*F2 + c3*F3; F4 is constant over one-hot
// assignments). Shared by the greedy refinement pass, the simulated
// annealer and the multilevel refiner: delta() is O(degree), apply() is
// O(1).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/cost_model.h"

namespace sfqpart {

class MoveEvaluator {
 public:
  // Keeps references to `model`'s problem; `labels` is copied and evolves
  // through apply().
  MoveEvaluator(const CostModel& model, std::vector<int> labels);

  const std::vector<int>& labels() const { return labels_; }
  int label(int gate) const { return labels_[static_cast<std::size_t>(gate)]; }
  int num_planes() const { return num_planes_; }
  int num_gates() const { return static_cast<int>(labels_.size()); }

  // Weighted-cost change of moving `gate` to `target` (0 when already there).
  double delta(int gate, int target) const;

  // Commits the move, updating the incremental aggregates.
  void apply(int gate, int target);

  // Exact discrete cost of the current labels (recomputed, for checks).
  double current_cost() const;

  // Borrowed CSR neighbor range of `gate` (ascending edge order; parallel
  // edges appear with multiplicity). For refiners that must requeue a
  // moved gate's neighborhood (bucket_refine, the eco engine).
  std::pair<const std::int32_t*, const std::int32_t*> neighbors(
      int gate) const {
    const auto g = static_cast<std::size_t>(gate);
    return {neighbor_adj_ + neighbor_offsets_[g],
            neighbor_adj_ + neighbor_offsets_[g + 1]};
  }

 private:
  const CostModel* model_;
  std::vector<int> labels_;
  int num_planes_;
  // CSR adjacency, borrowed from the model's shared ProblemView: gate i's
  // neighbors are neighbor_adj_[neighbor_offsets_[i] ..
  // neighbor_offsets_[i+1]), in ascending edge order — the same order the
  // historical vector-of-vectors push_back produced, so delta()'s F1
  // accumulation is bit-identical. Sharing the view instead of rebuilding
  // it means constructing an evaluator per V-cycle level costs no second
  // O(E) pass and no second copy of the adjacency.
  const std::uint32_t* neighbor_offsets_;  // size G + 1
  const std::int32_t* neighbor_adj_;       // size 2|E|
  std::vector<double> plane_bias_;
  std::vector<double> plane_area_;
  double mean_bias_ = 0.0;
  double mean_area_ = 0.0;
  double f1_coef_ = 0.0;
  double f2_coef_ = 0.0;
  double f3_coef_ = 0.0;
};

}  // namespace sfqpart
