#include "core/coarsen.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/problem_view.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

// Per-vertex (neighbor, multiplicity) lists in the historical append
// order the legacy coarsener produced by globally sorting canonicalized
// edges: for vertex v, neighbors u < v in ascending u first, then
// neighbors u > v in ascending u. Matching tie-breaks on list order, so
// this order is part of the golden-label contract.
struct WeightedAdjacency {
  std::vector<std::uint32_t> offsets;        // size n + 1
  std::vector<std::pair<int, int>> entries;  // (neighbor, weight)
};

WeightedAdjacency weighted_adjacency(const ProblemView& fine) {
  const int n = fine.num_gates();
  const std::uint32_t* offsets = fine.offsets();
  const std::int32_t* adj = fine.neighbors();

  WeightedAdjacency out;
  out.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  out.entries.reserve(2 * fine.num_edges());

  // Stamp-accumulate each vertex's parallel-edge multiplicities from the
  // shared CSR view, then sort its few entries into the historical order.
  // O(E log d) total instead of the legacy global edge sort's O(E log E).
  std::vector<int> slot_of(static_cast<std::size_t>(n), -1);
  std::vector<std::pair<int, int>> scratch;
  for (int v = 0; v < n; ++v) {
    scratch.clear();
    for (std::uint32_t s = offsets[v]; s < offsets[v + 1]; ++s) {
      const int u = adj[s];
      int& slot = slot_of[static_cast<std::size_t>(u)];
      if (slot < 0) {
        slot = static_cast<int>(scratch.size());
        scratch.emplace_back(u, 1);
      } else {
        ++scratch[static_cast<std::size_t>(slot)].second;
      }
    }
    for (const auto& [u, weight] : scratch) {
      slot_of[static_cast<std::size_t>(u)] = -1;
    }
    std::sort(scratch.begin(), scratch.end(),
              [v](const std::pair<int, int>& a, const std::pair<int, int>& b) {
                const bool a_low = a.first < v;
                const bool b_low = b.first < v;
                if (a_low != b_low) return a_low;
                return a.first < b.first;
              });
    out.entries.insert(out.entries.end(), scratch.begin(), scratch.end());
    out.offsets[static_cast<std::size_t>(v) + 1] =
        static_cast<std::uint32_t>(out.entries.size());
  }
  return out;
}

}  // namespace

std::vector<int> CoarseLevel::project(
    const std::vector<int>& coarse_labels) const {
  std::vector<int> fine_labels(parent_of_fine.size());
  for (std::size_t v = 0; v < fine_labels.size(); ++v) {
    fine_labels[v] =
        coarse_labels[static_cast<std::size_t>(parent_of_fine[v])];
  }
  return fine_labels;
}

CoarseLevel coarsen_once(const ProblemView& fine, MatchOrder order, Rng* rng,
                         const std::vector<int>* fixed) {
  const int n = fine.num_gates();
  const PartitionProblem& problem = fine.problem();
  const WeightedAdjacency adjacency = weighted_adjacency(fine);

  std::vector<int> visit(static_cast<std::size_t>(n));
  std::iota(visit.begin(), visit.end(), 0);
  if (order == MatchOrder::kLegacyShuffle) {
    assert(rng != nullptr && "kLegacyShuffle consumes one Rng shuffle");
    rng->shuffle(visit);
  } else {
    // Pinned order: heaviest vertices first, index tie-break. A pure
    // function of the graph — no Rng draw, no dependence on how many
    // draws earlier stages consumed.
    std::sort(visit.begin(), visit.end(), [&fine](int a, int b) {
      const std::uint32_t da = fine.degree(a);
      const std::uint32_t db = fine.degree(b);
      if (da != db) return da > db;
      return a < b;
    });
  }

  // Heavy-edge matching in visit order; the first maximal-weight
  // unmatched neighbor in adjacency order wins ties.
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  for (const int v : visit) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    int best = -1;
    int best_weight = 0;
    for (std::uint32_t s = adjacency.offsets[static_cast<std::size_t>(v)];
         s < adjacency.offsets[static_cast<std::size_t>(v) + 1]; ++s) {
      const auto& [u, weight] = adjacency.entries[s];
      if (u == v || match[static_cast<std::size_t>(u)] >= 0) continue;
      if (fixed != nullptr) {
        // Never contract two vertices pinned to different planes — the
        // merged vertex could not honor both pins.
        const int fv = (*fixed)[static_cast<std::size_t>(v)];
        const int fu = (*fixed)[static_cast<std::size_t>(u)];
        if (fv >= 0 && fu >= 0 && fv != fu) continue;
      }
      if (weight > best_weight) {
        best_weight = weight;
        best = u;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  // Contract matched pairs; coarse ids are assigned in visit order.
  CoarseLevel level;
  level.parent_of_fine.assign(static_cast<std::size_t>(n), -1);
  PartitionProblem& coarse = level.problem;
  coarse.num_planes = problem.num_planes;
  for (const int v : visit) {
    const auto uv = static_cast<std::size_t>(v);
    if (level.parent_of_fine[uv] >= 0) continue;
    const int partner = match[uv];
    const int coarse_id = coarse.num_gates++;
    level.parent_of_fine[uv] = coarse_id;
    if (partner != v) {
      level.parent_of_fine[static_cast<std::size_t>(partner)] = coarse_id;
    }
    coarse.bias.push_back(
        problem.bias[uv] +
        (partner != v ? problem.bias[static_cast<std::size_t>(partner)] : 0.0));
    coarse.area.push_back(
        problem.area[uv] +
        (partner != v ? problem.area[static_cast<std::size_t>(partner)] : 0.0));
    // gate_ids at coarse levels index the *fine* problem's vertices (the
    // representative); only the finest level's ids refer to the netlist.
    coarse.gate_ids.push_back(v);
    if (fixed != nullptr) {
      int plane = (*fixed)[uv];
      if (plane < 0 && partner != v) {
        plane = (*fixed)[static_cast<std::size_t>(partner)];
      }
      level.fixed.push_back(plane);
    }
  }
  for (const auto& [a, b] : problem.edges) {
    const int ca = level.parent_of_fine[static_cast<std::size_t>(a)];
    const int cb = level.parent_of_fine[static_cast<std::size_t>(b)];
    if (ca != cb) coarse.edges.emplace_back(ca, cb);  // keep multiplicity
  }
  return level;
}

LevelStack build_level_stack(
    const PartitionProblem& finest, const CoarsenOptions& options, Rng* rng,
    const std::function<void(int, const PartitionProblem&)>& on_level,
    const std::vector<int>* fixed) {
  LevelStack stack;
  const PartitionProblem* current = &finest;
  const std::vector<int>* current_fixed = fixed;
  const int floor_size = std::max(options.coarse_target, 4 * finest.num_planes);
  const int keep_percent = 100 - options.min_shrink_percent;
  while (current->num_gates > floor_size &&
         stack.num_levels() < options.max_levels) {
    const ProblemView view(*current);
    CoarseLevel level = coarsen_once(view, options.order, rng, current_fixed);
    // Matching can stall on star-shaped graphs; stop when progress fades.
    // (A discarded level has already consumed its kLegacyShuffle draws —
    // deliberately, to preserve the legacy Rng sequence for the stages
    // that share the Rng downstream.)
    if (level.problem.num_gates > current->num_gates * keep_percent / 100) {
      break;
    }
    stack.levels.push_back(std::move(level));
    current = &stack.levels.back().problem;
    current_fixed =
        stack.levels.back().fixed.empty() ? nullptr : &stack.levels.back().fixed;
    if (on_level) on_level(stack.num_levels(), *current);
  }
  return stack;
}

}  // namespace sfqpart
