#include "core/problem_view.h"

namespace sfqpart {

ProblemView::ProblemView(const PartitionProblem& problem) : problem_(&problem) {
  const auto gates = static_cast<std::size_t>(problem.num_gates);
  const std::size_t edges = problem.edges.size();

  // Degree count, prefix sum, then one cursor fill in ascending edge
  // order. The fill writes the neighbor array and records each edge's two
  // slots in the same pass, so the neighbor CSR and the incidence slots
  // are one structure by construction: neighbors()[slot_of_first()[e]]
  // is edges[e].second and vice versa.
  offsets_.assign(gates + 1, 0);
  for (const auto& [a, b] : problem.edges) {
    ++offsets_[static_cast<std::size_t>(a) + 1];
    ++offsets_[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t i = 1; i <= gates; ++i) offsets_[i] += offsets_[i - 1];

  neighbors_.resize(2 * edges);
  slot_of_first_.resize(edges);
  slot_of_second_.resize(edges);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto& [a, b] = problem.edges[e];
    const std::uint32_t sa = cursor[static_cast<std::size_t>(a)]++;
    const std::uint32_t sb = cursor[static_cast<std::size_t>(b)]++;
    slot_of_first_[e] = sa;
    slot_of_second_[e] = sb;
    neighbors_[sa] = b;
    neighbors_[sb] = a;
  }
}

}  // namespace sfqpart
