// Internal scaffolding for the built-in PartitionEngine adapters.
//
// EngineAdapter is the template method behind every built-in engine: it
// validates the context once, compacts the problem, delegates the actual
// solve to the subclass hook, then normalizes the outcome into an
// EngineRun — discrete CostTerms from the shared CostModel (so rows from
// different engines are directly comparable), wall-clock, and the
// subclass's counters. Engines whose legacy implementation does not
// narrate an observer stream (layered, random) get a minimal run
// lifecycle emitted here, so a RunReport carries the `engine` field for
// every registry engine.
//
// Not part of the public surface; include core/engine.h instead.
#pragma once

#include "core/engine.h"

namespace sfqpart::engine_detail {

class EngineAdapter : public PartitionEngine {
 public:
  StatusOr<EngineRun> run(const Netlist& netlist,
                          const EngineContext& context) const final;

 protected:
  // The actual solve. `counters` receives the engine-specific tallies
  // (iterations, moves_tried, final_cut, ...); the context's observer has
  // already been wrapped to rewrite the outermost RunInfo::engine to the
  // registry name. `constraints` is the context's pin/group declaration
  // compiled against this netlist (empty when unconstrained — engines
  // must then behave bit-identically to the unconstrained code path).
  // `warm` is the context's warm start compacted to problem indices
  // (-1 = unassigned), already validated and with pins folded in (a
  // pinned gate carries its pin, not its warm label); null when the
  // context has no warm start — engines must then behave bit-identically
  // to the cold code path.
  virtual StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const = 0;

  // False for engines whose underlying implementation emits no observer
  // events of its own; the adapter then narrates run/restart lifecycle
  // around solve().
  virtual bool self_observing() const { return true; }
};

// Overwrites `partition` with the assigned entries of the compact warm
// labeling (compact index i = i-th partitionable gate in ascending GateId
// order); no-op when `warm` is null. For the constructive engines
// (layered, random) that have no search to seed — the warm labels simply
// replace the heuristic's output where assigned.
void apply_warm_overrides(const Netlist& netlist, const std::vector<int>* warm,
                          Partition& partition);

// Shared OptionSpec builders for the EngineContext knobs, so the seven
// adapters advertise identical specs for the knobs they have in common.
OptionSpec planes_spec();
OptionSpec seed_spec();
OptionSpec restarts_spec();
OptionSpec threads_spec();
OptionSpec refine_spec();
// fast_math kernel variants (gradient engine).
OptionSpec fast_math_spec();
// Independent result certification (core/certify.h); advertised by every
// engine so the daemon accepts the knob uniformly.
OptionSpec certify_spec();
// V-cycle shape knobs (vcycle engine).
OptionSpec band_spec();
OptionSpec coarse_target_spec();
OptionSpec max_levels_spec();
OptionSpec max_passes_spec();
// Instance-size cap of the exhaustive engine.
OptionSpec max_gates_spec();
// Uncoarsening refinement flavor of the vcycle engine ("banded"|"buckets").
OptionSpec refine_style_spec();
// Dirty-region halo radius of the eco engine.
OptionSpec halo_spec();
// c1..c4 and distance_exponent of the shared weighted objective.
std::vector<OptionSpec> weight_specs();

// Built-in engine factories (one adapter per file).
std::unique_ptr<PartitionEngine> make_gradient_engine();
std::unique_ptr<PartitionEngine> make_multilevel_engine();
std::unique_ptr<PartitionEngine> make_vcycle_engine();
std::unique_ptr<PartitionEngine> make_annealing_engine();
std::unique_ptr<PartitionEngine> make_fm_kway_engine();
std::unique_ptr<PartitionEngine> make_layered_engine();
std::unique_ptr<PartitionEngine> make_random_engine();
std::unique_ptr<PartitionEngine> make_exact_engine();
std::unique_ptr<PartitionEngine> make_eco_engine();

}  // namespace sfqpart::engine_detail
