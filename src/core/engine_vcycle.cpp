// "vcycle" engine: heavy-edge coarsening in the pinned visit order,
// coarse-only gradient descent, banded parallel refinement on uncoarsen
// (core/vcycle.h) — the registry's million-gate path.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_adapter.h"
#include "core/vcycle.h"

namespace sfqpart::engine_detail {

namespace {

class VcycleAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "vcycle"; }
  const char* description() const override {
    return "sparse coarsen->optimize->uncoarsen V-cycle: coarse-only "
           "gradient descent + banded parallel refinement (million-gate "
           "scale)";
  }
  std::vector<OptionSpec> describe_options() const override {
    // The engine's own shape knobs are advertised too (band,
    // coarse_target, max_levels, max_passes): without them `--engine
    // vcycle` and the daemon's job validation could not reach them at
    // all.
    std::vector<OptionSpec> specs = {
        planes_spec(), seed_spec(),       restarts_spec(),
        threads_spec(), band_spec(),      coarse_target_spec(),
        max_levels_spec(), max_passes_spec(), refine_style_spec(),
        certify_spec()};
    for (OptionSpec& spec : weight_specs()) specs.push_back(std::move(spec));
    return specs;
  }

 protected:
  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    VcycleOptions options;
    options.seed = context.seed;
    options.coarse.restarts = context.restarts;
    options.coarse.weights = context.weights;
    options.threads = context.threads;
    options.observer = context.observer;
    options.band = context.band;
    options.coarse_target = context.coarse_target;
    options.max_levels = context.max_levels;
    options.refine.max_passes = context.max_passes;
    options.fixed = constraints.compact_or_null();
    options.warm = warm;
    options.refine_style = context.refine_style == "buckets"
                               ? VcycleRefineStyle::kBuckets
                               : VcycleRefineStyle::kBanded;
    VcycleResult result =
        vcycle_partition(netlist, context.num_planes, options);
    counters.emplace_back("levels", result.levels);
    counters.emplace_back("coarse_gates", result.coarse_gates);
    counters.emplace_back("refine_moves",
                          static_cast<double>(result.refine_moves));
    return std::move(result.partition);
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_vcycle_engine() {
  return std::make_unique<VcycleAdapter>();
}

}  // namespace sfqpart::engine_detail
