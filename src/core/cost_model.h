// The paper's cost function F = c1*F1 + c2*F2 + c3*F3 + c4*F4 and its
// gradients (equations 4-10).
//
//  F1: interconnect distance cost   sum |l_i1 - l_i2|^4 / N1
//  F2: bias-current variance        sum (B_k - Bbar)^2 / (K*N2)
//  F3: block-area variance          sum (A_k - Abar)^2 / (K*N3)
//  F4: relaxed one-hot constraint (Lagrangian of equation 7)
//
// Two gradient styles are provided: kAnalytic (the exact derivatives,
// validated against finite differences) and kPaperEq10 (the expressions
// exactly as printed in equation 10 of the paper; see DESIGN.md section 1
// for where they differ).
//
// The F1 gradient is accumulated by a per-gate *gather* over a CSR-style
// incidence adjacency cached at construction (DESIGN.md section 9): one
// parallel edge pass computes the F1 term and both signed per-endpoint
// contributions of every edge (one power chain per edge, shared with the
// term), then a single fused pass over W sums each gate's precomputed
// slots, the F4 term, and the gradient fill. Each gate's slots sit in
// ascending edge order — the exact per-accumulator addition sequence of
// the historical per-edge scatter — so the gather is bit-identical to
// the scatter at every thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/partition.h"
#include "core/problem_view.h"
#include "core/simd/kernels.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace sfqpart {

struct CostWeights {
  double c1 = 1.0;   // interconnections
  double c2 = 0.35;  // bias-current balance
  double c3 = 0.35;  // area balance
  double c4 = 1.0;   // one-hot constraint

  // Exponent of the distance term (the paper uses 4, "to model the sharp
  // increment of a connection cost with the increase in distance").
  // Exposed for the A1 ablation bench. Must be >= 1; the Solver facade
  // rejects smaller values with a Status, CostModel asserts.
  int distance_exponent = 4;
};

enum class GradientStyle {
  kAnalytic,
  kPaperEq10,
};

// Implementation of the F1 gradient accumulation. Both engines produce
// bit-identical terms and gradients (tests/core/parallel_determinism_test
// proves it); kSerialScatter is the pre-CSR reference, kept so the
// gradient bench and regression tests can A/B the hot path.
enum class GradientEngine {
  kCsrGather,      // default: parallel per-gate gather over the cached CSR
  kSerialScatter,  // reference: serial per-edge scatter, separate passes
};

struct CostTerms {
  double f1 = 0.0;
  double f2 = 0.0;
  double f3 = 0.0;
  double f4 = 0.0;

  double total(const CostWeights& w) const {
    return w.c1 * f1 + w.c2 * f2 + w.c3 * f3 + w.c4 * f4;
  }
};

class CostModel {
 private:
  struct Aggregates {
    std::vector<double> labels;      // l_i (soft), size G
    std::vector<double> plane_bias;  // B_k, size K
    std::vector<double> plane_area;  // A_k, size K
    std::vector<double> row_mean;    // wbar_i, size G
    double mean_bias = 0.0;          // Bbar
    double mean_area = 0.0;          // Abar
  };

 public:
  // Reusable scratch for evaluate / evaluate_with_gradient. Hoisting it out
  // of the per-iteration calls makes the optimizer loop allocation-free
  // after the first iteration. A Workspace belongs to one caller at a time
  // (the CostModel itself stays immutable and shareable across threads);
  // each concurrent restart owns its own.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class CostModel;
    Aggregates agg;
    // Per-chunk partials live in cacheline-padded slabs (util/thread_pool.h
    // ChunkSlab) so concurrent chunks never false-share a line; the combine
    // loops still read them in ascending chunk order, so the padding is
    // invisible to the math. The per-plane rows are sized by the padded
    // Matrix stride (util/matrix.h), not K, so the vector kernels can
    // store whole registers into them.
    ChunkSlab bias_area_partial;  // per-chunk [B_k..; A_k..], 2*stride wide
    ChunkSlab f1_partial;         // per-edge-chunk F1 partials, 1 wide
    ChunkSlab f4_partial;         // per-gate-chunk F4 partials, 1 wide
    std::vector<double> plane_diff;  // 2*stride: [B_k - Bbar..; A_k - Abar..]
    std::vector<double> slot_grad;   // per-slot signed dF1/dl terms, 2|E|
    std::vector<double> dlabel;      // dF/dl_i (kSerialScatter only)
    // True when agg (and f4_partial) describe the W last aggregated, with
    // the F4 partials riding along — the precondition of the *_aggregated
    // entry points.
    bool agg_has_f4 = false;
  };

  CostModel(const PartitionProblem& problem, const CostWeights& weights,
            GradientStyle style = GradientStyle::kAnalytic);
  // Shares a prebuilt ProblemView instead of deriving a private one — the
  // V-cycle builds one view per level and hands it to the cost model, the
  // move evaluator and the coarsener alike. The view (and its problem)
  // must outlive the model.
  CostModel(const ProblemView& view, const CostWeights& weights,
            GradientStyle style = GradientStyle::kAnalytic);

  const PartitionProblem& problem() const { return view_->problem(); }
  const ProblemView& view() const { return *view_; }
  const CostWeights& weights() const { return weights_; }
  GradientStyle gradient_style() const { return style_; }

  // Optional worker pool for the hot reductions (the F1 edge sum, the
  // per-plane B/A accumulations, and the fused gather/F4/fill pass). The
  // summation *order* is fixed by the chunking of util/thread_pool.h and
  // never by the pool, so attaching a pool changes wall-clock only: every
  // result is bit-identical with 0, 1 or N threads. Null (the default)
  // runs the same chunk order inline.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  // Selects the F1 gradient accumulation path; kCsrGather unless a bench
  // or test explicitly requests the serial reference.
  void set_gradient_engine(GradientEngine engine) { engine_ = engine; }
  GradientEngine gradient_engine() const { return engine_; }

  // Opt-in reassociated vector reductions (the `fast_math` engine option).
  // Off (the default) keeps every path bit-identical to the scalar kernel
  // tier; on trades that pin for lane-parallel accumulation in the edge
  // and fused passes, within the tolerance the A/B test enforces. No-op
  // on the scalar tier, which has no fast variants.
  void set_fast_math(bool on) { fast_math_ = on; }
  bool fast_math() const { return fast_math_; }

  // Normalization constants (for incremental delta evaluation in refine).
  double n1() const { return n1_; }
  double n2() const { return n2_; }
  double n3() const { return n3_; }
  double n4() const { return n4_; }

  // Cost of a soft assignment W (G x K). The Workspace overloads reuse the
  // caller's scratch; the plain overloads allocate a transient one.
  CostTerms evaluate(const Matrix& w) const;
  CostTerms evaluate(const Matrix& w, Workspace& workspace) const;

  // Cost and the gradient of the *weighted* total; `grad` is resized and
  // overwritten.
  CostTerms evaluate_with_gradient(const Matrix& w, Matrix& grad) const;
  CostTerms evaluate_with_gradient(const Matrix& w, Matrix& grad,
                                   Workspace& workspace) const;

  // Optimizer loop fusion (DESIGN.md section 15): step_and_aggregate
  // applies w = clamp01(w - scale * grad) and aggregates the stepped
  // rows in the same pass — the write of iteration t and the read of
  // iteration t+1 touch W once. evaluate_with_gradient_aggregated then
  // skips the aggregate front end, trusting the workspace to hold this
  // exact W's aggregates. The pair is bit-identical to calling the
  // unfused step + evaluate_with_gradient.
  void step_and_aggregate(Matrix& w, const Matrix& grad, double scale,
                          Workspace& workspace) const;
  CostTerms evaluate_with_gradient_aggregated(const Matrix& w, Matrix& grad,
                                              Workspace& workspace) const;

  // Cost of a hard assignment (labels are 0-based planes). F4 of a one-hot
  // assignment is the constant -(K-1)/(K^2 (K-1)^2) * G/N4-normalized value;
  // it is reported for completeness but does not rank assignments.
  CostTerms evaluate_discrete(const std::vector<int>& labels) const;

 private:
  // Aggregates W (labels, row means, plane sums); with_f4 also folds the
  // F4 constraint partials into the same read of W.
  void aggregate(const Matrix& w, Workspace& ws, bool with_f4) const;
  void combine_plane_sums(Workspace& ws, std::size_t chunks,
                          std::size_t stride) const;
  double f1_term(const Aggregates& agg, Workspace& ws) const;
  double f1_and_slot_grad(const Aggregates& agg, Workspace& ws) const;
  void f2_f3_terms(const Aggregates& agg, CostTerms& terms) const;
  // Terms from a workspace aggregated with with_f4 == true.
  CostTerms terms_from_aggregated(Workspace& ws) const;
  // The per-engine gradient back end; requires aggregate() ran for w.
  CostTerms gradient_terms(const Matrix& w, Matrix& grad,
                           Workspace& ws) const;
  void fused_gradient_pass(const Matrix& w, Matrix& grad, Workspace& ws,
                           CostTerms& terms) const;
  void scatter_gradient_pass(const Matrix& w, Matrix& grad,
                             Workspace& ws) const;

  void init(const CostWeights& weights);

  // The CSR adjacency (core/problem_view.h): gate i's incident edges in
  // ascending edge order, plus the per-edge slot pair the edge pass
  // writes so the gather never recomputes a power chain. Owned when the
  // model was built from a bare problem, borrowed when the caller shares
  // a prebuilt view.
  std::unique_ptr<ProblemView> owned_view_;
  const ProblemView* view_;
  CostWeights weights_;
  GradientStyle style_;
  GradientEngine engine_ = GradientEngine::kCsrGather;
  bool fast_math_ = false;
  ThreadPool* pool_ = nullptr;
  // Normalization constants (equations 4-6, 9). Computed once.
  double n1_ = 1.0;
  double n2_ = 1.0;
  double n3_ = 1.0;
  double n4_ = 1.0;
};

}  // namespace sfqpart
