// The paper's cost function F = c1*F1 + c2*F2 + c3*F3 + c4*F4 and its
// gradients (equations 4-10).
//
//  F1: interconnect distance cost   sum |l_i1 - l_i2|^4 / N1
//  F2: bias-current variance        sum (B_k - Bbar)^2 / (K*N2)
//  F3: block-area variance          sum (A_k - Abar)^2 / (K*N3)
//  F4: relaxed one-hot constraint (Lagrangian of equation 7)
//
// Two gradient styles are provided: kAnalytic (the exact derivatives,
// validated against finite differences) and kPaperEq10 (the expressions
// exactly as printed in equation 10 of the paper; see DESIGN.md section 1
// for where they differ).
#pragma once

#include <vector>

#include "core/partition.h"
#include "util/matrix.h"

namespace sfqpart {

class ThreadPool;

struct CostWeights {
  double c1 = 1.0;   // interconnections
  double c2 = 0.35;  // bias-current balance
  double c3 = 0.35;  // area balance
  double c4 = 1.0;   // one-hot constraint

  // Exponent of the distance term (the paper uses 4, "to model the sharp
  // increment of a connection cost with the increase in distance").
  // Exposed for the A1 ablation bench.
  int distance_exponent = 4;
};

enum class GradientStyle {
  kAnalytic,
  kPaperEq10,
};

struct CostTerms {
  double f1 = 0.0;
  double f2 = 0.0;
  double f3 = 0.0;
  double f4 = 0.0;

  double total(const CostWeights& w) const {
    return w.c1 * f1 + w.c2 * f2 + w.c3 * f3 + w.c4 * f4;
  }
};

class CostModel {
 public:
  CostModel(const PartitionProblem& problem, const CostWeights& weights,
            GradientStyle style = GradientStyle::kAnalytic);

  const PartitionProblem& problem() const { return *problem_; }
  const CostWeights& weights() const { return weights_; }
  GradientStyle gradient_style() const { return style_; }

  // Optional worker pool for the hot reductions (the F1 edge sum, the
  // per-plane B/A accumulations, the F4 sum and the gradient fill). The
  // summation *order* is fixed by the chunking of util/thread_pool.h and
  // never by the pool, so attaching a pool changes wall-clock only: every
  // result is bit-identical with 0, 1 or N threads. Null (the default)
  // runs the same chunk order inline.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  // Normalization constants (for incremental delta evaluation in refine).
  double n1() const { return n1_; }
  double n2() const { return n2_; }
  double n3() const { return n3_; }
  double n4() const { return n4_; }

  // Cost of a soft assignment W (G x K).
  CostTerms evaluate(const Matrix& w) const;

  // Cost and the gradient of the *weighted* total; `grad` is resized and
  // overwritten.
  CostTerms evaluate_with_gradient(const Matrix& w, Matrix& grad) const;

  // Cost of a hard assignment (labels are 0-based planes). F4 of a one-hot
  // assignment is the constant -(K-1)/(K^2 (K-1)^2) * G/N4-normalized value;
  // it is reported for completeness but does not rank assignments.
  CostTerms evaluate_discrete(const std::vector<int>& labels) const;

 private:
  struct Aggregates {
    std::vector<double> labels;      // l_i (soft), size G
    std::vector<double> plane_bias;  // B_k, size K
    std::vector<double> plane_area;  // A_k, size K
    std::vector<double> row_mean;    // wbar_i, size G
    double mean_bias = 0.0;          // Bbar
    double mean_area = 0.0;          // Abar
  };
  Aggregates aggregate(const Matrix& w) const;
  CostTerms terms_from(const Matrix& w, const Aggregates& agg) const;

  const PartitionProblem* problem_;
  CostWeights weights_;
  GradientStyle style_;
  ThreadPool* pool_ = nullptr;
  // Normalization constants (equations 4-6, 9). Computed once.
  double n1_ = 1.0;
  double n2_ = 1.0;
  double n3_ = 1.0;
  double n4_ = 1.0;
};

}  // namespace sfqpart
