#include "core/partitioner.h"

#include <cassert>

#include "core/soft_assign.h"
#include "util/rng.h"

namespace sfqpart {

LabelResult solve_labels(const PartitionProblem& problem,
                         const PartitionOptions& options) {
  assert(options.num_planes == problem.num_planes);
  assert(options.restarts >= 1);
  const CostModel model(problem, options.weights, options.gradient_style);

  Rng rng(options.seed);
  LabelResult best;
  bool have_best = false;

  for (int restart = 0; restart < options.restarts; ++restart) {
    Rng restart_rng = rng.split();
    Matrix w0 = random_soft_assignment(problem.num_gates, problem.num_planes,
                                       restart_rng);
    OptimizerResult opt = run_gradient_descent(model, std::move(w0),
                                               options.optimizer);
    std::vector<int> labels = harden(opt.w);
    if (options.refine) {
      refine_partition(model, labels, restart_rng, options.refine_options);
    }
    const CostTerms discrete = model.evaluate_discrete(labels);
    const double total = discrete.total(options.weights);
    if (!have_best || total < best.discrete_total) {
      have_best = true;
      best.labels = std::move(labels);
      best.soft_terms = opt.final_terms;
      best.discrete_terms = discrete;
      best.discrete_total = total;
      best.iterations = opt.iterations;
      best.winning_restart = restart;
      best.converged = opt.converged;
    }
  }
  return best;
}

PartitionResult partition_problem(const PartitionProblem& problem,
                                  int netlist_num_gates,
                                  const PartitionOptions& options) {
  LabelResult solved = solve_labels(problem, options);
  PartitionResult result;
  result.partition = problem.to_partition(solved.labels, netlist_num_gates);
  result.soft_terms = solved.soft_terms;
  result.discrete_terms = solved.discrete_terms;
  result.discrete_total = solved.discrete_total;
  result.iterations = solved.iterations;
  result.winning_restart = solved.winning_restart;
  result.converged = solved.converged;
  return result;
}

PartitionResult partition_netlist(const Netlist& netlist,
                                  const PartitionOptions& options) {
  const PartitionProblem problem =
      PartitionProblem::from_netlist(netlist, options.num_planes);
  return partition_problem(problem, netlist.num_gates(), options);
}

}  // namespace sfqpart
