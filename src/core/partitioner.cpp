#include "core/partitioner.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/solver.h"

namespace sfqpart {
namespace {

// The legacy entry points keep their assert contract: misuse that the
// Solver reports as a Status is fatal here (and would have been undefined
// behaviour before the facade existed).
template <typename T>
T unwrap(StatusOr<T> result) {
  if (!result.is_ok()) {
    std::fprintf(stderr, "sfqpart: %s\n", result.status().message().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

// Defining deprecated functions triggers the warning the attribute exists
// to raise; silence it for the definitions only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

LabelResult solve_labels(const PartitionProblem& problem,
                         const PartitionOptions& options) {
  assert(options.num_planes == problem.num_planes);
  assert(options.restarts >= 1);
  return unwrap(Solver(SolverConfig::from(options)).solve(problem));
}

PartitionResult partition_problem(const PartitionProblem& problem,
                                  int netlist_num_gates,
                                  const PartitionOptions& options) {
  assert(options.num_planes == problem.num_planes);
  return unwrap(
      Solver(SolverConfig::from(options)).run(problem, netlist_num_gates));
}

PartitionResult partition_netlist(const Netlist& netlist,
                                  const PartitionOptions& options) {
  return unwrap(Solver(SolverConfig::from(options)).run(netlist));
}

#pragma GCC diagnostic pop

}  // namespace sfqpart
