// Netlist delta — the ECO (engineering change order) seam.
//
// A late netlist revision rarely rewrites the whole circuit: a few gates
// are added, a few removed, a few rewired. Re-partitioning from scratch
// throws the prior solution away and pays the full V-cycle again;
// compute_delta() instead diffs two netlists by gate name and
// warm_start_from() converts the prior partition into an
// InitialPartition over the revised netlist — unchanged gates keep their
// plane, added and rewired gates are left unassigned for the engine to
// place. The "eco" engine (core/engine.h registry) consumes exactly that
// warm start: it places the unassigned gates greedily and refines only
// the dirty region plus a configurable halo, instead of the whole graph.
//
// Change detection is structural, not positional: a gate counts as
// changed when its cell differs or its partitionable-neighbor set
// differs, detected by an order-independent adjacency signature (XOR of
// FNV-1a hashes of neighbor names, mixed with the cell index). GateIds
// may shift arbitrarily between revisions; names are the join key.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/partition.h"
#include "netlist/netlist.h"
#include "util/status.h"

namespace sfqpart {

// The blast radius of a netlist revision, relative to `after`'s ids.
struct NetlistDelta {
  // Partitionable `after` gates with no same-named gate in `before`.
  std::vector<GateId> added;
  // Names of partitionable `before` gates absent from `after`.
  std::vector<std::string> removed;
  // Partitionable `after` gates whose cell or partitionable-neighbor
  // set differs from the same-named `before` gate.
  std::vector<GateId> changed;
  // Partitionable `after` gates matched unchanged.
  int unchanged = 0;

  // Gates the warm start leaves unassigned (the dirty seeds).
  int dirty() const {
    return static_cast<int>(added.size() + changed.size());
  }
};

// Diffs two netlists by gate name (see header comment for the change
// criterion). Deterministic: `added`/`changed` ascend by `after` GateId,
// `removed` ascends by `before` GateId.
NetlistDelta compute_delta(const Netlist& before, const Netlist& after);

// Converts a partition of `before` into a warm start over `after`:
// unchanged gates inherit their plane, added/changed/IO gates stay
// kUnassignedPlane. Labels outside [0, num_planes) of the target run are
// the caller's responsibility (the engine adapter validates).
InitialPartition warm_start_from(const Partition& before_partition,
                                 const Netlist& before, const Netlist& after);

// End-to-end ECO convenience: diff, build the warm start, run the "eco"
// engine on `after` with `context` (context.warm_start is overwritten).
StatusOr<EngineRun> repartition(const Netlist& before,
                                const Partition& before_partition,
                                const Netlist& after, EngineContext context);

}  // namespace sfqpart
