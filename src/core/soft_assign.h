// Soft assignment matrix helpers.
//
// The paper relaxes the one-hot gate-to-plane indicator w_{i,k} in {0,1}
// to w_{i,k} in [0,1] (equation 8). These helpers implement the random
// initialization + row normalization of Algorithm 1 (lines 3-11), the
// clipping of line 22-23, and the final argmax hardening (lines 27-30).
#pragma once

#include <vector>

#include "util/matrix.h"
#include "util/rng.h"

namespace sfqpart {

// Uniform random W (G x K) with rows normalized to sum 1.
Matrix random_soft_assignment(int num_gates, int num_planes, Rng& rng);

// Divides each row by its sum (rows of all zeros become uniform 1/K).
void normalize_rows(Matrix& w);

// Clamps every entry into [0, 1].
void clip01(Matrix& w);

// Per-row argmax -> 0-based plane labels. Ties resolve to the lowest plane.
std::vector<int> harden(const Matrix& w);

// One-hot matrix from labels (used by tests and the refinement pass).
Matrix one_hot(const std::vector<int>& labels, int num_planes);

}  // namespace sfqpart
