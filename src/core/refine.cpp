#include "core/refine.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <tuple>

#include "core/move_eval.h"
#include "obs/trace_sink.h"

namespace sfqpart {

RefineResult refine_partition(const CostModel& model, std::vector<int>& labels,
                              Rng& rng, const RefineOptions& options,
                              obs::TraceSink* sink, int restart,
                              const std::vector<int>* fixed) {
  const int num_gates = model.problem().num_gates;
  const int num_planes = model.problem().num_planes;
  assert(static_cast<int>(labels.size()) == num_gates);

  MoveEvaluator eval(model, labels);

  RefineResult result;
  result.initial_cost = eval.current_cost();

  std::vector<int> order(static_cast<std::size_t>(num_gates));
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0; pass < options.max_passes; ++pass) {
    rng.shuffle(order);
    int moves_this_pass = 0;
    for (const int gate : order) {
      if (fixed != nullptr && (*fixed)[static_cast<std::size_t>(gate)] >= 0) {
        continue;
      }
      int best_target = eval.label(gate);
      double best_delta = -1e-12;  // strict improvement only
      for (int target = 0; target < num_planes; ++target) {
        const double delta = eval.delta(gate, target);
        if (delta < best_delta) {
          best_delta = delta;
          best_target = target;
        }
      }
      if (best_target != eval.label(gate)) {
        eval.apply(gate, best_target);
        ++moves_this_pass;
      }
    }
    result.moves += moves_this_pass;
    result.passes = pass + 1;
    if (sink != nullptr && sink->enabled()) {
      sink->refine_pass({restart, pass, moves_this_pass, eval.current_cost()});
    }
    if (moves_this_pass < options.min_moves_per_pass) break;
  }
  labels = eval.labels();
  result.final_cost = eval.current_cost();
  return result;
}

namespace {

// Matches refine_partition / vcycle banded refinement: a move must beat
// this to enter the queue or be applied, so zero-delta oscillation is
// impossible.
constexpr double kBucketImprovementThreshold = -1e-12;

// One queued candidate move; the min-heap pops the lexicographically
// smallest (delta, gate, target), so ties in gain resolve by gate then
// target index — deterministic regardless of insertion order.
using QueuedMove = std::tuple<double, int, int>;

}  // namespace

BucketRefineStats bucket_refine(MoveEvaluator& eval, int band,
                                const RefineOptions& options,
                                const std::vector<int>* fixed,
                                const std::vector<int>* active) {
  const int n = eval.num_gates();
  const int k = eval.num_planes();
  BucketRefineStats stats;

  // Scope mask: movable gates are those not pinned and (when an active
  // set is given) inside it.
  std::vector<char> movable(static_cast<std::size_t>(n),
                            active == nullptr ? 1 : 0);
  if (active != nullptr) {
    for (const int gate : *active) {
      movable[static_cast<std::size_t>(gate)] = 1;
    }
  }
  if (fixed != nullptr) {
    for (int gate = 0; gate < n; ++gate) {
      if ((*fixed)[static_cast<std::size_t>(gate)] >= 0) {
        movable[static_cast<std::size_t>(gate)] = 0;
      }
    }
  }

  // Best strictly-improving in-band move of one gate ({0, -1} when none);
  // gain ties resolve to the lowest target plane.
  const auto best_move = [&](int gate) -> QueuedMove {
    const int source = eval.label(gate);
    const int lo = band > 0 ? std::max(0, source - band) : 0;
    const int hi = band > 0 ? std::min(k - 1, source + band) : k - 1;
    double best_delta = kBucketImprovementThreshold;
    int best = -1;
    for (int target = lo; target <= hi; ++target) {
      if (target == source) continue;
      const double delta = eval.delta(gate, target);
      if (delta < best_delta) {
        best_delta = delta;
        best = target;
      }
    }
    return {best == -1 ? 0.0 : best_delta, gate, best};
  };

  std::priority_queue<QueuedMove, std::vector<QueuedMove>,
                      std::greater<QueuedMove>>
      queue;
  long long movable_count = 0;
  for (int gate = 0; gate < n; ++gate) {
    if (!movable[static_cast<std::size_t>(gate)]) continue;
    ++movable_count;
    if (const QueuedMove move = best_move(gate); std::get<2>(move) >= 0) {
      queue.push(move);
    }
  }

  // Each applied move strictly improves the cost; the cap only guards
  // against pathologically long chains of ever-smaller gains.
  const long long move_cap =
      static_cast<long long>(options.max_passes) * std::max<long long>(
          movable_count, 1);
  while (!queue.empty() && stats.moves < move_cap) {
    const auto [delta, gate, target] = queue.top();
    queue.pop();
    // Lazy validation: re-derive the gate's current best move; a stale
    // entry (its gate moved, or a neighbor changed the gain surface) is
    // dropped and the fresh candidate requeued.
    const QueuedMove fresh = best_move(gate);
    if (std::get<2>(fresh) < 0) continue;
    if (std::get<0>(fresh) != delta || std::get<2>(fresh) != target) {
      ++stats.stale_pops;
      queue.push(fresh);
      continue;
    }
    eval.apply(gate, target);
    ++stats.moves;
    if (const QueuedMove next = best_move(gate); std::get<2>(next) >= 0) {
      queue.push(next);
    }
    const auto [begin, end] = eval.neighbors(gate);
    for (const std::int32_t* it = begin; it != end; ++it) {
      const int neighbor = *it;
      if (!movable[static_cast<std::size_t>(neighbor)]) continue;
      if (const QueuedMove move = best_move(neighbor);
          std::get<2>(move) >= 0) {
        queue.push(move);
      }
    }
  }
  stats.cost_after = eval.current_cost();
  return stats;
}

}  // namespace sfqpart
