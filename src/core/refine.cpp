#include "core/refine.h"

#include <cassert>
#include <numeric>

#include "core/move_eval.h"
#include "obs/trace_sink.h"

namespace sfqpart {

RefineResult refine_partition(const CostModel& model, std::vector<int>& labels,
                              Rng& rng, const RefineOptions& options,
                              obs::TraceSink* sink, int restart,
                              const std::vector<int>* fixed) {
  const int num_gates = model.problem().num_gates;
  const int num_planes = model.problem().num_planes;
  assert(static_cast<int>(labels.size()) == num_gates);

  MoveEvaluator eval(model, labels);

  RefineResult result;
  result.initial_cost = eval.current_cost();

  std::vector<int> order(static_cast<std::size_t>(num_gates));
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0; pass < options.max_passes; ++pass) {
    rng.shuffle(order);
    int moves_this_pass = 0;
    for (const int gate : order) {
      if (fixed != nullptr && (*fixed)[static_cast<std::size_t>(gate)] >= 0) {
        continue;
      }
      int best_target = eval.label(gate);
      double best_delta = -1e-12;  // strict improvement only
      for (int target = 0; target < num_planes; ++target) {
        const double delta = eval.delta(gate, target);
        if (delta < best_delta) {
          best_delta = delta;
          best_target = target;
        }
      }
      if (best_target != eval.label(gate)) {
        eval.apply(gate, best_target);
        ++moves_this_pass;
      }
    }
    result.moves += moves_this_pass;
    result.passes = pass + 1;
    if (sink != nullptr && sink->enabled()) {
      sink->refine_pass({restart, pass, moves_this_pass, eval.current_cost()});
    }
    if (moves_this_pass < options.min_moves_per_pass) break;
  }
  labels = eval.labels();
  result.final_cost = eval.current_cost();
  return result;
}

}  // namespace sfqpart
