#include "core/solver.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/soft_assign.h"
#include "obs/trace_sink.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

// API-boundary validation: everything the old free functions guarded with
// asserts (which vanish in release builds) becomes a reportable Status.
Status validate(const SolverConfig& config, const PartitionProblem& problem) {
  if (problem.num_planes < 2) {
    return Status::error(str_format(
        "Solver: num_planes must be >= 2 (got %d)", problem.num_planes));
  }
  if (problem.num_gates < 1) {
    return Status::error("Solver: the problem has no partitionable gates");
  }
  if (config.restarts < 1) {
    return Status::error(
        str_format("Solver: restarts must be >= 1 (got %d)", config.restarts));
  }
  if (config.threads < 0) {
    return Status::error(
        str_format("Solver: threads must be >= 0 (got %d)", config.threads));
  }
  if (config.weights.distance_exponent < 1) {
    return Status::error(str_format(
        "Solver: distance_exponent must be >= 1 (got %d)",
        config.weights.distance_exponent));
  }
  // Non-finite knobs would sail through the sign checks below (inf > 0 is
  // true) and silently poison every cost; reject them here. parse_double
  // accepts "inf"/"nan" spellings, so config files can produce these.
  const struct { const char* name; double value; } finite_knobs[] = {
      {"weights.c1", config.weights.c1},
      {"weights.c2", config.weights.c2},
      {"weights.c3", config.weights.c3},
      {"weights.c4", config.weights.c4},
      {"optimizer.learning_rate", config.optimizer.learning_rate},
      {"optimizer.margin", config.optimizer.margin},
  };
  for (const auto& knob : finite_knobs) {
    if (!std::isfinite(knob.value)) {
      return Status::error(str_format("Solver: %s must be finite (got %g)",
                                      knob.name, knob.value));
    }
  }
  if (config.optimizer.max_iterations < 1) {
    return Status::error(
        str_format("Solver: optimizer.max_iterations must be >= 1 (got %d)",
                   config.optimizer.max_iterations));
  }
  if (!(config.optimizer.learning_rate > 0.0)) {
    return Status::error(
        str_format("Solver: optimizer.learning_rate must be > 0 (got %g)",
                   config.optimizer.learning_rate));
  }
  if (!(config.optimizer.margin >= 0.0)) {
    return Status::error(str_format(
        "Solver: optimizer.margin must be >= 0 (got %g)",
        config.optimizer.margin));
  }
  return Status::ok();
}

// One restart's complete outcome; kept per restart so the deterministic
// selection below is independent of completion order.
struct RestartOutcome {
  std::vector<int> labels;
  CostTerms soft_terms;
  CostTerms discrete_terms;
  double discrete_total = 0.0;
  int iterations = 0;
  bool converged = false;
};

}  // namespace

Solver::Solver(SolverConfig config) : config_(std::move(config)) {
  if (config_.threads >= 0 && effective_threads() > 1) {
    pool_ = std::make_unique<ThreadPool>(effective_threads());
  }
}

Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

int Solver::effective_threads() const {
  if (config_.threads == 0) return ThreadPool::hardware_concurrency();
  return std::max(1, config_.threads);
}

StatusOr<LabelResult> Solver::solve(const PartitionProblem& problem) const {
  if (Status status = validate(config_, problem); !status) return status;

  CostModel model(problem, config_.weights, config_.gradient_style);
  model.set_thread_pool(pool_.get());
  model.set_fast_math(config_.fast_math);

  obs::TraceSink sink(config_.observer);

  if (sink.enabled()) {
    obs::RunInfo info;
    info.engine = "solver";
    info.num_planes = problem.num_planes;
    info.restarts = config_.restarts;
    info.threads = effective_threads();
    info.seed = config_.seed;
    info.refine = config_.refine;
    info.weights = config_.weights;
    info.gradient_style = config_.gradient_style;
    info.learning_rate = config_.optimizer.learning_rate;
    info.max_iterations = config_.optimizer.max_iterations;
    info.margin = config_.optimizer.margin;
    info.normalize_step = config_.optimizer.normalize_step;
    info.problem_gates = problem.num_gates;
    info.problem_edges = static_cast<long long>(problem.edges.size());
    sink.run_start(info);
  }
  obs::ScopedTimer run_timer(&sink, "run");

  // Pre-split one stream per restart: restart r always consumes the r-th
  // split() of the root Rng, exactly as the old serial loop did, so its
  // stream depends only on (seed, r) — never on scheduling.
  Rng root(config_.seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(config_.restarts));
  for (int r = 0; r < config_.restarts; ++r) streams.push_back(root.split());

  const auto restarts = static_cast<std::size_t>(config_.restarts);
  std::vector<RestartOutcome> outcomes(restarts);

  // Grain 1: chunk index == restart index. Restarts fan out as one
  // parallel region; the cost-model reductions inside each restart then
  // run inline on that worker (nested parallel_chunks detects the worker
  // flag and never re-enters the executor). The cost hint marks each
  // restart as a full optimizer run — far beyond the serial cutoff — so
  // even a two-restart solve on a tiny circuit still fans out.
  // Observation never perturbs the result: every emission is outside the
  // seeded RNG streams and the fixed-order reductions, so labels and
  // costs are bit-identical with or without an observer attached.
  constexpr double kRestartCostNs = 1e9;  // whole gradient-descent runs
  parallel_chunks(pool_.get(), restarts, 1,
                  [&](std::size_t r, std::size_t, std::size_t) {
    const int restart = static_cast<int>(r);
    sink.restart_start({restart});
    Rng rng = streams[r];
    Matrix w0 = random_soft_assignment(problem.num_gates, problem.num_planes,
                                       rng);
    if (config_.warm_labels != nullptr && restart == 0) {
      // Warm seed on restart 0 only (after the random draw, so the RNG
      // stream — and with it every other restart — is untouched): assigned
      // labels become exact one-hot rows the descent then improves from.
      const std::vector<int>& warm = *config_.warm_labels;
      for (std::size_t i = 0; i < warm.size(); ++i) {
        if (warm[i] < 0) continue;
        auto row = w0.row(i);
        for (double& value : row) value = 0.0;
        row[static_cast<std::size_t>(warm[i])] = 1.0;
      }
    }
    if (config_.fixed_labels != nullptr) {
      // Pinned gates start as exact one-hot rows; the descent may still
      // drift them, so the hardened labels are re-clamped below.
      const std::vector<int>& fixed = *config_.fixed_labels;
      for (std::size_t i = 0; i < fixed.size(); ++i) {
        if (fixed[i] < 0) continue;
        auto row = w0.row(i);
        for (double& value : row) value = 0.0;
        row[static_cast<std::size_t>(fixed[i])] = 1.0;
      }
    }
    OptimizerOptions optimizer = config_.optimizer;
    if (sink.enabled()) {
      optimizer.on_iteration = [&sink, restart](int iteration,
                                                const CostTerms& terms,
                                                double cost) {
        sink.iteration({restart, iteration, terms, cost});
      };
      // Gradient/step stage breakdown of the "optimize" timer below.
      optimizer.sink = &sink;
      optimizer.observer_restart = restart;
    }
    RestartOutcome& out = outcomes[r];
    OptimizerResult opt;
    {
      obs::ScopedTimer timer(&sink, "optimize", restart);
      opt = run_gradient_descent(model, std::move(w0), optimizer);
    }
    {
      obs::ScopedTimer timer(&sink, "harden", restart);
      out.labels = harden(opt.w);
    }
    if (config_.fixed_labels != nullptr) {
      const std::vector<int>& fixed = *config_.fixed_labels;
      for (std::size_t i = 0; i < fixed.size(); ++i) {
        if (fixed[i] >= 0) out.labels[i] = fixed[i];
      }
    }
    if (sink.enabled()) {
      // The hardened-but-unrefined cost is observer-only extra work; the
      // evaluation mutates nothing, preserving bit-identity.
      sink.harden({restart,
                   model.evaluate_discrete(out.labels).total(config_.weights)});
    }
    if (config_.refine) {
      obs::ScopedTimer timer(&sink, "refine", restart);
      refine_partition(model, out.labels, rng, config_.refine_options, &sink,
                       restart, config_.fixed_labels);
    }
    out.soft_terms = opt.final_terms;
    out.discrete_terms = model.evaluate_discrete(out.labels);
    out.discrete_total = out.discrete_terms.total(config_.weights);
    out.iterations = opt.iterations;
    out.converged = opt.converged;
    if (sink.enabled()) {
      sink.counter("optimizer_iterations", opt.iterations);
      sink.restart_end({restart, out.soft_terms, out.discrete_terms,
                        out.discrete_total, out.iterations, out.converged});
    }
  }, kRestartCostNs);

  // Deterministic selection: strict < keeps the lowest restart index on
  // discrete-cost ties, matching the serial engine regardless of which
  // restart finished first.
  std::size_t best = 0;
  for (std::size_t r = 1; r < restarts; ++r) {
    if (outcomes[r].discrete_total < outcomes[best].discrete_total) best = r;
  }

  LabelResult result;
  result.labels = std::move(outcomes[best].labels);
  result.soft_terms = outcomes[best].soft_terms;
  result.discrete_terms = outcomes[best].discrete_terms;
  result.discrete_total = outcomes[best].discrete_total;
  result.iterations = outcomes[best].iterations;
  result.winning_restart = static_cast<int>(best);
  result.converged = outcomes[best].converged;
  if (sink.enabled()) {
    sink.run_end({result.winning_restart, result.discrete_total,
                  result.iterations, result.converged});
  }
  return result;
}

StatusOr<SolverResult> Solver::run(const PartitionProblem& problem,
                                      int netlist_num_gates) const {
  StatusOr<LabelResult> solved = solve(problem);
  if (!solved) return solved.status();
  SolverResult result;
  result.partition = problem.to_partition(solved->labels, netlist_num_gates);
  result.soft_terms = solved->soft_terms;
  result.discrete_terms = solved->discrete_terms;
  result.discrete_total = solved->discrete_total;
  result.iterations = solved->iterations;
  result.winning_restart = solved->winning_restart;
  result.converged = solved->converged;
  return result;
}

StatusOr<SolverResult> Solver::run(const Netlist& netlist) const {
  if (config_.num_planes < 2) {
    return Status::error(str_format(
        "Solver: num_planes must be >= 2 (got %d)", config_.num_planes));
  }
  const PartitionProblem problem =
      PartitionProblem::from_netlist(netlist, config_.num_planes);
  return run(problem, netlist.num_gates());
}

}  // namespace sfqpart
