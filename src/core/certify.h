// Independent partition certifier.
//
// Every number downstream of a partition — the compensation current
// I_comp, the free-space area A_FS, the inductive coupling-pair count,
// the weighted cost an engine reports — is re-derived here from the raw
// Netlist, deliberately *not* through CostModel / compute_metrics /
// plan_coupling. Those modules and the engines share code and therefore
// share bugs; the certifier is the second implementation that has to
// agree (DESIGN.md §13). It never asserts on malformed input: an
// out-of-range label or a violated pin comes back as a structured
// verdict, so the daemon and CI can reject a bad result instead of
// crashing on it.
//
// The same independent re-derivation doubles as the scoring oracle of
// the `exact` branch-and-bound engine (core/engine_exact.cpp):
// CertifiedInstance precomputes the normalization constants and exposes
// score(labels) over compact indices.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/constraints.h"
#include "core/cost_model.h"
#include "core/partition.h"
#include "netlist/netlist.h"

namespace sfqpart {

enum class CertifyVerdict {
  kValid = 0,
  // A partitionable gate is outside [0, K), or a non-partitionable (I/O)
  // gate was assigned a plane.
  kLabelOutOfRange = 1,
  // partition.num_planes or plane_of.size() disagree with the request.
  kPlaneCountMismatch = 2,
  // The engine-reported cost terms disagree with the independent
  // re-derivation beyond tolerance.
  kCostMismatch = 3,
  // A pinned or grouped gate sits on the wrong plane.
  kConstraintViolation = 4,
};

const char* certify_verdict_name(CertifyVerdict verdict);

// What the engine claimed; the certifier re-derives and compares.
struct CertifyExpectation {
  CostTerms terms;
  double total = 0.0;
};

struct CertifyReport {
  CertifyVerdict verdict = CertifyVerdict::kValid;
  // Human-readable detail of the first failure; empty when valid.
  std::string message;

  // Independently re-derived quantities (populated only when the labels
  // themselves are well-formed, i.e. the verdict is not
  // kLabelOutOfRange / kPlaneCountMismatch).
  CostTerms terms;
  double total = 0.0;           // terms.total(weights)
  double icomp_ma = 0.0;        // sum_k (B_max - B_k), equation 11
  double afs_um2 = 0.0;         // sum_k (A_max - A_k)
  long long coupling_pairs = 0; // driver/receiver pairs (sum of distances)

  bool valid() const { return verdict == CertifyVerdict::kValid; }
};

// The compact instance the certifier re-derives from the raw netlist:
// partitionable gates in ascending GateId order, the deduplicated
// undirected connection set, and the paper's normalization constants —
// all rebuilt here (not copied from PartitionProblem / CostModel) so a
// bug in the production derivation cannot certify itself.
struct CertifiedInstance {
  int num_planes = 0;
  std::vector<GateId> gate_ids;            // compact -> GateId
  std::vector<int> compact_of_gate;        // GateId -> compact, -1 for I/O
  std::vector<double> bias;                // b_i [mA]
  std::vector<double> area;                // a_i [um^2]
  std::vector<std::pair<int, int>> edges;  // undirected, compact, from < to
  double total_bias = 0.0;
  double total_area = 0.0;
  // Normalization constants of equations 4-6 and 9, re-derived.
  double n1 = 1.0;
  double n2 = 1.0;
  double n3 = 1.0;
  double n4 = 1.0;
  // F4 of any one-hot assignment is the constant -1 / (K^2 (K-1)): per
  // gate the constraint residual is sum_term^2 - variance/K with
  // sum_term = 0 and variance = 1 - 1/K, and N4 = G (K-1)^2.
  double f4_constant = 0.0;

  int num_gates() const { return static_cast<int>(gate_ids.size()); }

  // Cost terms / weighted total of a compact label vector (size G, every
  // label in [0, K)). The exact engine's scoring oracle.
  CostTerms terms_of(const std::vector<int>& labels,
                     const CostWeights& weights) const;
  double score(const std::vector<int>& labels,
               const CostWeights& weights) const {
    return terms_of(labels, weights).total(weights);
  }
};

CertifiedInstance build_certified_instance(const Netlist& netlist,
                                           int num_planes,
                                           const CostWeights& weights);

// Certifies `partition` against `netlist`. Checks, in order: plane-count
// consistency, label range (I/O gates must stay unassigned), pinned /
// grouped constraints (when `constraints` is non-null), and — when
// `expect` is non-null — agreement of the engine-reported cost terms
// with the independent re-derivation to relative tolerance 1e-9.
// I_comp / A_FS / coupling pairs are always re-derived for a well-formed
// labeling and reported even when the verdict is a cost mismatch.
CertifyReport certify_partition(const Netlist& netlist,
                                const Partition& partition, int num_planes,
                                const CostWeights& weights,
                                const CertifyExpectation* expect = nullptr,
                                const CompiledConstraints* constraints = nullptr);

}  // namespace sfqpart
