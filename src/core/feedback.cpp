#include "core/feedback.h"

#include <cassert>
#include <cstdlib>

#include "core/solver.h"
#include "metrics/partition_metrics.h"
#include "recycling/insertion.h"

namespace sfqpart {
namespace {

// Implemented-balance score: I_comp fraction of the netlist with the
// coupling cells actually inserted.
double implemented_icomp(const Netlist& netlist, const Partition& partition,
                         int* pairs) {
  const CouplingInsertion inserted = apply_coupling_insertion(netlist, partition);
  if (pairs != nullptr) *pairs = inserted.pairs_inserted;
  return compute_metrics(inserted.netlist, inserted.partition).icomp_frac();
}

}  // namespace

FeedbackResult partition_with_coupling_feedback(const Netlist& netlist,
                                                const FeedbackOptions& options) {
  const int num_planes = options.base.num_planes;
  const CellLibrary& lib = netlist.library();
  const double pair_bias =
      lib.cell(*lib.find_kind(CellKind::kTxDriver)).bias_ma +
      lib.cell(*lib.find_kind(CellKind::kTxReceiver)).bias_ma;

  PartitionProblem problem = PartitionProblem::from_netlist(netlist, num_planes);
  const std::vector<double> base_bias = problem.bias;

  // Directed physical links between partitionable gates, in compact ids.
  std::vector<int> compact(static_cast<std::size_t>(netlist.num_gates()), -1);
  for (int i = 0; i < problem.num_gates; ++i) {
    compact[static_cast<std::size_t>(problem.gate_ids[static_cast<std::size_t>(i)])] = i;
  }
  std::vector<std::pair<int, int>> links;
  for (const Connection& conn : netlist.connections()) {
    const int a = compact[static_cast<std::size_t>(conn.from)];
    const int b = compact[static_cast<std::size_t>(conn.to)];
    if (a >= 0 && b >= 0 && a != b) links.emplace_back(a, b);
  }

  FeedbackResult result;
  double best_icomp = 1e300;
  for (int round = 0; round < options.max_rounds; ++round) {
    result.rounds = round + 1;
    SolverConfig round_options = options.base;
    round_options.seed = options.base.seed + static_cast<std::uint64_t>(round);
    const LabelResult solved =
        Solver(round_options).solve(problem).value();
    const Partition partition =
        problem.to_partition(solved.labels, netlist.num_gates());

    int pairs = 0;
    const double icomp = implemented_icomp(netlist, partition, &pairs);
    if (round == 0) result.icomp_first = icomp;
    if (icomp < best_icomp) {
      best_icomp = icomp;
      result.partition = partition;
      result.pairs_final = pairs;
    }
    if (round > 0 && best_icomp > icomp - options.min_improvement &&
        icomp >= best_icomp) {
      break;  // no longer improving
    }

    // Re-weight: each gate's effective bias grows by half of the coupling
    // pairs its cross-plane links imply under the current assignment.
    std::vector<double> extra(static_cast<std::size_t>(problem.num_gates), 0.0);
    for (const auto& [a, b] : links) {
      const int da = solved.labels[static_cast<std::size_t>(a)];
      const int db = solved.labels[static_cast<std::size_t>(b)];
      const int distance = std::abs(da - db);
      if (distance == 0) continue;
      const double weight = 0.5 * distance * pair_bias;
      extra[static_cast<std::size_t>(a)] += weight;
      extra[static_cast<std::size_t>(b)] += weight;
    }
    for (int i = 0; i < problem.num_gates; ++i) {
      problem.bias[static_cast<std::size_t>(i)] =
          base_bias[static_cast<std::size_t>(i)] + extra[static_cast<std::size_t>(i)];
    }
  }
  result.icomp_final = best_icomp;
  return result;
}

}  // namespace sfqpart
