// ProblemView — the shared immutable CSR view over a PartitionProblem.
//
// CostModel, MoveEvaluator and the coarsener all need the same derived
// adjacency: for each gate, its incident edges in ascending edge order.
// Historically each of them rebuilt that structure privately (an
// incidence CSR in CostModel, a neighbor CSR in MoveEvaluator, a
// vector-of-vectors in the coarsener); the builds were line-for-line the
// same cursor fill, so the three copies only cost memory and risked
// drifting apart. ProblemView is that build done once:
//
//   offsets()[i] .. offsets()[i+1]  gate i's slot range (size G + 1)
//   neighbors()[s]                  the far endpoint stored in slot s
//   slot_of_first()[e]              slot edge e occupies at edges[e].first
//   slot_of_second()[e]             slot edge e occupies at edges[e].second
//
// Slots are filled by one cursor pass in ascending edge index, so a
// gate's slot range enumerates its incident edges in exactly the order
// the historical per-edge scatter touched its accumulator — the property
// both CostModel's gather (bit-identical F1 sums) and MoveEvaluator's
// delta() (bit-identical move deltas) rely on. Parallel edges keep one
// slot pair each; multiplicity is visible as repeated neighbors.
//
// The view does not own the problem: the PartitionProblem must outlive
// it. The derived arrays are owned by the view and immutable after
// construction, so one view is safely shared by any number of readers
// across threads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.h"

namespace sfqpart {

class ProblemView {
 public:
  explicit ProblemView(const PartitionProblem& problem);

  const PartitionProblem& problem() const { return *problem_; }
  int num_gates() const { return problem_->num_gates; }
  int num_planes() const { return problem_->num_planes; }
  std::size_t num_edges() const { return problem_->edges.size(); }

  const std::uint32_t* offsets() const { return offsets_.data(); }
  const std::int32_t* neighbors() const { return neighbors_.data(); }
  const std::uint32_t* slot_of_first() const { return slot_of_first_.data(); }
  const std::uint32_t* slot_of_second() const { return slot_of_second_.data(); }

  // Incident-edge count of a gate (parallel edges counted with
  // multiplicity) — the weighted degree the coarsener's pinned visit
  // order sorts by.
  std::uint32_t degree(int gate) const {
    return offsets_[static_cast<std::size_t>(gate) + 1] -
           offsets_[static_cast<std::size_t>(gate)];
  }

 private:
  const PartitionProblem* problem_;
  std::vector<std::uint32_t> offsets_;     // size G + 1
  std::vector<std::int32_t> neighbors_;    // size 2|E|
  std::vector<std::uint32_t> slot_of_first_;   // size |E|
  std::vector<std::uint32_t> slot_of_second_;  // size |E|
};

}  // namespace sfqpart
