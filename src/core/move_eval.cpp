#include "core/move_eval.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace sfqpart {
namespace {

double ipow(double base, int exponent) {
  double result = 1.0;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}

}  // namespace

MoveEvaluator::MoveEvaluator(const CostModel& model, std::vector<int> labels)
    : model_(&model),
      labels_(std::move(labels)),
      num_planes_(model.problem().num_planes),
      // The neighbor CSR comes straight from the model's shared
      // ProblemView: the view's cursor fill in ascending edge order
      // produces each gate's neighbor list in exactly the order the old
      // per-gate push_back did, so delta() stays bit-identical.
      neighbor_offsets_(model.view().offsets()),
      neighbor_adj_(model.view().neighbors()) {
  const PartitionProblem& problem = model.problem();
  assert(static_cast<int>(labels_.size()) == problem.num_gates);

  plane_bias_.assign(static_cast<std::size_t>(num_planes_), 0.0);
  plane_area_.assign(static_cast<std::size_t>(num_planes_), 0.0);
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    assert(labels_[i] >= 0 && labels_[i] < num_planes_);
    plane_bias_[static_cast<std::size_t>(labels_[i])] += problem.bias[i];
    plane_area_[static_cast<std::size_t>(labels_[i])] += problem.area[i];
  }
  mean_bias_ = std::accumulate(plane_bias_.begin(), plane_bias_.end(), 0.0) /
               num_planes_;
  mean_area_ = std::accumulate(plane_area_.begin(), plane_area_.end(), 0.0) /
               num_planes_;
  const CostWeights& weights = model.weights();
  f1_coef_ = weights.c1 / model.n1();
  f2_coef_ = weights.c2 / (num_planes_ * model.n2());
  f3_coef_ = weights.c3 / (num_planes_ * model.n3());
}

double MoveEvaluator::delta(int gate, int target) const {
  const auto ug = static_cast<std::size_t>(gate);
  const int source = labels_[ug];
  if (source == target) return 0.0;
  const PartitionProblem& problem = model_->problem();
  const int p = model_->weights().distance_exponent;

  double result = 0.0;
  for (std::uint32_t s = neighbor_offsets_[ug]; s < neighbor_offsets_[ug + 1];
       ++s) {
    const int lj = labels_[static_cast<std::size_t>(neighbor_adj_[s])];
    result += f1_coef_ *
              (ipow(std::abs(target - lj), p) - ipow(std::abs(source - lj), p));
  }
  auto variance_delta = [](double from, double to, double moved, double mean) {
    const double from_old = from - mean;
    const double to_old = to - mean;
    return ((from_old - moved) * (from_old - moved) - from_old * from_old) +
           ((to_old + moved) * (to_old + moved) - to_old * to_old);
  };
  const auto us = static_cast<std::size_t>(source);
  const auto ut = static_cast<std::size_t>(target);
  result += f2_coef_ * variance_delta(plane_bias_[us], plane_bias_[ut],
                                      problem.bias[ug], mean_bias_);
  result += f3_coef_ * variance_delta(plane_area_[us], plane_area_[ut],
                                      problem.area[ug], mean_area_);
  return result;
}

void MoveEvaluator::apply(int gate, int target) {
  const auto ug = static_cast<std::size_t>(gate);
  const int source = labels_[ug];
  if (source == target) return;
  const PartitionProblem& problem = model_->problem();
  plane_bias_[static_cast<std::size_t>(source)] -= problem.bias[ug];
  plane_bias_[static_cast<std::size_t>(target)] += problem.bias[ug];
  plane_area_[static_cast<std::size_t>(source)] -= problem.area[ug];
  plane_area_[static_cast<std::size_t>(target)] += problem.area[ug];
  labels_[ug] = target;
}

double MoveEvaluator::current_cost() const {
  return model_->evaluate_discrete(labels_).total(model_->weights());
}

}  // namespace sfqpart
