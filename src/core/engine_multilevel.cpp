// "multilevel" engine: heavy-edge coarsening, coarse gradient-descent
// solve, projection with greedy refinement (core/multilevel.h).
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_adapter.h"
#include "core/multilevel.h"

namespace sfqpart::engine_detail {

namespace {

class MultilevelAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "multilevel"; }
  const char* description() const override {
    return "heavy-edge coarsening + coarse gradient-descent solve + "
           "projected greedy refinement";
  }
  std::vector<OptionSpec> describe_options() const override {
    std::vector<OptionSpec> specs = {planes_spec(), seed_spec(),
                                     restarts_spec(), threads_spec(),
                                     certify_spec()};
    for (OptionSpec& spec : weight_specs()) specs.push_back(std::move(spec));
    return specs;
  }

 protected:
  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    MultilevelOptions options;
    // Only the driver seed is threaded through; the coarse solve keeps its
    // own defaults (matching the historical entry point bit for bit).
    options.seed = context.seed;
    options.coarse.restarts = context.restarts;
    options.coarse.weights = context.weights;
    options.threads = context.threads;
    options.observer = context.observer;
    options.fixed = constraints.compact_or_null();
    options.warm = warm;
    MultilevelResult result =
        multilevel_partition(netlist, context.num_planes, options);
    counters.emplace_back("levels", result.levels);
    counters.emplace_back("coarse_gates", result.coarse_gates);
    return std::move(result.partition);
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_multilevel_engine() {
  return std::make_unique<MultilevelAdapter>();
}

}  // namespace sfqpart::engine_detail
