// Partition persistence: gate -> plane assignments as CSV, so partitions
// can be archived, diffed, hand-edited, and re-evaluated (`sfqpart
// evaluate`). The format matches what `sfqpart partition --csv` writes:
// a header row `gate,cell,plane` followed by one row per gate.
#pragma once

#include <string>

#include "core/partition.h"
#include "util/status.h"

namespace sfqpart {

Status save_partition_csv(const std::string& path, const Netlist& netlist,
                          const Partition& partition);

// Loads and cross-checks against `netlist`: unknown gate names, missing
// partitionable gates, cell-name mismatches and negative planes are
// errors. num_planes is max(plane)+1 unless every row is smaller than a
// previously saved K (planes may legitimately be empty -- kept as-is).
StatusOr<Partition> load_partition_csv(const std::string& path,
                                       const Netlist& netlist);
StatusOr<Partition> parse_partition_csv(const std::string& text,
                                        const Netlist& netlist);

}  // namespace sfqpart
