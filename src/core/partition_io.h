// Partition persistence: gate -> plane assignments as CSV, so partitions
// can be archived, diffed, hand-edited, and re-evaluated (`sfqpart
// evaluate`). The format matches what `sfqpart partition --csv` writes:
// a header row `gate,cell,plane` followed by one row per gate.
#pragma once

#include <string>

#include "core/partition.h"
#include "util/status.h"

namespace sfqpart {

Status save_partition_csv(const std::string& path, const Netlist& netlist,
                          const Partition& partition);

// Loads and cross-checks against `netlist`: unknown gate names, missing
// partitionable gates, cell-name mismatches and negative planes are
// errors. num_planes is max(plane)+1 unless every row is smaller than a
// previously saved K (planes may legitimately be empty -- kept as-is).
StatusOr<Partition> load_partition_csv(const std::string& path,
                                       const Netlist& netlist);
StatusOr<Partition> parse_partition_csv(const std::string& text,
                                        const Netlist& netlist);

// Lenient loaders for ECO warm starts: the CSV typically comes from a
// *previous revision* of the netlist, so rows naming gates absent from
// `netlist` are silently skipped (removed gates) and partitionable gates
// missing from the file stay kUnassignedPlane (added gates — the dirty
// seeds). Malformed rows, cell mismatches and negative planes are still
// errors; a file assigning nothing at all is accepted (everything dirty).
StatusOr<InitialPartition> load_warm_start_csv(const std::string& path,
                                               const Netlist& netlist);
StatusOr<InitialPartition> parse_warm_start_csv(const std::string& text,
                                                const Netlist& netlist);

}  // namespace sfqpart
