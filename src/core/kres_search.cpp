#include "core/kres_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "core/solver.h"
#include "util/strings.h"

namespace sfqpart {
namespace {

double max_plane_bias(const PartitionProblem& problem, const Partition& partition) {
  std::vector<double> plane_bias(static_cast<std::size_t>(partition.num_planes), 0.0);
  for (int i = 0; i < problem.num_gates; ++i) {
    const GateId gate = problem.gate_ids[static_cast<std::size_t>(i)];
    const int plane = partition.plane(gate);
    assert(plane != kUnassignedPlane);
    plane_bias[static_cast<std::size_t>(plane)] += problem.bias[static_cast<std::size_t>(i)];
  }
  return *std::max_element(plane_bias.begin(), plane_bias.end());
}

}  // namespace

StatusOr<KresResult> find_min_planes(const Netlist& netlist,
                                     const KresOptions& options) {
  if (!(options.bias_limit_ma > 0.0)) {
    return Status::invalid_argument(
        str_format("find_min_planes: bias_limit_ma must be > 0 (got %g)",
                   options.bias_limit_ma));
  }
  KresResult result;
  const double total_bias = netlist.total_bias_ma();
  result.k_lb = std::max(2, static_cast<int>(std::ceil(total_bias / options.bias_limit_ma)));

  for (int k = result.k_lb; k <= options.max_planes; ++k) {
    SolverConfig attempt = options.base;
    attempt.num_planes = k;
    const PartitionProblem problem = PartitionProblem::from_netlist(netlist, k);
    // A failed attempt aborts the search: skipping it would misreport the
    // failure as "infeasible at this K" and push K_res upward.
    StatusOr<SolverResult> attempt_result =
        Solver(attempt).run(problem, netlist.num_gates());
    if (!attempt_result) {
      return Status::error(str_format("find_min_planes: K=%d attempt failed: %s",
                                      k,
                                      attempt_result.status().message().c_str()));
    }
    SolverResult partition = *std::move(attempt_result);
    const double bmax = max_plane_bias(problem, partition.partition);
    if (bmax <= options.bias_limit_ma) {
      result.found = true;
      result.k_res = k;
      result.bmax_ma = bmax;
      result.result = std::move(partition);
      return result;
    }
  }
  return result;
}

}  // namespace sfqpart
