// Shared implementation of the vector kernel tiers, templated over a
// per-ISA Ops struct (kernels_avx2.cpp / kernels_avx512.cpp). Include
// ONLY from those TUs — they are compiled with the ISA flags plus
// -ffp-contract=off.
//
// Bit-identity strategy (kernels.h states the contract):
//
//  * The base build targets plain x86-64, which has no FMA instruction,
//    so the scalar tier's arithmetic is exactly the C expression text —
//    one rounding per operator, no contraction. The exact vector kernels
//    therefore use discrete mul/add/sub/div intrinsics only; FMA-class
//    intrinsics are banned outside the *_fast variants.
//  * -ffp-contract=off on these TUs makes every scalar C expression here
//    (block tails, horizontal chains, lane extraction sums) evaluate
//    exactly like the base-flags scalar TU, so tails can be inlined and
//    chunk accumulators can be threaded through them — preserving the
//    scalar tier's single left-to-right addition chain per accumulator.
//  * Reductions: vertical per-plane sums keep one plane per lane and add
//    gate-by-gate (the scalar per-lane order); horizontal per-gate sums
//    (label, row sum, variance) run on transposed L x L gate blocks with
//    the plane index advancing sequentially; cross-gate chunk partials
//    (F1, F4) are accumulated by ascending-order lane extraction.
//  * min/max mirror the scalar sources' value semantics for NaN and
//    signed zero: clamp01 is min(1, max(0, x)) with x in the
//    NaN-propagating operand position, max-abs keeps the accumulator in
//    the NaN-dropping position (std::max returns its first argument on
//    an unordered compare).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/simd/kernels.h"
#include "core/simd/kernels_common.h"
#include "core/simd/kernels_scalar.h"

namespace sfqpart::simd {

template <class Ops>
struct VecKernels {
  using V = typename Ops::V;
  static constexpr std::size_t kL = Ops::kLanes;
  // Plane groups a row is processed in; rows wider than this fall back to
  // the scalar tier (K > 32 planes is far outside the paper's regime).
  static constexpr std::size_t kMaxGroups = 32 / kL;

  // ---- scalar tail bodies -------------------------------------------
  // Inlined (not calls into kernels_scalar.cpp) so the chunk accumulators
  // continue the same addition chain; -ffp-contract=off makes the values
  // identical to the base-flags scalar tier.

  template <bool kStep>
  static void agg_tail(const AggregateArgs& a, double* w, const double* grad,
                       double scale, std::size_t begin, std::size_t end,
                       double* bias_acc, double* area_acc, bool with_f4,
                       double& f4_sum) {
    const double kd = static_cast<double>(a.k);
    for (std::size_t i = begin; i < end; ++i) {
      const double* row;
      if constexpr (kStep) {
        double* wrow = w + i * a.stride;
        const double* grow = grad + i * a.stride;
        for (std::size_t j = 0; j < a.stride; ++j) {
          wrow[j] = std::clamp(wrow[j] - scale * grow[j], 0.0, 1.0);
        }
        row = wrow;
      } else {
        row = a.w + i * a.stride;
      }
      const double bias_i = a.bias[i];
      const double area_i = a.area[i];
      double label = 0.0;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < a.k; ++kk) {
        const double value = row[kk];
        label += static_cast<double>(kk + 1) * value;
        sum += value;
        bias_acc[kk] += bias_i * value;
        area_acc[kk] += area_i * value;
      }
      a.labels[i] = label;
      const double mean = sum / kd;
      a.row_mean[i] = mean;
      if (with_f4) {
        const double sum_term = kd * mean - 1.0;
        double variance = 0.0;
        for (std::size_t kk = 0; kk < a.k; ++kk) {
          const double dev = row[kk] - mean;
          variance += dev * dev;
        }
        f4_sum += sum_term * sum_term - variance / kd;
      }
    }
  }

  // ---- aggregate / step+aggregate -----------------------------------

  template <bool kStep>
  static void agg_impl(const AggregateArgs& a, double* w, const double* grad,
                       double scale, std::size_t begin, std::size_t end,
                       double* bias_acc, double* area_acc, double* f4_acc) {
    const std::size_t stride = a.stride;
    const std::size_t groups = stride / kL;
    const bool with_f4 = f4_acc != nullptr;
    double f4_sum = 0.0;
    if (groups > kMaxGroups) {
      agg_tail<kStep>(a, w, grad, scale, begin, end, bias_acc, area_acc,
                      with_f4, f4_sum);
      if (with_f4) *f4_acc += f4_sum;
      return;
    }

    const double kd = static_cast<double>(a.k);
    const V kd_v = Ops::set1(kd);
    const V one_v = Ops::set1(1.0);
    const V scale_v = Ops::set1(scale);
    // Per-plane vertical accumulators: lane = plane. Loaded from (and
    // stored back to) the chunk partial row, so the scalar tail continues
    // the same per-lane chains in memory.
    V accb[kMaxGroups];
    V acca[kMaxGroups];
    for (std::size_t g = 0; g < groups; ++g) {
      accb[g] = Ops::loadu(bias_acc + g * kL);
      acca[g] = Ops::loadu(area_acc + g * kL);
    }

    std::size_t i = begin;
    for (; i + kL <= end; i += kL) {
      // One gate per stash row; transposed per group below.
      V stash[kMaxGroups][kL];
      for (std::size_t j = 0; j < kL; ++j) {
        const std::size_t gate = i + j;
        const V bias_j = Ops::set1(a.bias[gate]);
        const V area_j = Ops::set1(a.area[gate]);
        if constexpr (kStep) {
          double* wrow = w + gate * stride;
          const double* grow = grad + gate * stride;
          for (std::size_t g = 0; g < groups; ++g) {
            V v = Ops::loadu(wrow + g * kL);
            const V gv = Ops::loadu(grow + g * kL);
            // w - scale*g then the box projection; padding lanes step
            // 0 - scale*0 and clamp back to exactly +0.
            v = Ops::clamp01(Ops::sub(v, Ops::mul(scale_v, gv)));
            Ops::storeu(wrow + g * kL, v);
            accb[g] = Ops::add(accb[g], Ops::mul(bias_j, v));
            acca[g] = Ops::add(acca[g], Ops::mul(area_j, v));
            stash[g][j] = v;
          }
        } else {
          const double* row = a.w + gate * stride;
          for (std::size_t g = 0; g < groups; ++g) {
            const V v = Ops::loadu(row + g * kL);
            accb[g] = Ops::add(accb[g], Ops::mul(bias_j, v));
            acca[g] = Ops::add(acca[g], Ops::mul(area_j, v));
            stash[g][j] = v;
          }
        }
      }
      for (std::size_t g = 0; g < groups; ++g) Ops::transpose(stash[g]);
      // Horizontal per-gate chains, vectorized across the block's gates:
      // plane index kk advances sequentially, exactly the scalar order.
      V label_v = Ops::zero();
      V sum_v = Ops::zero();
      for (std::size_t kk = 0; kk < a.k; ++kk) {
        const V t = stash[kk / kL][kk % kL];
        label_v = Ops::add(label_v, Ops::mul(Ops::set1(static_cast<double>(kk + 1)), t));
        sum_v = Ops::add(sum_v, t);
      }
      const V mean_v = Ops::div(sum_v, kd_v);
      Ops::storeu(a.labels + i, label_v);
      Ops::storeu(a.row_mean + i, mean_v);
      if (with_f4) {
        const V st_v = Ops::sub(Ops::mul(kd_v, mean_v), one_v);
        V var_v = Ops::zero();
        for (std::size_t kk = 0; kk < a.k; ++kk) {
          const V dev = Ops::sub(stash[kk / kL][kk % kL], mean_v);
          var_v = Ops::add(var_v, Ops::mul(dev, dev));
        }
        const V pg = Ops::sub(Ops::mul(st_v, st_v), Ops::div(var_v, kd_v));
        alignas(64) double buf[kL];
        Ops::store(buf, pg);
        // Ascending lane extraction: the scalar per-gate addition order.
        for (std::size_t j = 0; j < kL; ++j) f4_sum += buf[j];
      }
    }
    for (std::size_t g = 0; g < groups; ++g) {
      Ops::storeu(bias_acc + g * kL, accb[g]);
      Ops::storeu(area_acc + g * kL, acca[g]);
    }
    agg_tail<kStep>(a, w, grad, scale, i, end, bias_acc, area_acc, with_f4,
                    f4_sum);
    if (with_f4) *f4_acc += f4_sum;
  }

  static void aggregate(const AggregateArgs& a, std::size_t begin,
                        std::size_t end, double* bias_acc, double* area_acc,
                        double* f4_acc) {
    agg_impl<false>(a, nullptr, nullptr, 0.0, begin, end, bias_acc, area_acc,
                    f4_acc);
  }

  static void step_aggregate(const AggregateArgs& a, double* w,
                             const double* grad, double scale,
                             std::size_t begin, std::size_t end,
                             double* bias_acc, double* area_acc,
                             double* f4_acc) {
    agg_impl<true>(a, w, grad, scale, begin, end, bias_acc, area_acc, f4_acc);
  }

  // ---- F1 edge passes ------------------------------------------------

  static double f1_term(const EdgeArgs& a, std::size_t begin,
                        std::size_t end) {
    double sum = 0.0;
    alignas(64) double la[kL];
    alignas(64) double lb[kL];
    alignas(64) double vbuf[kL];
    std::size_t e = begin;
    for (; e + kL <= end; e += kL) {
      for (std::size_t j = 0; j < kL; ++j) {
        la[j] = a.labels[static_cast<std::size_t>(a.edges[e + j].first)];
        lb[j] = a.labels[static_cast<std::size_t>(a.edges[e + j].second)];
      }
      const V delta = Ops::abs(Ops::sub(Ops::load(la), Ops::load(lb)));
      // ipow's multiply chain: result starts at 1.0 (1.0 * b == b).
      V value = Ops::set1(1.0);
      for (int t = 0; t < a.exponent; ++t) value = Ops::mul(value, delta);
      Ops::store(vbuf, value);
      for (std::size_t j = 0; j < kL; ++j) sum += vbuf[j];
    }
    for (; e < end; ++e) {
      const double delta = std::abs(
          a.labels[static_cast<std::size_t>(a.edges[e].first)] -
          a.labels[static_cast<std::size_t>(a.edges[e].second)]);
      sum += ipow(delta, a.exponent);
    }
    return sum;
  }

  template <bool kFast>
  static double edge_grad_impl(const EdgeGradArgs& a, std::size_t begin,
                               std::size_t end) {
    double sum = 0.0;
    V sum_v = Ops::zero();  // kFast only: reassociated lane accumulator
    const V exp_v = Ops::set1(static_cast<double>(a.exponent));
    const V n1_v = Ops::set1(a.n1);
    alignas(64) double la[kL];
    alignas(64) double lb[kL];
    alignas(64) double cbuf[kL];
    alignas(64) double abuf[kL];
    alignas(64) double fbuf[kL];
    std::size_t e = begin;
    for (; e + kL <= end; e += kL) {
      for (std::size_t j = 0; j < kL; ++j) {
        la[j] = a.labels[static_cast<std::size_t>(a.edges[e + j].first)];
        lb[j] = a.labels[static_cast<std::size_t>(a.edges[e + j].second)];
      }
      const V delta = Ops::sub(Ops::load(la), Ops::load(lb));
      const V ad = Ops::abs(delta);
      // pow_chain(ad, p-1)'s multiply sequence.
      V chain = Ops::set1(1.0);
      for (int t = 0; t < a.exponent - 1; ++t) chain = Ops::mul(chain, ad);
      if constexpr (kFast) {
        sum_v = Ops::add(sum_v, Ops::mul(chain, ad));
      } else {
        Ops::store(cbuf, chain);
        Ops::store(abuf, ad);
        // Ordered extraction replays the scalar `sum += chain * ad` chain.
        for (std::size_t j = 0; j < kL; ++j) sum += cbuf[j] * abuf[j];
      }
      const V magnitude = Ops::div(Ops::mul(exp_v, chain), n1_v);
      const V first =
          a.analytic ? Ops::select_ge0(delta, magnitude, Ops::neg(magnitude))
                     : magnitude;
      Ops::store(fbuf, first);
      for (std::size_t j = 0; j < kL; ++j) {
        a.slot_grad[a.slot_of_first[e + j]] = fbuf[j];
        a.slot_grad[a.slot_of_second[e + j]] = -fbuf[j];
      }
    }
    if constexpr (kFast) {
      alignas(64) double sbuf[kL];
      Ops::store(sbuf, sum_v);
      for (std::size_t j = 0; j < kL; ++j) sum += sbuf[j];
    }
    for (; e < end; ++e) {
      const auto& [ga, gb] = a.edges[e];
      const double delta = a.labels[static_cast<std::size_t>(ga)] -
                           a.labels[static_cast<std::size_t>(gb)];
      const double ad = std::abs(delta);
      const double chain = pow_chain_local(ad, a.exponent - 1);
      sum += chain * ad;
      const double magnitude = a.exponent * chain / a.n1;
      const double first =
          a.analytic ? (delta >= 0.0 ? magnitude : -magnitude) : magnitude;
      a.slot_grad[a.slot_of_first[e]] = first;
      a.slot_grad[a.slot_of_second[e]] = -first;
    }
    return sum;
  }

  static double edge_grad(const EdgeGradArgs& a, std::size_t begin,
                          std::size_t end) {
    return edge_grad_impl<false>(a, begin, end);
  }
  static double edge_grad_fast(const EdgeGradArgs& a, std::size_t begin,
                               std::size_t end) {
    return edge_grad_impl<true>(a, begin, end);
  }

  // ---- fused gather / gradient fill / F4 -----------------------------

  template <bool kFast>
  static void fused_gate_impl(const FusedGateArgs& a, std::size_t begin,
                              std::size_t end, double* f4_acc) {
    // kPaperEq10 is cold; the scalar tier carries it.
    if (!a.analytic) {
      detail::fused_gate_scalar(a, begin, end, f4_acc);
      return;
    }
    const std::size_t stride = a.stride;
    // Groups covering real planes only — NOT stride / kL: the row stride
    // is padded to kRowAlignDoubles, so at narrow lane widths a row can
    // end in whole groups of pure padding (e.g. k=11, stride=16, kL=4).
    // Those must never be stored (grad padding stays exactly zero) and
    // the partial group is the last *active* one, not the last stride
    // group.
    const std::size_t groups = (a.k + kL - 1) / kL;
    if (groups > kMaxGroups) {
      detail::fused_gate_scalar(a, begin, end, f4_acc);
      return;
    }
    const double kd = static_cast<double>(a.k);
    const V kd_v = Ops::set1(kd);
    const V one_v = Ops::set1(1.0);
    const V c1_v = Ops::set1(a.c1);
    const V bcoef_v = Ops::set1(a.bias_coef);
    const V acoef_v = Ops::set1(a.area_coef);
    const V c4_v = Ops::set1(a.c4_coef);
    const std::size_t last = groups - 1;
    const std::size_t last_lanes = a.k - last * kL;

    // Gate-blocked, lane = gate (the aggregate kernel's structure): the
    // per-gate inputs (dlabel, mean, bias, area) become contiguous vector
    // loads instead of per-gate broadcasts, the per-plane scalars
    // broadcast once per block instead of once per gate, and the
    // per-gate variance chain runs as one vector chain with the plane
    // index ascending — each lane is exactly the scalar gate's
    // left-to-right sum. Rows transpose in, grad transposes back out
    // with +0.0 in the padding planes (bit-identical to never touching
    // them).
    double f4_sum = 0.0;
    alignas(64) double dbuf[kL];
    alignas(64) double fbuf[kL];
    std::size_t i = begin;
    for (; i + kL <= end; i += kL) {
      for (std::size_t j = 0; j < kL; ++j) {
        // Ascending-edge-order slot gather: the exact scatter replay;
        // stays scalar (variable short ranges), one chain per gate.
        double dlabel = 0.0;
        for (std::uint32_t inc = a.inc_offsets[i + j];
             inc < a.inc_offsets[i + j + 1]; ++inc) {
          dlabel += a.slot_grad[inc];
        }
        dbuf[j] = dlabel;
      }
      const V c1d_v = Ops::mul(c1_v, Ops::load(dbuf));
      const V bias_v = Ops::mul(bcoef_v, Ops::loadu(a.bias + i));
      const V area_v = Ops::mul(acoef_v, Ops::loadu(a.area + i));
      const V mean_v = Ops::loadu(a.row_mean + i);
      const V st_v = Ops::sub(Ops::mul(kd_v, mean_v), one_v);

      V var_v = Ops::zero();
      for (std::size_t g = 0; g < groups; ++g) {
        V t[kL];
        for (std::size_t j = 0; j < kL; ++j) {
          t[j] = Ops::loadu(a.w + (i + j) * stride + g * kL);
        }
        Ops::transpose(t);  // t[l] = plane g*kL+l across the block's gates
        const std::size_t lanes = g == last ? last_lanes : kL;
        for (std::size_t l = 0; l < kL; ++l) {
          if (l < lanes) {
            const std::size_t kk = g * kL + l;
            const V dev = Ops::sub(t[l], mean_v);
            V value =
                Ops::mul(c1d_v, Ops::set1(static_cast<double>(kk + 1)));
            value = Ops::add(value, Ops::mul(bias_v, Ops::set1(a.bias_diff[kk])));
            value = Ops::add(value, Ops::mul(area_v, Ops::set1(a.area_diff[kk])));
            value = Ops::add(
                value, Ops::mul(c4_v, Ops::sub(st_v, Ops::div(dev, kd_v))));
            t[l] = value;
            var_v = Ops::add(var_v, Ops::mul(dev, dev));
          } else {
            t[l] = Ops::zero();  // padding plane: store explicit +0.0
          }
        }
        Ops::transpose(t);  // back to row-major gate rows
        for (std::size_t j = 0; j < kL; ++j) {
          Ops::storeu(a.grad + (i + j) * stride + g * kL, t[j]);
        }
      }
      const V pg = Ops::sub(Ops::mul(st_v, st_v), Ops::div(var_v, kd_v));
      Ops::store(fbuf, pg);
      // Ascending lane extraction: the scalar per-gate addition order.
      for (std::size_t j = 0; j < kL; ++j) f4_sum += fbuf[j];
    }
    // Inlined scalar tail continuing the same f4 chain.
    for (; i < end; ++i) {
      double dlabel = 0.0;
      for (std::uint32_t inc = a.inc_offsets[i]; inc < a.inc_offsets[i + 1];
           ++inc) {
        dlabel += a.slot_grad[inc];
      }
      double* grow = a.grad + i * stride;
      const double* wrow = a.w + i * stride;
      const double mean = a.row_mean[i];
      const double c1_dlabel = a.c1 * dlabel;
      const double bias_i = a.bias_coef * a.bias[i];
      const double area_i = a.area_coef * a.area[i];
      const double sum_term = kd * mean - 1.0;
      double variance = 0.0;
      for (std::size_t kk = 0; kk < a.k; ++kk) {
        double value = c1_dlabel * static_cast<double>(kk + 1);
        value += bias_i * a.bias_diff[kk];
        value += area_i * a.area_diff[kk];
        const double dev = wrow[kk] - mean;
        value += a.c4_coef * (sum_term - dev / kd);
        grow[kk] = value;
        variance += dev * dev;
      }
      f4_sum += sum_term * sum_term - variance / kd;
    }
    *f4_acc += f4_sum;
  }

  static void fused_gate(const FusedGateArgs& a, std::size_t begin,
                         std::size_t end, double* f4_acc) {
    fused_gate_impl<false>(a, begin, end, f4_acc);
  }
  static void fused_gate_fast(const FusedGateArgs& a, std::size_t begin,
                              std::size_t end, double* f4_acc) {
    fused_gate_impl<true>(a, begin, end, f4_acc);
  }

  // ---- optimizer flat passes -----------------------------------------

  static void step_clamp(double* w, const double* g, std::size_t begin,
                         std::size_t end, double scale) {
    const V scale_v = Ops::set1(scale);
    std::size_t i = begin;
    for (; i + kL <= end; i += kL) {
      const V wv = Ops::loadu(w + i);
      const V gv = Ops::loadu(g + i);
      Ops::storeu(w + i, Ops::clamp01(Ops::sub(wv, Ops::mul(scale_v, gv))));
    }
    for (; i < end; ++i) {
      w[i] = std::clamp(w[i] - scale * g[i], 0.0, 1.0);
    }
  }

  static double max_abs(const double* g, std::size_t begin, std::size_t end) {
    V acc = Ops::zero();
    std::size_t i = begin;
    for (; i + kL <= end; i += kL) {
      // New value in the NaN-propagation slot, accumulator in the
      // NaN-keeping slot: matches std::max(acc, std::abs(x)) which keeps
      // acc on an unordered compare. Order never matters otherwise —
      // max over non-negative values is associative and commutative.
      acc = Ops::max_second(Ops::abs(Ops::loadu(g + i)), acc);
    }
    alignas(64) double buf[kL];
    Ops::store(buf, acc);
    double result = 0.0;
    for (std::size_t j = 0; j < kL; ++j) result = std::max(result, buf[j]);
    for (; i < end; ++i) result = std::max(result, std::abs(g[i]));
    return result;
  }

  // pow_chain clone for the inlined edge tail (same association as
  // kernels_common.h; duplicated so this header needs no extra include
  // order care).
  static double pow_chain_local(double base, int exponent) {
    switch (exponent) {
      case 0: return 1.0;
      case 1: return base;
      case 2: return base * base;
      case 3: return (base * base) * base;
      default: {
        double result = 1.0;
        for (int i = 0; i < exponent; ++i) result *= base;
        return result;
      }
    }
  }

  static KernelTable table(const char* name) {
    KernelTable t;
    t.name = name;
    t.aggregate = aggregate;
    t.step_aggregate = step_aggregate;
    t.f1_term = f1_term;
    t.edge_grad = edge_grad;
    t.fused_gate = fused_gate;
    t.step_clamp = step_clamp;
    t.max_abs = max_abs;
    t.edge_grad_fast = edge_grad_fast;
    t.fused_gate_fast = fused_gate_fast;
    return t;
  }
};

}  // namespace sfqpart::simd
