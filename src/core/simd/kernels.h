// The gradient hot-path kernel layer (DESIGN.md section 15).
//
// CostModel's per-chunk loops — the aggregate sweep over W, the signed
// |dl|^(p-1) edge power chain, the fused gather/F2/F3/F4 gradient fill,
// and the optimizer's step/max-abs passes — are dispatched through this
// table of per-ISA implementations (scalar, AVX2, AVX-512), selected once
// at startup by core/simd/dispatch.h.
//
// Contract: every non-fast kernel is BIT-IDENTICAL to the scalar tier.
// The scalar tier is the exact code the pre-SIMD CostModel ran (moved
// here verbatim, same compile flags), so golden labels and the
// scatter-vs-gather A/B are pinned across tiers. Vector tiers keep the
// guarantee by replaying the scalar accumulation orders exactly:
//
//  * vertical per-plane reductions (bias/area sums) accumulate gate-by-
//    gate in one vector lane per plane — the same per-accumulator
//    addition order as the scalar loop;
//  * horizontal per-gate reductions (soft label, row sum, F4 variance)
//    transpose row blocks so the plane index advances sequentially per
//    gate, vectorized across gates;
//  * chunk partial sums (F1, F4) extract lanes in ascending element
//    order, replaying the scalar addition chain;
//  * NO fused-multiply-add: the base build targets plain x86-64, so the
//    scalar tier has no FP contraction — one rounding per operator,
//    exactly the C expression text. The vector tiers therefore use only
//    discrete mul/add/sub/div intrinsics and compile with
//    -ffp-contract=off (FMA intrinsics appear only in *_fast variants).
//    The dispatch probe (dispatch.h) demotes any tier that fails to
//    reproduce the scalar bits on this machine, so the guarantee holds
//    even where a compiler contracts differently.
//
// The *_fast entries are the opt-in reassociated variants behind the
// fast_math engine option: lane-parallel F1/gather accumulation with a
// tree reduction, tolerance-checked (not bit-pinned) by test.
//
// All W/grad pointers are padded rows, `stride` doubles apart (stride is
// a multiple of util/matrix.h kRowAlignDoubles, so full-vector row loads
// never fault and padding lanes read zero). Kernels run per chunk over
// [begin, end) and add into caller-owned partial accumulators, matching
// the deterministic chunk-combine scheme of util/thread_pool.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

namespace sfqpart::simd {

// Per-gate aggregate sweep: soft labels l_i, row means, per-plane
// bias/area partial sums, and (when f4_acc is non-null) the fused F4
// constraint partial — one read of W for the whole evaluate() front end.
struct AggregateArgs {
  const double* w = nullptr;  // padded G x stride
  std::size_t stride = 0;
  std::size_t k = 0;
  const double* bias = nullptr;  // per-gate
  const double* area = nullptr;
  double* labels = nullptr;    // out: per-gate soft label
  double* row_mean = nullptr;  // out: per-gate row mean
};
using AggregateFn = void (*)(const AggregateArgs& args, std::size_t begin,
                             std::size_t end, double* bias_acc,
                             double* area_acc, double* f4_acc);

// Fused descent step + aggregate: w_row = clamp01(w_row - scale * g_row)
// followed by the same aggregation of the stepped row — the optimizer's
// write of W_t+1 and the next iteration's read of it become one pass.
using StepAggregateFn = void (*)(const AggregateArgs& args, double* w,
                                 const double* grad, double scale,
                                 std::size_t begin, std::size_t end,
                                 double* bias_acc, double* area_acc,
                                 double* f4_acc);

// F1 term only (no gradient): sum of |l_a - l_b|^p over edges
// [begin, end), returned as the chunk partial.
struct EdgeArgs {
  const std::pair<int, int>* edges = nullptr;
  const double* labels = nullptr;
  int exponent = 4;
};
using F1TermFn = double (*)(const EdgeArgs& args, std::size_t begin,
                            std::size_t end);

// F1 term + both signed per-endpoint gradient slots of every edge.
struct EdgeGradArgs {
  const std::pair<int, int>* edges = nullptr;
  const double* labels = nullptr;
  const std::uint32_t* slot_of_first = nullptr;
  const std::uint32_t* slot_of_second = nullptr;
  double* slot_grad = nullptr;
  int exponent = 4;
  double n1 = 1.0;
  bool analytic = true;
};
using EdgeGradFn = double (*)(const EdgeGradArgs& args, std::size_t begin,
                              std::size_t end);

// Fused per-gate pass: CSR gather of the edge slots, gradient row fill
// for all four terms, and the F4 partial. Returns nothing; adds the F4
// chunk sum into *f4_acc.
struct FusedGateArgs {
  const double* w = nullptr;  // padded G x stride
  double* grad = nullptr;     // padded G x stride
  std::size_t stride = 0;
  std::size_t k = 0;
  const double* row_mean = nullptr;
  const double* bias = nullptr;
  const double* area = nullptr;
  const double* bias_diff = nullptr;  // padded to stride, zeros past k
  const double* area_diff = nullptr;  // padded to stride, zeros past k
  const double* slot_grad = nullptr;
  const std::uint32_t* inc_offsets = nullptr;
  double c1 = 0.0;
  double bias_coef = 0.0;
  double area_coef = 0.0;
  double c4_coef = 0.0;
  bool analytic = true;
};
using FusedGateFn = void (*)(const FusedGateArgs& args, std::size_t begin,
                             std::size_t end, double* f4_acc);

// Optimizer element-wise passes over the padded flat storage (grad
// padding lanes are zero by the Matrix writer contract, so both are
// value-safe over the full stride).
using StepClampFn = void (*)(double* w, const double* g, std::size_t begin,
                             std::size_t end, double scale);
using MaxAbsFn = double (*)(const double* g, std::size_t begin,
                            std::size_t end);

struct KernelTable {
  const char* name = "scalar";
  AggregateFn aggregate = nullptr;
  StepAggregateFn step_aggregate = nullptr;
  F1TermFn f1_term = nullptr;
  EdgeGradFn edge_grad = nullptr;
  FusedGateFn fused_gate = nullptr;
  StepClampFn step_clamp = nullptr;
  MaxAbsFn max_abs = nullptr;
  // Reassociated fast_math variants; null means "no fast variant, use the
  // exact kernel" (the scalar tier has none).
  EdgeGradFn edge_grad_fast = nullptr;
  FusedGateFn fused_gate_fast = nullptr;
};

// Per-tier tables. The scalar table is always available; the vector
// tables exist only in builds whose compiler supports the ISA (else they
// are null — dispatch.cpp treats them as absent).
const KernelTable& scalar_kernels();
const KernelTable* avx2_kernels();    // null when not compiled in
const KernelTable* avx512_kernels();  // null when not compiled in

}  // namespace sfqpart::simd
