// Runtime kernel-tier dispatch (DESIGN.md section 15).
//
// The tier is chosen once, on first use:
//
//   1. detect: the widest ISA both this build and this CPU support
//      (__builtin_cpu_supports; scalar everywhere else);
//   2. request: the SFQPART_KERNELS environment variable ("scalar",
//      "avx2", "avx512") clamps the detected tier DOWN — it can never
//      enable an ISA the machine lacks, so CI can force any tier on any
//      runner without faulting;
//   3. probe: every vector kernel of the requested tier runs against the
//      scalar tier on a synthetic problem (odd sizes, partial plane
//      groups, CSR tails) and must match BIT FOR BIT; a tier that fails
//      is demoted (avx512 -> avx2 -> scalar). The probe is the safety
//      net for compilers whose scalar codegen contracts differently than
//      the kernels assume — the default mode then silently falls back to
//      a tier that preserves golden labels instead of shipping drifted
//      bits.
//
// kernels() returns the active table; CostModel and the optimizer call
// it per pass (one relaxed load). force_tier_for_testing() overrides the
// choice in-process so the identity suite can A/B tiers without
// re-execing under a different environment.
#pragma once

#include <optional>
#include <string_view>

#include "core/simd/kernels.h"

namespace sfqpart::simd {

enum class Tier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

struct DispatchInfo {
  Tier detected = Tier::kScalar;   // widest build+CPU supported tier
  Tier requested = Tier::kScalar;  // after the env clamp
  Tier active = Tier::kScalar;     // after probe demotion / force
  bool env_override = false;       // SFQPART_KERNELS was set and parsed
  bool probe_demoted = false;      // active < requested because of probe
  bool forced = false;             // force_tier_for_testing is in effect
};

const char* tier_name(Tier tier);
std::optional<Tier> parse_tier(std::string_view name);

// True when the tier's table is compiled in AND the CPU executes it.
bool tier_available(Tier tier);

// The tier's table, or null when not compiled in. May be unsafe to RUN
// when tier_available() is false (missing CPU support) — callers A/B-ing
// tiers must check availability first.
const KernelTable* tier_kernels(Tier tier);

// The dispatch decision (computed once, on first call).
const DispatchInfo& dispatch_info();

// The active tier's kernel table.
const KernelTable& kernels();

// Runs the bit-identity probe of `tier` against the scalar tier; true on
// exact match. Scalar trivially passes. Returns false when unavailable.
bool probe_tier(Tier tier);

// Test/bench hooks. force_tier clamps to an available tier (returns the
// tier actually activated) and skips the probe; reset re-runs the full
// env + probe selection.
Tier force_tier_for_testing(Tier tier);
void reset_dispatch_for_testing();

}  // namespace sfqpart::simd
