// Shared scalar helpers of the kernel tiers. ipow/pow_chain are the same
// multiply chains CostModel has always used (cost_model.cpp keeps private
// copies for init() and the scatter reference path); they live here too so
// every tier — including the vector ones' scalar tails — reproduces the
// exact left-to-right association.
#pragma once

#include <cassert>
#include <cstddef>

namespace sfqpart::simd {

inline double ipow(double base, int exponent) {
  assert(exponent >= 0 && "ipow: negative exponents are not supported");
  double result = 1.0;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}

// ipow with the small exponents unrolled for the hot edge pass. Every
// branch reproduces ipow's left-to-right multiply chain exactly
// (1.0 * b == b in IEEE), so the bits never depend on which is called.
inline double pow_chain(double base, int exponent) {
  switch (exponent) {
    case 0: return 1.0;
    case 1: return base;
    case 2: return base * base;
    case 3: return (base * base) * base;
    default: return ipow(base, exponent);
  }
}

}  // namespace sfqpart::simd
