#include "core/simd/dispatch.h"

#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "core/simd/kernels_scalar.h"

namespace sfqpart::simd {
namespace {

// ---- probe workload --------------------------------------------------
// A synthetic problem exercising every alignment path: odd gate counts
// (vector-block tails), a K that part-fills the last plane group at both
// lane widths, a second K spanning multiple groups, and a CSR incidence
// with mixed degrees. Values come from a fixed LCG, not util/rng, so the
// probe has no dependency on (and can never perturb) the solver's
// pinned streams.

struct LcgDouble {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  double next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

constexpr std::size_t kRowAlign = 8;  // util/matrix.h kRowAlignDoubles

std::size_t padded(std::size_t k) {
  return (k + kRowAlign - 1) / kRowAlign * kRowAlign;
}

struct ProbeProblem {
  std::size_t gates;
  std::size_t k;
  std::size_t stride;
  std::vector<double> w;     // gates x stride, padding zero
  std::vector<double> grad;  // same shape, padding zero
  std::vector<double> bias;
  std::vector<double> area;
  std::vector<std::pair<int, int>> edges;
  std::vector<std::uint32_t> slot_of_first;
  std::vector<std::uint32_t> slot_of_second;
  std::vector<std::uint32_t> inc_offsets;

  ProbeProblem(std::size_t gates_in, std::size_t k_in, std::size_t num_edges)
      : gates(gates_in), k(k_in), stride(padded(k_in)) {
    LcgDouble rng;
    w.assign(gates * stride, 0.0);
    grad.assign(gates * stride, 0.0);
    for (std::size_t i = 0; i < gates; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        w[i * stride + kk] = rng.next();
        grad[i * stride + kk] = rng.next() - 0.5;
      }
    }
    bias.resize(gates);
    area.resize(gates);
    for (std::size_t i = 0; i < gates; ++i) {
      bias[i] = 1.0 + rng.next();
      area[i] = 2.0 + rng.next();
    }
    for (std::size_t e = 0; e < num_edges; ++e) {
      const int a = static_cast<int>((e * 7 + 1) % gates);
      int b = static_cast<int>((e * 13 + 3) % gates);
      if (b == a) b = (b + 1) % static_cast<int>(gates);
      edges.emplace_back(a, b);
    }
    // CSR incidence in ascending edge order per gate, matching
    // core/problem_view.h.
    std::vector<std::uint32_t> degree(gates, 0);
    for (const auto& [a, b] : edges) {
      ++degree[static_cast<std::size_t>(a)];
      ++degree[static_cast<std::size_t>(b)];
    }
    inc_offsets.assign(gates + 1, 0);
    for (std::size_t i = 0; i < gates; ++i) {
      inc_offsets[i + 1] = inc_offsets[i] + degree[i];
    }
    std::vector<std::uint32_t> cursor(inc_offsets.begin(),
                                      inc_offsets.end() - 1);
    slot_of_first.resize(edges.size());
    slot_of_second.resize(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
      slot_of_first[e] = cursor[static_cast<std::size_t>(edges[e].first)]++;
      slot_of_second[e] = cursor[static_cast<std::size_t>(edges[e].second)]++;
    }
  }
};

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Runs one kernel table over the probe problem; all outputs collected so
// the caller can compare tables bitwise.
struct ProbeResult {
  std::vector<double> labels, row_mean, bias_acc, area_acc;
  std::vector<double> slot_grad, grad, stepped_w;
  double f4_agg = 0.0, f4_step = 0.0, f4_fill = 0.0;
  double f1 = 0.0, f1_grad = 0.0, max_abs = 0.0;
  std::vector<double> clamped;

  bool operator==(const ProbeResult& o) const {
    return bits_equal(labels, o.labels) && bits_equal(row_mean, o.row_mean) &&
           bits_equal(bias_acc, o.bias_acc) &&
           bits_equal(area_acc, o.area_acc) &&
           bits_equal(slot_grad, o.slot_grad) && bits_equal(grad, o.grad) &&
           bits_equal(stepped_w, o.stepped_w) &&
           bits_equal(clamped, o.clamped) && bits_equal(f4_agg, o.f4_agg) &&
           bits_equal(f4_step, o.f4_step) && bits_equal(f4_fill, o.f4_fill) &&
           bits_equal(f1, o.f1) && bits_equal(f1_grad, o.f1_grad) &&
           bits_equal(max_abs, o.max_abs);
  }
};

ProbeResult run_probe(const KernelTable& t, const ProbeProblem& p,
                      int exponent) {
  ProbeResult r;
  r.labels.assign(p.gates, 0.0);
  r.row_mean.assign(p.gates, 0.0);
  r.bias_acc.assign(p.stride, 0.0);
  r.area_acc.assign(p.stride, 0.0);

  AggregateArgs agg{p.w.data(),    p.stride,          p.k,
                    p.bias.data(), p.area.data(),     r.labels.data(),
                    r.row_mean.data()};
  t.aggregate(agg, 0, p.gates, r.bias_acc.data(), r.area_acc.data(),
              &r.f4_agg);

  EdgeArgs ea{p.edges.data(), r.labels.data(), exponent};
  r.f1 = t.f1_term(ea, 0, p.edges.size());

  r.slot_grad.assign(2 * p.edges.size(), 0.0);
  EdgeGradArgs eg{p.edges.data(),
                  r.labels.data(),
                  p.slot_of_first.data(),
                  p.slot_of_second.data(),
                  r.slot_grad.data(),
                  exponent,
                  3.5,
                  true};
  r.f1_grad = t.edge_grad(eg, 0, p.edges.size());

  // Plane diffs: any padded-to-stride values work for identity purposes.
  std::vector<double> plane_diff(2 * p.stride, 0.0);
  LcgDouble diff_rng{0x2545f4914f6cdd1dull};
  for (std::size_t kk = 0; kk < p.k; ++kk) {
    plane_diff[kk] = diff_rng.next() - 0.5;
    plane_diff[p.stride + kk] = diff_rng.next() - 0.5;
  }
  r.grad.assign(p.gates * p.stride, 0.0);
  FusedGateArgs fg{p.w.data(),
                   r.grad.data(),
                   p.stride,
                   p.k,
                   r.row_mean.data(),
                   p.bias.data(),
                   p.area.data(),
                   plane_diff.data(),
                   plane_diff.data() + p.stride,
                   r.slot_grad.data(),
                   p.inc_offsets.data(),
                   0.9,
                   0.07,
                   0.05,
                   0.8,
                   true};
  t.fused_gate(fg, 0, p.gates, &r.f4_fill);

  r.stepped_w = p.w;
  std::vector<double> step_labels(p.gates, 0.0);
  std::vector<double> step_mean(p.gates, 0.0);
  std::vector<double> step_bias(p.stride, 0.0);
  std::vector<double> step_area(p.stride, 0.0);
  AggregateArgs sagg{r.stepped_w.data(), p.stride,          p.k,
                     p.bias.data(),      p.area.data(),     step_labels.data(),
                     step_mean.data()};
  t.step_aggregate(sagg, r.stepped_w.data(), r.grad.data(), 0.37, 0, p.gates,
                   step_bias.data(), step_area.data(), &r.f4_step);
  // Fold the step pass outputs into the compared vectors.
  r.labels.insert(r.labels.end(), step_labels.begin(), step_labels.end());
  r.row_mean.insert(r.row_mean.end(), step_mean.begin(), step_mean.end());
  r.bias_acc.insert(r.bias_acc.end(), step_bias.begin(), step_bias.end());
  r.area_acc.insert(r.area_acc.end(), step_area.begin(), step_area.end());

  r.clamped = p.w;
  t.step_clamp(r.clamped.data(), r.grad.data(), 0, r.clamped.size(), 0.21);
  r.max_abs = t.max_abs(r.grad.data(), 0, r.grad.size());
  return r;
}

bool probe_matches_scalar(const KernelTable& table) {
  // Two shapes: K=5 part-fills a 4-lane and an 8-lane group; K=11 spans
  // multiple groups at both widths. 67 gates leaves tails at both block
  // sizes; 89 edges leaves edge-pass tails too.
  const ProbeProblem small(67, 5, 89);
  const ProbeProblem wide(35, 11, 53);
  const KernelTable& scalar = scalar_kernels();
  for (const ProbeProblem* p : {&small, &wide}) {
    for (int exponent : {4, 2}) {
      if (!(run_probe(table, *p, exponent) ==
            run_probe(scalar, *p, exponent))) {
        return false;
      }
    }
  }
  return true;
}

// ---- tier selection --------------------------------------------------

bool cpu_supports(Tier tier) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
  }
  return false;
#else
  return tier == Tier::kScalar;
#endif
}

struct DispatchState {
  DispatchInfo info;
  const KernelTable* table = &scalar_kernels();
};

const KernelTable* table_for(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &scalar_kernels();
    case Tier::kAvx2:
      return avx2_kernels();
    case Tier::kAvx512:
      return avx512_kernels();
  }
  return nullptr;
}

Tier lower(Tier tier) {
  return tier == Tier::kAvx512 ? Tier::kAvx2 : Tier::kScalar;
}

DispatchState compute_state() {
  DispatchState s;
  Tier detected = Tier::kScalar;
  for (Tier t : {Tier::kAvx2, Tier::kAvx512}) {
    if (table_for(t) != nullptr && cpu_supports(t)) detected = t;
  }
  s.info.detected = detected;

  Tier requested = detected;
  if (const char* env = std::getenv("SFQPART_KERNELS")) {
    if (const auto parsed = parse_tier(env)) {
      s.info.env_override = true;
      // Clamp up-requests: the override can only narrow, never enable an
      // ISA this machine cannot execute.
      requested = static_cast<int>(*parsed) < static_cast<int>(detected)
                      ? *parsed
                      : detected;
    }
  }
  s.info.requested = requested;

  Tier active = requested;
  while (active != Tier::kScalar &&
         !probe_matches_scalar(*table_for(active))) {
    active = lower(active);
    s.info.probe_demoted = true;
  }
  s.info.active = active;
  s.table = table_for(active);
  return s;
}

DispatchState& state() {
  static DispatchState s = compute_state();
  return s;
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Tier> parse_tier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  return std::nullopt;
}

bool tier_available(Tier tier) {
  return table_for(tier) != nullptr && cpu_supports(tier);
}

const KernelTable* tier_kernels(Tier tier) { return table_for(tier); }

const DispatchInfo& dispatch_info() { return state().info; }

const KernelTable& kernels() { return *state().table; }

bool probe_tier(Tier tier) {
  if (tier == Tier::kScalar) return true;
  if (!tier_available(tier)) return false;
  return probe_matches_scalar(*table_for(tier));
}

Tier force_tier_for_testing(Tier tier) {
  while (tier != Tier::kScalar && !tier_available(tier)) tier = lower(tier);
  DispatchState& s = state();
  s.info.active = tier;
  s.info.forced = true;
  s.table = table_for(tier);
  return tier;
}

void reset_dispatch_for_testing() { state() = compute_state(); }

}  // namespace sfqpart::simd
