// The scalar kernel tier: the exact per-chunk loops CostModel and the
// optimizer ran before the kernel layer existed, moved here verbatim and
// compiled with the base flags. This tier is the bit-anchor — every
// golden label, the scatter-vs-gather A/B, and the vector tiers' identity
// tests all pin against it. The functions keep external linkage (in
// detail::) because the vector tiers call them for block tails and for
// the rarely-used kPaperEq10 fill, so remainder gates run the identical
// instruction stream in every tier.
#include "core/simd/kernels.h"

#include <algorithm>
#include <cmath>

#include "core/simd/kernels_common.h"

namespace sfqpart::simd {
namespace detail {

void aggregate_scalar(const AggregateArgs& a, std::size_t begin,
                      std::size_t end, double* bias_acc, double* area_acc,
                      double* f4_acc) {
  const double kd = static_cast<double>(a.k);
  double f4_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double* row = a.w + i * a.stride;
    // Hoisted: the compiler cannot prove bias_acc/area_acc do not alias
    // the problem arrays, so without locals it reloads them every kk.
    const double bias_i = a.bias[i];
    const double area_i = a.area[i];
    double label = 0.0;
    double sum = 0.0;
    for (std::size_t kk = 0; kk < a.k; ++kk) {
      const double value = row[kk];
      label += static_cast<double>(kk + 1) * value;  // plane values 1..K
      sum += value;
      bias_acc[kk] += bias_i * value;
      area_acc[kk] += area_i * value;
    }
    a.labels[i] = label;
    const double mean = sum / kd;
    a.row_mean[i] = mean;
    if (f4_acc != nullptr) {
      const double sum_term = kd * mean - 1.0;
      double variance = 0.0;
      for (std::size_t kk = 0; kk < a.k; ++kk) {
        const double dev = row[kk] - mean;
        variance += dev * dev;
      }
      f4_sum += sum_term * sum_term - variance / kd;
    }
  }
  if (f4_acc != nullptr) *f4_acc += f4_sum;
}

void step_aggregate_scalar(const AggregateArgs& a, double* w,
                           const double* grad, double scale,
                           std::size_t begin, std::size_t end,
                           double* bias_acc, double* area_acc,
                           double* f4_acc) {
  const double kd = static_cast<double>(a.k);
  double f4_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    double* row = w + i * a.stride;
    const double* grow = grad + i * a.stride;
    // The descent step over the full padded stride (grad padding is zero,
    // so padding lanes stay exactly zero), then the aggregate of the
    // stepped row — the same expressions as the unfused kernels, just one
    // pass over the row.
    for (std::size_t j = 0; j < a.stride; ++j) {
      row[j] = std::clamp(row[j] - scale * grow[j], 0.0, 1.0);
    }
    const double bias_i = a.bias[i];
    const double area_i = a.area[i];
    double label = 0.0;
    double sum = 0.0;
    for (std::size_t kk = 0; kk < a.k; ++kk) {
      const double value = row[kk];
      label += static_cast<double>(kk + 1) * value;
      sum += value;
      bias_acc[kk] += bias_i * value;
      area_acc[kk] += area_i * value;
    }
    a.labels[i] = label;
    const double mean = sum / kd;
    a.row_mean[i] = mean;
    if (f4_acc != nullptr) {
      const double sum_term = kd * mean - 1.0;
      double variance = 0.0;
      for (std::size_t kk = 0; kk < a.k; ++kk) {
        const double dev = row[kk] - mean;
        variance += dev * dev;
      }
      f4_sum += sum_term * sum_term - variance / kd;
    }
  }
  if (f4_acc != nullptr) *f4_acc += f4_sum;
}

double f1_term_scalar(const EdgeArgs& a, std::size_t begin, std::size_t end) {
  double sum = 0.0;
  for (std::size_t e = begin; e < end; ++e) {
    const auto& [ga, gb] = a.edges[e];
    const double delta = std::abs(a.labels[static_cast<std::size_t>(ga)] -
                                  a.labels[static_cast<std::size_t>(gb)]);
    sum += ipow(delta, a.exponent);
  }
  return sum;
}

// The F1 term and both signed per-endpoint gradient contributions of
// every edge, one power chain per edge. Bit-identity bookkeeping:
//  - `chain * ad` extends pow_chain(ad, p-1)'s multiply sequence by one
//    factor, which IS ipow(ad, p)'s sequence, so the F1 chunk partials
//    match f1_term_scalar exactly (same grain, same combine order).
//  - The first endpoint's slot takes the scatter's `+= signed_term` value
//    and the second takes `-signed_term` (IEEE negation is exact), so
//    summing a gate's slots in ascending edge order replays the exact
//    additions the scatter applied to dlabel[i].
double edge_grad_scalar(const EdgeGradArgs& a, std::size_t begin,
                        std::size_t end) {
  double sum = 0.0;
  for (std::size_t e = begin; e < end; ++e) {
    const auto& [ga, gb] = a.edges[e];
    const double delta = a.labels[static_cast<std::size_t>(ga)] -
                         a.labels[static_cast<std::size_t>(gb)];
    const double ad = std::abs(delta);
    const double chain = pow_chain(ad, a.exponent - 1);
    sum += chain * ad;
    const double magnitude = a.exponent * chain / a.n1;
    const double first =
        a.analytic ? (delta >= 0.0 ? magnitude : -magnitude)
                   : magnitude;  // eq. 10 as printed: unsigned, +first/-second
    a.slot_grad[a.slot_of_first[e]] = first;
    a.slot_grad[a.slot_of_second[e]] = -first;
  }
  return sum;
}

// One pass over W doing all the per-gate work — the gather of dF1/dl_i
// from the slot values the edge pass precomputed, the F4 term partial,
// and the gradient row fill for every term. A gate's slots sit in
// ascending edge order — the exact addition sequence the reference
// scatter applies to dlabel[i]. The hoisted coefficient products keep the
// scatter fill's left-to-right association, so hoisting cannot change a
// bit either.
void fused_gate_scalar(const FusedGateArgs& a, std::size_t begin,
                       std::size_t end, double* f4_acc) {
  const double kd = static_cast<double>(a.k);
  double f4_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    double dlabel = 0.0;
    for (std::uint32_t inc = a.inc_offsets[i]; inc < a.inc_offsets[i + 1];
         ++inc) {
      dlabel += a.slot_grad[inc];
    }

    double* grow = a.grad + i * a.stride;
    const double* wrow = a.w + i * a.stride;
    const double mean = a.row_mean[i];
    const double c1_dlabel = a.c1 * dlabel;
    const double bias_i = a.bias_coef * a.bias[i];
    const double area_i = a.area_coef * a.area[i];
    const double sum_term = kd * mean - 1.0;
    double variance = 0.0;
    for (std::size_t kk = 0; kk < a.k; ++kk) {
      double value = c1_dlabel * static_cast<double>(kk + 1);
      value += bias_i * a.bias_diff[kk];
      value += area_i * a.area_diff[kk];
      const double dev = wrow[kk] - mean;
      if (a.analytic) {
        value += a.c4_coef * (sum_term - dev / kd);
      } else {
        value += a.c4_coef * ((kd + 1.0 / kd) * (mean - wrow[kk]) + kd - 1.0);
      }
      grow[kk] = value;
      variance += dev * dev;
    }
    f4_sum += sum_term * sum_term - variance / kd;
  }
  *f4_acc += f4_sum;
}

void step_clamp_scalar(double* w, const double* g, std::size_t begin,
                       std::size_t end, double scale) {
  for (std::size_t i = begin; i < end; ++i) {
    w[i] = std::clamp(w[i] - scale * g[i], 0.0, 1.0);
  }
}

double max_abs_scalar(const double* g, std::size_t begin, std::size_t end) {
  double max_abs = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    max_abs = std::max(max_abs, std::abs(g[i]));
  }
  return max_abs;
}

}  // namespace detail

const KernelTable& scalar_kernels() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "scalar";
    t.aggregate = detail::aggregate_scalar;
    t.step_aggregate = detail::step_aggregate_scalar;
    t.f1_term = detail::f1_term_scalar;
    t.edge_grad = detail::edge_grad_scalar;
    t.fused_gate = detail::fused_gate_scalar;
    t.step_clamp = detail::step_clamp_scalar;
    t.max_abs = detail::max_abs_scalar;
    // No fast variants: reassociation only pays with vector lanes.
    return t;
  }();
  return table;
}

}  // namespace sfqpart::simd
