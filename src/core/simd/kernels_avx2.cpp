// AVX2 kernel tier (4 double lanes). Compiled with -mavx2
// -ffp-contract=off (see src/CMakeLists.txt); on non-x86 or unsupported
// compilers this TU degenerates to a null table and dispatch never
// offers the tier.
#include "core/simd/kernels.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include "core/simd/kernels_vec_impl.h"

namespace sfqpart::simd {
namespace {

struct Avx2Ops {
  using V = __m256d;
  static constexpr std::size_t kLanes = 4;

  static V zero() { return _mm256_setzero_pd(); }
  static V set1(double x) { return _mm256_set1_pd(x); }
  static V load(const double* p) { return _mm256_load_pd(p); }
  static V loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, V v) { _mm256_store_pd(p, v); }
  static void storeu(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V div(V a, V b) { return _mm256_div_pd(a, b); }
  static V neg(V a) { return _mm256_xor_pd(a, _mm256_set1_pd(-0.0)); }
  static V abs(V a) { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a); }

  // clamp01 with std::clamp(x, 0, 1) value semantics: vmin/vmaxpd return
  // the SECOND operand on NaN or signed-zero ties, so keeping x there
  // propagates NaN and -0 exactly like the scalar expression.
  static V clamp01(V x) {
    return _mm256_min_pd(set1(1.0), _mm256_max_pd(_mm256_setzero_pd(), x));
  }
  // max with the accumulator in the NaN-keeping (second) slot.
  static V max_second(V x, V acc) { return _mm256_max_pd(x, acc); }

  // lanewise: ge0 ? a : b, with NaN deltas taking b — matching the scalar
  // `delta >= 0.0 ? a : b` (unordered compares are false).
  static V select_ge0(V delta, V a, V b) {
    const V mask = _mm256_cmp_pd(delta, _mm256_setzero_pd(), _CMP_GE_OQ);
    return _mm256_blendv_pd(b, a, mask);
  }

  // Store the first m lanes (1..3) only.
  static void store_head(double* p, V v, std::size_t m) {
    alignas(32) static const long long kRows[7] = {-1, -1, -1, 0, 0, 0, 0};
    const __m256i mask =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kRows + 3 - m));
    _mm256_maskstore_pd(p, mask, v);
  }
  // Zero lanes >= m (for the fast-math variance mask).
  static V zero_tail(V v, std::size_t m) {
    alignas(32) static const long long kRows[7] = {-1, -1, -1, 0, 0, 0, 0};
    const __m256i mask =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kRows + 3 - m));
    return _mm256_and_pd(v, _mm256_castsi256_pd(mask));
  }

  // In-place 4x4 transpose: r[j] holds gate j's 4 plane values on entry,
  // plane kk's 4 gate values on exit.
  static void transpose(V (&r)[kLanes]) {
    const V t0 = _mm256_unpacklo_pd(r[0], r[1]);
    const V t1 = _mm256_unpackhi_pd(r[0], r[1]);
    const V t2 = _mm256_unpacklo_pd(r[2], r[3]);
    const V t3 = _mm256_unpackhi_pd(r[2], r[3]);
    r[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
    r[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
    r[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
    r[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
  }
};

}  // namespace

const KernelTable* avx2_kernels() {
  static const KernelTable table = VecKernels<Avx2Ops>::table("avx2");
  return &table;
}

}  // namespace sfqpart::simd

#else  // unsupported target/compiler

namespace sfqpart::simd {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace sfqpart::simd

#endif
