// External-linkage entry points of the scalar tier (kernels_scalar.cpp).
// The vector tiers call these for block tails — the last < vector-width
// gates/edges of a chunk — and for the kPaperEq10 fill, so remainders run
// the identical instruction stream in every tier. Everyone else should go
// through the KernelTable (kernels.h / dispatch.h).
#pragma once

#include "core/simd/kernels.h"

namespace sfqpart::simd::detail {

void aggregate_scalar(const AggregateArgs& a, std::size_t begin,
                      std::size_t end, double* bias_acc, double* area_acc,
                      double* f4_acc);
void step_aggregate_scalar(const AggregateArgs& a, double* w,
                           const double* grad, double scale,
                           std::size_t begin, std::size_t end,
                           double* bias_acc, double* area_acc, double* f4_acc);
double f1_term_scalar(const EdgeArgs& a, std::size_t begin, std::size_t end);
double edge_grad_scalar(const EdgeGradArgs& a, std::size_t begin,
                        std::size_t end);
void fused_gate_scalar(const FusedGateArgs& a, std::size_t begin,
                       std::size_t end, double* f4_acc);
void step_clamp_scalar(double* w, const double* g, std::size_t begin,
                       std::size_t end, double scale);
double max_abs_scalar(const double* g, std::size_t begin, std::size_t end);

}  // namespace sfqpart::simd::detail
