// AVX-512 kernel tier (8 double lanes; one W row group per register).
// Compiled with -mavx512f -mavx512dq -ffp-contract=off (see
// src/CMakeLists.txt); elsewhere this TU degenerates to a null table.
#include "core/simd/kernels.h"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include "core/simd/kernels_vec_impl.h"

namespace sfqpart::simd {
namespace {

struct Avx512Ops {
  using V = __m512d;
  static constexpr std::size_t kLanes = 8;

  static V zero() { return _mm512_setzero_pd(); }
  static V set1(double x) { return _mm512_set1_pd(x); }
  static V load(const double* p) { return _mm512_load_pd(p); }
  static V loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, V v) { _mm512_store_pd(p, v); }
  static void storeu(double* p, V v) { _mm512_storeu_pd(p, v); }
  static V add(V a, V b) { return _mm512_add_pd(a, b); }
  static V sub(V a, V b) { return _mm512_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V div(V a, V b) { return _mm512_div_pd(a, b); }
  static V neg(V a) { return _mm512_xor_pd(a, _mm512_set1_pd(-0.0)); }
  static V abs(V a) { return _mm512_andnot_pd(_mm512_set1_pd(-0.0), a); }

  // See Avx2Ops: x stays in the NaN/-0-deciding second operand slot.
  static V clamp01(V x) {
    return _mm512_min_pd(set1(1.0), _mm512_max_pd(_mm512_setzero_pd(), x));
  }
  static V max_second(V x, V acc) { return _mm512_max_pd(x, acc); }

  static V select_ge0(V delta, V a, V b) {
    const __mmask8 ge =
        _mm512_cmp_pd_mask(delta, _mm512_setzero_pd(), _CMP_GE_OQ);
    return _mm512_mask_blend_pd(ge, b, a);  // mask set -> a
  }

  static __mmask8 head_mask(std::size_t m) {
    return static_cast<__mmask8>((1u << m) - 1u);
  }
  static void store_head(double* p, V v, std::size_t m) {
    _mm512_mask_storeu_pd(p, head_mask(m), v);
  }
  static V zero_tail(V v, std::size_t m) {
    return _mm512_maskz_mov_pd(head_mask(m), v);
  }

  // In-place 8x8 transpose via unpack + 128-bit lane shuffles.
  static void transpose(V (&r)[kLanes]) {
    const V t0 = _mm512_unpacklo_pd(r[0], r[1]);
    const V t1 = _mm512_unpackhi_pd(r[0], r[1]);
    const V t2 = _mm512_unpacklo_pd(r[2], r[3]);
    const V t3 = _mm512_unpackhi_pd(r[2], r[3]);
    const V t4 = _mm512_unpacklo_pd(r[4], r[5]);
    const V t5 = _mm512_unpackhi_pd(r[4], r[5]);
    const V t6 = _mm512_unpacklo_pd(r[6], r[7]);
    const V t7 = _mm512_unpackhi_pd(r[6], r[7]);

    const V u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
    const V u1 = _mm512_shuffle_f64x2(t1, t3, 0x88);
    const V u2 = _mm512_shuffle_f64x2(t0, t2, 0xDD);
    const V u3 = _mm512_shuffle_f64x2(t1, t3, 0xDD);
    const V u4 = _mm512_shuffle_f64x2(t4, t6, 0x88);
    const V u5 = _mm512_shuffle_f64x2(t5, t7, 0x88);
    const V u6 = _mm512_shuffle_f64x2(t4, t6, 0xDD);
    const V u7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);

    r[0] = _mm512_shuffle_f64x2(u0, u4, 0x88);
    r[1] = _mm512_shuffle_f64x2(u1, u5, 0x88);
    r[2] = _mm512_shuffle_f64x2(u2, u6, 0x88);
    r[3] = _mm512_shuffle_f64x2(u3, u7, 0x88);
    r[4] = _mm512_shuffle_f64x2(u0, u4, 0xDD);
    r[5] = _mm512_shuffle_f64x2(u1, u5, 0xDD);
    r[6] = _mm512_shuffle_f64x2(u2, u6, 0xDD);
    r[7] = _mm512_shuffle_f64x2(u3, u7, 0xDD);
  }
};

}  // namespace

const KernelTable* avx512_kernels() {
  static const KernelTable table = VecKernels<Avx512Ops>::table("avx512");
  return &table;
}

}  // namespace sfqpart::simd

#else  // unsupported target/compiler

namespace sfqpart::simd {
const KernelTable* avx512_kernels() { return nullptr; }
}  // namespace sfqpart::simd

#endif
