// V-cycle partitioning — the million-gate engine.
//
// The paper's soft-assignment descent materializes a dense W in [0,1]^{G x K}
// and pays O(G*K) per iteration, which caps it at ~10^4-gate circuits.
// The classic escape hatch (Karypis/Kumar, the paper's reference [18]) is
// multilevel: this engine runs a true coarsen -> optimize -> uncoarsen
// V-cycle on the shared level builder (core/coarsen.h):
//
//  1. Coarsen by heavy-edge matching in the pinned kDegreeSorted visit
//     order until the graph is small (<= coarse_target vertices),
//     recording the explicit LevelStack.
//  2. Run the paper's gradient descent only on the coarsest problem,
//     where G*K is small and the relaxation is cheap — the PR 3 CSR
//     gather kernels run there unchanged.
//  3. Walk the stack back up: project labels onto each finer level and
//     polish with banded parallel refinement — single-gate moves
//     restricted to a gain band of +/-`band` planes around the gate's
//     current plane (moves across many planes were already decided at
//     coarse levels; the fine levels only smooth the boundary).
//
// Each refinement pass is a deterministic propose/commit round: a
// parallel proposal sweep evaluates every gate's best in-band move
// against the frozen pass-start labels (pure reads of the shared
// MoveEvaluator, element-wise writes — bit-identical at any thread
// count), then a serial commit in ascending gate order re-checks each
// proposal against the evolving labels and applies the still-improving
// ones. Labels are therefore bit-identical at 1, 2 or 64 threads,
// honoring the repo's determinism contract (DESIGN.md section 7).
#pragma once

#include "core/solver.h"

namespace sfqpart {

namespace obs {
class SolverObserver;
}  // namespace obs

// Uncoarsening refinement flavor: banded parallel propose/commit sweeps
// (the default), or serial FM-style best-gain bucket moves
// (core/refine.h bucket_refine) — better final cost on boundary-heavy
// graphs, serial wall-clock. A/B'd in bench/capacity_bench.
enum class VcycleRefineStyle {
  kBanded,
  kBuckets,
};

struct VcycleOptions {
  // Coarsen until at most this many vertices (never below 4*K); the
  // dense coarse solve costs O(coarse_target * K) per iteration.
  int coarse_target = 1024;
  // Safety cap on coarsening levels (2^64 vertices coarsen to anything
  // long before this).
  int max_levels = 64;
  // Options for the coarse-level gradient-descent solve; num_planes,
  // seed, threads and the observer are overwritten by the driver.
  SolverConfig coarse;
  // Gain band of the uncoarsening refinement: a gate may move at most
  // this many planes away from its current plane per accepted move.
  int band = 1;
  // Pass caps of the per-level refinement (max_passes propose/commit
  // rounds; a level stops early when a round commits fewer than
  // min_moves_per_pass moves).
  RefineOptions refine;
  std::uint64_t seed = 1;
  // Worker threads for the coarse solve and the proposal sweeps
  // (0 = all hardware threads, 1 = serial). Results are identical at
  // every value.
  int threads = 1;
  // Structured observability hook (not owned; may be null). Receives
  // run_start/run_end, the "coarsen" / "coarse_solve" / "uncoarsen"
  // stage timers, the coarse Solver's full event stream, and two
  // LevelEvents per level: shape + coarsen_ms on the way down,
  // projected/refined cost + refine_ms + moves on the way up.
  obs::SolverObserver* observer = nullptr;
  // Finest-level fixed planes (compact problem indices, -1 = free; not
  // owned). Pins propagate through coarsening, constrain the coarse solve
  // and are never moved by the banded refinement. Null = unconstrained
  // (bit-identical to the pre-constraint driver).
  const std::vector<int>* fixed = nullptr;
  // Finest-level warm-start labels (compact indices, -1 = unassigned; not
  // owned). Restricted down the level stack (first assigned fine label
  // per coarse parent wins) and handed to the coarse Solver as its warm
  // seed, so an ECO-style rerun descends from the prior solution instead
  // of a random draw. Null = cold, bit-identical to the pre-warm driver.
  const std::vector<int>* warm = nullptr;
  // Uncoarsening refinement flavor (see VcycleRefineStyle).
  VcycleRefineStyle refine_style = VcycleRefineStyle::kBanded;
};

struct VcycleResult {
  Partition partition;
  int levels = 0;            // coarsening levels actually used
  int coarse_gates = 0;      // vertex count of the coarsest graph
  long long refine_moves = 0;  // moves committed across all levels
  double discrete_total = 0.0;
};

VcycleResult vcycle_partition(const Netlist& netlist, int num_planes,
                              const VcycleOptions& options = {});

}  // namespace sfqpart
