#include "core/partition_io.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/csv.h"
#include "util/strings.h"

namespace sfqpart {

Status save_partition_csv(const std::string& path, const Netlist& netlist,
                          const Partition& partition) {
  CsvWriter csv({"gate", "cell", "plane"});
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    csv.add_row({netlist.gate(g).name, netlist.cell_of(g).name,
                 std::to_string(partition.plane(g))});
  }
  return csv.write_file(path);
}

StatusOr<Partition> parse_partition_csv(const std::string& text,
                                        const Netlist& netlist) {
  auto doc = parse_csv(text);
  if (!doc) return doc.status();
  if (doc->header != std::vector<std::string>{"gate", "cell", "plane"}) {
    return Status::error("unexpected header; want gate,cell,plane");
  }

  Partition partition;
  partition.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                            kUnassignedPlane);
  for (const auto& row : doc->rows) {
    const GateId gate = netlist.find_gate(row[0]);
    if (gate == kInvalidGate) {
      return Status::error("unknown gate '" + row[0] + "'");
    }
    if (netlist.cell_of(gate).name != row[1]) {
      return Status::error(str_format("gate '%s' is a %s here, %s in the file",
                                      row[0].c_str(),
                                      netlist.cell_of(gate).name.c_str(),
                                      row[1].c_str()));
    }
    const auto plane = parse_int(row[2]);
    // The upper bound also guards the narrowing cast below: a plane like
    // 5000000000 would otherwise wrap to a negative int.
    if (!plane || *plane < 0 ||
        *plane > static_cast<long long>(std::numeric_limits<int>::max() - 1)) {
      return Status::error("bad plane '" + row[2] + "' for gate '" + row[0] + "'");
    }
    if (partition.plane_of[static_cast<std::size_t>(gate)] != kUnassignedPlane) {
      return Status::error("gate '" + row[0] + "' assigned twice");
    }
    partition.plane_of[static_cast<std::size_t>(gate)] = static_cast<int>(*plane);
    partition.num_planes =
        std::max(partition.num_planes, static_cast<int>(*plane) + 1);
  }
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g) && !partition.assigned(g)) {
      return Status::error("gate '" + netlist.gate(g).name + "' has no plane");
    }
  }
  if (partition.num_planes < 1) return Status::error("empty assignment");
  return partition;
}

StatusOr<Partition> load_partition_csv(const std::string& path,
                                       const Netlist& netlist) {
  std::ifstream file(path);
  if (!file) return Status::error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_partition_csv(buffer.str(), netlist);
}

StatusOr<InitialPartition> parse_warm_start_csv(const std::string& text,
                                                const Netlist& netlist) {
  auto doc = parse_csv(text);
  if (!doc) return doc.status();
  if (doc->header != std::vector<std::string>{"gate", "cell", "plane"}) {
    return Status::error("unexpected header; want gate,cell,plane");
  }

  InitialPartition warm;
  warm.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                       kUnassignedPlane);
  for (const auto& row : doc->rows) {
    const GateId gate = netlist.find_gate(row[0]);
    // Names absent from this netlist were removed since the seed
    // partition was saved; their rows are simply stale.
    if (gate == kInvalidGate) continue;
    if (netlist.cell_of(gate).name != row[1]) {
      return Status::error(str_format("gate '%s' is a %s here, %s in the file",
                                      row[0].c_str(),
                                      netlist.cell_of(gate).name.c_str(),
                                      row[1].c_str()));
    }
    const auto plane = parse_int(row[2]);
    if (!plane || *plane < 0 ||
        *plane > static_cast<long long>(std::numeric_limits<int>::max() - 1)) {
      return Status::error("bad plane '" + row[2] + "' for gate '" + row[0] + "'");
    }
    warm.plane_of[static_cast<std::size_t>(gate)] = static_cast<int>(*plane);
  }
  return warm;
}

StatusOr<InitialPartition> load_warm_start_csv(const std::string& path,
                                               const Netlist& netlist) {
  std::ifstream file(path);
  if (!file) return Status::error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_warm_start_csv(buffer.str(), netlist);
}

}  // namespace sfqpart
