#include "core/optimizer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/soft_assign.h"
#include "obs/trace_sink.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

// Chunking of the element-wise W/grad passes (G*K doubles). Boundaries
// depend only on the flat size, so the per-chunk |grad| maxima combined
// in ascending chunk order (and max is value-identical in any order)
// keep the descent bit-identical at every thread count.
constexpr std::size_t kStepGrain = 4096;

// Per-chunk max |grad| reduction for the normalized step.
struct MaxAbsKernel {
  const double* values;
  ChunkSlab* partials;  // one max per chunk

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    double max_abs = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      max_abs = std::max(max_abs, std::abs(values[i]));
    }
    partials->chunk(chunk)[0] = max_abs;
  }
};

// Element-wise descent step with the box projection of Algorithm 1.
struct StepClampKernel {
  double* w;
  const double* g;
  double scale;

  void operator()(std::size_t, std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end; ++i) {
      w[i] = std::clamp(w[i] - scale * g[i], 0.0, 1.0);
    }
  }
};

// Accumulates per-stage wall time across the descent and emits one
// "gradient" and one "step" TimerEvent when the loop finishes (whichever
// return path it takes). Disabled sinks cost a branch and never read a
// clock, matching the TraceSink overhead contract.
class StageTimers {
 public:
  StageTimers(obs::TraceSink* sink, int restart)
      : sink_(sink != nullptr && sink->enabled() ? sink : nullptr),
        restart_(restart) {}

  StageTimers(const StageTimers&) = delete;
  StageTimers& operator=(const StageTimers&) = delete;

  ~StageTimers() {
    if (sink_ == nullptr) return;
    sink_->timer({"gradient", restart_, gradient_ms_});
    sink_->timer({"step", restart_, step_ms_});
  }

  bool enabled() const { return sink_ != nullptr; }
  void start() {
    if (sink_ != nullptr) mark_ = std::chrono::steady_clock::now();
  }
  void stop(double& bucket_ms) {
    if (sink_ == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    bucket_ms += std::chrono::duration<double, std::milli>(now - mark_).count();
  }
  double& gradient_ms() { return gradient_ms_; }
  double& step_ms() { return step_ms_; }

 private:
  obs::TraceSink* sink_;
  int restart_;
  double gradient_ms_ = 0.0;
  double step_ms_ = 0.0;
  std::chrono::steady_clock::time_point mark_;
};

}  // namespace

OptimizerResult run_gradient_descent(const CostModel& model, Matrix w0,
                                     const OptimizerOptions& options) {
  OptimizerResult result;
  result.w = std::move(w0);
  Matrix grad;
  // One workspace for the whole descent: after the first iteration the
  // loop performs no allocations (the workspace buffers and `grad` keep
  // their capacity across iterations).
  CostModel::Workspace workspace;
  StageTimers timers(options.sink, options.observer_restart);
  // Per-chunk partials for the max|grad| reduction, hoisted with the
  // workspace so the loop stays allocation-free after the first pass.
  ChunkSlab max_partial;
  ThreadPool* pool = model.thread_pool();

  double cost_old = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    timers.start();
    result.final_terms = model.evaluate_with_gradient(result.w, grad, workspace);
    timers.stop(timers.gradient_ms());
    const double cost_new = result.final_terms.total(model.weights());
    if (options.record_trace) result.cost_trace.push_back(cost_new);
    if (options.on_iteration) {
      options.on_iteration(iter, result.final_terms, cost_new);
    }

    // Stop on relative cost change (Algorithm 1 line 14). cost_old is
    // +inf on the first iteration, so the loop always takes a step first.
    if (std::isfinite(cost_old)) {
      const double denominator = std::abs(cost_old) > 1e-300 ? cost_old : 1e-300;
      if (std::abs(cost_new / denominator - 1.0) <= options.margin) {
        result.converged = true;
        result.iterations = iter;
        return result;
      }
    }

    timers.start();
    auto w_flat = result.w.flat();
    const auto g_flat = grad.flat();
    const std::size_t flat_size = w_flat.size();
    double scale = options.learning_rate;
    if (options.normalize_step) {
      const std::size_t chunks = chunk_count(flat_size, kStepGrain);
      max_partial.reset(chunks, 1);
      MaxAbsKernel max_kernel{g_flat.data(), &max_partial};
      parallel_chunks(pool, flat_size, kStepGrain, max_kernel, 2.0);
      double max_abs = 0.0;
      for (std::size_t c = 0; c < chunks; ++c) {
        max_abs = std::max(max_abs, max_partial.chunk(c)[0]);
      }
      if (max_abs <= 0.0) {  // exactly at a stationary point
        result.converged = true;
        result.iterations = iter;
        return result;
      }
      scale /= max_abs;
    }

    StepClampKernel step_kernel{w_flat.data(), g_flat.data(), scale};
    parallel_chunks(pool, flat_size, kStepGrain, step_kernel, 4.0);
    timers.stop(timers.step_ms());
    cost_old = cost_new;
    result.iterations = iter + 1;
  }
  // Max iterations reached: refresh terms for the final W.
  result.final_terms = model.evaluate(result.w, workspace);
  if (options.record_trace) {
    result.cost_trace.push_back(result.final_terms.total(model.weights()));
  }
  return result;
}

}  // namespace sfqpart
