#include "core/optimizer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/simd/dispatch.h"
#include "core/soft_assign.h"
#include "obs/trace_sink.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

// Chunking of the element-wise max|grad| pass (G*stride doubles).
// Boundaries depend only on the flat size, so the per-chunk maxima
// combined in ascending chunk order (and max is value-identical in any
// order) keep the descent bit-identical at every thread count.
constexpr std::size_t kStepGrain = 4096;

// Per-chunk max |grad| reduction for the normalized step, through the
// dispatched kernel tier. The grad padding lanes are zero by the Matrix
// writer contract, so scanning the full padded storage is value-safe.
struct MaxAbsBody {
  const double* values;
  simd::MaxAbsFn fn;
  ChunkSlab* partials;  // one max per chunk

  void operator()(std::size_t chunk, std::size_t begin,
                  std::size_t end) const {
    partials->chunk(chunk)[0] = fn(values, begin, end);
  }
};

// Accumulates per-stage wall time across the descent and emits one
// "gradient" and one "step" TimerEvent when the loop finishes (whichever
// return path it takes). Disabled sinks cost a branch and never read a
// clock, matching the TraceSink overhead contract. Since the loop fusion
// (DESIGN.md section 15) the "step" bucket covers step_and_aggregate —
// the descent update plus the NEXT iteration's aggregate front end, which
// ride the same pass over W.
class StageTimers {
 public:
  StageTimers(obs::TraceSink* sink, int restart)
      : sink_(sink != nullptr && sink->enabled() ? sink : nullptr),
        restart_(restart) {}

  StageTimers(const StageTimers&) = delete;
  StageTimers& operator=(const StageTimers&) = delete;

  ~StageTimers() {
    if (sink_ == nullptr) return;
    sink_->timer({"gradient", restart_, gradient_ms_});
    sink_->timer({"step", restart_, step_ms_});
  }

  bool enabled() const { return sink_ != nullptr; }
  void start() {
    if (sink_ != nullptr) mark_ = std::chrono::steady_clock::now();
  }
  void stop(double& bucket_ms) {
    if (sink_ == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    bucket_ms += std::chrono::duration<double, std::milli>(now - mark_).count();
  }
  double& gradient_ms() { return gradient_ms_; }
  double& step_ms() { return step_ms_; }

 private:
  obs::TraceSink* sink_;
  int restart_;
  double gradient_ms_ = 0.0;
  double step_ms_ = 0.0;
  std::chrono::steady_clock::time_point mark_;
};

}  // namespace

OptimizerResult run_gradient_descent(const CostModel& model, Matrix w0,
                                     const OptimizerOptions& options) {
  OptimizerResult result;
  result.w = std::move(w0);
  Matrix grad;
  // One workspace for the whole descent: after the first iteration the
  // loop performs no allocations (the workspace buffers and `grad` keep
  // their capacity across iterations).
  CostModel::Workspace workspace;
  StageTimers timers(options.sink, options.observer_restart);
  // Per-chunk partials for the max|grad| reduction, hoisted with the
  // workspace so the loop stays allocation-free after the first pass.
  ChunkSlab max_partial;
  ThreadPool* pool = model.thread_pool();
  const simd::MaxAbsFn max_abs_fn = simd::kernels().max_abs;

  // True once step_and_aggregate has run for the current W: the stepped
  // rows were aggregated in the same pass, so the gradient evaluation can
  // skip its aggregate front end. The fused pair is bit-identical to the
  // unfused step + evaluate_with_gradient it replaced — same expressions,
  // same chunk orders, just one read of W instead of two.
  bool aggregated = false;

  double cost_old = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    timers.start();
    result.final_terms =
        aggregated
            ? model.evaluate_with_gradient_aggregated(result.w, grad, workspace)
            : model.evaluate_with_gradient(result.w, grad, workspace);
    timers.stop(timers.gradient_ms());
    const double cost_new = result.final_terms.total(model.weights());
    if (options.record_trace) result.cost_trace.push_back(cost_new);
    if (options.on_iteration) {
      options.on_iteration(iter, result.final_terms, cost_new);
    }

    // Stop on relative cost change (Algorithm 1 line 14). cost_old is
    // +inf on the first iteration, so the loop always takes a step first.
    if (std::isfinite(cost_old)) {
      const double denominator = std::abs(cost_old) > 1e-300 ? cost_old : 1e-300;
      if (std::abs(cost_new / denominator - 1.0) <= options.margin) {
        result.converged = true;
        result.iterations = iter;
        return result;
      }
    }

    timers.start();
    double scale = options.learning_rate;
    if (options.normalize_step) {
      const auto g_flat = grad.flat();
      const std::size_t flat_size = g_flat.size();
      const std::size_t chunks = chunk_count(flat_size, kStepGrain);
      max_partial.reset(chunks, 1);
      MaxAbsBody max_body{g_flat.data(), max_abs_fn, &max_partial};
      parallel_chunks(pool, flat_size, kStepGrain, max_body, 2.0);
      double max_abs = 0.0;
      for (std::size_t c = 0; c < chunks; ++c) {
        max_abs = std::max(max_abs, max_partial.chunk(c)[0]);
      }
      if (max_abs <= 0.0) {  // exactly at a stationary point
        result.converged = true;
        result.iterations = iter;
        return result;
      }
      scale /= max_abs;
    }

    model.step_and_aggregate(result.w, grad, scale, workspace);
    aggregated = true;
    timers.stop(timers.step_ms());
    cost_old = cost_new;
    result.iterations = iter + 1;
  }
  // Max iterations reached: refresh terms for the final W (a fresh
  // aggregate with the F4 partials, whatever state the loop left).
  result.final_terms = model.evaluate(result.w, workspace);
  if (options.record_trace) {
    result.cost_trace.push_back(result.final_terms.total(model.weights()));
  }
  return result;
}

}  // namespace sfqpart
