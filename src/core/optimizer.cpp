#include "core/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/soft_assign.h"

namespace sfqpart {

OptimizerResult run_gradient_descent(const CostModel& model, Matrix w0,
                                     const OptimizerOptions& options) {
  OptimizerResult result;
  result.w = std::move(w0);
  Matrix grad;

  double cost_old = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.final_terms = model.evaluate_with_gradient(result.w, grad);
    const double cost_new = result.final_terms.total(model.weights());
    if (options.record_trace) result.cost_trace.push_back(cost_new);
    if (options.on_iteration) {
      options.on_iteration(iter, result.final_terms, cost_new);
    }

    // Stop on relative cost change (Algorithm 1 line 14). cost_old is
    // +inf on the first iteration, so the loop always takes a step first.
    if (std::isfinite(cost_old)) {
      const double denominator = std::abs(cost_old) > 1e-300 ? cost_old : 1e-300;
      if (std::abs(cost_new / denominator - 1.0) <= options.margin) {
        result.converged = true;
        result.iterations = iter;
        return result;
      }
    }

    double scale = options.learning_rate;
    if (options.normalize_step) {
      double max_abs = 0.0;
      for (const double value : grad.flat()) {
        max_abs = std::max(max_abs, std::abs(value));
      }
      if (max_abs <= 0.0) {  // exactly at a stationary point
        result.converged = true;
        result.iterations = iter;
        return result;
      }
      scale /= max_abs;
    }

    auto w_flat = result.w.flat();
    const auto g_flat = grad.flat();
    for (std::size_t i = 0; i < w_flat.size(); ++i) {
      w_flat[i] = std::clamp(w_flat[i] - scale * g_flat[i], 0.0, 1.0);
    }
    cost_old = cost_new;
    result.iterations = iter + 1;
  }
  // Max iterations reached: refresh terms for the final W.
  result.final_terms = model.evaluate(result.w);
  if (options.record_trace) {
    result.cost_trace.push_back(result.final_terms.total(model.weights()));
  }
  return result;
}

}  // namespace sfqpart
