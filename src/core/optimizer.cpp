#include "core/optimizer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/soft_assign.h"
#include "obs/trace_sink.h"

namespace sfqpart {
namespace {

// Accumulates per-stage wall time across the descent and emits one
// "gradient" and one "step" TimerEvent when the loop finishes (whichever
// return path it takes). Disabled sinks cost a branch and never read a
// clock, matching the TraceSink overhead contract.
class StageTimers {
 public:
  StageTimers(obs::TraceSink* sink, int restart)
      : sink_(sink != nullptr && sink->enabled() ? sink : nullptr),
        restart_(restart) {}

  StageTimers(const StageTimers&) = delete;
  StageTimers& operator=(const StageTimers&) = delete;

  ~StageTimers() {
    if (sink_ == nullptr) return;
    sink_->timer({"gradient", restart_, gradient_ms_});
    sink_->timer({"step", restart_, step_ms_});
  }

  bool enabled() const { return sink_ != nullptr; }
  void start() {
    if (sink_ != nullptr) mark_ = std::chrono::steady_clock::now();
  }
  void stop(double& bucket_ms) {
    if (sink_ == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    bucket_ms += std::chrono::duration<double, std::milli>(now - mark_).count();
  }
  double& gradient_ms() { return gradient_ms_; }
  double& step_ms() { return step_ms_; }

 private:
  obs::TraceSink* sink_;
  int restart_;
  double gradient_ms_ = 0.0;
  double step_ms_ = 0.0;
  std::chrono::steady_clock::time_point mark_;
};

}  // namespace

OptimizerResult run_gradient_descent(const CostModel& model, Matrix w0,
                                     const OptimizerOptions& options) {
  OptimizerResult result;
  result.w = std::move(w0);
  Matrix grad;
  // One workspace for the whole descent: after the first iteration the
  // loop performs no allocations (the workspace buffers and `grad` keep
  // their capacity across iterations).
  CostModel::Workspace workspace;
  StageTimers timers(options.sink, options.observer_restart);

  double cost_old = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    timers.start();
    result.final_terms = model.evaluate_with_gradient(result.w, grad, workspace);
    timers.stop(timers.gradient_ms());
    const double cost_new = result.final_terms.total(model.weights());
    if (options.record_trace) result.cost_trace.push_back(cost_new);
    if (options.on_iteration) {
      options.on_iteration(iter, result.final_terms, cost_new);
    }

    // Stop on relative cost change (Algorithm 1 line 14). cost_old is
    // +inf on the first iteration, so the loop always takes a step first.
    if (std::isfinite(cost_old)) {
      const double denominator = std::abs(cost_old) > 1e-300 ? cost_old : 1e-300;
      if (std::abs(cost_new / denominator - 1.0) <= options.margin) {
        result.converged = true;
        result.iterations = iter;
        return result;
      }
    }

    timers.start();
    double scale = options.learning_rate;
    if (options.normalize_step) {
      double max_abs = 0.0;
      for (const double value : grad.flat()) {
        max_abs = std::max(max_abs, std::abs(value));
      }
      if (max_abs <= 0.0) {  // exactly at a stationary point
        result.converged = true;
        result.iterations = iter;
        return result;
      }
      scale /= max_abs;
    }

    auto w_flat = result.w.flat();
    const auto g_flat = grad.flat();
    for (std::size_t i = 0; i < w_flat.size(); ++i) {
      w_flat[i] = std::clamp(w_flat[i] - scale * g_flat[i], 0.0, 1.0);
    }
    timers.stop(timers.step_ms());
    cost_old = cost_new;
    result.iterations = iter + 1;
  }
  // Max iterations reached: refresh terms for the final W.
  result.final_terms = model.evaluate(result.w, workspace);
  if (options.record_trace) {
    result.cost_trace.push_back(result.final_terms.total(model.weights()));
  }
  return result;
}

}  // namespace sfqpart
