// "gradient" engine: the paper's gradient-descent relaxation, wrapping the
// Solver facade unchanged (same defaults, same determinism contract).
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_adapter.h"
#include "core/solver.h"

namespace sfqpart::engine_detail {

namespace {

class GradientAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "gradient"; }
  const char* description() const override {
    return "gradient-descent relaxation of the weighted F1..F4 objective "
           "(the paper's Algorithm 1)";
  }
  std::vector<OptionSpec> describe_options() const override {
    std::vector<OptionSpec> specs = {planes_spec(),    seed_spec(),
                                     restarts_spec(),  threads_spec(),
                                     refine_spec(),    fast_math_spec(),
                                     certify_spec()};
    for (OptionSpec& spec : weight_specs()) specs.push_back(std::move(spec));
    return specs;
  }

 protected:
  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    SolverConfig config;
    config.num_planes = context.num_planes;
    config.restarts = context.restarts;
    config.seed = context.seed;
    config.threads = context.threads;
    config.refine = context.refine;
    config.fast_math = context.fast_math;
    config.weights = context.weights;
    config.observer = context.observer;
    config.fixed_labels = constraints.compact_or_null();
    config.warm_labels = warm;
    StatusOr<SolverResult> result = Solver(std::move(config)).run(netlist);
    if (!result) return result.status();
    counters.emplace_back("iterations", result->iterations);
    counters.emplace_back("winning_restart", result->winning_restart);
    counters.emplace_back("converged", result->converged ? 1.0 : 0.0);
    counters.emplace_back("restarts", context.restarts);
    return std::move(result->partition);
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_gradient_engine() {
  return std::make_unique<GradientAdapter>();
}

}  // namespace sfqpart::engine_detail
