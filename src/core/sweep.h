// Warm-started parameter sweep over engine option configurations.
//
// Generalizes the single-axis K search of core/kres_search.h to an
// arbitrary cross-product of engine-option axes: every combination of the
// axis values is one *point*, each point is solved with the chosen
// registry engine, and the result set is reduced to the Pareto front of
// (discrete_total, bmax_ma) — the two objectives the paper trades off
// when picking a stack depth (Section V).
//
// Two execution modes:
//  * cold (default): every point runs with a fresh cold context, so each
//    per-point result is byte-identical to a standalone run of the same
//    engine with the same options. This is the reproducible mode the
//    sweep schema (sfqpart.sweep.v1) is defined over.
//  * warm_neighbors: points run in lexicographic order and each point is
//    warm-started from the best-scoring already-completed point that
//    differs in exactly one axis (Hamming-distance-1 neighbor in index
//    space). The EngineAdapter's quality floor guarantees a warm point
//    never scores worse than its seed labels, so the sweep monotonically
//    reuses work — but the per-point labels may legitimately differ from
//    a cold run's, which is why the mode is opt-in.
//
// Failure semantics (the fix the old kres_search needed): an engine
// failure at any point aborts the whole sweep with that Status, naming
// the point's canonical option string. A sweep that silently skipped a
// failing point would report a Pareto front over an unknown subset.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "netlist/netlist.h"
#include "util/json.h"
#include "util/status.h"

namespace sfqpart {

// One sweep axis: an engine option name and the values to try. Values are
// JSON scalars validated per point by apply_engine_options against the
// engine's OptionSpec list (so a bad value fails with the same message a
// daemon job would get).
struct SweepAxis {
  std::string name;
  std::vector<Json> values;
};

struct SweepOptions {
  // Registry engine every point runs ("vcycle", "gradient", ...).
  std::string engine = "vcycle";
  // Options applied to every point before the axis values (a point's axis
  // value wins over a base entry of the same name).
  Json base_options = Json::object();
  std::vector<SweepAxis> axes;
  // Warm-start each point from its best completed Hamming-1 neighbor
  // (see the header comment). Default off: cold per-point byte-identity.
  bool warm_neighbors = false;
};

// One evaluated point of the cross-product.
struct SweepPoint {
  std::vector<int> index;  // per-axis value index (size = axes.size())
  Json options;            // the full option object the point ran with
  std::string canonical;   // canonical option string (cache-key form)
  EngineRun run;
  double bmax_ma = 0.0;    // max per-plane bias of the point's partition
  bool pareto = false;     // on the (discrete_total, bmax_ma) front
  bool warm_started = false;
};

struct SweepResult {
  std::string engine;
  std::vector<SweepAxis> axes;
  // All points in lexicographic axis order (last axis fastest).
  std::vector<SweepPoint> points;
  // Indices into `points` of the non-dominated set, in point order.
  std::vector<int> pareto;

  // The sfqpart.sweep.v1 document: schema/engine/axes, one entry per
  // point with its options, canonical string, scores and Pareto flag.
  // Deliberately excludes wall-clock so the document is deterministic.
  Json to_json(const std::string& circuit) const;
};

// Runs the full cross-product. kInvalidArgument for an empty or malformed
// axis list (duplicate names, empty value lists, more than kMaxSweepPoints
// combinations); any failing point aborts with the engine's Status.
StatusOr<SweepResult> run_sweep(const Netlist& netlist,
                                const SweepOptions& options);

inline constexpr long long kMaxSweepPoints = 4096;

}  // namespace sfqpart
