#include "core/delta.h"

#include <cstdint>
#include <utility>

#include "util/hash.h"

namespace sfqpart {
namespace {

// Order-independent structural signature of one gate: its cell index
// mixed with the XOR of its partitionable neighbors' name hashes.
// XOR makes the neighbor part independent of adjacency order; the
// splitmix-style finalizer on the cell index keeps "cell changed" from
// colliding with "one neighbor swapped".
std::uint64_t mix(std::uint64_t value) {
  value ^= value >> 33;
  value *= 0xff51afd7ed558ccdull;
  value ^= value >> 33;
  value *= 0xc4ceb9fe1a85ec53ull;
  value ^= value >> 33;
  return value;
}

std::uint64_t name_hash(const NameRef& name) {
  return Fnv1a64().update(name.data, name.len).digest();
}

// Per-gate signatures over the cost-relevant structure: the undirected
// deduplicated partitionable edge set (exactly what PartitionProblem
// extracts), plus the gate's cell.
std::vector<std::uint64_t> signatures(const Netlist& netlist) {
  std::vector<std::uint64_t> sig(static_cast<std::size_t>(netlist.num_gates()),
                                 0);
  for (const Connection& edge : netlist.unique_edges()) {
    const auto a = static_cast<std::size_t>(edge.from);
    const auto b = static_cast<std::size_t>(edge.to);
    sig[a] ^= name_hash(netlist.gate(edge.to).name);
    sig[b] ^= name_hash(netlist.gate(edge.from).name);
  }
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const auto ug = static_cast<std::size_t>(g);
    sig[ug] ^= mix(static_cast<std::uint64_t>(netlist.gate(g).cell) + 1);
  }
  return sig;
}

}  // namespace

NetlistDelta compute_delta(const Netlist& before, const Netlist& after) {
  const std::vector<std::uint64_t> before_sig = signatures(before);
  const std::vector<std::uint64_t> after_sig = signatures(after);

  NetlistDelta delta;
  std::vector<char> matched(static_cast<std::size_t>(before.num_gates()), 0);
  for (GateId g = 0; g < after.num_gates(); ++g) {
    if (!after.is_partitionable(g)) continue;
    const GateId old = before.find_gate(after.gate(g).name.view());
    if (old == kInvalidGate || !before.is_partitionable(old)) {
      delta.added.push_back(g);
      continue;
    }
    matched[static_cast<std::size_t>(old)] = 1;
    if (before_sig[static_cast<std::size_t>(old)] !=
        after_sig[static_cast<std::size_t>(g)]) {
      delta.changed.push_back(g);
    } else {
      ++delta.unchanged;
    }
  }
  for (GateId g = 0; g < before.num_gates(); ++g) {
    if (!before.is_partitionable(g)) continue;
    if (!matched[static_cast<std::size_t>(g)]) {
      delta.removed.push_back(std::string(before.gate(g).name));
    }
  }
  return delta;
}

InitialPartition warm_start_from(const Partition& before_partition,
                                 const Netlist& before, const Netlist& after) {
  const NetlistDelta delta = compute_delta(before, after);
  std::vector<char> dirty(static_cast<std::size_t>(after.num_gates()), 0);
  for (const GateId g : delta.added) dirty[static_cast<std::size_t>(g)] = 1;
  for (const GateId g : delta.changed) dirty[static_cast<std::size_t>(g)] = 1;

  InitialPartition warm;
  warm.plane_of.assign(static_cast<std::size_t>(after.num_gates()),
                       kUnassignedPlane);
  for (GateId g = 0; g < after.num_gates(); ++g) {
    if (!after.is_partitionable(g)) continue;
    if (dirty[static_cast<std::size_t>(g)]) continue;
    const GateId old = before.find_gate(after.gate(g).name.view());
    // Unreachable guard: a clean gate always matched in compute_delta.
    if (old == kInvalidGate) continue;
    warm.plane_of[static_cast<std::size_t>(g)] = before_partition.plane(old);
  }
  return warm;
}

StatusOr<EngineRun> repartition(const Netlist& before,
                                const Partition& before_partition,
                                const Netlist& after, EngineContext context) {
  const InitialPartition warm =
      warm_start_from(before_partition, before, after);
  context.warm_start = &warm;
  StatusOr<std::unique_ptr<PartitionEngine>> engine =
      EngineRegistry::create("eco");
  if (!engine) return engine.status();
  return (*engine)->run(after, context);
}

}  // namespace sfqpart
