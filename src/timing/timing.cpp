#include "timing/timing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace sfqpart {
namespace {

struct Arrival {
  double total = 0.0;
  double logic = 0.0;
  double wire = 0.0;
  double coupling = 0.0;
  GateId pred = kInvalidGate;  // previous gate on the worst in-segment path
};

// Propagation delay contributed by an asynchronous cell itself.
double async_cell_delay(CellKind kind, const TimingOptions& options) {
  switch (kind) {
    case CellKind::kSplit:
      return options.splitter_delay_ps;
    case CellKind::kMerge:
      return options.merger_delay_ps;
    case CellKind::kJtl:
    case CellKind::kTff:
    case CellKind::kTxDriver:
    case CellKind::kTxReceiver:
      return options.jtl_delay_ps;
    default:
      return 0.0;
  }
}

}  // namespace

TimingReport analyze_timing(const Netlist& netlist, const TimingOptions& options,
                            const Floorplan* floorplan, const Partition* partition) {
  std::vector<Arrival> arrival(static_cast<std::size_t>(netlist.num_gates()));

  auto edge_wire_ps = [&](GateId from, GateId to) {
    if (floorplan == nullptr) return 0.0;
    const auto uf = static_cast<std::size_t>(from);
    const auto ut = static_cast<std::size_t>(to);
    const double dx = floorplan->x_um[uf] - floorplan->x_um[ut];
    const double dy = floorplan->y_um[uf] - floorplan->y_um[ut];
    return (std::abs(dx) + std::abs(dy)) * 1e-3 * options.wire_ps_per_mm;
  };
  auto edge_coupling_ps = [&](GateId from, GateId to) {
    if (partition == nullptr) return 0.0;
    if (!partition->assigned(from) || !partition->assigned(to)) return 0.0;
    return std::abs(partition->plane(from) - partition->plane(to)) *
           options.coupling_hop_ps;
  };

  TimingReport report;
  GateId critical_driver = kInvalidGate;
  GateId critical_sink = kInvalidGate;
  double critical_edge_wire = 0.0;
  double critical_edge_coupling = 0.0;

  for (const GateId g : netlist.topological_order()) {
    const Cell& cell = netlist.cell_of(g);
    Arrival& out = arrival[static_cast<std::size_t>(g)];
    if (cell.is_clocked()) {
      out = Arrival{options.clk_to_q_ps, options.clk_to_q_ps, 0.0, 0.0,
                    kInvalidGate};
    } else if (cell.kind == CellKind::kInput) {
      out = Arrival{};
    } else {
      // Asynchronous cell: worst input arrival plus its own delay.
      Arrival worst;
      bool first = true;
      for (int pin = 0; pin < cell.num_inputs; ++pin) {
        const NetId net = netlist.input_net(g, pin);
        if (net == kInvalidNet) continue;
        const GateId driver = netlist.net(net).driver.gate;
        const Arrival& in = arrival[static_cast<std::size_t>(driver)];
        const double wire = edge_wire_ps(driver, g);
        const double coupling = edge_coupling_ps(driver, g);
        const double total = in.total + wire + coupling;
        if (first || total > worst.total) {
          first = false;
          worst = Arrival{total, in.logic, in.wire + wire,
                          in.coupling + coupling, driver};
        }
      }
      const double own = async_cell_delay(cell.kind, options);
      worst.total += own;
      worst.logic += own;
      out = worst;
    }

    // Segment end-points: every data edge into a clocked gate or a primary
    // output closes a register-to-register segment.
    for (int pin = 0; pin < cell.num_outputs; ++pin) {
      const NetId net = netlist.output_net(g, pin);
      if (net == kInvalidNet) continue;
      for (const PinRef& sink : netlist.net(net).sinks) {
        // Clock-pin edges are distribution skew, not data-path delay.
        if (sink.pin == kClockPin) continue;
        const Cell& sink_cell = netlist.cell_of(sink.gate);
        const bool closes = sink_cell.is_clocked() ||
                            sink_cell.kind == CellKind::kOutput;
        if (!closes) continue;
        const double wire = edge_wire_ps(g, sink.gate);
        const double coupling = edge_coupling_ps(g, sink.gate);
        const double setup = sink_cell.is_clocked() ? options.setup_ps : 0.0;
        const double period = out.total + wire + coupling + setup;
        if (period > report.min_period_ps) {
          report.min_period_ps = period;
          critical_driver = g;
          critical_sink = sink.gate;
          critical_edge_wire = wire;
          critical_edge_coupling = coupling;
        }
      }
    }
  }

  if (critical_driver != kInvalidGate) {
    const Arrival& at = arrival[static_cast<std::size_t>(critical_driver)];
    report.critical_logic_ps = at.logic;
    report.critical_wire_ps = at.wire + critical_edge_wire;
    report.critical_coupling_ps = at.coupling + critical_edge_coupling;
    // Walk predecessors back to the launching gate.
    std::vector<std::string> path{netlist.gate(critical_sink).name};
    for (GateId g = critical_driver; g != kInvalidGate;
         g = arrival[static_cast<std::size_t>(g)].pred) {
      path.push_back(netlist.gate(g).name);
    }
    report.critical_path.assign(path.rbegin(), path.rend());
  }
  if (report.min_period_ps > 0.0) {
    report.fmax_ghz = 1000.0 / report.min_period_ps;
  }
  return report;
}

std::string format_timing_report(const TimingReport& report) {
  std::string out = str_format(
      "timing: min period %.1f ps  (Fmax %.1f GHz)\n"
      "  critical segment: logic %.1f ps, wire %.1f ps, coupling %.1f ps\n  ",
      report.min_period_ps, report.fmax_ghz, report.critical_logic_ps,
      report.critical_wire_ps, report.critical_coupling_ps);
  for (std::size_t i = 0; i < report.critical_path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += report.critical_path[i];
  }
  out += "\n";
  return out;
}

namespace {

// Arrival of the clock pulse at each gate's clock pin, through the clock
// distribution network (an async splitter tree from a kInput source).
std::vector<double> clock_arrivals(const Netlist& netlist, const TimingOptions& options,
                                   const Floorplan* floorplan,
                                   bool& any_clock) {
  std::vector<double> output_arrival(static_cast<std::size_t>(netlist.num_gates()), 0.0);
  std::vector<double> clock_at(static_cast<std::size_t>(netlist.num_gates()), -1.0);
  any_clock = false;
  auto wire = [&](GateId from, GateId to) {
    if (floorplan == nullptr) return 0.0;
    const auto uf = static_cast<std::size_t>(from);
    const auto ut = static_cast<std::size_t>(to);
    return (std::abs(floorplan->x_um[uf] - floorplan->x_um[ut]) +
            std::abs(floorplan->y_um[uf] - floorplan->y_um[ut])) *
           1e-3 * options.wire_ps_per_mm;
  };
  // Pass 1: arrival through the asynchronous network. (Clock edges do not
  // constrain the topological order, so clocked gates may appear before
  // their clock-tree splitters -- read the clock pins in a second pass.)
  for (const GateId g : netlist.topological_order()) {
    const Cell& cell = netlist.cell_of(g);
    const auto ug = static_cast<std::size_t>(g);
    if (!cell.is_clocked() && cell.kind != CellKind::kInput &&
        cell.kind != CellKind::kOutput) {
      double worst = 0.0;
      for (int pin = 0; pin < cell.num_inputs; ++pin) {
        const NetId net = netlist.input_net(g, pin);
        if (net == kInvalidNet) continue;
        const GateId driver = netlist.net(net).driver.gate;
        worst = std::max(worst, output_arrival[static_cast<std::size_t>(driver)] +
                                    wire(driver, g));
      }
      output_arrival[ug] = worst + async_cell_delay(cell.kind, options);
    }
  }
  // Pass 2: clock pin arrivals.
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.cell_of(g).is_clocked()) continue;
    const NetId clock = netlist.clock_net(g);
    if (clock == kInvalidNet) continue;
    const GateId driver = netlist.net(clock).driver.gate;
    clock_at[static_cast<std::size_t>(g)] =
        output_arrival[static_cast<std::size_t>(driver)] + wire(driver, g);
    any_clock = true;
  }
  return clock_at;
}

}  // namespace

ClockSkewReport analyze_clock_skew(const Netlist& netlist,
                                   const TimingOptions& options,
                                   const Floorplan* floorplan) {
  ClockSkewReport report;
  std::vector<double> clock_at =
      clock_arrivals(netlist, options, floorplan, report.has_clock_tree);
  if (!report.has_clock_tree) return report;

  report.min_arrival_ps = 1e300;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const double at = clock_at[static_cast<std::size_t>(g)];
    if (at < 0.0) continue;
    ++report.clocked_gates;
    report.min_arrival_ps = std::min(report.min_arrival_ps, at);
    report.max_arrival_ps = std::max(report.max_arrival_ps, at);
  }
  report.skew_ps = report.max_arrival_ps - report.min_arrival_ps;

  // Data arrival measured on the absolute clock timeline: clocked gates
  // launch at clk + clk_to_q, async cells accumulate. launch_clk tracks
  // the producing gate's clock arrival (or -1 when fed by a PI).
  std::vector<double> arrival(static_cast<std::size_t>(netlist.num_gates()), 0.0);
  std::vector<double> launch_clk(static_cast<std::size_t>(netlist.num_gates()), -1.0);
  auto wire = [&](GateId from, GateId to) {
    if (floorplan == nullptr) return 0.0;
    const auto uf = static_cast<std::size_t>(from);
    const auto ut = static_cast<std::size_t>(to);
    return (std::abs(floorplan->x_um[uf] - floorplan->x_um[ut]) +
            std::abs(floorplan->y_um[uf] - floorplan->y_um[ut])) *
           1e-3 * options.wire_ps_per_mm;
  };
  report.worst_hold_margin_ps = 1e300;
  for (const GateId g : netlist.topological_order()) {
    const Cell& cell = netlist.cell_of(g);
    const auto ug = static_cast<std::size_t>(g);
    if (cell.is_clocked()) {
      const double clk = clock_at[ug] >= 0.0 ? clock_at[ug] : 0.0;
      arrival[ug] = clk + options.clk_to_q_ps;
      launch_clk[ug] = clock_at[ug];
      // Check each data input against this gate's clock pulse.
      for (int pin = 0; pin < cell.num_inputs; ++pin) {
        const NetId net = netlist.input_net(g, pin);
        if (net == kInvalidNet) continue;
        const GateId driver = netlist.net(net).driver.gate;
        const auto ud = static_cast<std::size_t>(driver);
        if (launch_clk[ud] < 0.0) continue;  // PI-fed cone: no clock relation
        const double data_at = arrival[ud] + wire(driver, g);
        if (launch_clk[ud] <= clock_at[ug] + 1e-12) {
          ++report.flow_edges;
        } else {
          ++report.counterflow_edges;
        }
        report.worst_hold_margin_ps =
            std::min(report.worst_hold_margin_ps, data_at - clock_at[ug]);
      }
    } else if (cell.kind == CellKind::kInput) {
      arrival[ug] = 0.0;
      launch_clk[ug] = -1.0;
    } else {
      double worst = 0.0;
      double worst_clk = -1.0;
      for (int pin = 0; pin < cell.num_inputs; ++pin) {
        const NetId net = netlist.input_net(g, pin);
        if (net == kInvalidNet) continue;
        const GateId driver = netlist.net(net).driver.gate;
        const auto ud = static_cast<std::size_t>(driver);
        const double at = arrival[ud] + wire(driver, g);
        if (at >= worst) {
          worst = at;
          worst_clk = launch_clk[ud];
        }
      }
      arrival[ug] = worst + async_cell_delay(cell.kind, options);
      launch_clk[ug] = worst_clk;
    }
  }
  if (report.worst_hold_margin_ps > 1e299) report.worst_hold_margin_ps = 0.0;
  return report;
}

std::string format_clock_skew_report(const ClockSkewReport& report) {
  if (!report.has_clock_tree) {
    return "clock: no explicit clock tree (implicit global clock assumed)\n";
  }
  return str_format(
      "clock: %d clocked gates, arrival %.1f..%.1f ps (skew %.1f ps)\n"
      "  data edges clocked in flow order: %d, counterflow: %d\n"
      "  worst hold margin: %.1f ps\n",
      report.clocked_gates, report.min_arrival_ps, report.max_arrival_ps,
      report.skew_ps, report.flow_edges, report.counterflow_edges,
      report.worst_hold_margin_ps);
}

}  // namespace sfqpart
