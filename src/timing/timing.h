// Static timing analysis for gate-level-pipelined SFQ circuits.
//
// Under synchronous clocking, the minimum clock period is set by the
// slowest register-to-register segment: clock-to-Q of the launching
// clocked gate, plus the asynchronous cells (splitters, JTLs, mergers,
// coupling drivers/receivers) and wire on the way, plus the setup margin
// of the capturing gate. This module computes that critical segment for a
// netlist, optionally with
//   * placement-aware wire delays from a Floorplan (PTL ps/mm), and
//   * inductive-coupling hop penalties from a Partition: a connection
//     between planes p and q pays |p-q| driver/receiver crossings -- the
//     mechanism behind the paper's remark that non-adjacent connections
//     "decrease the operating frequency of the circuit" (section III-B3).
#pragma once

#include <string>
#include <vector>

#include "core/partition.h"
#include "floorplan/floorplan.h"

namespace sfqpart {

struct TimingOptions {
  // Clock-to-output delay of clocked cells [ps].
  double clk_to_q_ps = 7.0;
  // Input-to-output delays of asynchronous cells [ps].
  double jtl_delay_ps = 5.0;
  double splitter_delay_ps = 7.0;
  double merger_delay_ps = 8.0;
  // Setup margin at clocked data inputs [ps].
  double setup_ps = 4.0;
  // Passive-transmission-line wire delay [ps per mm] (used when a
  // floorplan provides distances).
  double wire_ps_per_mm = 10.0;
  // Latency of one inductive coupling boundary crossing [ps] (used when a
  // partition is given and the connection changes planes).
  double coupling_hop_ps = 15.0;
};

struct TimingReport {
  double min_period_ps = 0.0;
  double fmax_ghz = 0.0;
  // The launching and capturing clocked gates (or I/O) of the critical
  // segment and the asynchronous cells between them, in order.
  std::vector<std::string> critical_path;
  // Breakdown of the critical segment [ps].
  double critical_logic_ps = 0.0;
  double critical_wire_ps = 0.0;
  double critical_coupling_ps = 0.0;
};

// `floorplan` and `partition` are optional (nullptr = ignore wire /
// coupling delay).
TimingReport analyze_timing(const Netlist& netlist, const TimingOptions& options = {},
                            const Floorplan* floorplan = nullptr,
                            const Partition* partition = nullptr);

std::string format_timing_report(const TimingReport& report);

// Clock distribution analysis, for netlists carrying an explicit clock
// tree (SfqMapperOptions::insert_clock_tree). Clock pulses reach each
// gate through the splitter network; the arrival spread is skew. SFQ
// designs exploit intentional skew ("flow clocking", paper section II
// item iii): clocking a producer before its consumer within the same
// cycle relaxes hold constraints, so the report also scores how many data
// edges are clocked in flow order.
struct ClockSkewReport {
  bool has_clock_tree = false;
  double min_arrival_ps = 0.0;
  double max_arrival_ps = 0.0;
  double skew_ps = 0.0;
  int clocked_gates = 0;
  // Data edges between clocked gates where the producer's clock arrives
  // no later than the consumer's (flow-order edges).
  int flow_edges = 0;
  int counterflow_edges = 0;
  // Smallest (clk(consumer) + period_margin - clk(producer) - clk_to_q)
  // style hold margin over counterflow edges; >= 0 means no hold risk at
  // the cell delays configured.
  double worst_hold_margin_ps = 0.0;
};

ClockSkewReport analyze_clock_skew(const Netlist& netlist,
                                   const TimingOptions& options = {},
                                   const Floorplan* floorplan = nullptr);

std::string format_clock_skew_report(const ClockSkewReport& report);

}  // namespace sfqpart
