// Small string helpers shared by the parsers and report printers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sfqpart {

// Splits on any character in `delims`, dropping empty fields.
std::vector<std::string> split(std::string_view text, std::string_view delims = " \t");

// Splits on a single delimiter, keeping empty fields (CSV-style).
std::vector<std::string> split_keep_empty(std::string_view text, char delim);

std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

// Strict numeric parsing: the whole field must be consumed.
std::optional<long long> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);

// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sfqpart
