#include "util/mem.h"

#include <sys/resource.h>

namespace sfqpart {

double peak_rss_mb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  // ru_maxrss is bytes on macOS.
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  // ru_maxrss is kilobytes on Linux and the BSDs' rusage(2) lineage.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

}  // namespace sfqpart
