// Minimal JSON document builder and parser.
//
// The CLI tool and the observability layer emit machine-readable results
// (partition assignments, metrics, run reports) as JSON; this is a small,
// dependency-free writer with correct string escaping, plus a strict
// recursive-descent parser so reports can be round-tripped in tests and
// consumed by downstream tooling without an external library.
//
// The parser also guards the sfqpartd daemon's job intake, so it is
// hardened against untrusted input (tests/util/json_test.cpp fuzzes the
// malformed cases):
//  * containers nested deeper than kMaxParseDepth are rejected (crafted
//    input cannot blow the recursion stack);
//  * numbers that overflow a double (e.g. "1e999") are rejected rather
//    than silently becoming infinity (integers too large for long long
//    degrade to the nearest double, as usual);
//  * duplicate object keys follow last-one-wins (same as Json::set): the
//    earlier value is replaced, insertion order keeps the first
//    occurrence's position. Parsing never keeps both.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace sfqpart {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json null() { return Json(); }
  static Json boolean(bool value);
  static Json number(double value);
  static Json number(long long value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  // Strict parse of one JSON document (trailing non-whitespace is an
  // error). Integers without fraction/exponent parse as integer kind.
  // Untrusted-input guards: see the header comment (depth limit, number
  // overflow rejection, last-wins duplicate keys).
  static StatusOr<Json> parse(const std::string& text);

  // Maximum container nesting the parser accepts; deeper input fails with
  // kInvalidArgument instead of recursing further.
  static constexpr int kMaxParseDepth = 64;

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  // True for both integer- and double-backed numbers.
  bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Value accessors; the fallback is returned on kind mismatch.
  bool as_bool(bool fallback = false) const;
  double as_number(double fallback = 0.0) const;
  long long as_int(long long fallback = 0) const;
  const std::string& as_string() const;  // empty string on mismatch

  // Element count of an array or object; 0 for scalars.
  std::size_t size() const;
  // Array element (asserts array kind and bounds).
  const Json& at(std::size_t index) const;
  // Object lookup; nullptr when the key is absent (or not an object).
  const Json* find(const std::string& key) const;
  // Key of the i-th object entry (insertion order; asserts object kind).
  const std::string& key_at(std::size_t index) const;

  // Object field (asserts object kind). Returns *this for chaining.
  Json& set(const std::string& key, Json value);
  // Array element (asserts array kind).
  Json& append(Json value);

  // Serializes; indent <= 0 means compact single-line form.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<Json> array_;
  // Insertion-ordered object keys.
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sfqpart
