// Minimal JSON document builder (output only).
//
// The CLI tool emits machine-readable results (partition assignments,
// metrics, bias plans) as JSON; this is a small, dependency-free writer —
// no parsing, just correct serialization with string escaping.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace sfqpart {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json null() { return Json(); }
  static Json boolean(bool value);
  static Json number(double value);
  static Json number(long long value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Object field (asserts object kind). Returns *this for chaining.
  Json& set(const std::string& key, Json value);
  // Array element (asserts array kind).
  Json& append(Json value);

  // Serializes; indent <= 0 means compact single-line form.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<Json> array_;
  // Insertion-ordered object keys.
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sfqpart
