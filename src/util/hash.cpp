#include "util/hash.h"

#include <fstream>

#include "util/strings.h"

namespace sfqpart {

Fnv1a64& Fnv1a64::update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= static_cast<std::uint64_t>(bytes[i]);
    state_ *= 0x100000001b3ull;  // FNV prime
  }
  return *this;
}

std::string hash_hex(std::uint64_t value) {
  return str_format("%016llx", static_cast<unsigned long long>(value));
}

StatusOr<std::uint64_t> hash_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::not_found("cannot open file '" + path + "'");
  Fnv1a64 hasher;
  char buffer[1 << 14];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    hasher.update(buffer, static_cast<std::size_t>(in.gcount()));
  }
  return hasher.digest();
}

}  // namespace sfqpart
