#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"

namespace sfqpart {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::add_separator() { separators_.push_back(rows_.size()); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto format_row = [&](const std::vector<std::string>& row) {
    static const std::string kEmpty;
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : kEmpty;
      line += ' ';
      line += cell;
      line += std::string(widths[c] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += format_row(header_);
  out += rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end()) {
      out += rule();
    }
    out += format_row(rows_[r]);
  }
  out += rule();
  return out;
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_double(double value, int digits) {
  return str_format("%.*f", digits, value);
}

std::string fmt_percent(double fraction_0_to_1, int digits) {
  return str_format("%.*f%%", digits, 100.0 * fraction_0_to_1);
}

}  // namespace sfqpart
