#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace sfqpart {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void append_field(std::string& out, const std::string& field) {
  if (!needs_quoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void append_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ',';
    append_field(out, row[i]);
  }
  out += '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string CsvWriter::to_string() const {
  std::string out;
  append_row(out, header_);
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

Status CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::error("cannot open for writing: " + path);
  file << to_string();
  if (!file) return Status::error("write failed: " + path);
  return Status::ok();
}

StatusOr<CsvDocument> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  // True once the current record has any content (a character, a quote, or
  // a comma); blank lines produce no record.
  bool record_started = false;

  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&] {
    if (!record_started) return;
    end_field();
    records.push_back(std::move(current));
    current.clear();
    record_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        record_started = true;
        break;
      case ',':
        record_started = true;
        end_field();
        break;
      case '\r':
        break;  // tolerate \r\n
      case '\n':
        end_record();
        break;
      default:
        field += c;
        record_started = true;
        break;
    }
  }
  if (in_quotes) return Status::error("unterminated quoted field");
  end_record();

  if (records.empty()) return Status::error("empty CSV document");

  CsvDocument doc;
  doc.header = std::move(records.front());
  doc.rows.assign(std::make_move_iterator(records.begin() + 1),
                  std::make_move_iterator(records.end()));
  for (const auto& row : doc.rows) {
    if (row.size() != doc.header.size()) {
      return Status::error(str_format("row has %zu fields, header has %zu",
                                      row.size(), doc.header.size()));
    }
  }
  return doc;
}

StatusOr<CsvDocument> read_csv_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace sfqpart
