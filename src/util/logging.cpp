#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace sfqpart {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* /*file*/, int /*line*/)
    : enabled_(level >= g_level.load()), level_(level) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s] %s\n", level_tag(level_), stream_.str().c_str());
}

}  // namespace internal
}  // namespace sfqpart
