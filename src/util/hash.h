// Content hashing for the service layer's result cache.
//
// The sfqpartd daemon keys cached run reports on (netlist content hash,
// canonical engine configuration); FNV-1a is a tiny, dependency-free,
// well-distributed 64-bit hash that is plenty for a cache key — the cache
// additionally stores the full canonical key string and compares it on
// lookup, so a hash collision degrades to a miss-like comparison, never a
// wrong result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace sfqpart {

// Streaming FNV-1a over bytes; feed any number of update() calls, read
// digest() at any point. Stable across platforms and runs (no per-process
// seeding), which is what a persistent-looking cache key needs.
class Fnv1a64 {
 public:
  Fnv1a64& update(const void* data, std::size_t size);
  Fnv1a64& update(const std::string& text) {
    return update(text.data(), text.size());
  }

  std::uint64_t digest() const { return state_; }

  static std::uint64_t of(const std::string& text) {
    return Fnv1a64().update(text).digest();
  }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

// 16 lowercase hex digits, zero-padded.
std::string hash_hex(std::uint64_t value);

// FNV-1a of a file's raw bytes (binary read). kNotFound when the file
// cannot be opened.
StatusOr<std::uint64_t> hash_file(const std::string& path);

}  // namespace sfqpart
