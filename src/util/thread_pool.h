// Persistent fork-join executor + deterministic parallel-chunk helper.
//
// The executor backs the partitioner's parallel restart engine and the
// cost model's chunked reductions (DESIGN.md sections 7 and 10). Design
// rules:
//
//  * `parallel_chunks` splits [0, n) into chunks whose boundaries depend
//    only on `n` and `grain` — never on the pool or thread count — so any
//    reduction that combines per-chunk partials in ascending chunk order
//    is bit-identical at 1, 2 or 64 threads.
//  * Dispatch is allocation-free: a call opens one *parallel region* in a
//    pool-owned slot (a function pointer + context pointer, no
//    std::function), wakes parked workers with one futex-style notify, and
//    chunks are claimed from a single shared atomic ticket counter. The
//    calling thread participates instead of sleeping.
//  * Small calls never pay dispatch tax: when `n * est_ns_per_item` is
//    below a calibrated cutoff the chunks run inline on the caller.
//  * Nested calls never deadlock: a call issued from a pool worker (or
//    with a null/single-thread pool) runs its chunks inline on the
//    calling thread.
//  * The first exception thrown by a chunk body is rethrown on the
//    calling thread once all chunks have finished (every chunk still
//    runs).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sfqpart {

// Number of chunks [0, n) splits into at the given grain (>= 1 entries
// per chunk); 0 when n == 0. Exposed so reductions can size their
// partial-sum buffers.
std::size_t chunk_count(std::size_t n, std::size_t grain);

// Adaptive serial threshold (DESIGN.md section 10): a parallel_chunks
// call runs inline when its estimated total work n * est_ns_per_item is
// below this cutoff. Calibrated against the region open/join cost (an
// epoch bump, up to thread_count futex wakes, and one straggler-chunk
// tail): dispatching regions smaller than ~2-3x that overhead is a net
// loss at every thread count the benches measure.
inline constexpr double kParallelCutoffNs = 20000.0;

// Default per-item estimate when a call site passes none: a handful of
// flops plus a couple of loads.
inline constexpr double kDefaultItemCostNs = 8.0;

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1), parked until a region
  // opens. A one-worker pool is valid but `parallel_chunks` bypasses it
  // and runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // True when called from a thread currently executing chunks — a parked
  // pool worker that joined a region, or a caller participating in its
  // own region. Used to run nested parallel_chunks inline instead of
  // re-entering the executor.
  static bool on_worker_thread();

  // std::thread::hardware_concurrency with a floor of 1.
  static int hardware_concurrency();

  // Chunk body as the executor sees it: a plain function pointer over an
  // opaque context, so opening a region never allocates.
  using ChunkFn = void (*)(void* ctx, std::size_t chunk, std::size_t begin,
                           std::size_t end);

  // Opens a parallel region over the `chunks` chunks of [0, n) at `grain`
  // and blocks until every chunk ran (caller participates; parked workers
  // join). Returns false without running anything when another region is
  // already open on this pool — the caller then runs inline, which is
  // result-identical by the determinism contract. Rethrows the first
  // chunk exception. Prefer parallel_chunks below; this is its backend.
  bool try_run_region(std::size_t n, std::size_t grain, std::size_t chunks,
                      ChunkFn fn, void* ctx);

 private:
  void worker_loop();
  // Claims and runs chunks of the region with the given generation until
  // the ticket counter is exhausted or the region changes under us.
  void claim_chunks(std::uint32_t generation);

  std::vector<std::thread> workers_;

  // The single region slot. Pool-owned (not caller-stack) so a worker
  // waking after the region completed dereferences valid memory, sees an
  // invalidated ticket, and parks again. Plain fields are written only
  // by the opener while region_open_ is held, and published to workers
  // by the release store of ticket_/epoch_; they are only read after a
  // successful ticket CAS, which (per the invalidation protocol below)
  // implies the reader observed this region's opener stores. chunks_ is
  // atomic because it alone is read *before* the CAS — the claim-bound
  // check — where a straggler may race the next opener's rewrite.
  ChunkFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> chunks_{0};

  // (generation << 32) | next-chunk. Claimed with a CAS on the whole
  // word: a stale worker's claim can neither steal nor lose a ticket of a
  // region it did not observe opening, because the generation half of its
  // expected value no longer matches. On region completion the opener
  // stores (generation << 32) | kChunkMask before releasing
  // region_open_, so between regions the chunk bits always read as
  // exhausted — a straggler holding the old generation can never claim
  // into the next region however the race with the next opener resolves.
  std::atomic<std::uint64_t> ticket_{0};
  // Chunks finished in the open region; the worker completing the last
  // one notifies the (possibly waiting) opener.
  std::atomic<std::size_t> done_{0};
  // Region generation. Workers park on epoch_.wait(last-seen) — a futex
  // on Linux — and one store+notify per region wakes them. 32-bit, so it
  // wraps after 2^32 regions; the ticket invalidation above makes a
  // wrapped generation collision benign (see the comment in
  // try_run_region), which is why the epoch is not widened to 64 bits —
  // a 32-bit word keeps the futex fast path.
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<bool> region_open_{false};
  std::atomic<bool> stopping_{false};
  // Error capture is the cold path; the mutex is only ever touched by a
  // throwing chunk and the opener's post-join check.
  std::atomic<bool> has_error_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
  // Helpers woken per region are capped at hardware_concurrency() - 1:
  // waking more runnable workers than spare cores only adds scheduler
  // churn (the measured 8-threads-slower-than-1 inversion this executor
  // replaced). Which threads run a chunk never affects the result.
  std::size_t max_helpers_ = 0;
};

// Cacheline-padded per-chunk partial storage for deterministic
// reductions. Chunk c's row lives at chunk(c); rows are padded (and the
// base aligned) to 64-byte lines, so concurrent chunks never write the
// same cache line — the false sharing the flat `chunks * K` vectors paid
// before. reset() zero-fills and only reallocates on growth, keeping a
// warm workspace allocation-free; the combine loop reads rows in
// ascending chunk order exactly as with unpadded storage, so padding can
// never change a bit.
class ChunkSlab {
 public:
  // Prepares `chunks` zeroed rows of `row_doubles` doubles each.
  void reset(std::size_t chunks, std::size_t row_doubles);

  double* chunk(std::size_t c) { return base_ + c * stride_; }
  const double* chunk(std::size_t c) const { return base_ + c * stride_; }

 private:
  static constexpr std::size_t kLineDoubles = 8;  // 64-byte cache line

  std::vector<double> storage_;
  double* base_ = nullptr;
  std::size_t stride_ = 0;
};

namespace pool_detail {

template <typename Body>
void invoke_chunk(void* ctx, std::size_t chunk, std::size_t begin,
                  std::size_t end) {
  (*static_cast<Body*>(ctx))(chunk, begin, end);
}

}  // namespace pool_detail

// Invokes body(chunk, begin, end) for every chunk of [0, n). Chunks run
// as a fork-join region on `pool` when it has >= 2 workers, there is more
// than one chunk, the caller is not already executing chunks, and the
// estimated work n * est_ns_per_item clears kParallelCutoffNs; otherwise
// they run inline, in ascending chunk order. The body is passed by
// pointer into the region slot — no allocation, no copy — so the call is
// dispatch-free beyond one atomic open and one wake. Blocks until every
// chunk finished; rethrows the first chunk exception.
template <typename Body>
void parallel_chunks(ThreadPool* pool, std::size_t n, std::size_t grain,
                     Body&& body, double est_ns_per_item = kDefaultItemCostNs) {
  if (grain < 1) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;

  using BodyT = std::remove_reference_t<Body>;
  const bool inline_only =
      pool == nullptr || pool->thread_count() <= 1 || chunks <= 1 ||
      ThreadPool::on_worker_thread() ||
      static_cast<double>(n) * est_ns_per_item < kParallelCutoffNs;
  if (!inline_only) {
    void* ctx = const_cast<void*>(static_cast<const void*>(std::addressof(body)));
    if (pool->try_run_region(n, grain, chunks,
                             &pool_detail::invoke_chunk<BodyT>, ctx)) {
      return;
    }
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    body(c, c * grain, std::min(n, (c + 1) * grain));
  }
}

}  // namespace sfqpart
