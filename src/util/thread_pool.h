// Small fixed-size worker pool + deterministic parallel-chunk helper.
//
// The pool backs the partitioner's parallel restart engine and the cost
// model's chunked reductions (see DESIGN.md section 7). Design rules:
//
//  * `parallel_chunks` splits [0, n) into chunks whose boundaries depend
//    only on `n` and `grain` — never on the pool or thread count — so any
//    reduction that combines per-chunk partials in ascending chunk order
//    is bit-identical at 1, 2 or 64 threads.
//  * Nested calls never deadlock: a call issued from a pool worker (or
//    with a null/single-thread pool) runs its chunks inline on the
//    calling thread.
//  * The first exception thrown by a chunk body is rethrown on the
//    calling thread once all chunks have finished.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfqpart {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1). A one-worker pool is
  // valid but `parallel_chunks` bypasses it and runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task (FIFO). Tasks must not throw; wrap bodies that can
  // (parallel_chunks does this for its chunk bodies).
  void submit(std::function<void()> task);

  // True when called from one of *any* pool's worker threads; used to run
  // nested parallel_chunks inline instead of deadlocking on the queue.
  static bool on_worker_thread();

  // std::thread::hardware_concurrency with a floor of 1.
  static int hardware_concurrency();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

// Number of chunks [0, n) splits into at the given grain (>= 1 entries
// per chunk); 0 when n == 0. Exposed so reductions can size their
// partial-sum buffers.
std::size_t chunk_count(std::size_t n, std::size_t grain);

// Invokes body(chunk, begin, end) for every chunk of [0, n). Chunks run
// on `pool` when it has >= 2 workers, there is more than one chunk, and
// the caller is not itself a pool worker; otherwise they run inline, in
// ascending chunk order. The calling thread participates in the fan-out
// (it pulls chunks from the same counter the workers do) instead of
// sleeping, so a pooled call never runs slower than the inline one by
// more than the task-wake overhead. Blocks until every chunk finished;
// rethrows the first chunk exception.
void parallel_chunks(
    ThreadPool* pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace sfqpart
