#include "util/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace sfqpart {
namespace {

thread_local bool t_on_worker = false;

constexpr std::uint64_t kChunkMask = 0xffffffffull;
constexpr std::uint64_t kGenMask = ~kChunkMask;

// RAII so the caller's participation flag survives a throwing chunk body.
struct ScopedWorkerFlag {
  ScopedWorkerFlag() { t_on_worker = true; }
  ~ScopedWorkerFlag() { t_on_worker = false; }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  const std::size_t spare_cores =
      static_cast<std::size_t>(std::max(0, hardware_concurrency() - 1));
  max_helpers_ = std::min(static_cast<std::size_t>(threads), spare_cores);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // No region can be open here (try_run_region blocks until its region
  // joined), so the epoch bump only ever wakes parked workers.
  stopping_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

int ThreadPool::hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  std::uint32_t seen = 0;
  for (;;) {
    epoch_.wait(seen, std::memory_order_acquire);
    const std::uint32_t current = epoch_.load(std::memory_order_acquire);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (current == seen) continue;  // spurious wake
    seen = current;
    claim_chunks(current);
  }
}

void ThreadPool::claim_chunks(std::uint32_t generation) {
  const std::uint64_t gen_bits = static_cast<std::uint64_t>(generation) << 32;
  std::uint64_t ticket = ticket_.load(std::memory_order_acquire);
  for (;;) {
    // A mismatched generation means this is not the region we were woken
    // for (it completed, or a newer one opened): park again and let the
    // epoch wait observe the new generation. The CAS below can therefore
    // never claim — or lose — a ticket across regions.
    if ((ticket & kGenMask) != gen_bits) return;
    const std::size_t chunk = static_cast<std::size_t>(ticket & kChunkMask);
    // chunks_ is only guaranteed current when `ticket` came from a live
    // region's release store; a straggler racing the next opener may read
    // either region's value here. That is safe because a closed region's
    // ticket is invalidated to kChunkMask (see try_run_region), which is
    // >= any chunks_ value, so a stale ticket always bails out here and
    // never reaches the CAS.
    if (chunk >= chunks_.load(std::memory_order_relaxed)) return;
    if (!ticket_.compare_exchange_weak(ticket, ticket + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      continue;
    }
    // The CAS succeeded against a live, non-invalidated ticket, so the
    // acquire load that produced `ticket` observed this region's opener
    // stores: the plain fields and chunks_ are stable until the region
    // completes, which cannot happen while this chunk is uncounted.
    const std::size_t chunks = chunks_.load(std::memory_order_relaxed);
    const std::size_t begin = chunk * grain_;
    const std::size_t end = std::min(n_, begin + grain_);
    try {
      fn_(ctx_, chunk, begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
      has_error_.store(true, std::memory_order_release);
    }
    // Only the final chunk pays a notify.
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
      done_.notify_all();
    }
    ticket = ticket_.load(std::memory_order_acquire);
  }
}

bool ThreadPool::try_run_region(std::size_t n, std::size_t grain,
                                std::size_t chunks, ChunkFn fn, void* ctx) {
  assert(chunks >= 1 && chunks <= kChunkMask);
  bool expected = false;
  if (!region_open_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    return false;  // another caller's region is live; run inline instead
  }
  fn_ = fn;
  ctx_ = ctx;
  n_ = n;
  grain_ = grain;
  chunks_.store(chunks, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  if (has_error_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    error_ = nullptr;
    has_error_.store(false, std::memory_order_relaxed);
  }
  // Publish: the ticket store releases the field writes above, the epoch
  // store wakes the helpers. region_open_ serializes openers, so the
  // non-atomic generation arithmetic is race-free.
  //
  // The generation is a 32-bit epoch and wraps after 2^32 regions. A
  // wrapped collision is harmless: a straggler whose generation happens
  // to match a much-later region can only pass the ticket checks while
  // that region is genuinely open and published (closed regions carry an
  // invalidated ticket, see the join below), and a successful CAS then
  // synchronizes with the opener's release store — the straggler merely
  // participates in the colliding region as a legitimate extra worker.
  // A parked worker whose `seen` collides sleeps through one wake, which
  // costs parallelism for that region, never correctness: the caller
  // participates and the join counts chunks, not workers.
  const std::uint32_t generation = epoch_.load(std::memory_order_relaxed) + 1;
  ticket_.store(static_cast<std::uint64_t>(generation) << 32,
                std::memory_order_release);
  epoch_.store(generation, std::memory_order_release);
  const std::size_t helpers = std::min(chunks - 1, max_helpers_);
  if (helpers >= workers_.size()) {
    epoch_.notify_all();
  } else {
    for (std::size_t h = 0; h < helpers; ++h) epoch_.notify_one();
  }

  // Participate: the caller pulls chunks from the same ticket counter the
  // workers do instead of sleeping, and must look like a worker so a
  // chunk body that re-enters parallel_chunks takes the inline path.
  {
    ScopedWorkerFlag flag;
    claim_chunks(generation);
  }

  // Join: wait for straggler chunks still running on workers. The common
  // case (caller ran the last chunk) never blocks; otherwise the final
  // done_ increment notifies.
  std::size_t finished = done_.load(std::memory_order_acquire);
  while (finished != chunks) {
    done_.wait(finished, std::memory_order_relaxed);
    finished = done_.load(std::memory_order_acquire);
  }

  // Invalidate the ticket before releasing the region slot. Until the
  // next opener's ticket store, ticket_ would otherwise still carry this
  // generation, so a straggler that parked late could pass the generation
  // check while the next opener is rewriting chunks_/fn_/n_ — and if it
  // read the new, larger chunks_ its CAS on the exhausted ticket would
  // succeed, running a phantom chunk over torn fields and corrupting the
  // new region's done_ count. With the chunk bits forced to kChunkMask
  // (>= chunks_ for every region, asserted on entry), a stale ticket can
  // never look claimable no matter which chunks_ value the straggler
  // reads, and any CAS against a pre-invalidation value fails.
  ticket_.store((static_cast<std::uint64_t>(generation) << 32) | kChunkMask,
                std::memory_order_release);

  std::exception_ptr error;
  if (has_error_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    error = error_;
  }
  region_open_.store(false, std::memory_order_release);
  if (error) std::rethrow_exception(error);
  return true;
}

std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

void ChunkSlab::reset(std::size_t chunks, std::size_t row_doubles) {
  if (row_doubles < 1) row_doubles = 1;
  stride_ = (row_doubles + kLineDoubles - 1) / kLineDoubles * kLineDoubles;
  // Slack so the base pointer can be rounded up to a line boundary even
  // when the vector's allocation is only 16-byte aligned.
  const std::size_t total = chunks * stride_ + kLineDoubles;
  if (storage_.size() < total) {
    storage_.resize(total);
  }
  std::fill(storage_.begin(), storage_.begin() + static_cast<std::ptrdiff_t>(total), 0.0);
  auto address = reinterpret_cast<std::uintptr_t>(storage_.data());
  const std::uintptr_t line = kLineDoubles * sizeof(double);
  const std::uintptr_t aligned = (address + line - 1) / line * line;
  base_ = storage_.data() + (aligned - address) / sizeof(double);
}

}  // namespace sfqpart
