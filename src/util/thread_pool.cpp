#include "util/thread_pool.h"

#include <atomic>
#include <cassert>
#include <exception>
#include <utility>

namespace sfqpart {
namespace {

thread_local bool t_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  assert(task);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!stopping_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

int ThreadPool::hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

void parallel_chunks(
    ThreadPool* pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body) {
  if (grain < 1) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;

  const bool inline_only = pool == nullptr || pool->thread_count() <= 1 ||
                           chunks <= 1 || ThreadPool::on_worker_thread();
  if (inline_only) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c, c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }

  // Fan out helpers that pull chunks from a shared counter, and pull
  // chunks on the calling thread too instead of sleeping. Which thread
  // executes a chunk is irrelevant to the result — boundaries and the
  // caller's combine order are fixed above — so this only removes the
  // idle-caller context switches (one task per *helper*, not per chunk).
  // Every chunk runs even when bodies throw; the first exception is
  // rethrown once all of them finished, as before.
  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::atomic<std::size_t> next{0};
    std::size_t running_helpers;
    std::exception_ptr error;
  } join;

  const auto run_chunks = [&join, &body, chunks, grain, n] {
    for (;;) {
      const std::size_t c = join.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      try {
        body(c, c * grain, std::min(n, (c + 1) * grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(join.mutex);
        if (!join.error) join.error = std::current_exception();
      }
    }
  };

  const std::size_t helpers =
      std::min(chunks - 1, static_cast<std::size_t>(pool->thread_count()));
  join.running_helpers = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->submit([&join, &run_chunks] {
      run_chunks();
      std::lock_guard<std::mutex> lock(join.mutex);
      if (--join.running_helpers == 0) join.done.notify_all();
    });
  }
  // While pulling chunks the caller acts as a pool worker, and must look
  // like one: a chunk body that re-enters parallel_chunks has to take the
  // inline path (fanning out again from here could only queue behind the
  // busy workers). inline_only above guarantees the flag was false.
  t_on_worker = true;
  run_chunks();
  t_on_worker = false;
  std::unique_lock<std::mutex> lock(join.mutex);
  join.done.wait(lock, [&join] { return join.running_helpers == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

}  // namespace sfqpart
