// Seedable, reproducible pseudo-random number generator (xoshiro256**).
//
// Every stochastic component of the library (random W initialization,
// benchmark generators, baseline partitioners) takes an explicit Rng or
// seed so that experiments are exactly reproducible run to run.
#pragma once

#include <cstdint>
#include <vector>

namespace sfqpart {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  // Standard normal via Box-Muller.
  double normal();

  // Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // A derived generator with an independent stream; useful for giving each
  // restart / each subcomponent its own deterministic stream.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sfqpart
