// Lightweight error propagation for the parsing boundary.
//
// The library core uses asserts for programmer errors; file parsing and
// other operations on untrusted input return Status / StatusOr instead of
// throwing, so that callers (CLI tools, tests) can report precise messages.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sfqpart {

// Coarse failure classification, modelled on absl::StatusCode but reduced
// to what the library actually distinguishes: bad caller input
// (kInvalidArgument), a lookup miss (kNotFound, e.g. an unregistered
// engine name), and everything else (kUnknown).
enum class StatusCode {
  kOk,
  kUnknown,
  kInvalidArgument,
  kNotFound,
};

class Status {
 public:
  // Default: OK.
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(std::string message) {
    return Status(StatusCode::kUnknown, std::move(message));
  }
  static Status invalid_argument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status not_found(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }

  bool is_ok() const { return !message_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  StatusCode code() const { return code_; }
  bool is_invalid_argument() const { return code_ == StatusCode::kInvalidArgument; }
  bool is_not_found() const { return code_ == StatusCode::kNotFound; }

  // Message of a failed status; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  StatusCode code_ = StatusCode::kOk;
  std::optional<std::string> message_;
};

template <typename T>
class StatusOr {
 public:
  // Implicit construction from a value or a failed Status keeps call sites
  // terse: `return netlist;` / `return Status::error(...)`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "StatusOr constructed from OK status without a value");
  }

  bool is_ok() const { return status_.is_ok(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T& value() & {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sfqpart
