#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace sfqpart {
namespace {

// splitmix64 — used to expand the user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(uniform_index(span));
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace sfqpart
