#include "util/json.h"

#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace sfqpart {

Json Json::boolean(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_ = value;
  return json;
}

Json Json::number(long long value) {
  Json json;
  json.kind_ = Kind::kInteger;
  json.integer_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

Json& Json::set(const std::string& key, Json value) {
  assert(kind_ == Kind::kObject);
  for (auto& [existing, slot] : object_) {
    if (existing == key) {
      slot = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::append(Json value) {
  assert(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return *this;
}

namespace {

void escape_into(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
  const std::string close_pad(pretty ? static_cast<std::size_t>(indent * depth) : 0, ' ');
  const char* newline = pretty ? "\n" : "";

  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger:
      out += std::to_string(integer_);
      break;
    case Kind::kNumber:
      if (std::isfinite(number_)) {
        out += str_format("%.10g", number_);
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    case Kind::kString:
      escape_into(out, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += newline;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += newline;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        escape_into(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace sfqpart
