#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace sfqpart {

Json Json::boolean(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_ = value;
  return json;
}

Json Json::number(long long value) {
  Json json;
  json.kind_ = Kind::kInteger;
  json.integer_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

Json& Json::set(const std::string& key, Json value) {
  assert(kind_ == Kind::kObject);
  for (auto& [existing, slot] : object_) {
    if (existing == key) {
      slot = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::append(Json value) {
  assert(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return *this;
}

bool Json::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double Json::as_number(double fallback) const {
  if (kind_ == Kind::kNumber) return number_;
  if (kind_ == Kind::kInteger) return static_cast<double>(integer_);
  return fallback;
}

long long Json::as_int(long long fallback) const {
  if (kind_ == Kind::kInteger) return integer_;
  if (kind_ == Kind::kNumber) return static_cast<long long>(number_);
  return fallback;
}

const std::string& Json::as_string() const {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_ : kEmpty;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  assert(kind_ == Kind::kArray && index < array_.size());
  return array_[index];
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [existing, value] : object_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const std::string& Json::key_at(std::size_t index) const {
  assert(kind_ == Kind::kObject && index < object_.size());
  return object_[index].first;
}

namespace {

void escape_into(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Recursive-descent parser. Strict: no comments, no trailing commas, one
// document per string. Depth-limited so crafted input cannot blow the
// stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Json> run() {
    Json value;
    if (Status status = parse_value(value, 0); !status) return status;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = Json::kMaxParseDepth;

  Status fail(const std::string& what) const {
    return Status::error(
        str_format("json: %s at offset %zu", what.c_str(), pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return fail(str_format("expected '%s'", literal));
      }
      ++pos_;
    }
    return Status::ok();
  }

  Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape digit");
          }
          // BMP code points only (no surrogate pairing): encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("expected number");
    char* end = nullptr;
    if (integral) {
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size()) {
        out = Json::number(value);
        return Status::ok();
      }
      // Fall through on overflow: keep the value as a double.
    }
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    // strtod saturates overflow to +/-HUGE_VAL; JSON has no infinity, and
    // silently accepting one would poison downstream arithmetic.
    if (!std::isfinite(value)) return fail("number out of range");
    out = Json::number(value);
    return Status::ok();
  }

  Status parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (Status status = expect_literal("null"); !status) return status;
      out = Json::null();
      return Status::ok();
    }
    if (c == 't') {
      if (Status status = expect_literal("true"); !status) return status;
      out = Json::boolean(true);
      return Status::ok();
    }
    if (c == 'f') {
      if (Status status = expect_literal("false"); !status) return status;
      out = Json::boolean(false);
      return Status::ok();
    }
    if (c == '"') {
      std::string text;
      if (Status status = parse_string(text); !status) return status;
      out = Json::string(std::move(text));
      return Status::ok();
    }
    if (c == '[') {
      ++pos_;
      out = Json::array();
      skip_whitespace();
      if (consume(']')) return Status::ok();
      while (true) {
        Json element;
        if (Status status = parse_value(element, depth + 1); !status) return status;
        out.append(std::move(element));
        skip_whitespace();
        if (consume(']')) return Status::ok();
        if (!consume(',')) return fail("expected ',' or ']' in array");
      }
    }
    if (c == '{') {
      ++pos_;
      out = Json::object();
      skip_whitespace();
      if (consume('}')) return Status::ok();
      while (true) {
        skip_whitespace();
        std::string key;
        if (Status status = parse_string(key); !status) return status;
        skip_whitespace();
        if (!consume(':')) return fail("expected ':' after object key");
        Json value;
        if (Status status = parse_value(value, depth + 1); !status) return status;
        out.set(key, std::move(value));
        skip_whitespace();
        if (consume('}')) return Status::ok();
        if (!consume(',')) return fail("expected ',' or '}' in object");
      }
    }
    return parse_number(out);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> Json::parse(const std::string& text) {
  return Parser(text).run();
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
  const std::string close_pad(pretty ? static_cast<std::size_t>(indent * depth) : 0, ' ');
  const char* newline = pretty ? "\n" : "";

  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger:
      out += std::to_string(integer_);
      break;
    case Kind::kNumber:
      if (std::isfinite(number_)) {
        out += str_format("%.10g", number_);
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    case Kind::kString:
      escape_into(out, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += newline;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += newline;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        escape_into(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace sfqpart
