#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sfqpart {

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t end = text.find(delim, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<long long> parse_int(std::string_view text) {
  const std::string buf{trim(text)};
  if (buf.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string buf{trim(text)};
  if (buf.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sfqpart
