// CSV writing/reading for experiment results.
//
// Benches dump every table to CSV next to the human-readable output so that
// results can be diffed and plotted; tests round-trip through this module.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace sfqpart {

class CsvWriter {
 public:
  // Starts a document with the given header row.
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Serializes with RFC-4180 quoting where needed.
  std::string to_string() const;

  Status write_file(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

// Parses CSV text (RFC-4180 subset: quoted fields, embedded commas/quotes,
// both \n and \r\n line endings). First row is the header.
StatusOr<CsvDocument> parse_csv(const std::string& text);

StatusOr<CsvDocument> read_csv_file(const std::string& path);

}  // namespace sfqpart
