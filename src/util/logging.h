// Minimal leveled logger.
//
// The library never logs on hot paths; logging is for the CLI tools,
// benches and examples. Output goes to stderr so table output on stdout
// stays machine-parseable.
#pragma once

#include <sstream>
#include <string>

namespace sfqpart {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {

// Accumulates one message and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sfqpart

#define SFQ_LOG_DEBUG \
  ::sfqpart::internal::LogMessage(::sfqpart::LogLevel::kDebug, __FILE__, __LINE__)
#define SFQ_LOG_INFO \
  ::sfqpart::internal::LogMessage(::sfqpart::LogLevel::kInfo, __FILE__, __LINE__)
#define SFQ_LOG_WARN \
  ::sfqpart::internal::LogMessage(::sfqpart::LogLevel::kWarn, __FILE__, __LINE__)
#define SFQ_LOG_ERROR \
  ::sfqpart::internal::LogMessage(::sfqpart::LogLevel::kError, __FILE__, __LINE__)
