// Process memory introspection.
#pragma once

namespace sfqpart {

// Peak resident set size of the calling process in megabytes, from
// getrusage(RUSAGE_SELF). ru_maxrss is reported in kilobytes on Linux
// but in *bytes* on macOS/BSD; this helper owns that platform split so
// callers never hardcode one interpretation. Returns 0.0 if the query
// fails.
double peak_rss_mb();

}  // namespace sfqpart
