// Dense row-major matrix of doubles with vector-width row padding.
//
// The soft-assignment matrix W (G x K) and its gradient live in this type.
// Rows are padded to kRowAlignDoubles (one 64-byte cache line, the widest
// SIMD register the kernel layer dispatches to — DESIGN.md section 15):
// a K=5 row occupies one line instead of straddling two, and the simd
// kernels can load/store whole rows as full vectors. The base pointer is
// 64-byte aligned for the same reason.
//
// Padding lanes are part of the storage contract, not just slack: they
// are zero-initialized and every writer (the kernel layer's masked row
// stores, the optimizer's element-wise flat passes over zero padding)
// keeps them zero, so whole-row vector loads read zeros past K and
// reductions over flat() see no garbage. row() spans exactly cols()
// entries, so element-wise callers never observe the padding; flat()
// exposes the padded storage and is only for passes that are value-safe
// over zeros (clamp, max-abs, step).
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <span>
#include <vector>

namespace sfqpart {

// Minimal aligned allocator so Matrix storage starts on a cache line.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  // Required explicitly: the default allocator_traits rebind only works
  // for allocators whose template parameters are all types, and Alignment
  // is a non-type parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

class Matrix {
 public:
  // Row stride granularity in doubles: 64 bytes, i.e. one full AVX-512
  // register / two AVX2 registers / one cache line.
  static constexpr std::size_t kRowAlignDoubles = 8;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), stride_(padded(cols)) {
    data_.assign(rows * stride_, 0.0);
    if (fill != 0.0) {
      for (std::size_t r = 0; r < rows_; ++r) {
        double* row = data_.data() + r * stride_;
        for (std::size_t c = 0; c < cols_; ++c) row[c] = fill;
      }
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  // Logical element count (rows * cols), excluding padding.
  std::size_t size() const { return rows_ * cols_; }
  // Doubles from one row's first entry to the next row's (>= cols).
  std::size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * stride_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * stride_, cols_};
  }

  // The padded storage (rows * stride doubles; padding lanes are zero by
  // the writer contract above). Only for element-wise passes that are
  // value-safe over zeros; per-row work should use row().
  std::span<double> flat() { return {data_.data(), data_.size()}; }
  std::span<const double> flat() const { return {data_.data(), data_.size()}; }

  void fill(double value) {
    data_.assign(data_.size(), 0.0);
    if (value != 0.0) {
      for (std::size_t r = 0; r < rows_; ++r) {
        double* row = data_.data() + r * stride_;
        for (std::size_t c = 0; c < cols_; ++c) row[c] = value;
      }
    }
  }

  // Logical equality: shape and per-row entries; padding never compares.
  friend bool operator==(const Matrix& a, const Matrix& b) {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
    for (std::size_t r = 0; r < a.rows_; ++r) {
      const double* ra = a.data_.data() + r * a.stride_;
      const double* rb = b.data_.data() + r * b.stride_;
      for (std::size_t c = 0; c < a.cols_; ++c) {
        if (ra[c] != rb[c]) return false;
      }
    }
    return true;
  }

 private:
  static std::size_t padded(std::size_t cols) {
    if (cols == 0) return 0;
    return (cols + kRowAlignDoubles - 1) / kRowAlignDoubles * kRowAlignDoubles;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double, AlignedAllocator<double, 64>> data_;
};

}  // namespace sfqpart
