// Dense row-major matrix of doubles.
//
// The soft-assignment matrix W (G x K) and its gradient live in this type.
// It is deliberately minimal: contiguous storage, bounds-checked in debug
// builds, with row views for the per-gate operations the optimizer needs.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace sfqpart {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return {data_.data(), data_.size()}; }
  std::span<const double> flat() const { return {data_.data(), data_.size()}; }

  void fill(double value) { data_.assign(data_.size(), value); }

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sfqpart
