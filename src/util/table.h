// ASCII table printer used by the table1/2/3 benches and examples to emit
// rows in the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace sfqpart {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // A horizontal rule before the next added row (used to set off the
  // AVERAGE row, as the paper does).
  void add_separator();

  // Renders with column-aligned cells:
  //
  //   +--------+-------+
  //   | Circuit|  G    |
  //   +--------+-------+
  //   | KSA4   |  93   |
  //   +--------+-------+
  std::string to_string() const;

  // Convenience: render to stdout.
  void print() const;

  const std::vector<std::string>& header() const { return header_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

// Formats a double with `digits` decimal places (fixed notation).
std::string fmt_double(double value, int digits);

// Formats a percentage as e.g. "74.6%".
std::string fmt_percent(double fraction_0_to_1, int digits = 1);

}  // namespace sfqpart
