// Tiny command-line flag parser for the examples and bench drivers.
//
// Supports `--name=value`, `--name value`, boolean `--flag` /
// `--no-flag`, and positional arguments. Unknown flags are an error so
// typos do not silently fall through.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace sfqpart {

class OptionsParser {
 public:
  // `program_help` is printed by usage() above the flag list.
  explicit OptionsParser(std::string program_help = "");

  // Registration. `help` appears in usage(). Defaults seed the returned
  // values until overridden on the command line.
  void add_flag(const std::string& name, bool default_value, const std::string& help);
  void add_int(const std::string& name, long long default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  // Parses argv (excluding argv[0]). Returns an error for unknown flags or
  // unparseable values.
  Status parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Spec {
    Kind kind;
    std::string help;
    bool flag_value = false;
    long long int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  Status set_value(Spec& spec, const std::string& name, const std::string& value);

  std::string program_help_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace sfqpart
