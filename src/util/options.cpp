#include "util/options.h"

#include <cassert>

#include "util/strings.h"

namespace sfqpart {

OptionsParser::OptionsParser(std::string program_help)
    : program_help_(std::move(program_help)) {}

void OptionsParser::add_flag(const std::string& name, bool default_value,
                             const std::string& help) {
  Spec spec;
  spec.kind = Kind::kFlag;
  spec.help = help;
  spec.flag_value = default_value;
  specs_[name] = std::move(spec);
}

void OptionsParser::add_int(const std::string& name, long long default_value,
                            const std::string& help) {
  Spec spec;
  spec.kind = Kind::kInt;
  spec.help = help;
  spec.int_value = default_value;
  specs_[name] = std::move(spec);
}

void OptionsParser::add_double(const std::string& name, double default_value,
                               const std::string& help) {
  Spec spec;
  spec.kind = Kind::kDouble;
  spec.help = help;
  spec.double_value = default_value;
  specs_[name] = std::move(spec);
}

void OptionsParser::add_string(const std::string& name, const std::string& default_value,
                               const std::string& help) {
  Spec spec;
  spec.kind = Kind::kString;
  spec.help = help;
  spec.string_value = default_value;
  specs_[name] = std::move(spec);
}

Status OptionsParser::set_value(Spec& spec, const std::string& name,
                                const std::string& value) {
  switch (spec.kind) {
    case Kind::kFlag: {
      const std::string lower = to_lower(value);
      if (lower == "true" || lower == "1") {
        spec.flag_value = true;
      } else if (lower == "false" || lower == "0") {
        spec.flag_value = false;
      } else {
        return Status::error("bad boolean for --" + name + ": " + value);
      }
      return Status::ok();
    }
    case Kind::kInt: {
      const auto parsed = parse_int(value);
      if (!parsed) return Status::error("bad integer for --" + name + ": " + value);
      spec.int_value = *parsed;
      return Status::ok();
    }
    case Kind::kDouble: {
      const auto parsed = parse_double(value);
      if (!parsed) return Status::error("bad number for --" + name + ": " + value);
      spec.double_value = *parsed;
      return Status::ok();
    }
    case Kind::kString:
      spec.string_value = value;
      return Status::ok();
  }
  return Status::error("unreachable");
}

Status OptionsParser::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    auto it = specs_.find(body);
    // `--no-foo` negates boolean flag `foo`.
    if (it == specs_.end() && starts_with(body, "no-")) {
      auto neg = specs_.find(body.substr(3));
      if (neg != specs_.end() && neg->second.kind == Kind::kFlag) {
        if (has_value) return Status::error("--no-" + body.substr(3) + " takes no value");
        neg->second.flag_value = false;
        continue;
      }
    }
    if (it == specs_.end()) return Status::error("unknown flag: --" + body);

    Spec& spec = it->second;
    if (spec.kind == Kind::kFlag && !has_value) {
      spec.flag_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) return Status::error("missing value for --" + body);
      value = argv[++i];
    }
    if (auto status = set_value(spec, body, value); !status) return status;
  }
  return Status::ok();
}

bool OptionsParser::get_flag(const std::string& name) const {
  auto it = specs_.find(name);
  assert(it != specs_.end() && it->second.kind == Kind::kFlag);
  return it->second.flag_value;
}

long long OptionsParser::get_int(const std::string& name) const {
  auto it = specs_.find(name);
  assert(it != specs_.end() && it->second.kind == Kind::kInt);
  return it->second.int_value;
}

double OptionsParser::get_double(const std::string& name) const {
  auto it = specs_.find(name);
  assert(it != specs_.end() && it->second.kind == Kind::kDouble);
  return it->second.double_value;
}

const std::string& OptionsParser::get_string(const std::string& name) const {
  auto it = specs_.find(name);
  assert(it != specs_.end() && it->second.kind == Kind::kString);
  return it->second.string_value;
}

std::string OptionsParser::usage() const {
  std::string out = program_help_;
  if (!out.empty()) out += "\n\n";
  out += "Flags:\n";
  for (const auto& [name, spec] : specs_) {
    std::string line = "  --" + name;
    switch (spec.kind) {
      case Kind::kFlag:
        line += str_format("  (bool, default %s)", spec.flag_value ? "true" : "false");
        break;
      case Kind::kInt:
        line += str_format("  (int, default %lld)", spec.int_value);
        break;
      case Kind::kDouble:
        line += str_format("  (double, default %g)", spec.double_value);
        break;
      case Kind::kString:
        line += "  (string, default \"" + spec.string_value + "\")";
        break;
    }
    out += line + "\n      " + spec.help + "\n";
  }
  return out;
}

}  // namespace sfqpart
