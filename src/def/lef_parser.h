// LEF (Library Exchange Format) subset reader.
//
// Reads the macro geometry the DEF flow needs: MACRO blocks with CLASS,
// SIZE, and PIN name/direction/use. Technology sections (LAYER, VIA, SITE)
// are skipped. This matches the LEF/DEF subset the SFQ benchmark suite of
// the paper uses (reference [22]).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace sfqpart {
class CellLibrary;
}

namespace sfqpart::def {

enum class PinDirection { kInput, kOutput, kInout, kUnknown };

struct LefPin {
  std::string name;
  PinDirection direction = PinDirection::kUnknown;
  std::string use;  // SIGNAL, CLOCK, POWER, GROUND, "" if unspecified
};

struct LefMacro {
  std::string name;
  std::string macro_class;  // e.g. "CORE"
  double width_um = 0.0;
  double height_um = 0.0;
  std::vector<LefPin> pins;

  const LefPin* find_pin(const std::string& pin_name) const;
  double area_um2() const { return width_um * height_um; }
};

struct LefLibrary {
  std::map<std::string, LefMacro> macros;

  const LefMacro* find(const std::string& name) const;
};

StatusOr<LefLibrary> parse_lef(const std::string& text);
StatusOr<LefLibrary> read_lef_file(const std::string& path);

// Standard pin naming convention shared by the LEF/DEF writer and the
// DEF-to-netlist converter: data inputs "A", "B", "C", ...; outputs "Q"
// (or "Q0", "Q1" for multi-output cells); clock "CLK".
std::string input_pin_name(int index);
std::string output_pin_name(int index, int num_outputs);
inline constexpr const char* kClockPinName = "CLK";

// Generates LEF text for a cell library: one MACRO per cell with a
// rectangular footprint matching the cell's area (fixed 60 um row height)
// and the standard pin names above.
std::string write_lef(const CellLibrary& library);

}  // namespace sfqpart::def
