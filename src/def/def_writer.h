// DEF writer: serializes a Netlist (with an automatic row placement) back
// to the DEF subset understood by def_parser. Interface gates (kInput /
// kOutput cells) are emitted as top-level PINS; an optional "pin:" name
// prefix is stripped so that write -> parse round-trips reproduce names.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace sfqpart::def {

struct DefWriterOptions {
  int dbu_per_micron = 1000;
  double row_height_um = 60.0;
  // Placement-row fill factor used to size the die.
  double utilization = 0.85;
};

std::string write_def(const Netlist& netlist, const DefWriterOptions& options = {});

// Writes with an externally computed placement (e.g. the plane-stripe
// floorplanner's): per-gate lower-left coordinates in um, indexed by
// GateId. The die is sized to the placement's bounding box.
std::string write_def_placed(const Netlist& netlist, const DefWriterOptions& options,
                             const std::vector<double>& x_um,
                             const std::vector<double>& y_um);

}  // namespace sfqpart::def
