#include "def/def_writer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "def/lef_parser.h"
#include "util/strings.h"

namespace sfqpart::def {
namespace {

std::string pin_display_name(const Netlist& netlist, GateId gate) {
  const std::string& name = netlist.gate(gate).name;
  if (starts_with(name, "pin:")) return name.substr(4);
  return name;
}

// Net names derive from driver gate names, which may carry the internal
// "pin:" prefix; DEF identifiers use '_' instead of ':'.
std::string sanitize_net_name(std::string name) {
  for (char& c : name) {
    if (c == ':') c = '_';
  }
  return name;
}

std::string term_for(const Netlist& netlist, GateId gate, const std::string& pin) {
  if (netlist.is_io(gate)) {
    return "( PIN " + pin_display_name(netlist, gate) + " )";
  }
  return "( " + netlist.gate(gate).name + " " + pin + " )";
}

}  // namespace

namespace {

// Emits everything after COMPONENTS; shared by both writer entry points.
std::string write_def_body(const Netlist& netlist, const DefWriterOptions& options,
                           const std::string& components_section,
                           double die_width_um, double die_height_um);

}  // namespace

std::string write_def(const Netlist& netlist, const DefWriterOptions& options) {
  const double dbu = options.dbu_per_micron;

  // Row placement of non-I/O components, sized from total area.
  std::vector<GateId> placeable;
  double total_area = 0.0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_io(g)) continue;
    placeable.push_back(g);
    total_area += netlist.area_of(g);
  }
  const double target_area = total_area / std::max(0.05, options.utilization);
  double die_side = std::sqrt(std::max(target_area, 1.0));
  die_side = std::ceil(die_side / options.row_height_um) * options.row_height_um;

  std::string components = str_format("\nCOMPONENTS %zu ;\n", placeable.size());
  double x = 0.0;
  double y = 0.0;
  for (const GateId g : placeable) {
    const Cell& cell = netlist.cell_of(g);
    const double width = cell.area_um2 > 0.0 ? cell.area_um2 / options.row_height_um
                                             : options.row_height_um;
    if (x + width > die_side) {
      x = 0.0;
      y += options.row_height_um;
    }
    components += str_format("  - %s %s + PLACED ( %lld %lld ) N ;\n",
                      netlist.gate(g).name.c_str(), cell.name.c_str(),
                      static_cast<long long>(x * dbu), static_cast<long long>(y * dbu));
    x += width;
  }
  components += "END COMPONENTS\n";
  return write_def_body(netlist, options, components, die_side, die_side);
}

std::string write_def_placed(const Netlist& netlist, const DefWriterOptions& options,
                             const std::vector<double>& x_um,
                             const std::vector<double>& y_um) {
  assert(static_cast<int>(x_um.size()) == netlist.num_gates());
  assert(static_cast<int>(y_um.size()) == netlist.num_gates());
  const double dbu = options.dbu_per_micron;

  std::vector<GateId> placeable;
  double die_w = options.row_height_um;
  double die_h = options.row_height_um;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_io(g)) continue;
    placeable.push_back(g);
    const double width = netlist.area_of(g) > 0.0
                             ? netlist.area_of(g) / options.row_height_um
                             : options.row_height_um;
    die_w = std::max(die_w, x_um[static_cast<std::size_t>(g)] + width);
    die_h = std::max(die_h, y_um[static_cast<std::size_t>(g)] + options.row_height_um);
  }

  std::string components = str_format("\nCOMPONENTS %zu ;\n", placeable.size());
  for (const GateId g : placeable) {
    components += str_format(
        "  - %s %s + PLACED ( %lld %lld ) N ;\n", netlist.gate(g).name.c_str(),
        netlist.cell_of(g).name.c_str(),
        static_cast<long long>(x_um[static_cast<std::size_t>(g)] * dbu),
        static_cast<long long>(y_um[static_cast<std::size_t>(g)] * dbu));
  }
  components += "END COMPONENTS\n";
  return write_def_body(netlist, options, components, die_w, die_h);
}

namespace {

std::string write_def_body(const Netlist& netlist, const DefWriterOptions& options,
                           const std::string& components_section,
                           double die_width_um, double die_height_um) {
  const double dbu = options.dbu_per_micron;
  std::string out;
  out += "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n";
  out += "DESIGN " + netlist.name() + " ;\n";
  out += str_format("UNITS DISTANCE MICRONS %d ;\n", options.dbu_per_micron);
  out += str_format("DIEAREA ( 0 0 ) ( %lld %lld ) ;\n",
                    static_cast<long long>(die_width_um * dbu),
                    static_cast<long long>(die_height_um * dbu));
  out += components_section;

  // PINS from interface gates. The pin's NET is the net on its single
  // data pin (output net for inputs, input net for outputs).
  std::vector<GateId> io_gates;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_io(g)) io_gates.push_back(g);
  }
  out += str_format("\nPINS %zu ;\n", io_gates.size());
  for (const GateId g : io_gates) {
    const bool is_input = netlist.cell_of(g).kind == CellKind::kInput;
    const NetId net_id = is_input ? netlist.output_net(g, 0) : netlist.input_net(g, 0);
    const std::string net_name =
        net_id == kInvalidNet ? "unconnected"
                              : sanitize_net_name(netlist.net(net_id).name);
    out += str_format("  - %s + NET %s + DIRECTION %s + USE SIGNAL ;\n",
                      pin_display_name(netlist, g).c_str(), net_name.c_str(),
                      is_input ? "INPUT" : "OUTPUT");
  }
  out += "END PINS\n";

  // NETS.
  int connected_nets = 0;
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    if (netlist.net(n).driver.gate != kInvalidGate && !netlist.net(n).sinks.empty()) {
      ++connected_nets;
    }
  }
  out += str_format("\nNETS %d ;\n", connected_nets);
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate || net.sinks.empty()) continue;
    const Cell& driver_cell = netlist.cell_of(net.driver.gate);
    std::string line = "  - " + sanitize_net_name(net.name) + " " +
                       term_for(netlist, net.driver.gate,
                                output_pin_name(net.driver.pin, driver_cell.num_outputs));
    for (const PinRef& sink : net.sinks) {
      const std::string pin_name =
          sink.pin == kClockPin ? kClockPinName : input_pin_name(sink.pin);
      line += " " + term_for(netlist, sink.gate, pin_name);
    }
    out += line + " + USE SIGNAL ;\n";
  }
  out += "END NETS\n\nEND DESIGN\n";
  return out;
}

}  // namespace

}  // namespace sfqpart::def
