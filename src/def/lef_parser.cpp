#include "def/lef_parser.h"

#include <cassert>
#include <fstream>
#include <sstream>

#include "def/lexer.h"
#include "netlist/cell_library.h"
#include "util/strings.h"

namespace sfqpart::def {
namespace {

PinDirection parse_direction(const std::string& text) {
  const std::string upper = to_upper(text);
  if (upper == "INPUT") return PinDirection::kInput;
  if (upper == "OUTPUT") return PinDirection::kOutput;
  if (upper == "INOUT") return PinDirection::kInout;
  return PinDirection::kUnknown;
}

// PIN <name> ... END <name>
Status parse_pin(TokenStream& ts, LefMacro& macro) {
  if (ts.at_end()) return ts.error("unexpected end of file in PIN");
  LefPin pin;
  pin.name = ts.take();
  while (!ts.at_end()) {
    const std::string word = ts.take();
    if (word == "END") {
      if (ts.at_end()) return ts.error("unexpected end of file after END");
      const std::string closer = ts.take();
      if (closer != pin.name) {
        return ts.error("PIN '" + pin.name + "' closed by END '" + closer + "'");
      }
      macro.pins.push_back(std::move(pin));
      return Status::ok();
    }
    if (word == "DIRECTION") {
      if (ts.at_end()) return ts.error("DIRECTION needs a value");
      pin.direction = parse_direction(ts.take());
      ts.skip_statement();
    } else if (word == "USE") {
      if (ts.at_end()) return ts.error("USE needs a value");
      pin.use = to_upper(ts.take());
      ts.skip_statement();
    } else if (word == "PORT") {
      // Skip geometry until the matching END (PORT blocks have no name).
      while (!ts.at_end() && ts.peek() != "END") ts.take();
      if (!ts.accept("END")) return ts.error("unterminated PORT");
    }
    // Other pin properties (SHAPE, ANTENNA*) are statement-shaped; they are
    // consumed by the loop via their trailing tokens or skip_statement above.
  }
  return ts.error("unterminated PIN '" + pin.name + "'");
}

// MACRO <name> ... END <name>
Status parse_macro(TokenStream& ts, LefLibrary& lib) {
  if (ts.at_end()) return ts.error("unexpected end of file in MACRO");
  LefMacro macro;
  macro.name = ts.take();
  while (!ts.at_end()) {
    const std::string word = ts.take();
    if (word == "END") {
      if (ts.at_end()) return ts.error("unexpected end of file after END");
      const std::string closer = ts.take();
      if (closer != macro.name) {
        return ts.error("MACRO '" + macro.name + "' closed by END '" + closer + "'");
      }
      lib.macros.emplace(macro.name, std::move(macro));
      return Status::ok();
    }
    if (word == "CLASS") {
      if (ts.at_end()) return ts.error("CLASS needs a value");
      macro.macro_class = to_upper(ts.take());
      ts.skip_statement();
    } else if (word == "SIZE") {
      auto width = ts.take_double();
      if (!width) return width.status();
      if (auto st = ts.expect("BY"); !st) return st;
      auto height = ts.take_double();
      if (!height) return height.status();
      if (auto st = ts.expect(";"); !st) return st;
      macro.width_um = *width;
      macro.height_um = *height;
    } else if (word == "PIN") {
      if (auto st = parse_pin(ts, macro); !st) return st;
    } else if (word == "ORIGIN" || word == "SYMMETRY" || word == "SITE" ||
               word == "FOREIGN") {
      ts.skip_statement();
    } else if (word == "OBS") {
      while (!ts.at_end() && ts.peek() != "END") ts.take();
      if (!ts.accept("END")) return ts.error("unterminated OBS");
    }
  }
  return ts.error("unterminated MACRO '" + macro.name + "'");
}

}  // namespace

const LefPin* LefMacro::find_pin(const std::string& pin_name) const {
  for (const LefPin& pin : pins) {
    if (pin.name == pin_name) return &pin;
  }
  return nullptr;
}

const LefMacro* LefLibrary::find(const std::string& name) const {
  auto it = macros.find(name);
  return it == macros.end() ? nullptr : &it->second;
}

StatusOr<LefLibrary> parse_lef(const std::string& text) {
  TokenStream ts = tokenize(text);
  LefLibrary lib;
  while (!ts.at_end()) {
    const std::string word = ts.take();
    if (word == "MACRO") {
      if (auto st = parse_macro(ts, lib); !st) return st;
    } else if (word == "END") {
      // END LIBRARY finishes the file; END <name> closes an anonymous-ish
      // block whose statements were consumed one by one (UNITS, ...).
      if (!ts.at_end() && ts.peek() == "LIBRARY") {
        ts.take();
        break;
      }
      if (!ts.at_end()) ts.take();
    } else if (word == "LAYER" || word == "VIA" || word == "VIARULE" ||
               word == "SITE" || word == "SPACING") {
      // Skip the whole named block: LAYER <name> ... END <name>.
      if (ts.at_end()) return ts.error(word + " needs a name");
      const std::string name = ts.take();
      for (;;) {
        if (ts.at_end()) return ts.error("unterminated " + word + " '" + name + "'");
        if (ts.take() == "END") {
          if (!ts.at_end() && ts.peek() == name) {
            ts.take();
            break;
          }
        }
      }
    } else {
      // VERSION, NAMESCASESENSITIVE, UNITS values, etc.
      ts.skip_statement();
    }
  }
  return lib;
}

StatusOr<LefLibrary> read_lef_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_lef(buffer.str());
}

std::string input_pin_name(int index) {
  assert(index >= 0);
  std::string name;
  // A, B, ..., Z, A1, B1, ... — two-input cells dominate, so this stays "A"/"B".
  name += static_cast<char>('A' + index % 26);
  if (index >= 26) name += std::to_string(index / 26);
  return name;
}

std::string output_pin_name(int index, int num_outputs) {
  assert(index >= 0 && index < num_outputs);
  if (num_outputs == 1) return "Q";
  std::string name = "Q";
  name += std::to_string(index);
  return name;
}

std::string write_lef(const CellLibrary& library) {
  std::string out;
  out += "VERSION 5.8 ;\nNAMESCASESENSITIVE ON ;\nUNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\n";
  constexpr double kRowHeightUm = 60.0;
  for (const Cell& cell : library.cells()) {
    const double width = cell.area_um2 > 0.0 ? cell.area_um2 / kRowHeightUm : kRowHeightUm;
    out += "MACRO " + cell.name + "\n";
    out += "  CLASS CORE ;\n";
    out += str_format("  SIZE %.3f BY %.3f ;\n", width, kRowHeightUm);
    for (int i = 0; i < cell.num_inputs; ++i) {
      out += "  PIN " + input_pin_name(i) + "\n    DIRECTION INPUT ;\n    USE SIGNAL ;\n  END " +
             input_pin_name(i) + "\n";
    }
    if (cell.is_clocked()) {
      out += std::string("  PIN ") + kClockPinName +
             "\n    DIRECTION INPUT ;\n    USE CLOCK ;\n  END " + kClockPinName + "\n";
    }
    for (int i = 0; i < cell.num_outputs; ++i) {
      const std::string name = output_pin_name(i, cell.num_outputs);
      out += "  PIN " + name + "\n    DIRECTION OUTPUT ;\n    USE SIGNAL ;\n  END " + name + "\n";
    }
    out += "END " + cell.name + "\n\n";
  }
  out += "END LIBRARY\n";
  return out;
}

}  // namespace sfqpart::def
