#include "def/lexer.h"

#include <cassert>
#include <cctype>

#include "util/strings.h"

namespace sfqpart::def {
namespace {

bool is_punct(char c) {
  return c == '(' || c == ')' || c == ';' || c == '+' || c == '-';
}

// `-` and `+` start numbers as well as acting as item markers; treat them
// as punctuation only when not immediately followed by a digit or dot.
bool splits_here(const std::string& text, std::size_t i) {
  const char c = text[i];
  if (c == '(' || c == ')' || c == ';') return true;
  if (c == '+' || c == '-') {
    const char next = i + 1 < text.size() ? text[i + 1] : ' ';
    return !(std::isdigit(static_cast<unsigned char>(next)) || next == '.');
  }
  return false;
}

}  // namespace

TokenStream tokenize(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(Token{current, line});
      current.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      flush();
      ++line;
      continue;
    }
    if (c == '#') {  // line comment
      flush();
      while (i + 1 < text.size() && text[i + 1] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
      continue;
    }
    if (is_punct(c) && splits_here(text, i)) {
      flush();
      tokens.push_back(Token{std::string(1, c), line});
      continue;
    }
    current += c;
  }
  flush();
  return TokenStream(std::move(tokens));
}

const std::string& TokenStream::peek() const {
  static const std::string kEmpty;
  return at_end() ? kEmpty : tokens_[pos_].text;
}

int TokenStream::line() const {
  if (tokens_.empty()) return 0;
  return at_end() ? tokens_.back().line : tokens_[pos_].line;
}

std::string TokenStream::take() {
  assert(!at_end());
  return tokens_[pos_++].text;
}

bool TokenStream::accept(const std::string& expected) {
  if (!at_end() && tokens_[pos_].text == expected) {
    ++pos_;
    return true;
  }
  return false;
}

Status TokenStream::expect(const std::string& expected) {
  if (at_end()) return error("unexpected end of file, expected '" + expected + "'");
  if (tokens_[pos_].text != expected) {
    return error("expected '" + expected + "', got '" + tokens_[pos_].text + "'");
  }
  ++pos_;
  return Status::ok();
}

StatusOr<long long> TokenStream::take_int() {
  if (at_end()) return error("unexpected end of file, expected integer");
  const auto value = parse_int(tokens_[pos_].text);
  if (!value) return error("expected integer, got '" + tokens_[pos_].text + "'");
  ++pos_;
  return *value;
}

StatusOr<double> TokenStream::take_double() {
  if (at_end()) return error("unexpected end of file, expected number");
  const auto value = parse_double(tokens_[pos_].text);
  if (!value) return error("expected number, got '" + tokens_[pos_].text + "'");
  ++pos_;
  return *value;
}

void TokenStream::skip_statement() {
  while (!at_end()) {
    if (take() == ";") return;
  }
}

Status TokenStream::error(const std::string& message) const {
  return Status::error(str_format("line %d: %s", line(), message.c_str()));
}

}  // namespace sfqpart::def
