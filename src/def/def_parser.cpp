#include "def/def_parser.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "def/lexer.h"
#include "util/strings.h"

namespace sfqpart::def {
namespace {

PinDirection parse_direction(const std::string& text) {
  const std::string upper = to_upper(text);
  if (upper == "INPUT") return PinDirection::kInput;
  if (upper == "OUTPUT") return PinDirection::kOutput;
  if (upper == "INOUT") return PinDirection::kInout;
  return PinDirection::kUnknown;
}

Status parse_point(TokenStream& ts, DefPoint& point) {
  if (auto st = ts.expect("("); !st) return st;
  auto x = ts.take_int();
  if (!x) return x.status();
  auto y = ts.take_int();
  if (!y) return y.status();
  if (auto st = ts.expect(")"); !st) return st;
  point.x = *x;
  point.y = *y;
  return Status::ok();
}

// Skips the value tokens of an unknown `+ KEYWORD ...` property, stopping
// before the next `+` or the statement's `;`.
void skip_property(TokenStream& ts) {
  while (!ts.at_end() && ts.peek() != "+" && ts.peek() != ";") ts.take();
}

Status parse_component(TokenStream& ts, DefDesign& design) {
  if (ts.at_end()) return ts.error("component needs a name");
  DefComponent comp;
  comp.name = ts.take();
  if (ts.at_end()) return ts.error("component '" + comp.name + "' needs a macro");
  comp.macro = ts.take();
  while (ts.accept("+")) {
    if (ts.at_end()) return ts.error("dangling '+'");
    const std::string keyword = to_upper(ts.take());
    if (keyword == "PLACED" || keyword == "FIXED") {
      if (auto st = parse_point(ts, comp.location); !st) return st;
      if (ts.at_end()) return ts.error("placement needs an orientation");
      comp.orient = ts.take();
      comp.placed = true;
    } else if (keyword == "UNPLACED") {
      comp.placed = false;
    } else {
      skip_property(ts);
    }
  }
  if (auto st = ts.expect(";"); !st) return st;
  design.components.push_back(std::move(comp));
  return Status::ok();
}

Status parse_pin(TokenStream& ts, DefDesign& design) {
  if (ts.at_end()) return ts.error("pin needs a name");
  DefPin pin;
  pin.name = ts.take();
  while (ts.accept("+")) {
    if (ts.at_end()) return ts.error("dangling '+'");
    const std::string keyword = to_upper(ts.take());
    if (keyword == "NET") {
      if (ts.at_end()) return ts.error("NET needs a name");
      pin.net = ts.take();
    } else if (keyword == "DIRECTION") {
      if (ts.at_end()) return ts.error("DIRECTION needs a value");
      pin.direction = parse_direction(ts.take());
    } else {
      skip_property(ts);
    }
  }
  if (auto st = ts.expect(";"); !st) return st;
  design.pins.push_back(std::move(pin));
  return Status::ok();
}

Status parse_net(TokenStream& ts, DefDesign& design) {
  if (ts.at_end()) return ts.error("net needs a name");
  DefNet net;
  net.name = ts.take();
  while (!ts.at_end() && ts.peek() == "(") {
    ts.take();
    if (ts.at_end()) return ts.error("net term needs a component");
    DefNetConn conn;
    conn.component = ts.take();
    if (ts.at_end()) return ts.error("net term needs a pin");
    conn.pin = ts.take();
    if (auto st = ts.expect(")"); !st) return st;
    net.connections.push_back(std::move(conn));
  }
  while (ts.accept("+")) {
    if (ts.at_end()) return ts.error("dangling '+'");
    ts.take();  // keyword
    skip_property(ts);
  }
  if (auto st = ts.expect(";"); !st) return st;
  design.nets.push_back(std::move(net));
  return Status::ok();
}

// Parses a `COMPONENTS <n> ; - ... ; END COMPONENTS`-style section.
Status parse_section(TokenStream& ts, const std::string& section, DefDesign& design,
                     Status (*item_parser)(TokenStream&, DefDesign&)) {
  auto count = ts.take_int();
  if (!count) return count.status();
  if (auto st = ts.expect(";"); !st) return st;
  while (ts.accept("-")) {
    if (auto st = item_parser(ts, design); !st) return st;
  }
  if (auto st = ts.expect("END"); !st) return st;
  return ts.expect(section);
}

}  // namespace

const DefComponent* DefDesign::find_component(const std::string& comp_name) const {
  for (const DefComponent& comp : components) {
    if (comp.name == comp_name) return &comp;
  }
  return nullptr;
}

double DefDesign::die_area_mm2() const {
  const double w = static_cast<double>(die_hi.x - die_lo.x) / dbu_per_micron;
  const double h = static_cast<double>(die_hi.y - die_lo.y) / dbu_per_micron;
  return w * h * 1e-6;
}

StatusOr<DefDesign> parse_def(const std::string& text) {
  TokenStream ts = tokenize(text);
  DefDesign design;
  bool saw_design = false;
  while (!ts.at_end()) {
    const std::string word = to_upper(ts.take());
    if (word == "DESIGN") {
      if (ts.at_end()) return ts.error("DESIGN needs a name");
      design.name = ts.take();
      saw_design = true;
      if (auto st = ts.expect(";"); !st) return st;
    } else if (word == "UNITS") {
      if (auto st = ts.expect("DISTANCE"); !st) return st;
      if (auto st = ts.expect("MICRONS"); !st) return st;
      auto dbu = ts.take_int();
      if (!dbu) return dbu.status();
      if (*dbu <= 0) return ts.error("UNITS must be positive");
      design.dbu_per_micron = static_cast<int>(*dbu);
      if (auto st = ts.expect(";"); !st) return st;
    } else if (word == "DIEAREA") {
      if (auto st = parse_point(ts, design.die_lo); !st) return st;
      if (auto st = parse_point(ts, design.die_hi); !st) return st;
      if (auto st = ts.expect(";"); !st) return st;
    } else if (word == "COMPONENTS") {
      if (auto st = parse_section(ts, "COMPONENTS", design, parse_component); !st) return st;
    } else if (word == "PINS") {
      if (auto st = parse_section(ts, "PINS", design, parse_pin); !st) return st;
    } else if (word == "NETS") {
      if (auto st = parse_section(ts, "NETS", design, parse_net); !st) return st;
    } else if (word == "END") {
      if (!ts.at_end() && to_upper(ts.peek()) == "DESIGN") {
        ts.take();
        break;
      }
      return ts.error("unexpected END");
    } else {
      // VERSION, DIVIDERCHAR, BUSBITCHARS, TRACKS, ROW, ...
      ts.skip_statement();
    }
  }
  if (!saw_design) return Status::error("no DESIGN statement found");
  return design;
}

StatusOr<DefDesign> read_def_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_def(buffer.str());
}

// Inverts the standard pin naming convention for a library cell.
StatusOr<ResolvedPin> resolve_standard_pin(const Cell& cell,
                                           const std::string& pin_name) {
  ResolvedPin resolved;
  if (pin_name == kClockPinName) {
    if (!cell.is_clocked()) {
      return Status::error("cell " + cell.name + " has no clock pin");
    }
    resolved.is_clock = true;
    return resolved;
  }
  if (pin_name == "Q" && cell.num_outputs == 1) {
    resolved.is_output = true;
    return resolved;
  }
  if (pin_name.size() >= 2 && pin_name[0] == 'Q') {
    const auto index = parse_int(pin_name.substr(1));
    if (index && *index >= 0 && *index < cell.num_outputs) {
      resolved.is_output = true;
      resolved.index = static_cast<int>(*index);
      return resolved;
    }
  }
  if (!pin_name.empty() && pin_name[0] >= 'A' && pin_name[0] <= 'Z') {
    int index = pin_name[0] - 'A';
    if (pin_name.size() > 1) {
      const auto suffix = parse_int(pin_name.substr(1));
      if (!suffix) return Status::error("unknown pin name: " + pin_name);
      index += 26 * static_cast<int>(*suffix);
    }
    if (index < cell.num_inputs) {
      resolved.index = index;
      return resolved;
    }
  }
  return Status::error("cell " + cell.name + " has no pin '" + pin_name + "'");
}

StatusOr<Netlist> def_to_netlist(const DefDesign& design, const CellLibrary& library) {
  Netlist netlist(&library, design.name);

  std::unordered_map<std::string, GateId> comp_gate;
  comp_gate.reserve(design.components.size());
  for (const DefComponent& comp : design.components) {
    const auto cell = library.find(comp.macro);
    if (!cell) {
      return Status::error("component '" + comp.name + "': unknown macro '" +
                           comp.macro + "'");
    }
    comp_gate.emplace(comp.name, netlist.add_gate(comp.name, *cell));
  }

  std::unordered_map<std::string, GateId> pin_gate;
  for (const DefPin& pin : design.pins) {
    CellKind kind;
    switch (pin.direction) {
      case PinDirection::kInput:
        kind = CellKind::kInput;
        break;
      case PinDirection::kOutput:
        kind = CellKind::kOutput;
        break;
      default:
        return Status::error("pin '" + pin.name + "': unsupported direction");
    }
    pin_gate.emplace(pin.name, netlist.add_gate_of_kind("pin:" + pin.name, kind));
  }

  for (const DefNet& net : design.nets) {
    struct Endpoint {
      GateId gate;
      ResolvedPin pin;
    };
    Endpoint driver{kInvalidGate, {}};
    std::vector<Endpoint> sinks;
    for (const DefNetConn& conn : net.connections) {
      GateId gate;
      ResolvedPin resolved;
      if (conn.is_top_pin()) {
        auto it = pin_gate.find(conn.pin);
        if (it == pin_gate.end()) {
          return Status::error("net '" + net.name + "': unknown top pin '" +
                               conn.pin + "'");
        }
        gate = it->second;
        // An INPUT chip pin drives the net; an OUTPUT chip pin sinks it.
        resolved.is_output = netlist.cell_of(gate).kind == CellKind::kInput;
      } else {
        auto it = comp_gate.find(conn.component);
        if (it == comp_gate.end()) {
          return Status::error("net '" + net.name + "': unknown component '" +
                               conn.component + "'");
        }
        gate = it->second;
        auto r = resolve_standard_pin(netlist.cell_of(gate), conn.pin);
        if (!r) return Status::error("net '" + net.name + "': " + r.status().message());
        resolved = *r;
      }
      if (resolved.is_output) {
        if (driver.gate != kInvalidGate) {
          return Status::error("net '" + net.name + "': multiple drivers");
        }
        driver = Endpoint{gate, resolved};
      } else {
        sinks.push_back(Endpoint{gate, resolved});
      }
    }
    if (driver.gate == kInvalidGate) {
      return Status::error("net '" + net.name + "': no driver");
    }
    for (const Endpoint& sink : sinks) {
      if (sink.pin.is_clock) {
        netlist.connect_clock(driver.gate, driver.pin.index, sink.gate);
      } else {
        netlist.connect(driver.gate, driver.pin.index, sink.gate, sink.pin.index);
      }
    }
  }
  return netlist;
}

}  // namespace sfqpart::def
