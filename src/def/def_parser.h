// DEF (Design Exchange Format) subset reader.
//
// Reads what the partitioning flow needs from a post-P&R SFQ design (the
// paper's benchmark format, reference [22]): DESIGN, UNITS, DIEAREA,
// COMPONENTS with placement, PINS, and NETS connectivity. Routing sections
// (SPECIALNETS wiring, TRACKS, GCELLGRID, VIAS) are skipped.
//
// def_to_netlist() converts a parsed design into a Netlist against a cell
// library, using the standard pin naming convention of lef_parser.h.
#pragma once

#include <string>
#include <vector>

#include "def/lef_parser.h"
#include "netlist/netlist.h"
#include "util/status.h"

namespace sfqpart::def {

struct DefPoint {
  long long x = 0;  // database units
  long long y = 0;

  bool operator==(const DefPoint&) const = default;
};

struct DefComponent {
  std::string name;
  std::string macro;
  bool placed = false;
  DefPoint location;
  std::string orient = "N";
};

struct DefPin {
  std::string name;
  std::string net;
  PinDirection direction = PinDirection::kUnknown;
};

struct DefNetConn {
  std::string component;  // "PIN" for a top-level pin connection
  std::string pin;

  bool is_top_pin() const { return component == "PIN"; }
};

struct DefNet {
  std::string name;
  std::vector<DefNetConn> connections;
};

struct DefDesign {
  std::string name;
  int dbu_per_micron = 1000;
  DefPoint die_lo;
  DefPoint die_hi;
  std::vector<DefComponent> components;
  std::vector<DefPin> pins;
  std::vector<DefNet> nets;

  const DefComponent* find_component(const std::string& name) const;
  double die_area_mm2() const;
};

StatusOr<DefDesign> parse_def(const std::string& text);
StatusOr<DefDesign> read_def_file(const std::string& path);

// Inverse of the standard pin naming convention (lef_parser.h): resolves a
// pin name on a cell to its role and index. Shared by the DEF and Verilog
// netlist builders.
struct ResolvedPin {
  bool is_output = false;
  bool is_clock = false;
  int index = 0;
};
StatusOr<ResolvedPin> resolve_standard_pin(const Cell& cell,
                                           const std::string& pin_name);

// Builds a Netlist from a DEF design. Every component macro must exist in
// `library`; net terms must reference known pins (per the standard naming
// convention). Top-level pins become kInput/kOutput interface gates named
// "pin:<name>". Clock nets (all sinks on CLK pins) are wired with
// connect_clock.
StatusOr<Netlist> def_to_netlist(const DefDesign& design, const CellLibrary& library);

}  // namespace sfqpart::def
