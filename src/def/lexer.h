// Shared tokenizer for the LEF/DEF readers.
//
// LEF/DEF are whitespace-separated token streams with `#` line comments and
// statements terminated by `;`. The lexer also splits the punctuation
// characters ( ) - + ; into standalone tokens even when glued to a word,
// and tracks line numbers for error messages.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace sfqpart::def {

struct Token {
  std::string text;
  int line = 0;
};

class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  bool at_end() const { return pos_ >= tokens_.size(); }
  // Current token text; empty string at end.
  const std::string& peek() const;
  int line() const;

  // Consumes and returns the current token. Asserts if at end.
  std::string take();

  // Consumes the current token if it equals `expected`; returns whether it did.
  bool accept(const std::string& expected);

  // Consumes the current token, requiring it to equal `expected`.
  Status expect(const std::string& expected);

  // Consumes one token and parses it as an integer / double.
  StatusOr<long long> take_int();
  StatusOr<double> take_double();

  // Skips tokens up to and including the next `;`.
  void skip_statement();

  // Error with current line context.
  Status error(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// Tokenizes LEF/DEF text.
TokenStream tokenize(const std::string& text);

}  // namespace sfqpart::def
