// Classic K-way partitioning baseline (Fiduccia-Mattheyses style).
//
// The paper argues (section IV-A) that ground-plane partitioning "can not
// be formulated as a classic K-way partitioning problem": the classic
// objective counts *cut* connections and knows nothing about how many
// planes a cut crosses. This baseline implements exactly that classic
// formulation -- pass-based single-gate moves maximizing cut-count gain
// under a bias-balance constraint, with gate locking and best-prefix
// rollback -- so the benches can quantify the claim: FM matches or beats
// the optimizer on cut count while losing badly on distance-weighted cost.
#pragma once

#include <cstdint>

#include "core/partition.h"

namespace sfqpart {

namespace obs {
class SolverObserver;
}  // namespace obs

struct FmOptions {
  int max_passes = 10;
  // Allowed per-plane bias deviation from the ideal B_cir/K.
  double balance_tolerance = 0.10;
  std::uint64_t seed = 1;
  // Structured observability hook (not owned; may be null). Emits one
  // IterationEvent per FM pass (restart 0, cost = cut count after the
  // pass's best prefix), counters moves_tried / moves_accepted, an "fm"
  // stage timer, and the run lifecycle under engine = "fm_kway".
  obs::SolverObserver* observer = nullptr;
  // Per-gate fixed planes (compact indices in ascending GateId order,
  // -1 = free; not owned). Fixed gates start on their pinned plane and
  // stay locked in every pass. Null = unconstrained (bit-identical to
  // the pre-constraint baseline).
  const std::vector<int>* fixed = nullptr;
  // Warm-start labels (compact indices, -1 = unassigned; not owned).
  // Assigned entries replace the random start before the first pass
  // (fixed pins still win). Null = cold, bit-identical to the pre-warm
  // baseline.
  const std::vector<int>* warm = nullptr;
};

struct FmResult {
  Partition partition;
  int passes = 0;
  int initial_cut = 0;
  int final_cut = 0;
};

FmResult fm_kway_partition(const Netlist& netlist, int num_planes,
                           const FmOptions& options = {});

}  // namespace sfqpart
