// Layered (topological) baseline.
//
// SFQ circuits are gate-level pipelines, so slicing the topological order
// into K contiguous chunks of equal bias current keeps most connections
// within or between adjacent chunks. This is the "obvious" constructive
// heuristic a designer would try before the paper's optimizer; the benches
// compare both.
#pragma once

#include <vector>

#include "core/partition.h"

namespace sfqpart {

struct LayeredOptions {
  // Balance bias current (true) or gate area (false) across chunks.
  bool balance_bias = true;
  // Per-gate fixed planes indexed by netlist GateId (-1 = free; not
  // owned). Fixed gates override their band assignment after slicing.
  // Null = unconstrained (identical to the pre-constraint heuristic).
  const std::vector<int>* fixed_of_gate = nullptr;
};

Partition layered_partition(const Netlist& netlist, int num_planes,
                            const LayeredOptions& options = {});

}  // namespace sfqpart
