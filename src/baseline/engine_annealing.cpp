// "annealing" engine: simulated annealing on the discrete weighted
// objective (baseline/annealing.h).
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/annealing.h"
#include "core/engine_adapter.h"

namespace sfqpart::engine_detail {

namespace {

class AnnealingAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "annealing"; }
  const char* description() const override {
    return "simulated annealing of the discrete weighted F1..F3 objective "
           "with single-gate moves under geometric cooling";
  }
  std::vector<OptionSpec> describe_options() const override {
    std::vector<OptionSpec> specs = {planes_spec(), seed_spec(),
                                     certify_spec()};
    for (OptionSpec& spec : weight_specs()) specs.push_back(std::move(spec));
    return specs;
  }

 protected:
  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    AnnealingOptions options;
    options.weights = context.weights;
    options.seed = context.seed;
    options.observer = context.observer;
    options.fixed = constraints.compact_or_null();
    options.warm = warm;
    AnnealingResult result =
        anneal_partition(netlist, context.num_planes, options);
    counters.emplace_back("steps", result.steps);
    counters.emplace_back("moves_tried",
                          static_cast<double>(result.moves_tried));
    counters.emplace_back("moves_accepted",
                          static_cast<double>(result.moves_accepted));
    return std::move(result.partition);
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_annealing_engine() {
  return std::make_unique<AnnealingAdapter>();
}

}  // namespace sfqpart::engine_detail
