// Simulated-annealing partitioner.
//
// Optimizes the *discrete* weighted cost (the same F1..F3 objective the
// gradient-descent relaxation targets) directly with single-gate moves
// under a geometric cooling schedule. Serves two roles: an independent
// reference optimizer to sanity-check the relaxation's solution quality,
// and the natural "how far can the objective be pushed" upper baseline
// for ablation A2/A3.
#pragma once

#include <cstdint>

#include "core/cost_model.h"
#include "core/partition.h"

namespace sfqpart {

namespace obs {
class SolverObserver;
}  // namespace obs

struct AnnealingOptions {
  CostWeights weights;
  std::uint64_t seed = 1;
  // Moves per temperature step = moves_per_gate * G.
  double moves_per_gate = 4.0;
  double initial_acceptance = 0.5;  // calibrates the starting temperature
  double cooling = 0.9;             // geometric factor per step
  int temperature_steps = 40;
  // Stop early after this many consecutive steps without improvement.
  int patience = 8;
  // Structured observability hook (not owned; may be null). Emits one
  // IterationEvent per temperature step (restart 0, cost = running
  // discrete total), counters moves_tried / moves_accepted, an "anneal"
  // stage timer, and the run lifecycle under engine = "annealing".
  obs::SolverObserver* observer = nullptr;
  // Per-gate fixed planes (compact problem indices, -1 = free; not
  // owned). Fixed gates start on their pinned plane and are never
  // proposed as moves. Null = unconstrained (bit-identical to the
  // pre-constraint annealer).
  const std::vector<int>* fixed = nullptr;
  // Warm-start labels (compact indices, -1 = unassigned; not owned).
  // Assigned entries replace the random start before annealing begins
  // (fixed pins still win). Null = cold, bit-identical to the pre-warm
  // annealer.
  const std::vector<int>* warm = nullptr;
};

struct AnnealingResult {
  Partition partition;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  long long moves_tried = 0;
  long long moves_accepted = 0;
  int steps = 0;
};

AnnealingResult anneal_partition(const Netlist& netlist, int num_planes,
                                 const AnnealingOptions& options = {});

}  // namespace sfqpart
