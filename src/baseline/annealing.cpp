#include "baseline/annealing.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "baseline/random_partition.h"
#include "core/move_eval.h"
#include "obs/trace_sink.h"
#include "util/rng.h"

namespace sfqpart {

AnnealingResult anneal_partition(const Netlist& netlist, int num_planes,
                                 const AnnealingOptions& options) {
  assert(num_planes >= 2);
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, num_planes);
  const CostModel model(problem, options.weights);
  Rng rng(options.seed);

  obs::TraceSink sink(options.observer);
  if (sink.enabled()) {
    obs::RunInfo info;
    info.engine = "annealing";
    info.num_planes = num_planes;
    info.seed = options.seed;
    info.weights = options.weights;
    info.max_iterations = options.temperature_steps;
    info.problem_gates = problem.num_gates;
    info.problem_edges = static_cast<long long>(problem.edges.size());
    sink.run_start(info);
    sink.restart_start({0});
  }
  obs::ScopedTimer anneal_timer(&sink, "anneal", 0);

  // Random balanced start (as the gradient method's random init).
  const Partition start = random_partition(netlist, num_planes, options.seed);
  std::vector<int> labels;
  labels.reserve(static_cast<std::size_t>(problem.num_gates));
  for (const GateId g : problem.gate_ids) {
    labels.push_back(start.plane(g));
  }
  if (options.warm != nullptr) {
    // Warm seed replaces the random start where assigned; the fixed
    // override below still wins on pinned gates.
    const std::vector<int>& warm = *options.warm;
    for (std::size_t i = 0; i < warm.size(); ++i) {
      if (warm[i] >= 0) labels[i] = warm[i];
    }
  }
  if (options.fixed != nullptr) {
    const std::vector<int>& fixed = *options.fixed;
    for (std::size_t i = 0; i < fixed.size(); ++i) {
      if (fixed[i] >= 0) labels[i] = fixed[i];
    }
  }
  MoveEvaluator eval(model, std::move(labels));

  AnnealingResult result;
  result.initial_cost = eval.current_cost();

  // Calibrate the starting temperature from the mean uphill delta so the
  // requested initial acceptance rate holds regardless of circuit scale.
  double uphill_sum = 0.0;
  int uphill_count = 0;
  for (int probe = 0; probe < 200; ++probe) {
    const int gate = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(problem.num_gates)));
    const int target = rng.uniform_int(0, num_planes - 1);
    const double delta = eval.delta(gate, target);
    if (delta > 0.0) {
      uphill_sum += delta;
      ++uphill_count;
    }
  }
  const double mean_uphill = uphill_count > 0 ? uphill_sum / uphill_count : 1e-6;
  double temperature = -mean_uphill / std::log(options.initial_acceptance);

  const long long moves_per_step = std::max<long long>(
      64, static_cast<long long>(options.moves_per_gate * problem.num_gates));

  std::vector<int> best_labels = eval.labels();
  double best_cost = result.initial_cost;
  double running_cost = result.initial_cost;
  int steps_without_improvement = 0;

  for (int step = 0; step < options.temperature_steps; ++step) {
    result.steps = step + 1;
    for (long long move = 0; move < moves_per_step; ++move) {
      const int gate = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(problem.num_gates)));
      if (options.fixed != nullptr &&
          (*options.fixed)[static_cast<std::size_t>(gate)] >= 0) {
        continue;
      }
      int target = rng.uniform_int(0, num_planes - 1);
      if (target == eval.label(gate)) continue;
      ++result.moves_tried;
      const double delta = eval.delta(gate, target);
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        eval.apply(gate, target);
        running_cost += delta;
        ++result.moves_accepted;
      }
    }
    if (sink.enabled()) {
      sink.iteration({0, step, CostTerms{}, running_cost});
    }
    if (running_cost < best_cost - 1e-12) {
      best_cost = running_cost;
      best_labels = eval.labels();
      steps_without_improvement = 0;
    } else if (++steps_without_improvement >= options.patience) {
      break;
    }
    temperature *= options.cooling;
  }

  result.partition = problem.to_partition(best_labels, netlist.num_gates());
  // Recompute exactly: the running sum accumulates float error over many
  // moves.
  result.final_cost =
      model.evaluate_discrete(best_labels).total(options.weights);
  if (sink.enabled()) {
    const CostTerms terms = model.evaluate_discrete(best_labels);
    const bool early_stop = result.steps < options.temperature_steps;
    sink.counter("moves_tried", result.moves_tried);
    sink.counter("moves_accepted", result.moves_accepted);
    sink.restart_end({0, CostTerms{}, terms, result.final_cost, result.steps,
                      early_stop});
    sink.run_end({0, result.final_cost, result.steps, early_stop});
  }
  return result;
}

}  // namespace sfqpart
