#include "baseline/fm_kway.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "baseline/random_partition.h"
#include "metrics/partition_metrics.h"
#include "obs/trace_sink.h"
#include "util/rng.h"

namespace sfqpart {

FmResult fm_kway_partition(const Netlist& netlist, int num_planes,
                           const FmOptions& options) {
  assert(num_planes >= 2);

  // Compact the problem: partitionable gates and their adjacency.
  std::vector<int> compact(static_cast<std::size_t>(netlist.num_gates()), -1);
  std::vector<GateId> gate_ids;
  std::vector<double> bias;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    compact[static_cast<std::size_t>(g)] = static_cast<int>(gate_ids.size());
    gate_ids.push_back(g);
    bias.push_back(netlist.bias_of(g));
  }
  const int num_gates = static_cast<int>(gate_ids.size());
  std::vector<std::vector<int>> neighbors(static_cast<std::size_t>(num_gates));
  for (const Connection& edge : netlist.unique_edges()) {
    const int a = compact[static_cast<std::size_t>(edge.from)];
    const int b = compact[static_cast<std::size_t>(edge.to)];
    neighbors[static_cast<std::size_t>(a)].push_back(b);
    neighbors[static_cast<std::size_t>(b)].push_back(a);
  }

  FmResult result;
  result.partition = random_partition(netlist, num_planes, options.seed);
  if (options.warm != nullptr) {
    // Warm seed replaces the random start where assigned; the fixed
    // override below still wins on pinned gates.
    const std::vector<int>& warm = *options.warm;
    for (int i = 0; i < num_gates; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (warm[ui] >= 0) {
        result.partition.plane_of[static_cast<std::size_t>(gate_ids[ui])] =
            warm[ui];
      }
    }
  }
  if (options.fixed != nullptr) {
    // Constrained start: pinned gates override the random assignment, so
    // the initial cut below already describes a feasible partition.
    const std::vector<int>& fixed = *options.fixed;
    for (int i = 0; i < num_gates; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (fixed[ui] >= 0) {
        result.partition
            .plane_of[static_cast<std::size_t>(gate_ids[ui])] = fixed[ui];
      }
    }
  }
  result.initial_cut = cut_count(netlist, result.partition);

  obs::TraceSink sink(options.observer);
  if (sink.enabled()) {
    obs::RunInfo info;
    info.engine = "fm_kway";
    info.num_planes = num_planes;
    info.seed = options.seed;
    info.max_iterations = options.max_passes;
    info.problem_gates = num_gates;
    info.problem_edges = static_cast<long long>(netlist.unique_edges().size());
    sink.run_start(info);
    sink.restart_start({0});
  }
  obs::ScopedTimer fm_timer(&sink, "fm", 0);
  long long moves_tried = 0;
  long long moves_kept = 0;
  int current_cut = result.initial_cut;

  std::vector<int> label(static_cast<std::size_t>(num_gates));
  std::vector<double> plane_bias(static_cast<std::size_t>(num_planes), 0.0);
  for (int i = 0; i < num_gates; ++i) {
    label[static_cast<std::size_t>(i)] =
        result.partition.plane(gate_ids[static_cast<std::size_t>(i)]);
    plane_bias[static_cast<std::size_t>(label[static_cast<std::size_t>(i)])] +=
        bias[static_cast<std::size_t>(i)];
  }
  const double total_bias = std::accumulate(bias.begin(), bias.end(), 0.0);
  const double ideal = total_bias / num_planes;
  const double max_bias = ideal * (1.0 + options.balance_tolerance);
  const double min_bias = ideal * (1.0 - options.balance_tolerance);

  // Cut-count gain of moving gate i to plane t: neighbors on t become
  // uncut, neighbors on the current plane become cut.
  auto gain_of = [&](int i, int t) {
    const auto ui = static_cast<std::size_t>(i);
    int gain = 0;
    for (const int j : neighbors[ui]) {
      const int lj = label[static_cast<std::size_t>(j)];
      if (lj == t) ++gain;
      if (lj == label[ui]) --gain;
    }
    return gain;
  };
  auto feasible = [&](int i, int t) {
    const auto ui = static_cast<std::size_t>(i);
    const int s = label[ui];
    if (s == t) return false;
    return plane_bias[static_cast<std::size_t>(t)] + bias[ui] <= max_bias &&
           plane_bias[static_cast<std::size_t>(s)] - bias[ui] >= min_bias;
  };

  Rng rng(options.seed ^ 0x5bd1e995ULL);
  std::vector<int> order(static_cast<std::size_t>(num_gates));
  std::iota(order.begin(), order.end(), 0);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    result.passes = pass + 1;
    rng.shuffle(order);
    std::vector<bool> locked(static_cast<std::size_t>(num_gates), false);
    if (options.fixed != nullptr) {
      for (int i = 0; i < num_gates; ++i) {
        if ((*options.fixed)[static_cast<std::size_t>(i)] >= 0) {
          locked[static_cast<std::size_t>(i)] = true;
        }
      }
    }

    // Move log for best-prefix rollback.
    struct Move {
      int gate;
      int from;
      int to;
    };
    std::vector<Move> moves;
    int cumulative_gain = 0;
    int best_gain = 0;
    std::size_t best_prefix = 0;

    // Greedy FM pass: repeatedly apply the best feasible move among the
    // unlocked gates (scanning in shuffled order), even when its gain is
    // negative -- hill climbing out of local minima is the point of FM.
    for (int step = 0; step < num_gates; ++step) {
      int best_gate = -1;
      int best_target = -1;
      int step_gain = -1 << 30;
      for (const int i : order) {
        if (locked[static_cast<std::size_t>(i)]) continue;
        for (int t = 0; t < num_planes; ++t) {
          if (!feasible(i, t)) continue;
          const int gain = gain_of(i, t);
          if (gain > step_gain) {
            step_gain = gain;
            best_gate = i;
            best_target = t;
          }
        }
      }
      if (best_gate < 0) break;  // nothing movable
      const auto ug = static_cast<std::size_t>(best_gate);
      const int from = label[ug];
      plane_bias[static_cast<std::size_t>(from)] -= bias[ug];
      plane_bias[static_cast<std::size_t>(best_target)] += bias[ug];
      label[ug] = best_target;
      locked[ug] = true;
      moves.push_back(Move{best_gate, from, best_target});
      cumulative_gain += step_gain;
      if (cumulative_gain > best_gain) {
        best_gain = cumulative_gain;
        best_prefix = moves.size();
      }
      // Deep negative streaks will not recover; stop the pass early.
      if (cumulative_gain < best_gain - 50) break;
    }

    // Roll back past the best prefix.
    for (std::size_t m = moves.size(); m > best_prefix; --m) {
      const Move& move = moves[m - 1];
      const auto ug = static_cast<std::size_t>(move.gate);
      plane_bias[static_cast<std::size_t>(move.to)] -= bias[ug];
      plane_bias[static_cast<std::size_t>(move.from)] += bias[ug];
      label[ug] = move.from;
    }
    moves_tried += static_cast<long long>(moves.size());
    if (best_gain > 0) {
      moves_kept += static_cast<long long>(best_prefix);
      current_cut -= best_gain;
    }
    if (sink.enabled()) {
      sink.iteration({0, pass, CostTerms{}, static_cast<double>(current_cut)});
    }
    if (best_gain <= 0) break;  // converged
  }

  for (int i = 0; i < num_gates; ++i) {
    result.partition.plane_of[static_cast<std::size_t>(gate_ids[static_cast<std::size_t>(i)])] =
        label[static_cast<std::size_t>(i)];
  }
  result.final_cut = cut_count(netlist, result.partition);
  if (sink.enabled()) {
    const bool converged = result.passes < options.max_passes;
    sink.counter("moves_tried", moves_tried);
    sink.counter("moves_accepted", moves_kept);
    sink.restart_end({0, CostTerms{}, CostTerms{},
                      static_cast<double>(result.final_cut), result.passes,
                      converged});
    sink.run_end({0, static_cast<double>(result.final_cut), result.passes,
                  converged});
  }
  return result;
}

}  // namespace sfqpart
