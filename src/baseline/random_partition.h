// Random balanced baseline: shuffled round-robin assignment.
//
// Lower bound on partition quality: expected d<=1 share is about
// (3K-2)/K^2 regardless of circuit structure. Benches use it to show how
// much structure the gradient-descent partitioner actually exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.h"

namespace sfqpart {

// fixed_of_gate (optional, not owned): per-gate fixed planes indexed by
// netlist GateId, -1 = free. Fixed gates take their pinned plane; free
// gates keep the shuffled round-robin assignment, so the null case is
// bit-identical to the unconstrained baseline.
Partition random_partition(const Netlist& netlist, int num_planes,
                           std::uint64_t seed = 1,
                           const std::vector<int>* fixed_of_gate = nullptr);

}  // namespace sfqpart
