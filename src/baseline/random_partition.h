// Random balanced baseline: shuffled round-robin assignment.
//
// Lower bound on partition quality: expected d<=1 share is about
// (3K-2)/K^2 regardless of circuit structure. Benches use it to show how
// much structure the gradient-descent partitioner actually exploits.
#pragma once

#include <cstdint>

#include "core/partition.h"

namespace sfqpart {

Partition random_partition(const Netlist& netlist, int num_planes,
                           std::uint64_t seed = 1);

}  // namespace sfqpart
