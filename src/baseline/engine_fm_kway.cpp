// "fm_kway" engine: the classic Fiduccia-Mattheyses K-way min-cut
// baseline (baseline/fm_kway.h) — the formulation the paper's section
// IV-A argues cannot capture plane-distance cost.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/fm_kway.h"
#include "core/engine_adapter.h"

namespace sfqpart::engine_detail {

namespace {

class FmKwayAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "fm_kway"; }
  const char* description() const override {
    return "classic Fiduccia-Mattheyses K-way min-cut (cut-count objective, "
           "bias-balance constraint)";
  }
  std::vector<OptionSpec> describe_options() const override {
    return {planes_spec(), seed_spec(), certify_spec()};
  }

 protected:
  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    FmOptions options;
    options.seed = context.seed;
    options.observer = context.observer;
    options.fixed = constraints.compact_or_null();
    options.warm = warm;
    FmResult result = fm_kway_partition(netlist, context.num_planes, options);
    counters.emplace_back("passes", result.passes);
    counters.emplace_back("initial_cut", result.initial_cut);
    counters.emplace_back("final_cut", result.final_cut);
    return std::move(result.partition);
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_fm_kway_engine() {
  return std::make_unique<FmKwayAdapter>();
}

}  // namespace sfqpart::engine_detail
