#include "baseline/layered_partition.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sfq/balance.h"

namespace sfqpart {

Partition layered_partition(const Netlist& netlist, int num_planes,
                            const LayeredOptions& options) {
  assert(num_planes >= 1);

  // Order gates by pipeline stage so each chunk is a band of consecutive
  // stages; ties break by gate id for determinism.
  const std::vector<int> depth = stage_depths(netlist);
  std::vector<GateId> gates;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) gates.push_back(g);
  }
  std::stable_sort(gates.begin(), gates.end(), [&](GateId a, GateId b) {
    return depth[static_cast<std::size_t>(a)] < depth[static_cast<std::size_t>(b)];
  });

  auto weight = [&](GateId g) {
    return options.balance_bias ? netlist.bias_of(g) : netlist.area_of(g);
  };
  double total = 0.0;
  for (const GateId g : gates) total += weight(g);

  Partition partition;
  partition.num_planes = num_planes;
  partition.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                            kUnassignedPlane);

  // Equal-weight cumulative thresholds: gate midpoints falling past
  // total*(p+1)/K advance to the next plane.
  int plane = 0;
  double cum = 0.0;
  for (const GateId g : gates) {
    const double w = weight(g);
    while (plane < num_planes - 1 &&
           cum + w / 2.0 > total * (plane + 1) / num_planes) {
      ++plane;
    }
    partition.plane_of[static_cast<std::size_t>(g)] = plane;
    cum += w;
  }
  if (options.fixed_of_gate != nullptr) {
    // Pins override the band slicing; bands around them stay untouched so
    // the deterministic order of the free gates is preserved.
    const std::vector<int>& fixed = *options.fixed_of_gate;
    for (const GateId g : gates) {
      const int p = fixed[static_cast<std::size_t>(g)];
      if (p >= 0) partition.plane_of[static_cast<std::size_t>(g)] = p;
    }
  }
  return partition;
}

}  // namespace sfqpart
