// "layered" engine: topological slicing into K equal-bias bands
// (baseline/layered_partition.h). Deterministic and seedless; the adapter
// narrates the run lifecycle since the constructive heuristic emits no
// events of its own.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/layered_partition.h"
#include "core/engine_adapter.h"

namespace sfqpart::engine_detail {

namespace {

class LayeredAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "layered"; }
  const char* description() const override {
    return "topological order sliced into K contiguous equal-bias bands "
           "(deterministic and seedless)";
  }
  std::vector<OptionSpec> describe_options() const override {
    return {planes_spec(), certify_spec()};
  }

 protected:
  bool self_observing() const override { return false; }

  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    (void)counters;
    LayeredOptions options;
    options.fixed_of_gate = constraints.gate_or_null();
    Partition partition = layered_partition(netlist, context.num_planes, options);
    // A constructive heuristic has no search to seed: the warm labels
    // simply replace its output where assigned (pins are already folded
    // into `warm`, so the overwrite cannot violate a constraint).
    apply_warm_overrides(netlist, warm, partition);
    return partition;
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_layered_engine() {
  return std::make_unique<LayeredAdapter>();
}

}  // namespace sfqpart::engine_detail
