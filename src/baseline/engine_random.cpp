// "random" engine: shuffled round-robin balanced assignment
// (baseline/random_partition.h), the lower baseline. The adapter narrates
// the run lifecycle since the constructive heuristic emits no events of
// its own.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/random_partition.h"
#include "core/engine_adapter.h"

namespace sfqpart::engine_detail {

namespace {

class RandomAdapter final : public EngineAdapter {
 public:
  const char* name() const override { return "random"; }
  const char* description() const override {
    return "shuffled round-robin balanced assignment (lower baseline)";
  }
  std::vector<OptionSpec> describe_options() const override {
    return {planes_spec(), seed_spec(), certify_spec()};
  }

 protected:
  bool self_observing() const override { return false; }

  StatusOr<Partition> solve(
      const Netlist& netlist, const EngineContext& context,
      const CompiledConstraints& constraints, const std::vector<int>* warm,
      std::vector<std::pair<std::string, double>>& counters) const override {
    (void)counters;
    Partition partition = random_partition(netlist, context.num_planes,
                                           context.seed,
                                           constraints.gate_or_null());
    // A constructive heuristic has no search to seed: the warm labels
    // simply replace its output where assigned (pins are already folded
    // into `warm`, so the overwrite cannot violate a constraint).
    apply_warm_overrides(netlist, warm, partition);
    return partition;
  }
};

}  // namespace

std::unique_ptr<PartitionEngine> make_random_engine() {
  return std::make_unique<RandomAdapter>();
}

}  // namespace sfqpart::engine_detail
