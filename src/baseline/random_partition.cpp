#include "baseline/random_partition.h"

#include <cassert>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace sfqpart {

Partition random_partition(const Netlist& netlist, int num_planes, std::uint64_t seed) {
  assert(num_planes >= 1);
  Rng rng(seed);

  std::vector<GateId> gates;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) gates.push_back(g);
  }
  rng.shuffle(gates);

  Partition partition;
  partition.num_planes = num_planes;
  partition.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                            kUnassignedPlane);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    partition.plane_of[static_cast<std::size_t>(gates[i])] =
        static_cast<int>(i % static_cast<std::size_t>(num_planes));
  }
  return partition;
}

}  // namespace sfqpart
