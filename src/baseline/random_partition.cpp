#include "baseline/random_partition.h"

#include <cassert>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace sfqpart {

Partition random_partition(const Netlist& netlist, int num_planes,
                           std::uint64_t seed,
                           const std::vector<int>* fixed_of_gate) {
  assert(num_planes >= 1);
  Rng rng(seed);

  std::vector<GateId> gates;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) gates.push_back(g);
  }
  rng.shuffle(gates);

  Partition partition;
  partition.num_planes = num_planes;
  partition.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                            kUnassignedPlane);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const int fixed =
        fixed_of_gate != nullptr
            ? (*fixed_of_gate)[static_cast<std::size_t>(gates[i])]
            : -1;
    partition.plane_of[static_cast<std::size_t>(gates[i])] =
        fixed >= 0 ? fixed
                   : static_cast<int>(i % static_cast<std::size_t>(num_planes));
  }
  return partition;
}

}  // namespace sfqpart
