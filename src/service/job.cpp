#include "service/job.h"

#include "util/strings.h"

namespace sfqpart::service {

namespace {

// Requires `key` to be absent or a string; empties on absence.
Status read_string_field(const Json& doc, const char* key, std::string& out) {
  const Json* field = doc.find(key);
  if (field == nullptr) {
    out.clear();
    return Status::ok();
  }
  if (!field->is_string()) {
    return Status::invalid_argument(
        str_format("job field '%s' must be a string", key));
  }
  out = field->as_string();
  return Status::ok();
}

}  // namespace

bool is_admin_command(const Json& doc) {
  return doc.is_object() && doc.find("cmd") != nullptr;
}

StatusOr<JobRequest> parse_job(const Json& doc) {
  if (!doc.is_object()) {
    return Status::invalid_argument("job must be a JSON object");
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return Status::invalid_argument(
        str_format("job is missing the schema tag (expected \"%s\")",
                   kJobSchema));
  }
  if (schema->as_string() != kJobSchema) {
    return Status::invalid_argument(
        str_format("unsupported job schema '%s' (this daemon speaks \"%s\")",
                   schema->as_string().c_str(), kJobSchema));
  }

  JobRequest job;
  if (Status s = read_string_field(doc, "id", job.id); !s) return s;
  if (Status s = read_string_field(doc, "circuit", job.circuit); !s) return s;
  if (Status s = read_string_field(doc, "netlist_file", job.netlist_file); !s) {
    return s;
  }
  if (Status s = read_string_field(doc, "netlist_verilog", job.netlist_verilog);
      !s) {
    return s;
  }

  const int sources = (job.circuit.empty() ? 0 : 1) +
                      (job.netlist_file.empty() ? 0 : 1) +
                      (job.netlist_verilog.empty() ? 0 : 1);
  if (sources != 1) {
    return Status::invalid_argument(
        "job must name exactly one netlist source: 'circuit', "
        "'netlist_file' or 'netlist_verilog'");
  }
  if (!job.circuit.empty()) {
    job.source = JobRequest::Source::kCircuit;
  } else if (!job.netlist_file.empty()) {
    job.source = JobRequest::Source::kFile;
  } else {
    job.source = JobRequest::Source::kInlineVerilog;
  }

  std::string engine;
  if (Status s = read_string_field(doc, "engine", engine); !s) return s;
  if (!engine.empty()) job.engine = engine;

  if (Status s = read_string_field(doc, "warm_start", job.warm_start); !s) {
    return s;
  }

  if (const Json* priority = doc.find("priority"); priority != nullptr) {
    if (!priority->is_number()) {
      return Status::invalid_argument("job field 'priority' must be an integer");
    }
    const long long value = priority->as_int();
    if (static_cast<double>(value) != priority->as_number() || value < 0 ||
        value >= kNumPriorities) {
      return Status::invalid_argument(
          str_format("job priority must be an integer in [0, %d] (0 = most "
                     "urgent)",
                     kNumPriorities - 1));
    }
    job.priority = static_cast<int>(value);
  }

  if (const Json* options = doc.find("options"); options != nullptr) {
    if (!options->is_object()) {
      return Status::invalid_argument("job field 'options' must be an object");
    }
    job.options = *options;
  }
  return job;
}

}  // namespace sfqpart::service
