// Content-addressed result cache for the sfqpartd daemon.
//
// Key = (netlist content hash, canonical engine configuration). The
// canonical configuration string comes from apply_engine_options(): every
// spec of the engine in list order with its resolved value, so two jobs
// that spell the same configuration differently (option order, "0.25" vs
// "2.5e-1", omitted defaults) key identically — and "threads" is excluded
// because the engines' determinism contract makes it result-neutral.
// That contract (fixed seed => bit-identical labels at any thread count,
// pinned by tests/core/parallel_determinism_test.cpp) is what makes
// result caching safe at all: a cached run_report.v2 is byte-identical to
// what re-running the job would produce, modulo wall-clock.
//
// Values are frozen report strings: the daemon dumps each run_report.v2
// once and serves hits from the stored bytes, so a warm repeat costs one
// lookup, not an engine run.
//
// Sharded LRU: the key hash picks a shard, each shard holds its own
// mutex + LRU list, so concurrent workers don't serialize on one lock.
// Entries store the full key string and compare it on lookup — a 64-bit
// hash collision degrades to an honest miss, never a wrong report.
// Hit/miss/eviction counts flow through the observability layer as
// CounterEvents ("cache_hit", "cache_miss", "cache_evict") when a sink is
// attached, and are always available via stats().
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_sink.h"

namespace sfqpart::service {

struct CacheKey {
  std::uint64_t netlist_hash = 0;
  // Engine name + canonical option string (apply_engine_options output).
  std::string config;

  // The exact string stored and compared inside the cache.
  std::string full() const;
};

struct CacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  // `capacity` is the total entry budget, split evenly across `shards`
  // (each shard gets at least one slot). `sink` (optional, not owned)
  // receives the counter events.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8,
                       obs::TraceSink* sink = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The cached report string, or nullopt. A hit refreshes LRU recency.
  std::optional<std::string> lookup(const CacheKey& key);

  // Inserts (or refreshes) the report under `key`, evicting the shard's
  // least-recently-used entry when the shard is full.
  void insert(const CacheKey& key, std::string report);

  CacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string report;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
  };

  Shard& shard_for(const std::string& full_key);

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_;
  obs::TraceSink* sink_;
};

}  // namespace sfqpart::service
