#include "service/daemon.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/certify.h"
#include "core/engine.h"
#include "core/partition_io.h"
#include "def/def_parser.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "netlist/cell_library.h"
#include "obs/run_report.h"
#include "util/hash.h"
#include "util/strings.h"
#include "verilog/verilog_parser.h"

namespace sfqpart::service {

namespace {

bool has_suffix(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

StatusOr<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::not_found("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// `content` is the already-read file bytes (kFile) or the inline source
// (kInlineVerilog); the hash the cache key was built from covers exactly
// these bytes, so the executed netlist matches the key even if the file
// changes on disk between submit and dispatch.
StatusOr<Netlist> build_job_netlist(const JobRequest& job,
                                    const std::string& content) {
  if (job.source == JobRequest::Source::kCircuit) {
    const SuiteEntry* entry = find_benchmark(job.circuit);
    if (entry == nullptr) {
      return Status::not_found("unknown circuit '" + job.circuit + "'");
    }
    return build_mapped(*entry);
  }
  if (job.source == JobRequest::Source::kFile &&
      has_suffix(job.netlist_file, ".def")) {
    auto design = def::parse_def(content);
    if (!design) return design.status();
    return def::def_to_netlist(*design, default_sfq_library());
  }
  auto module = parse_verilog(content);
  if (!module) return module.status();
  return verilog_to_netlist(*module, default_sfq_library());
}

Json base_response(const std::string& id, const char* status) {
  Json response = Json::object();
  response.set("schema", Json::string(kResponseSchema));
  response.set("id", Json::string(id));
  response.set("status", Json::string(status));
  return response;
}

std::string error_line(const std::string& id, const char* status,
                       const std::string& message) {
  Json response = base_response(id, status);
  response.set("error", Json::string(message));
  return response.dump(0);
}

std::string ok_line(const std::string& id, const char* cache,
                    const std::string& report_str) {
  Json response = base_response(id, "ok");
  response.set("cache", Json::string(cache));
  // The cache stores the frozen report as a compact JSON object string;
  // splice it into the envelope verbatim instead of re-parsing it. This
  // keeps the warm path at one string copy AND guarantees hit and miss
  // responses embed byte-identical report payloads.
  std::string line = response.dump(0);
  assert(!line.empty() && line.back() == '}');
  line.pop_back();
  line += ",\"report\":";
  line += report_str;
  line += '}';
  return line;
}

}  // namespace

Json engines_json() {
  Json engines = Json::array();
  for (const std::string& name : EngineRegistry::names()) {
    auto engine = EngineRegistry::create(name);
    if (!engine) continue;
    Json options = Json::array();
    for (const OptionSpec& spec : (*engine)->describe_options()) {
      options.append(spec.to_json());
    }
    engines.append(Json::object()
                       .set("name", Json::string(name))
                       .set("description", Json::string((*engine)->description()))
                       .set("options", std::move(options)));
  }
  return Json::object()
      .set("schema", Json::string("sfqpart.engines.v1"))
      .set("engines", std::move(engines));
}

Daemon::Daemon(DaemonOptions options)
    : options_(options),
      sink_(options.observer),
      cache_(options.cache_capacity, options.cache_shards, &sink_),
      queue_(options.queue_capacity) {
  workers_.reserve(static_cast<std::size_t>(std::max(0, options_.workers)));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] {
      while (auto work = queue_.pop()) (*work)();
    });
  }
}

Daemon::~Daemon() {
  queue_.shutdown();
  for (std::thread& worker : workers_) worker.join();
}

std::future<std::string> Daemon::submit(const std::string& line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  submit_line(line, [promise](std::string response) {
    promise->set_value(std::move(response));
  });
  return future;
}

std::string Daemon::submit_and_wait(const std::string& line) {
  return submit(line).get();
}

void Daemon::submit_line(const std::string& line, Respond respond) {
  auto doc = Json::parse(line);
  if (!doc) {
    jobs_invalid_.fetch_add(1);
    sink_.counter("job_invalid", 1);
    respond(error_line("", "invalid", doc.status().message()));
    return;
  }
  if (is_admin_command(*doc)) {
    respond(handle_admin(*doc));
    return;
  }
  // Best-effort id for error responses even when parsing fails.
  std::string id;
  if (const Json* field = doc->find("id"); field != nullptr && field->is_string()) {
    id = field->as_string();
  }
  auto invalid = [&](const std::string& message) {
    jobs_invalid_.fetch_add(1);
    sink_.counter("job_invalid", 1);
    respond(error_line(id, "invalid", message));
  };

  auto job = parse_job(*doc);
  if (!job) {
    invalid(job.status().message());
    return;
  }
  auto engine = EngineRegistry::create(job->engine);
  if (!engine) {
    invalid(engine.status().message());
    return;
  }
  EngineContext context;
  std::string canonical;
  if (Status s = apply_engine_options((*engine)->describe_options(),
                                      job->options, context, &canonical);
      !s) {
    invalid(s.message());
    return;
  }
  // Per-job thread budget: the job's "threads" request (0 = "as many as
  // allowed") is capped so total compute concurrency stays bounded by
  // workers * threads_per_job. Excluded from the cache key — determinism
  // contract — so the cap never fragments the cache.
  const int budget = std::max(1, options_.threads_per_job);
  context.threads =
      context.threads == 0 ? budget : std::min(context.threads, budget);

  std::string content;
  std::uint64_t netlist_hash = 0;
  switch (job->source) {
    case JobRequest::Source::kCircuit: {
      if (find_benchmark(job->circuit) == nullptr) {
        invalid("unknown circuit '" + job->circuit + "' (see `sfqpart list`)");
        return;
      }
      netlist_hash =
          Fnv1a64().update("circuit:").update(job->circuit).digest();
      break;
    }
    case JobRequest::Source::kFile: {
      auto bytes = read_text_file(job->netlist_file);
      if (!bytes) {
        invalid(bytes.status().message());
        return;
      }
      content = std::move(*bytes);
      netlist_hash = Fnv1a64::of(content);
      break;
    }
    case JobRequest::Source::kInlineVerilog: {
      content = job->netlist_verilog;
      netlist_hash = Fnv1a64::of(content);
      break;
    }
  }

  // A warm start is read at submit time and content-hashed into the
  // cache key (like "netlist_file"): two jobs with the same netlist and
  // options but different seed partitions must not alias, and editing
  // the CSV in place must miss.
  std::string warm_content;
  bool has_warm = false;
  if (!job->warm_start.empty()) {
    auto warm_bytes = read_text_file(job->warm_start);
    if (!warm_bytes) {
      invalid("warm_start: " + warm_bytes.status().message());
      return;
    }
    warm_content = std::move(*warm_bytes);
    has_warm = true;
  }

  CacheKey key;
  key.netlist_hash = netlist_hash;
  key.config = job->engine + ";" + canonical;
  if (has_warm) {
    key.config +=
        str_format(";warm:%016llx",
                   static_cast<unsigned long long>(Fnv1a64::of(warm_content)));
  }

  // Cache lookup and single-flight registration are one atomic step, so a
  // duplicate can never slip between "miss" and "registered" and trigger
  // a second engine run.
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (const auto it = inflight_.find(key.full()); it != inflight_.end()) {
      it->second.push_back(Waiter{job->id, std::move(respond)});
      jobs_accepted_.fetch_add(1);
      jobs_coalesced_.fetch_add(1);
      sink_.counter("job_accepted", 1);
      sink_.counter("job_coalesced", 1);
      return;
    }
    if (auto hit = cache_.lookup(key)) {
      jobs_accepted_.fetch_add(1);
      jobs_completed_.fetch_add(1);
      sink_.counter("job_accepted", 1);
      respond(ok_line(job->id, "hit", *hit));
      return;
    }
    inflight_.emplace(key.full(), std::vector<Waiter>{});
  }

  const int priority = job->priority;
  const std::string job_id = job->id;
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    ++outstanding_;
  }
  const bool pushed = queue_.push(
      priority, [this, request = std::move(*job), context, key,
                 body = std::move(content), warm = std::move(warm_content),
                 respond]() mutable {
        execute_job(std::move(request), context, std::move(key),
                    std::move(body), std::move(warm), std::move(respond));
      });
  if (!pushed) {
    {
      const std::lock_guard<std::mutex> lock(idle_mutex_);
      --outstanding_;
    }
    idle_.notify_all();
    // Deregister the flight and reject any duplicates that attached to it
    // in the meantime along with the original.
    std::vector<Waiter> waiters;
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      if (const auto it = inflight_.find(key.full()); it != inflight_.end()) {
        waiters = std::move(it->second);
        inflight_.erase(it);
      }
    }
    jobs_rejected_.fetch_add(1 + static_cast<long long>(waiters.size()));
    sink_.counter("job_rejected", 1 + static_cast<long long>(waiters.size()));
    respond(error_line(job_id, "rejected", "queue_full"));
    for (Waiter& waiter : waiters) {
      waiter.respond(error_line(waiter.id, "rejected", "queue_full"));
    }
    return;
  }
  jobs_accepted_.fetch_add(1);
  sink_.counter("job_accepted", 1);
}

void Daemon::execute_job(JobRequest request, EngineContext context,
                         CacheKey key, std::string netlist_content,
                         std::string warm_content, Respond respond) {
  std::string report_str;       // set on success
  const char* fail_status = ""; // set on failure
  std::string fail_message;

  auto netlist = build_job_netlist(request, netlist_content);
  // The warm CSV can only be resolved against the built netlist; the
  // InitialPartition lives here so it outlives the engine run below.
  InitialPartition warm;
  if (netlist && !request.warm_start.empty()) {
    auto parsed = parse_warm_start_csv(warm_content, *netlist);
    if (!parsed) {
      netlist = Status::invalid_argument("warm_start: " +
                                         std::string(parsed.status().message()));
    } else {
      warm = *std::move(parsed);
      context.warm_start = &warm;
    }
  }
  if (!netlist) {
    jobs_invalid_.fetch_add(1);
    sink_.counter("job_invalid", 1);
    fail_status = "invalid";
    fail_message = netlist.status().message();
  } else {
    obs::RunReport report;
    context.observer = &report;
    auto engine = EngineRegistry::create(request.engine);
    if (!engine) {
      fail_status = "error";
      fail_message = engine.status().message();
    } else {
      engine_runs_.fetch_add(1);
      sink_.counter("engine_run", 1);
      auto run = (*engine)->run(*netlist, context);
      if (!run) {
        fail_status = "error";
        fail_message = run.status().message();
      } else {
        bool accept = true;
        if (options_.certify) {
          // Server-side certification, before serialization and cache
          // insert: the counter freezes into the cached report, so warm
          // hits replay a certified result without re-running the check.
          CertifyExpectation expect;
          expect.terms = run->discrete_terms;
          expect.total = run->discrete_total;
          auto compiled = compile_constraints(*netlist, context.constraints,
                                              context.num_planes);
          const CertifyReport cert = certify_partition(
              *netlist, run->partition, context.num_planes, context.weights,
              &expect, compiled ? &*compiled : nullptr);
          jobs_certified_.fetch_add(1);
          sink_.counter("job_certified", 1);
          report.on_counter({"daemon_certified", 1});
          if (!cert.valid()) {
            accept = false;
            fail_status = "error";
            fail_message = "certification failed (" +
                           std::string(certify_verdict_name(cert.verdict)) +
                           "): " + cert.message;
          }
        }
        if (accept) {
          const PartitionMetrics metrics =
              compute_metrics(*netlist, run->partition);
          report.set_circuit(netlist->name(), metrics.num_gates,
                             metrics.num_connections);
          report.set_metrics(metrics);
          report_str = report.to_json().dump(0);
          cache_.insert(key, report_str);
        }
      }
    }
  }

  // Cache insert happens before the flight is deregistered, so a
  // duplicate arriving now either finds the cached entry or is already
  // attached as a waiter — never a third state.
  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (const auto it = inflight_.find(key.full()); it != inflight_.end()) {
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
  }

  const bool ok = !report_str.empty();
  respond(ok ? ok_line(request.id, "miss", report_str)
             : error_line(request.id, fail_status, fail_message));
  for (Waiter& waiter : waiters) {
    waiter.respond(ok ? ok_line(waiter.id, "hit", report_str)
                      : error_line(waiter.id, fail_status, fail_message));
  }
  jobs_completed_.fetch_add(1 + static_cast<long long>(waiters.size()));
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    --outstanding_;
  }
  idle_.notify_all();
}

std::string Daemon::handle_admin(const Json& doc) {
  const std::string cmd = doc.find("cmd")->as_string();
  if (cmd == "stats") return stats_json().dump(0);
  if (cmd == "engines") return engines_json().dump(0);
  if (cmd == "shutdown") {
    {
      const std::lock_guard<std::mutex> lock(idle_mutex_);
      shutdown_requested_ = true;
    }
    idle_.notify_all();
    return Json::object()
        .set("schema", Json::string("sfqpart.admin.v1"))
        .set("cmd", Json::string("shutdown"))
        .set("status", Json::string("ok"))
        .dump(0);
  }
  return Json::object()
      .set("schema", Json::string("sfqpart.admin.v1"))
      .set("cmd", Json::string(cmd))
      .set("status", Json::string("error"))
      .set("error", Json::string("unknown command (stats | engines | shutdown)"))
      .dump(0);
}

void Daemon::wait_for_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_.wait(lock, [this] { return outstanding_ == 0; });
}

void Daemon::serve(std::istream& in, std::ostream& out) {
  std::mutex out_mutex;
  // Worker threads deliver completions directly, so responses appear in
  // completion order; the mutex keeps lines whole.
  auto respond = [&out, &out_mutex](std::string response) {
    const std::lock_guard<std::mutex> lock(out_mutex);
    out << response << '\n';
    out.flush();
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    submit_line(line, respond);
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    if (shutdown_requested_) break;
  }
  // EOF or shutdown: every accepted job still gets its response line
  // before serve() returns (`respond` references die with this frame).
  wait_for_idle();
}

Json Daemon::stats_json() const {
  const CacheStats cache = cache_.stats();
  return Json::object()
      .set("schema", Json::string("sfqpart.daemon_stats.v1"))
      .set("workers", Json::number(static_cast<long long>(options_.workers)))
      .set("jobs",
           Json::object()
               .set("accepted", Json::number(jobs_accepted_.load()))
               .set("rejected", Json::number(jobs_rejected_.load()))
               .set("invalid", Json::number(jobs_invalid_.load()))
               .set("coalesced", Json::number(jobs_coalesced_.load()))
               .set("completed", Json::number(jobs_completed_.load()))
               .set("certified", Json::number(jobs_certified_.load())))
      .set("queue",
           Json::object()
               .set("size", Json::number(static_cast<long long>(queue_.size())))
               .set("capacity",
                    Json::number(static_cast<long long>(queue_.capacity()))))
      .set("cache",
           Json::object()
               .set("hits", Json::number(cache.hits))
               .set("misses", Json::number(cache.misses))
               .set("evictions", Json::number(cache.evictions))
               .set("entries", Json::number(static_cast<long long>(cache.entries)))
               .set("capacity",
                    Json::number(static_cast<long long>(cache.capacity))))
      .set("engine_runs", Json::number(engine_runs_.load()));
}

}  // namespace sfqpart::service
