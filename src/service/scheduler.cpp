#include "service/scheduler.h"

#include <algorithm>
#include <utility>

namespace sfqpart::service {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool JobQueue::push(int priority, Work work) {
  const int lane = std::clamp(priority, 0, kNumPriorities - 1);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || total_ >= capacity_) return false;
    lanes_[lane].push_back(std::move(work));
    ++total_;
  }
  ready_.notify_one();
  return true;
}

std::optional<JobQueue::Work> JobQueue::pop_locked() {
  for (auto& lane : lanes_) {
    if (lane.empty()) continue;
    Work work = std::move(lane.front());
    lane.pop_front();
    --total_;
    return work;
  }
  return std::nullopt;
}

std::optional<JobQueue::Work> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return total_ > 0 || shutdown_; });
  return pop_locked();
}

std::optional<JobQueue::Work> JobQueue::try_pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pop_locked();
}

void JobQueue::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  ready_.notify_all();
}

std::size_t JobQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

}  // namespace sfqpart::service
