#include "service/cache.h"

#include <algorithm>
#include <functional>

#include "util/hash.h"

namespace sfqpart::service {

std::string CacheKey::full() const {
  return hash_hex(netlist_hash) + "|" + config;
}

ResultCache::ResultCache(std::size_t capacity, std::size_t shards,
                         obs::TraceSink* sink)
    : shards_(std::max<std::size_t>(1, shards)),
      per_shard_capacity_(
          std::max<std::size_t>(1, (capacity + shards_.size() - 1) /
                                       shards_.size())),
      sink_(sink) {}

ResultCache::Shard& ResultCache::shard_for(const std::string& full_key) {
  return shards_[Fnv1a64::of(full_key) % shards_.size()];
}

std::optional<std::string> ResultCache::lookup(const CacheKey& key) {
  const std::string full = key.full();
  Shard& shard = shard_for(full);
  std::optional<std::string> report;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(full);
    if (it == shard.index.end()) {
      ++shard.misses;
    } else {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      report = it->second->report;
    }
  }
  // Counters emit outside the shard lock; the sink serializes internally.
  if (sink_ != nullptr) sink_->counter(report ? "cache_hit" : "cache_miss", 1);
  return report;
}

void ResultCache::insert(const CacheKey& key, std::string report) {
  const std::string full = key.full();
  Shard& shard = shard_for(full);
  bool evicted = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.index.find(full); it != shard.index.end()) {
      it->second->report = std::move(report);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions;
      evicted = true;
    }
    shard.lru.push_front(Entry{full, std::move(report)});
    shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  }
  if (evicted && sink_ != nullptr) sink_->counter("cache_evict", 1);
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  out.capacity = per_shard_capacity_ * shards_.size();
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

}  // namespace sfqpart::service
