// Bounded fair job queue for the sfqpartd daemon.
//
// Fairness policy: strict priority between classes (0 most urgent),
// strict FIFO within a class — a cheap, predictable discipline whose
// behavior clients can reason about. Backpressure is explicit: push()
// returns false when the queue is at capacity, and the daemon turns that
// into a `rejected: queue_full` response instead of buffering without
// bound. The capacity covers all priorities together, so a flood of
// low-priority work can fill the queue — but high-priority jobs that do
// get in always dispatch first.
//
// shutdown() wakes every blocked pop(); queued work is still drained
// (pop keeps returning jobs until the queue is empty, then nullopt), so
// accepted jobs get responses even across shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "service/job.h"

namespace sfqpart::service {

class JobQueue {
 public:
  using Work = std::function<void()>;

  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Enqueues at `priority` (clamped to [0, kNumPriorities)). Returns false
  // when the queue is full — the caller owns the rejection response.
  bool push(int priority, Work work);

  // Blocks for the next unit of work: the front of the lowest-numbered
  // non-empty priority class. Returns nullopt only after shutdown() once
  // the queue has drained.
  std::optional<Work> pop();

  // Non-blocking variant; nullopt when nothing is queued right now.
  std::optional<Work> try_pop();

  void shutdown();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<Work> pop_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Work> lanes_[kNumPriorities];
  std::size_t total_ = 0;
  bool shutdown_ = false;
};

}  // namespace sfqpart::service
