// sfqpart.job.v1 — the versioned job line the sfqpartd daemon consumes.
//
// One JSON object per line:
//
//   {"schema": "sfqpart.job.v1", "id": "j1", "circuit": "ksa8",
//    "engine": "gradient", "priority": 1,
//    "options": {"planes": 5, "seed": 7}}
//
// The netlist comes from exactly one of three sources: "circuit" (a
// builtin benchmark name, see `sfqpart list`), "netlist_file" (a .def or
// structural-Verilog path, hashed by file *content* so cache keys survive
// renames and notice edits) or "netlist_verilog" (inline structural
// Verilog source). "options" is validated by the daemon against the
// engine's structured OptionSpec list (apply_engine_options), so option
// errors name the offending knob before any compute is spent.
//
// An optional "warm_start" key names a gate->plane CSV (the format
// `sfqpart partition --csv` writes). The daemon reads it at submit time,
// folds its content hash into the cache key (";warm:<hash>", so cache
// keys survive renames and notice edits, like "netlist_file"), and seeds
// the engine with it — required by engine "eco", advisory elsewhere.
//
// Lines whose object carries a "cmd" key instead of "schema" are admin
// commands ("stats", "engines", "shutdown"), not jobs.
#pragma once

#include <string>

#include "util/json.h"
#include "util/status.h"

namespace sfqpart::service {

inline constexpr char kJobSchema[] = "sfqpart.job.v1";
inline constexpr char kResponseSchema[] = "sfqpart.job_response.v1";

// Priorities 0..3; 0 is most urgent. FIFO within a priority.
inline constexpr int kNumPriorities = 4;
inline constexpr int kDefaultPriority = 1;

struct JobRequest {
  enum class Source { kCircuit, kFile, kInlineVerilog };

  std::string id;
  Source source = Source::kCircuit;
  std::string circuit;          // builtin suite name
  std::string netlist_file;     // .def / .v path
  std::string netlist_verilog;  // inline structural Verilog source
  std::string engine = "gradient";
  std::string warm_start;  // optional gate->plane CSV path (ECO seed)
  int priority = kDefaultPriority;
  Json options = Json::object();  // engine knobs; validated by the daemon
};

// Structural validation of one parsed job line: schema tag, exactly one
// netlist source, priority range, options an object, id/engine strings.
// Engine-name existence and option values are the daemon's job (they need
// the registry). kInvalidArgument on any violation.
StatusOr<JobRequest> parse_job(const Json& doc);

// True when the line is an admin command ({"cmd": ...}) rather than a job.
bool is_admin_command(const Json& doc);

}  // namespace sfqpart::service
