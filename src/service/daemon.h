// sfqpartd — the long-lived partition service over a versioned job API.
//
// The daemon reads JSON-lines requests (sfqpart.job.v1, see
// service/job.h), multiplexes concurrent jobs over a small worker pool
// with per-job thread budgets, schedules fairly (FIFO within priority,
// strict priority between classes, service/scheduler.h), applies
// backpressure with an explicit `rejected: queue_full` response when the
// bounded queue is at capacity, and answers every request with one
// sfqpart.job_response.v1 line:
//
//   {"schema": "sfqpart.job_response.v1", "id": "...",
//    "status": "ok" | "invalid" | "rejected" | "error",
//    "cache": "hit" | "miss",              // only with status "ok"
//    "error": "...",                        // only on failure
//    "report": { sfqpart.run_report.v2 }}   // only with status "ok"
//
// Results are served from a content-addressed cache (service/cache.h)
// keyed on (netlist content hash, engine + canonical options): repeating
// a job is O(1) — one cache lookup, no engine run — and returns the
// byte-identical run_report.v2 produced by the first execution. The
// engines' determinism contract makes this sound; see cache.h. Duplicate
// suppression is single-flight: a job whose key matches one currently
// executing attaches to that execution (no queue slot, no engine run) and
// is answered as a "hit" when it completes, so a burst of identical jobs
// costs exactly one engine run no matter how it interleaves.
//
// Responses are written in completion order (ids correlate request to
// response); admin lines ({"cmd": "stats" | "engines" | "shutdown"})
// answer synchronously. DESIGN.md section 11 documents the architecture.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "obs/trace_sink.h"
#include "service/cache.h"
#include "service/job.h"
#include "service/scheduler.h"
#include "util/json.h"

namespace sfqpart::service {

struct DaemonOptions {
  // Worker threads executing jobs. 0 is a testing mode: nothing ever
  // dispatches, so queue behavior (fill, backpressure) is deterministic.
  int workers = 2;
  // Thread budget per job: caps the job's requested "threads" option
  // (0 or omitted -> the full budget). Total compute concurrency is
  // bounded by workers * threads_per_job.
  int threads_per_job = 1;
  // Bounded queue: pushes beyond this are rejected (`queue_full`).
  std::size_t queue_capacity = 64;
  // Result cache entry budget and shard count.
  std::size_t cache_capacity = 256;
  std::size_t cache_shards = 8;
  // Server-side certification (core/certify.h): every executed job's
  // result is independently re-derived and checked *before* the report is
  // serialized and cached, so a cache hit replays an already-certified
  // report (the "daemon_certified" counter is frozen into it) and a bad
  // result is answered as an error instead of being cached. Certifying
  // once at insert instead of on every hit keeps warm repeats O(1).
  bool certify = true;
  // Receives daemon counters as CounterEvents: "cache_hit", "cache_miss",
  // "cache_evict", "job_accepted", "job_rejected", "job_invalid",
  // "job_coalesced", "engine_run". Not owned; may be null.
  obs::SolverObserver* observer = nullptr;
};

// The engine catalog as JSON ("sfqpart.engines.v1"): every registered
// engine with its description and structured OptionSpec list. Served by
// the {"cmd": "engines"} admin command and `sfqpart --list-engines
// --json`.
Json engines_json();

class Daemon {
 public:
  explicit Daemon(DaemonOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Submits one request line. Immediate outcomes (admin commands, invalid
  // jobs, queue-full rejections, cache hits) resolve the future before
  // returning; accepted jobs resolve when a worker completes them.
  std::future<std::string> submit(const std::string& line);

  // Blocking convenience for tests and the bench load generator.
  std::string submit_and_wait(const std::string& line);

  // JSON-lines loop: one request per line on `in`, one response line per
  // request on `out`, written in completion order. Returns after EOF or a
  // {"cmd": "shutdown"} line, once every accepted job has responded.
  void serve(std::istream& in, std::ostream& out);

  // "sfqpart.daemon_stats.v1": jobs, queue, cache and engine-run counts.
  Json stats_json() const;
  CacheStats cache_stats() const { return cache_.stats(); }
  // Engine executions so far — cache hits do not increment this, which is
  // how tests prove warm repeats are O(1).
  long long engine_runs() const { return engine_runs_.load(); }

 private:
  using Respond = std::function<void(std::string)>;

  // A duplicate job waiting on the in-flight execution of its key.
  struct Waiter {
    std::string id;
    Respond respond;
  };

  // Routes one raw line to the admin handler, the rejection paths or the
  // queue; guarantees exactly one respond() call (possibly asynchronous).
  void submit_line(const std::string& line, Respond respond);
  void execute_job(JobRequest request, EngineContext context, CacheKey key,
                   std::string netlist_content, std::string warm_content,
                   Respond respond);
  std::string handle_admin(const Json& doc);
  void wait_for_idle();

  DaemonOptions options_;
  obs::TraceSink sink_;
  ResultCache cache_;
  JobQueue queue_;
  std::vector<std::thread> workers_;

  std::atomic<long long> engine_runs_{0};
  std::atomic<long long> jobs_accepted_{0};
  std::atomic<long long> jobs_rejected_{0};
  std::atomic<long long> jobs_invalid_{0};
  std::atomic<long long> jobs_completed_{0};
  std::atomic<long long> jobs_coalesced_{0};
  std::atomic<long long> jobs_certified_{0};

  // Single-flight registry: cache keys currently executing, with the
  // duplicate submissions waiting on each. Guards the miss -> enqueue
  // decision, so checking the cache and registering the flight is atomic.
  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::vector<Waiter>> inflight_;

  mutable std::mutex idle_mutex_;
  std::condition_variable idle_;
  std::size_t outstanding_ = 0;
  bool shutdown_requested_ = false;
};

}  // namespace sfqpart::service
