// Structured observability: the SolverObserver event interface.
//
// Every engine in the library (the gradient-descent Solver, the
// multilevel driver, and the annealing / FM baselines) narrates a run as
// a stream of typed events through this interface: run start/end, restart
// start/end, one event per optimizer iteration with the full CostTerms,
// hardening, refine passes, multilevel coarsening levels, plus named
// scoped timers and counters. Events are delivered serialized (the
// TraceSink holds a lock around each call), so observers need no internal
// synchronization; with several worker threads, events from concurrent
// restarts interleave, but the per-restart subsequence is deterministic
// for a fixed seed.
//
// Implementations: RunReport (obs/run_report.h) aggregates a run into a
// machine-readable JSON document; StreamTracer (obs/stream_tracer.h)
// prints a live line per event. The contract for the hot paths is in
// obs/trace_sink.h: with no observer attached, instrumentation costs one
// predictable branch and never takes a lock or reads a clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_model.h"

namespace sfqpart::obs {

// Snapshot of the configuration an engine runs with, emitted once at run
// start. Deliberately decoupled from SolverConfig so obs has no
// dependency on the facade header; engines fill what applies to them.
struct RunInfo {
  std::string engine = "solver";  // "solver" | "multilevel" | "annealing" | "fm_kway"
  int num_planes = 0;
  int restarts = 1;
  int threads = 1;  // effective worker threads
  std::uint64_t seed = 0;
  bool refine = false;
  CostWeights weights;
  GradientStyle gradient_style = GradientStyle::kAnalytic;
  // Optimizer knobs (zeroed for engines without a gradient loop).
  double learning_rate = 0.0;
  int max_iterations = 0;
  double margin = 0.0;
  bool normalize_step = false;
  // Problem shape.
  int problem_gates = 0;
  long long problem_edges = 0;
};

struct RestartStartEvent {
  int restart = 0;
};

// One optimizer iteration (or one annealing temperature step / FM pass,
// where `terms` carries only what the engine can attribute).
struct IterationEvent {
  int restart = 0;
  int iteration = 0;
  CostTerms terms;
  double cost = 0.0;  // weighted total
};

// Argmax hardening of a restart's converged soft assignment.
struct HardenEvent {
  int restart = 0;
  double discrete_total = 0.0;
};

// One greedy refinement pass (restart < 0: multilevel projection refits).
struct RefinePassEvent {
  int restart = 0;
  int pass = 0;
  int moves = 0;
  double cost = 0.0;  // discrete weighted total after the pass
};

struct RestartEndEvent {
  int restart = 0;
  CostTerms soft_terms;
  CostTerms discrete_terms;
  double discrete_total = 0.0;
  int iterations = 0;
  bool converged = false;
};

// One multilevel coarsening level. The shape fields (level, vertices,
// edges) are emitted while coarsening; the V-cycle engine re-emits the
// same level index on the way back up with the refinement facts filled
// in. Aggregating consumers (obs::RunReport) merge the two by level
// index, so a level appears once in the report with both halves.
struct LevelEvent {
  int level = 0;
  int num_vertices = 0;
  long long num_edges = 0;
  // Per-level stage facts (0 when unknown or not applicable).
  double coarsen_ms = 0.0;      // wall time to build this level
  double refine_ms = 0.0;       // banded refinement wall time at this level
  double projected_cost = 0.0;  // discrete cost after label projection
  double refined_cost = 0.0;    // discrete cost after banded refinement
  int refine_moves = 0;
};

// A named scoped timer closed (restart < 0: run-scoped stage).
struct TimerEvent {
  const char* name = "";
  int restart = -1;
  double elapsed_ms = 0.0;
};

struct CounterEvent {
  const char* name = "";
  long long delta = 0;
};

struct RunEndEvent {
  int winning_restart = 0;
  double discrete_total = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Observer interface; every hook defaults to a no-op so implementations
// override only what they consume. Calls arrive serialized (see
// obs/trace_sink.h) but possibly from several threads over the run's
// lifetime — do not assume a single calling thread, only mutual
// exclusion.
class SolverObserver {
 public:
  virtual ~SolverObserver() = default;

  virtual void on_run_start(const RunInfo&) {}
  virtual void on_restart_start(const RestartStartEvent&) {}
  virtual void on_iteration(const IterationEvent&) {}
  virtual void on_harden(const HardenEvent&) {}
  virtual void on_refine_pass(const RefinePassEvent&) {}
  virtual void on_restart_end(const RestartEndEvent&) {}
  virtual void on_level(const LevelEvent&) {}
  virtual void on_timer(const TimerEvent&) {}
  virtual void on_counter(const CounterEvent&) {}
  virtual void on_run_end(const RunEndEvent&) {}
};

// Fans every event out to several observers, in registration order (e.g.
// the CLI attaches a StreamTracer and a RunReport at once). Does not own
// the observers.
class MulticastObserver final : public SolverObserver {
 public:
  void add(SolverObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  bool empty() const { return observers_.empty(); }

  void on_run_start(const RunInfo& e) override {
    for (SolverObserver* o : observers_) o->on_run_start(e);
  }
  void on_restart_start(const RestartStartEvent& e) override {
    for (SolverObserver* o : observers_) o->on_restart_start(e);
  }
  void on_iteration(const IterationEvent& e) override {
    for (SolverObserver* o : observers_) o->on_iteration(e);
  }
  void on_harden(const HardenEvent& e) override {
    for (SolverObserver* o : observers_) o->on_harden(e);
  }
  void on_refine_pass(const RefinePassEvent& e) override {
    for (SolverObserver* o : observers_) o->on_refine_pass(e);
  }
  void on_restart_end(const RestartEndEvent& e) override {
    for (SolverObserver* o : observers_) o->on_restart_end(e);
  }
  void on_level(const LevelEvent& e) override {
    for (SolverObserver* o : observers_) o->on_level(e);
  }
  void on_timer(const TimerEvent& e) override {
    for (SolverObserver* o : observers_) o->on_timer(e);
  }
  void on_counter(const CounterEvent& e) override {
    for (SolverObserver* o : observers_) o->on_counter(e);
  }
  void on_run_end(const RunEndEvent& e) override {
    for (SolverObserver* o : observers_) o->on_run_end(e);
  }

 private:
  std::vector<SolverObserver*> observers_;
};

}  // namespace sfqpart::obs
