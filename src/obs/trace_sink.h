// TraceSink — the instrumentation point the engines write events to.
//
// Overhead contract (DESIGN.md section 8): a sink with no observer is
// *disabled*, and every emit method then returns after one branch on a
// plain pointer — no lock, no clock read, no allocation — so the
// instrumented hot paths cost ~nothing for callers that attach nothing.
// The observer pointer is fixed at construction (no atomics needed: the
// enabled/disabled decision never changes over the sink's lifetime).
//
// When an observer IS attached, every emit takes the sink's mutex, so the
// observer sees a serialized event stream even while restarts run
// concurrently on the thread pool.
#pragma once

#include <chrono>
#include <mutex>

#include "obs/observer.h"

namespace sfqpart::obs {

class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(SolverObserver* observer) : observer_(observer) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const { return observer_ != nullptr; }
  SolverObserver* observer() const { return observer_; }

  void run_start(const RunInfo& e) { emit([&](SolverObserver& o) { o.on_run_start(e); }); }
  void restart_start(const RestartStartEvent& e) { emit([&](SolverObserver& o) { o.on_restart_start(e); }); }
  void iteration(const IterationEvent& e) { emit([&](SolverObserver& o) { o.on_iteration(e); }); }
  void harden(const HardenEvent& e) { emit([&](SolverObserver& o) { o.on_harden(e); }); }
  void refine_pass(const RefinePassEvent& e) { emit([&](SolverObserver& o) { o.on_refine_pass(e); }); }
  void restart_end(const RestartEndEvent& e) { emit([&](SolverObserver& o) { o.on_restart_end(e); }); }
  void level(const LevelEvent& e) { emit([&](SolverObserver& o) { o.on_level(e); }); }
  void timer(const TimerEvent& e) { emit([&](SolverObserver& o) { o.on_timer(e); }); }
  void counter(const char* name, long long delta) {
    emit([&](SolverObserver& o) { o.on_counter({name, delta}); });
  }
  void run_end(const RunEndEvent& e) { emit([&](SolverObserver& o) { o.on_run_end(e); }); }

 private:
  template <typename Fn>
  void emit(const Fn& fn) {
    if (observer_ == nullptr) return;  // the whole disabled-path cost
    const std::lock_guard<std::mutex> lock(mutex_);
    fn(*observer_);
  }

  SolverObserver* observer_ = nullptr;
  std::mutex mutex_;
};

// Wall-clock timer for one named stage; emits a TimerEvent when the scope
// closes. On a disabled sink (or null pointer) the constructor stores a
// null sink and neither clock is ever read.
//
//   { ScopedTimer t(&sink, "optimize", restart);  ...hot work... }
class ScopedTimer {
 public:
  ScopedTimer(TraceSink* sink, const char* name, int restart = -1)
      : sink_(sink != nullptr && sink->enabled() ? sink : nullptr),
        name_(name),
        restart_(restart) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_ == nullptr) return;
    const auto stop = std::chrono::steady_clock::now();
    sink_->timer({name_, restart_,
                  std::chrono::duration<double, std::milli>(stop - start_).count()});
  }

 private:
  TraceSink* sink_;
  const char* name_;
  int restart_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sfqpart::obs
