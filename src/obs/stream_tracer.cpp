#include "obs/stream_tracer.h"

namespace sfqpart::obs {

void StreamTracer::on_run_start(const RunInfo& e) {
  std::fprintf(out_,
               "[trace] run start engine=%s planes=%d restarts=%d threads=%d "
               "seed=%llu gates=%d edges=%lld\n",
               e.engine.c_str(), e.num_planes, e.restarts, e.threads,
               static_cast<unsigned long long>(e.seed), e.problem_gates,
               e.problem_edges);
}

void StreamTracer::on_restart_start(const RestartStartEvent& e) {
  std::fprintf(out_, "[trace] restart %d start\n", e.restart);
}

void StreamTracer::on_iteration(const IterationEvent& e) {
  if (e.iteration % stride_ != 0) return;
  std::fprintf(out_,
               "[trace] restart %d iter %d cost %.6f f1=%.4g f2=%.4g f3=%.4g "
               "f4=%.4g\n",
               e.restart, e.iteration, e.cost, e.terms.f1, e.terms.f2,
               e.terms.f3, e.terms.f4);
}

void StreamTracer::on_harden(const HardenEvent& e) {
  std::fprintf(out_, "[trace] restart %d harden discrete=%.6f\n", e.restart,
               e.discrete_total);
}

void StreamTracer::on_refine_pass(const RefinePassEvent& e) {
  std::fprintf(out_, "[trace] restart %d refine pass %d moves=%d cost=%.6f\n",
               e.restart, e.pass, e.moves, e.cost);
}

void StreamTracer::on_restart_end(const RestartEndEvent& e) {
  std::fprintf(out_,
               "[trace] restart %d end iters=%d converged=%s discrete=%.6f\n",
               e.restart, e.iterations, e.converged ? "yes" : "no",
               e.discrete_total);
}

void StreamTracer::on_level(const LevelEvent& e) {
  std::fprintf(out_, "[trace] level %d vertices=%d edges=%lld\n", e.level,
               e.num_vertices, e.num_edges);
}

void StreamTracer::on_timer(const TimerEvent& e) {
  if (e.restart >= 0) {
    std::fprintf(out_, "[trace] timer %s restart=%d %.3f ms\n", e.name,
                 e.restart, e.elapsed_ms);
  } else {
    std::fprintf(out_, "[trace] timer %s %.3f ms\n", e.name, e.elapsed_ms);
  }
}

void StreamTracer::on_counter(const CounterEvent& e) {
  std::fprintf(out_, "[trace] counter %s += %lld\n", e.name, e.delta);
}

void StreamTracer::on_run_end(const RunEndEvent& e) {
  std::fprintf(out_,
               "[trace] run end winner=%d discrete=%.6f iters=%d converged=%s\n",
               e.winning_restart, e.discrete_total, e.iterations,
               e.converged ? "yes" : "no");
}

}  // namespace sfqpart::obs
