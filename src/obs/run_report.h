// RunReport — aggregates one run's event stream into a machine-readable
// report.
//
// Attach a RunReport as the observer of any engine (SolverConfig::observer,
// MultilevelOptions::observer, AnnealingOptions::observer,
// FmOptions::observer) and it collects the config snapshot, one
// convergence curve per restart (iteration, weighted cost, full
// CostTerms), per-stage wall-time totals, counters, multilevel levels and
// the final outcome. Callers add what the engine cannot know — the
// circuit identity and the evaluated PartitionMetrics — then serialize
// with to_json() / write_file(). The JSON schema
// ("sfqpart.run_report.v2") is documented in DESIGN.md section 8 and
// self-checked by tests/obs/run_report_test.cpp round-tripping through
// Json::parse.
//
// Thread safety: observer hooks are invoked under the TraceSink's lock;
// the aggregation state needs no lock of its own. Accessors assume the
// run has finished.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "metrics/partition_metrics.h"
#include "obs/observer.h"
#include "util/json.h"

namespace sfqpart::obs {

class RunReport final : public SolverObserver {
 public:
  struct IterationSample {
    int iteration = 0;
    double cost = 0.0;
    CostTerms terms;
  };

  struct RestartCurve {
    bool started = false;
    bool finished = false;
    std::vector<IterationSample> samples;
    CostTerms soft_terms;
    CostTerms discrete_terms;
    double harden_total = 0.0;  // discrete total straight after argmax
    double discrete_total = 0.0;
    int iterations = 0;
    int refine_passes = 0;
    int refine_moves = 0;
    bool converged = false;
  };

  struct Stage {
    double total_ms = 0.0;
    long long count = 0;
  };

  // SolverObserver hooks. A nested engine (e.g. the coarse Solver inside
  // the multilevel driver) re-emits on_run_start; the first RunInfo wins
  // so the report describes the outermost engine.
  void on_run_start(const RunInfo& info) override;
  void on_restart_start(const RestartStartEvent& e) override;
  void on_iteration(const IterationEvent& e) override;
  void on_harden(const HardenEvent& e) override;
  void on_refine_pass(const RefinePassEvent& e) override;
  void on_restart_end(const RestartEndEvent& e) override;
  void on_level(const LevelEvent& e) override;
  void on_timer(const TimerEvent& e) override;
  void on_counter(const CounterEvent& e) override;
  void on_run_end(const RunEndEvent& e) override;

  // Context the engines cannot provide.
  void set_circuit(std::string name, int gates, int connections);
  void set_metrics(const PartitionMetrics& metrics);

  // Accessors (post-run).
  bool has_run() const { return has_info_; }
  const RunInfo& info() const { return info_; }
  const std::vector<RestartCurve>& restarts() const { return restarts_; }
  const std::vector<LevelEvent>& levels() const { return levels_; }
  const RunEndEvent& result() const { return end_; }
  // Total wall-clock of a named stage (summed across restarts); 0 when
  // the stage never closed a timer. "run" covers the whole solve.
  double stage_ms(const std::string& name) const;
  long long counter(const std::string& name) const;

  // Serialization ("sfqpart.run_report.v2").
  Json to_json() const;
  Status write_file(const std::string& path, int indent = 2) const;

 private:
  RestartCurve& curve(int restart);

  RunInfo info_;
  bool has_info_ = false;
  std::string circuit_;
  int circuit_gates_ = 0;
  int circuit_connections_ = 0;
  std::vector<RestartCurve> restarts_;
  std::vector<LevelEvent> levels_;
  // Insertion-ordered (name, stage) pairs: deterministic serialization
  // without pulling in std::map ordering surprises for duplicate names.
  std::vector<std::pair<std::string, Stage>> stages_;
  std::vector<std::pair<std::string, long long>> counters_;
  RunEndEvent end_;
  bool has_end_ = false;
  std::optional<PartitionMetrics> metrics_;
};

}  // namespace sfqpart::obs
