#include "obs/run_report.h"

#include <fstream>
#include <utility>

namespace sfqpart::obs {
namespace {

Json terms_json(const CostTerms& terms) {
  return Json::object()
      .set("f1", Json::number(terms.f1))
      .set("f2", Json::number(terms.f2))
      .set("f3", Json::number(terms.f3))
      .set("f4", Json::number(terms.f4));
}

const char* gradient_style_name(GradientStyle style) {
  return style == GradientStyle::kPaperEq10 ? "paper_eq10" : "analytic";
}

}  // namespace

RunReport::RestartCurve& RunReport::curve(int restart) {
  const auto index = static_cast<std::size_t>(restart < 0 ? 0 : restart);
  if (index >= restarts_.size()) restarts_.resize(index + 1);
  return restarts_[index];
}

void RunReport::on_run_start(const RunInfo& info) {
  if (has_info_) return;  // outermost engine wins (nested coarse solves)
  info_ = info;
  has_info_ = true;
  if (info.restarts > 0) restarts_.reserve(static_cast<std::size_t>(info.restarts));
}

void RunReport::on_restart_start(const RestartStartEvent& e) {
  curve(e.restart).started = true;
}

void RunReport::on_iteration(const IterationEvent& e) {
  curve(e.restart).samples.push_back({e.iteration, e.cost, e.terms});
}

void RunReport::on_harden(const HardenEvent& e) {
  curve(e.restart).harden_total = e.discrete_total;
}

void RunReport::on_refine_pass(const RefinePassEvent& e) {
  if (e.restart < 0) return;  // multilevel projection refits: counted via stages
  RestartCurve& c = curve(e.restart);
  c.refine_passes = e.pass + 1;
  c.refine_moves += e.moves;
}

void RunReport::on_restart_end(const RestartEndEvent& e) {
  RestartCurve& c = curve(e.restart);
  c.finished = true;
  c.soft_terms = e.soft_terms;
  c.discrete_terms = e.discrete_terms;
  c.discrete_total = e.discrete_total;
  c.iterations = e.iterations;
  c.converged = e.converged;
}

void RunReport::on_level(const LevelEvent& e) {
  // A V-cycle emits each level twice: shape + coarsen_ms on the way
  // down, refinement facts on the way up. Merge by level index so the
  // report carries one entry per level with both halves; nonzero fields
  // of the later event win.
  for (LevelEvent& existing : levels_) {
    if (existing.level != e.level) continue;
    if (e.num_vertices != 0) existing.num_vertices = e.num_vertices;
    if (e.num_edges != 0) existing.num_edges = e.num_edges;
    if (e.coarsen_ms != 0.0) existing.coarsen_ms = e.coarsen_ms;
    if (e.refine_ms != 0.0) existing.refine_ms = e.refine_ms;
    if (e.projected_cost != 0.0) existing.projected_cost = e.projected_cost;
    if (e.refined_cost != 0.0) existing.refined_cost = e.refined_cost;
    if (e.refine_moves != 0) existing.refine_moves = e.refine_moves;
    return;
  }
  levels_.push_back(e);
}

void RunReport::on_timer(const TimerEvent& e) {
  for (auto& [name, stage] : stages_) {
    if (name == e.name) {
      stage.total_ms += e.elapsed_ms;
      ++stage.count;
      return;
    }
  }
  stages_.emplace_back(e.name, Stage{e.elapsed_ms, 1});
}

void RunReport::on_counter(const CounterEvent& e) {
  for (auto& [name, value] : counters_) {
    if (name == e.name) {
      value += e.delta;
      return;
    }
  }
  counters_.emplace_back(e.name, e.delta);
}

void RunReport::on_run_end(const RunEndEvent& e) {
  // Keep the outermost outcome, mirroring on_run_start: a nested engine
  // finishing must not overwrite the final result of the outer one, so
  // the last run_end (the outer engine closes after its children) wins.
  end_ = e;
  has_end_ = true;
}

void RunReport::set_circuit(std::string name, int gates, int connections) {
  circuit_ = std::move(name);
  circuit_gates_ = gates;
  circuit_connections_ = connections;
}

void RunReport::set_metrics(const PartitionMetrics& metrics) { metrics_ = metrics; }

double RunReport::stage_ms(const std::string& name) const {
  for (const auto& [stage_name, stage] : stages_) {
    if (stage_name == name) return stage.total_ms;
  }
  return 0.0;
}

long long RunReport::counter(const std::string& name) const {
  for (const auto& [counter_name, value] : counters_) {
    if (counter_name == name) return value;
  }
  return 0;
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  // v2 = v1 plus the structured per-level entries (ratio, stage wall
  // times, refinement facts); every v1 field is unchanged, so v1
  // consumers keep working on v2 documents.
  doc.set("schema", Json::string("sfqpart.run_report.v2"));
  doc.set("engine", Json::string(info_.engine));

  if (!circuit_.empty()) {
    doc.set("circuit",
            Json::object()
                .set("name", Json::string(circuit_))
                .set("gates", Json::number(static_cast<long long>(circuit_gates_)))
                .set("connections",
                     Json::number(static_cast<long long>(circuit_connections_))));
  }

  doc.set("config",
          Json::object()
              .set("num_planes", Json::number(static_cast<long long>(info_.num_planes)))
              .set("restarts", Json::number(static_cast<long long>(info_.restarts)))
              .set("threads", Json::number(static_cast<long long>(info_.threads)))
              .set("seed", Json::number(static_cast<long long>(info_.seed)))
              .set("refine", Json::boolean(info_.refine))
              .set("gradient_style",
                   Json::string(gradient_style_name(info_.gradient_style)))
              .set("weights",
                   Json::object()
                       .set("c1", Json::number(info_.weights.c1))
                       .set("c2", Json::number(info_.weights.c2))
                       .set("c3", Json::number(info_.weights.c3))
                       .set("c4", Json::number(info_.weights.c4))
                       .set("distance_exponent",
                            Json::number(static_cast<long long>(
                                info_.weights.distance_exponent))))
              .set("optimizer",
                   Json::object()
                       .set("learning_rate", Json::number(info_.learning_rate))
                       .set("max_iterations",
                            Json::number(static_cast<long long>(info_.max_iterations)))
                       .set("margin", Json::number(info_.margin))
                       .set("normalize_step", Json::boolean(info_.normalize_step)))
              .set("problem",
                   Json::object()
                       .set("gates",
                            Json::number(static_cast<long long>(info_.problem_gates)))
                       .set("edges", Json::number(info_.problem_edges))));

  Json restarts = Json::array();
  for (std::size_t r = 0; r < restarts_.size(); ++r) {
    const RestartCurve& c = restarts_[r];
    Json samples = Json::array();
    for (const IterationSample& s : c.samples) {
      samples.append(Json::object()
                         .set("iteration", Json::number(static_cast<long long>(s.iteration)))
                         .set("cost", Json::number(s.cost))
                         .set("f1", Json::number(s.terms.f1))
                         .set("f2", Json::number(s.terms.f2))
                         .set("f3", Json::number(s.terms.f3))
                         .set("f4", Json::number(s.terms.f4)));
    }
    restarts.append(Json::object()
                        .set("restart", Json::number(static_cast<long long>(r)))
                        .set("iterations", Json::number(static_cast<long long>(c.iterations)))
                        .set("converged", Json::boolean(c.converged))
                        .set("harden_total", Json::number(c.harden_total))
                        .set("discrete_total", Json::number(c.discrete_total))
                        .set("refine_passes",
                             Json::number(static_cast<long long>(c.refine_passes)))
                        .set("refine_moves",
                             Json::number(static_cast<long long>(c.refine_moves)))
                        .set("soft_terms", terms_json(c.soft_terms))
                        .set("discrete_terms", terms_json(c.discrete_terms))
                        .set("curve", std::move(samples)));
  }
  doc.set("restarts", std::move(restarts));

  Json stages = Json::object();
  for (const auto& [name, stage] : stages_) {
    stages.set(name, Json::object()
                         .set("total_ms", Json::number(stage.total_ms))
                         .set("count", Json::number(stage.count)));
  }
  doc.set("stages", std::move(stages));

  Json counters = Json::object();
  for (const auto& [name, value] : counters_) {
    counters.set(name, Json::number(value));
  }
  doc.set("counters", std::move(counters));

  if (!levels_.empty()) {
    Json levels = Json::array();
    for (const LevelEvent& level : levels_) {
      // Coarsening ratio vs the next finer recorded level (1.0 for the
      // finest or when the finer level is absent).
      double ratio = 1.0;
      for (const LevelEvent& finer : levels_) {
        if (finer.level == level.level - 1 && finer.num_vertices > 0) {
          ratio = static_cast<double>(level.num_vertices) /
                  static_cast<double>(finer.num_vertices);
          break;
        }
      }
      levels.append(
          Json::object()
              .set("level", Json::number(static_cast<long long>(level.level)))
              .set("vertices",
                   Json::number(static_cast<long long>(level.num_vertices)))
              .set("edges", Json::number(level.num_edges))
              .set("ratio", Json::number(ratio))
              .set("coarsen_ms", Json::number(level.coarsen_ms))
              .set("refine_ms", Json::number(level.refine_ms))
              .set("projected_cost", Json::number(level.projected_cost))
              .set("refined_cost", Json::number(level.refined_cost))
              .set("refine_moves",
                   Json::number(static_cast<long long>(level.refine_moves))));
    }
    doc.set("levels", std::move(levels));
  }

  if (has_end_) {
    doc.set("result",
            Json::object()
                .set("winning_restart",
                     Json::number(static_cast<long long>(end_.winning_restart)))
                .set("discrete_total", Json::number(end_.discrete_total))
                .set("iterations", Json::number(static_cast<long long>(end_.iterations)))
                .set("converged", Json::boolean(end_.converged)));
  }

  if (metrics_.has_value()) {
    const PartitionMetrics& m = *metrics_;
    doc.set("metrics",
            Json::object()
                .set("d1", Json::number(m.frac_within(1)))
                .set("d2", Json::number(m.frac_within(2)))
                .set("bcir_ma", Json::number(m.total_bias_ma))
                .set("bmax_ma", Json::number(m.bmax_ma))
                .set("icomp_frac", Json::number(m.icomp_frac()))
                .set("acir_mm2", Json::number(m.total_area_mm2()))
                .set("amax_mm2", Json::number(m.amax_mm2()))
                .set("afs_frac", Json::number(m.afs_frac())));
  }

  return doc;
}

Status RunReport::write_file(const std::string& path, int indent) const {
  std::ofstream file(path);
  if (!file) return Status::error("run report: cannot open " + path);
  file << to_json().dump(indent) << "\n";
  if (!file) return Status::error("run report: write failed for " + path);
  return Status::ok();
}

}  // namespace sfqpart::obs
