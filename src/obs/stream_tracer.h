// StreamTracer — a SolverObserver that prints one line per event.
//
// Backs the CLI's --trace flag: a live, human-readable narration of a run
// on stderr (restart lifecycles, convergence samples, stage timers,
// counters). Iteration events are throttled with `iteration_stride` so a
// 500-iteration descent does not emit 500 lines; every other event prints
// unconditionally. Lines are prefixed "[trace]" to separate them from the
// run's regular output.
#pragma once

#include <cstdio>

#include "obs/observer.h"

namespace sfqpart::obs {

class StreamTracer final : public SolverObserver {
 public:
  // Does not own `out`. A stride of N prints iterations 0, N, 2N, ...
  // (plus nothing else); stride <= 1 prints every iteration.
  explicit StreamTracer(std::FILE* out, int iteration_stride = 25)
      : out_(out), stride_(iteration_stride < 1 ? 1 : iteration_stride) {}

  void on_run_start(const RunInfo& e) override;
  void on_restart_start(const RestartStartEvent& e) override;
  void on_iteration(const IterationEvent& e) override;
  void on_harden(const HardenEvent& e) override;
  void on_refine_pass(const RefinePassEvent& e) override;
  void on_restart_end(const RestartEndEvent& e) override;
  void on_level(const LevelEvent& e) override;
  void on_timer(const TimerEvent& e) override;
  void on_counter(const CounterEvent& e) override;
  void on_run_end(const RunEndEvent& e) override;

 private:
  std::FILE* out_;
  int stride_;
};

}  // namespace sfqpart::obs
