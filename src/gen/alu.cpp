#include "gen/alu.h"

#include <cassert>
#include <vector>

#include "gen/fold.h"
#include "gen/logic_builder.h"
#include "util/strings.h"

namespace sfqpart {

Netlist build_alu(int width) {
  assert(width >= 2);
  LogicBuilder b(str_format("alu%d", width));
  FoldingOps ops(b);
  const auto w = static_cast<std::size_t>(width);

  std::vector<CSig> a(w);
  std::vector<CSig> bb(w);
  for (int i = 0; i < width; ++i) {
    a[static_cast<std::size_t>(i)] = CSig::dyn(b.input(str_format("a[%d]", i)));
  }
  for (int i = 0; i < width; ++i) {
    bb[static_cast<std::size_t>(i)] = CSig::dyn(b.input(str_format("b[%d]", i)));
  }
  const CSig op0 = CSig::dyn(b.input("op[0]"));
  const CSig op1 = CSig::dyn(b.input("op[1]"));

  // Adder/subtractor: the B operand is conditionally inverted and the
  // carry-in set for SUB (op = 01); both share one Kogge-Stone network.
  const CSig subtract = ops.and2(ops.not1(op1), op0);
  std::vector<CSig> b_eff(w);
  for (std::size_t i = 0; i < w; ++i) b_eff[i] = ops.xor2(bb[i], subtract);
  const std::vector<CSig> sum = ks_prefix_add(ops, a, b_eff, subtract);

  // Logic unit.
  std::vector<CSig> and_bits(w);
  std::vector<CSig> xor_bits(w);
  for (std::size_t i = 0; i < w; ++i) {
    and_bits[i] = ops.and2(a[i], bb[i]);
    xor_bits[i] = ops.xor2(a[i], bb[i]);
  }

  // Result mux: op1 selects logic vs arithmetic, op0 selects within.
  std::vector<CSig> y(w);
  for (std::size_t i = 0; i < w; ++i) {
    const CSig logic = ops.mux2(op0, and_bits[i], xor_bits[i]);
    y[i] = ops.mux2(op1, sum[i], logic);
  }

  // Flags: carry is only meaningful for arithmetic; zero covers y.
  const CSig carry = ops.and2(ops.not1(op1), sum[w]);
  CSig any = y[0];
  for (std::size_t i = 1; i < w; ++i) any = ops.or2(any, y[i]);
  const CSig zero = ops.not1(any);

  for (int i = 0; i < width; ++i) {
    assert(!y[static_cast<std::size_t>(i)].is_const());
    b.output(str_format("y[%d]", i), y[static_cast<std::size_t>(i)].sig);
  }
  assert(!carry.is_const() && !zero.is_const());
  b.output("carry", carry.sig);
  b.output("zero", zero.sig);
  return prune_unused(b.take());
}

}  // namespace sfqpart
