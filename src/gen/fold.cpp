#include "gen/fold.h"

#include <cassert>

namespace sfqpart {

CSig FoldingOps::and2(CSig a, CSig b) {
  if (a.konst == 0 || b.konst == 0) return CSig::zero();
  if (a.konst == 1) return b;
  if (b.konst == 1) return a;
  return CSig::dyn(b_.and2(a.sig, b.sig));
}

CSig FoldingOps::or2(CSig a, CSig b) {
  if (a.konst == 1 || b.konst == 1) return CSig::one();
  if (a.konst == 0) return b;
  if (b.konst == 0) return a;
  return CSig::dyn(b_.or2(a.sig, b.sig));
}

CSig FoldingOps::xor2(CSig a, CSig b) {
  if (a.konst == 0) return b;
  if (b.konst == 0) return a;
  if (a.konst == 1) return not1(b);
  if (b.konst == 1) return not1(a);
  return CSig::dyn(b_.xor2(a.sig, b.sig));
}

CSig FoldingOps::not1(CSig a) {
  if (a.is_const()) return a.konst == 0 ? CSig::one() : CSig::zero();
  return CSig::dyn(b_.not1(a.sig));
}

CSig FoldingOps::mux2(CSig sel, CSig if0, CSig if1) {
  if (sel.konst == 0) return if0;
  if (sel.konst == 1) return if1;
  return or2(and2(not1(sel), if0), and2(sel, if1));
}

FoldingOps::SumCarry FoldingOps::half_adder(CSig a, CSig b) {
  return SumCarry{xor2(a, b), and2(a, b)};
}

FoldingOps::SumCarry FoldingOps::full_adder(CSig a, CSig b, CSig c) {
  const CSig ab = xor2(a, b);
  return SumCarry{xor2(ab, c), or2(and2(a, b), and2(ab, c))};
}

std::vector<CSig> ks_prefix_add(FoldingOps& ops, const std::vector<CSig>& x,
                                const std::vector<CSig>& y, CSig cin) {
  assert(x.size() == y.size());
  const std::size_t width = x.size();

  // Bit-level generate/propagate; the carry-in folds into bit 0's generate
  // (g0' = g0 | p0*cin).
  std::vector<CSig> g(width);
  std::vector<CSig> p(width);
  for (std::size_t i = 0; i < width; ++i) {
    g[i] = ops.and2(x[i], y[i]);
    p[i] = ops.xor2(x[i], y[i]);
  }
  std::vector<CSig> gg = g;
  std::vector<CSig> pp = p;
  if (cin.konst != 0) {
    gg[0] = ops.or2(g[0], ops.and2(p[0], cin));
  }
  for (std::size_t dist = 1; dist < width; dist *= 2) {
    std::vector<CSig> g_next = gg;
    std::vector<CSig> p_next = pp;
    for (std::size_t i = dist; i < width; ++i) {
      g_next[i] = ops.or2(gg[i], ops.and2(pp[i], gg[i - dist]));
      p_next[i] = ops.and2(pp[i], pp[i - dist]);
    }
    gg = std::move(g_next);
    pp = std::move(p_next);
  }

  // sum_i = p_i ^ carry_i, carry_0 = cin, carry_{i+1} = G[i:0].
  std::vector<CSig> out(width + 1);
  out[0] = ops.xor2(p[0], cin);
  for (std::size_t i = 1; i < width; ++i) {
    out[i] = ops.xor2(p[i], gg[i - 1]);
  }
  out[width] = gg[width - 1];
  return out;
}

}  // namespace sfqpart
