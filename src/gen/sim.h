// Boolean simulation of netlists.
//
// Used by the generator tests to prove the synthesized circuits compute
// the function they claim (a KSA4 really adds, MULT8 really multiplies).
// DFFs are evaluated transparently (identity), which yields the circuit's
// steady-state word-level function — exactly what path-balancing DFFs and
// splitters preserve, so the same checks validate mapped netlists too.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "netlist/netlist.h"

namespace sfqpart {

// Input/output values keyed by pin name (the "pin:" prefix is stripped).
using SignalValues = std::map<std::string, bool>;

// Evaluates the netlist for one input vector. Asserts that every primary
// input named in the netlist has a value in `inputs`.
SignalValues simulate(const Netlist& netlist, const SignalValues& inputs);

// Word helpers for the arithmetic circuits: bit i of `value` is assigned
// to pin "<prefix>[i]".
void set_word(SignalValues& values, const std::string& prefix, int width,
              std::uint64_t value);
std::uint64_t get_word(const SignalValues& values, const std::string& prefix, int width);

}  // namespace sfqpart
