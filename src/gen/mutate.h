// Deterministic ECO-style netlist mutation.
//
// Produces the "after" netlist of an engineering change order from a
// "before" netlist: a sampled fraction of the partitionable gates is
// removed and a fraction of fresh JTL gates is spliced onto surviving
// outputs. The mutation is rebuild-based (gates are re-added in id
// order), so surviving gates keep their names and relative order —
// exactly what core/delta.h's name-join diffing expects — and the whole
// operation is a pure function of (netlist, params).
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace sfqpart {

struct MutateParams {
  // Fraction of partitionable gates to remove / to add (of the *before*
  // partitionable count). The paper-motivated ECO scenario is ~1% churn.
  double remove_fraction = 0.01;
  double add_fraction = 0.01;
  std::uint64_t seed = 1;
};

struct MutateStats {
  int removed = 0;
  int added = 0;
};

// Applies the mutation. Removed gates disappear along with their pin
// connections (an input pin that loses its driver is left unconnected —
// the partitioner's edge view tolerates dangling pins); added gates are
// JTLs with their input spliced onto a surviving gate's output net and a
// dangling output. Deterministic for fixed params.
Netlist mutate_netlist(const Netlist& before, const MutateParams& params,
                       MutateStats* stats = nullptr);

}  // namespace sfqpart
