#include "gen/random_logic.h"

#include <cassert>
#include <vector>

#include "gen/logic_builder.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sfqpart {

Netlist build_random_logic(const RandomLogicParams& params) {
  assert(params.num_inputs >= 2);
  assert(params.num_outputs >= 1);
  LogicBuilder b(params.name);
  Rng rng(params.seed);
  using Signal = LogicBuilder::Signal;

  std::vector<Signal> pool;
  pool.reserve(static_cast<std::size_t>(params.num_inputs + params.num_gates));
  for (int i = 0; i < params.num_inputs; ++i) {
    pool.push_back(b.input(str_format("x[%d]", i)));
  }

  // Uniform operand choice over the whole pool keeps the expected depth
  // logarithmic in circuit size (~e*ln(G)), the depth class of the ISCAS
  // originals.
  std::vector<int> fanout(pool.size(), 0);
  auto pick = [&]() -> std::size_t { return rng.uniform_index(pool.size()); };
  auto emit = [&](Signal s) {
    pool.push_back(s);
    fanout.push_back(0);
  };

  const double total_weight =
      params.weight_and + params.weight_or + params.weight_xor + params.weight_not;
  assert(total_weight > 0.0);
  for (int g = 0; g < params.num_gates; ++g) {
    const double roll = rng.uniform(0.0, total_weight);
    const std::size_t i = pick();
    ++fanout[i];
    if (roll < params.weight_not) {
      emit(b.not1(pool[i]));
      continue;
    }
    std::size_t j = pick();
    if (j == i) j = (j + 1) % pool.size();  // avoid trivial x op x gates
    ++fanout[j];
    if (roll < params.weight_not + params.weight_and) {
      emit(b.and2(pool[i], pool[j]));
    } else if (roll < params.weight_not + params.weight_and + params.weight_or) {
      emit(b.or2(pool[i], pool[j]));
    } else {
      emit(b.xor2(pool[i], pool[j]));
    }
  }

  // Consolidate: every dangling cone must reach an output (SFQ pulses may
  // not dead-end). Fold the dangling signals into num_outputs OR trees.
  std::vector<Signal> dangling;
  for (std::size_t i = static_cast<std::size_t>(params.num_inputs); i < pool.size(); ++i) {
    if (fanout[i] == 0) dangling.push_back(pool[i]);
  }
  if (dangling.empty()) dangling.push_back(pool.back());
  rng.shuffle(dangling);
  while (static_cast<int>(dangling.size()) > params.num_outputs) {
    const Signal x = dangling.back();
    dangling.pop_back();
    const Signal y = dangling.back();
    dangling.pop_back();
    dangling.insert(dangling.begin() +
                        static_cast<std::ptrdiff_t>(rng.uniform_index(dangling.size() + 1)),
                    b.or2(x, y));
  }
  for (std::size_t i = 0; i < dangling.size(); ++i) {
    b.output(str_format("y[%zu]", i), dangling[i]);
  }
  return prune_unused(b.take());
}

}  // namespace sfqpart
