#include "gen/sim.h"

#include <cassert>

#include "util/strings.h"

namespace sfqpart {
namespace {

std::string pin_name(const Netlist& netlist, GateId g) {
  const std::string& name = netlist.gate(g).name;
  return starts_with(name, "pin:") ? name.substr(4) : name;
}

}  // namespace

SignalValues simulate(const Netlist& netlist, const SignalValues& inputs) {
  std::vector<bool> value(static_cast<std::size_t>(netlist.num_gates()), false);
  SignalValues outputs;
  for (const GateId g : netlist.topological_order()) {
    const Cell& cell = netlist.cell_of(g);
    auto in = [&](int pin) -> bool {
      const NetId net_id = netlist.input_net(g, pin);
      assert(net_id != kInvalidNet && "simulating a netlist with undriven pins");
      return value[static_cast<std::size_t>(netlist.net(net_id).driver.gate)];
    };
    bool out = false;
    switch (cell.kind) {
      case CellKind::kInput: {
        const auto it = inputs.find(pin_name(netlist, g));
        assert(it != inputs.end() && "missing value for primary input");
        out = it->second;
        break;
      }
      case CellKind::kOutput:
        outputs[pin_name(netlist, g)] = in(0);
        break;
      case CellKind::kAnd2:
        out = in(0) && in(1);
        break;
      case CellKind::kOr2:
        out = in(0) || in(1);
        break;
      case CellKind::kXor2:
        out = in(0) != in(1);
        break;
      case CellKind::kNot:
        out = !in(0);
        break;
      case CellKind::kMerge:
        // Pulse merger: in boolean steady state a pulse on either input
        // appears at the output.
        out = in(0) || in(1);
        break;
      case CellKind::kDff:
      case CellKind::kNdro:
      case CellKind::kJtl:
      case CellKind::kSplit:
      case CellKind::kTff:
      case CellKind::kTxDriver:
      case CellKind::kTxReceiver:
        out = in(0);  // transparent for word-level steady state
        break;
    }
    value[static_cast<std::size_t>(g)] = out;
  }
  return outputs;
}

void set_word(SignalValues& values, const std::string& prefix, int width,
              std::uint64_t value) {
  for (int i = 0; i < width; ++i) {
    values[str_format("%s[%d]", prefix.c_str(), i)] = ((value >> i) & 1) != 0;
  }
}

std::uint64_t get_word(const SignalValues& values, const std::string& prefix,
                       int width) {
  std::uint64_t word = 0;
  for (int i = 0; i < width; ++i) {
    const auto it = values.find(str_format("%s[%d]", prefix.c_str(), i));
    assert(it != values.end() && "missing output bit");
    if (it->second) word |= (1ULL << i);
  }
  return word;
}

}  // namespace sfqpart
