#include "gen/scaled.h"

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/strings.h"

namespace sfqpart {
namespace {

// A logical signal's physical drive point: gate output pin `pin` of
// `gate`. Splitter chains hand out one tap per logical consumer.
struct Tap {
  GateId gate = kInvalidGate;
  int pin = 0;
};

// A logical node consuming one or two earlier signals. Signal indices:
// [0, num_inputs) are primary inputs, then one signal per node in order.
struct Node {
  std::int32_t src_a = -1;
  std::int32_t src_b = -1;  // -1 for 1-input (JTL) nodes
};

// Samples a creation distance in [1, limit] with density ~ d^-alpha
// (inverse-CDF of the truncated continuous power law). alpha in (1, 2)
// for rent exponents in (0, 1); the alpha ~= 1 branch guards p -> 1.
std::int64_t sample_distance(Rng& rng, std::int64_t limit, double alpha) {
  if (limit <= 1) return 1;
  const double u = rng.uniform();
  double d;
  if (std::abs(alpha - 1.0) < 1e-9) {
    d = std::exp(u * std::log(static_cast<double>(limit)));
  } else {
    const double one_minus = 1.0 - alpha;
    const double span = std::pow(static_cast<double>(limit), one_minus) - 1.0;
    d = std::pow(1.0 + u * span, 1.0 / one_minus);
  }
  const auto distance = static_cast<std::int64_t>(d);
  return distance < 1 ? 1 : (distance > limit ? limit : distance);
}

}  // namespace

Netlist build_scaled(const ScaledParams& params) {
  assert(params.num_gates >= 16);
  assert(params.rent_exponent > 0.0 && params.rent_exponent <= 1.0);
  assert(params.max_fanout >= 2);
  assert(params.buffer_fraction >= 0.0 && params.buffer_fraction < 1.0);
  Rng rng(params.seed);

  // Sizing. Each node contributes itself plus, on average, about one
  // splitter (mean logical fanout ~2-q) and a fraction of a fold merge;
  // the 2.1 divisor centers the realized partitionable-gate count on the
  // target for the default mix (calibrated by tests/gen/scaled_test).
  const int num_nodes =
      params.num_gates < 36 ? 16 : static_cast<int>(params.num_gates / 2.1);
  const double io_estimate =
      2.5 * std::pow(static_cast<double>(num_nodes), params.rent_exponent);
  const int num_inputs =
      io_estimate < 4.0 ? 4 : static_cast<int>(std::llround(io_estimate * 0.6));
  const int max_outputs =
      io_estimate < 4.0 ? 4 : static_cast<int>(std::llround(io_estimate * 0.4));
  const double alpha = 2.0 - params.rent_exponent;

  // ---- Phase 1: sample the logical DAG (indices only, no Netlist). ----
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(num_nodes) + 64);
  std::vector<std::int32_t> fanout(static_cast<std::size_t>(num_inputs), 0);
  fanout.reserve(static_cast<std::size_t>(num_inputs + num_nodes) + 64);

  // Picks a source for the signal being created at `next_index`: sample a
  // distance back, then, if the landing signal is fanout-saturated, walk
  // toward the most recent signals (the freshest ones are rarely
  // saturated, so the walk is O(1) amortized) and wrap once.
  auto pick_source = [&](std::int64_t next_index) -> std::int32_t {
    const std::int64_t d = sample_distance(rng, next_index, alpha);
    std::int64_t chosen = next_index - d;
    for (std::int64_t probe = 0; probe < next_index; ++probe) {
      const std::int64_t candidate =
          chosen + probe < next_index ? chosen + probe : chosen + probe - next_index;
      if (fanout[static_cast<std::size_t>(candidate)] < params.max_fanout) {
        ++fanout[static_cast<std::size_t>(candidate)];
        return static_cast<std::int32_t>(candidate);
      }
    }
    // Every earlier signal saturated (tiny circuits only): exceed the cap.
    ++fanout[static_cast<std::size_t>(chosen)];
    return static_cast<std::int32_t>(chosen);
  };

  for (int n = 0; n < num_nodes; ++n) {
    const std::int64_t next_index = num_inputs + n;
    Node node;
    node.src_a = pick_source(next_index);
    if (rng.uniform() >= params.buffer_fraction) node.src_b = pick_source(next_index);
    nodes.push_back(node);
    fanout.push_back(0);
  }

  // Fold dangling cones pairwise (in index order, so deterministic) until
  // at most max_outputs signals remain; each surviving one feeds a
  // primary output. SFQ pulses may not dead-end.
  std::vector<std::int32_t> dangling;
  for (std::size_t s = static_cast<std::size_t>(num_inputs); s < fanout.size(); ++s) {
    if (fanout[s] == 0) dangling.push_back(static_cast<std::int32_t>(s));
  }
  if (dangling.empty()) {
    // Fully consumed DAG: tap the most recent signal for the one output.
    dangling.push_back(static_cast<std::int32_t>(fanout.size() - 1));
  }
  std::size_t fold_head = 0;
  while (dangling.size() - fold_head > static_cast<std::size_t>(max_outputs)) {
    Node fold;
    fold.src_a = dangling[fold_head++];
    fold.src_b = dangling[fold_head++];
    ++fanout[static_cast<std::size_t>(fold.src_a)];
    ++fanout[static_cast<std::size_t>(fold.src_b)];
    nodes.push_back(fold);
    fanout.push_back(0);
    dangling.push_back(static_cast<std::int32_t>(fanout.size() - 1));
  }
  const std::size_t num_signals = fanout.size();
  for (std::size_t s = fold_head; s < dangling.size(); ++s) {
    ++fanout[static_cast<std::size_t>(dangling[s])];  // consumed by an output
  }

  // ---- Phase 2: emit the physical netlist in signal order. ----
  // Flat tap table: signal s owns taps [tap_offset[s], tap_offset[s+1]),
  // filled when its driver is emitted, popped by consumers in order.
  std::vector<std::size_t> tap_offset(num_signals + 1, 0);
  for (std::size_t s = 0; s < num_signals; ++s) {
    tap_offset[s + 1] =
        tap_offset[s] + static_cast<std::size_t>(fanout[s] > 0 ? fanout[s] : 0);
  }
  std::vector<Tap> taps(tap_offset[num_signals]);
  std::vector<std::size_t> taps_used(num_signals, 0);

  Netlist netlist;
  netlist.set_name(params.name);
  int next_split = 0;
  // Legalizes signal s: the driver's own pin plus a splitter chain for
  // fanout beyond 1 (each splitter consumes the chain tail, yielding two
  // fresh taps — one handed out, one extending the chain).
  auto place_taps = [&](std::size_t s, GateId driver, int pin) {
    const std::size_t want = tap_offset[s + 1] - tap_offset[s];
    if (want == 0) return;
    Tap tail{driver, pin};
    for (std::size_t t = 0; t + 1 < want; ++t) {
      const GateId split =
          netlist.add_gate_of_kind(str_format("s%d", next_split++), CellKind::kSplit);
      netlist.connect(tail.gate, tail.pin, split, 0);
      taps[tap_offset[s] + t] = Tap{split, 0};
      tail = Tap{split, 1};
    }
    taps[tap_offset[s + 1] - 1] = tail;
  };
  auto take_tap = [&](std::int32_t s) -> Tap {
    const auto index = static_cast<std::size_t>(s);
    assert(taps_used[index] < tap_offset[index + 1] - tap_offset[index]);
    return taps[tap_offset[index] + taps_used[index]++];
  };

  for (int i = 0; i < num_inputs; ++i) {
    const GateId gate =
        netlist.add_gate_of_kind(str_format("x%d", i), CellKind::kInput);
    place_taps(static_cast<std::size_t>(i), gate, 0);
  }
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const Node& node = nodes[n];
    const std::size_t s = static_cast<std::size_t>(num_inputs) + n;
    const bool merge = node.src_b >= 0;
    const GateId gate = netlist.add_gate_of_kind(
        str_format("g%zu", n), merge ? CellKind::kMerge : CellKind::kJtl);
    const Tap a = take_tap(node.src_a);
    netlist.connect(a.gate, a.pin, gate, 0);
    if (merge) {
      const Tap b = take_tap(node.src_b);
      netlist.connect(b.gate, b.pin, gate, 1);
    }
    place_taps(s, gate, 0);
  }
  for (std::size_t s = fold_head; s < dangling.size(); ++s) {
    const GateId out = netlist.add_gate_of_kind(
        str_format("y%zu", s - fold_head), CellKind::kOutput);
    const Tap tap = take_tap(dangling[s]);
    netlist.connect(tap.gate, tap.pin, out, 0);
  }
  return netlist;
}

}  // namespace sfqpart
