// Restoring integer divider generator (the ID4/ID8 circuits of Table I).
#pragma once

#include "netlist/netlist.h"

namespace sfqpart {

// Builds a structural W-bit restoring array divider: inputs n[0..W-1]
// (dividend) and d[0..W-1] (divisor); outputs q[0..W-1] (quotient) and
// r[0..W-1] (remainder). Behaviour for d == 0 is unspecified, as in
// hardware dividers without a zero-detect path.
Netlist build_divider(int width);

}  // namespace sfqpart
