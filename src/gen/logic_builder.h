// Convenience builder for structural (pre-mapping) boolean netlists.
//
// The circuit generators express adders/multipliers/dividers as DAGs of
// idealized two-input operators with unlimited fanout; the SFQ mapper then
// turns them into legal SFQ netlists. Signals are driver output pins.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sfqpart {

class LogicBuilder {
 public:
  using Signal = PinRef;

  explicit LogicBuilder(std::string name);

  // Primary input/output. I/O gates are named "pin:<name>" so the DEF
  // writer round-trips names exactly.
  Signal input(const std::string& name);
  void output(const std::string& name, Signal value);

  Signal and2(Signal a, Signal b);
  Signal or2(Signal a, Signal b);
  Signal xor2(Signal a, Signal b);
  Signal not1(Signal a);
  Signal dff(Signal a);

  // Derived macros.
  Signal mux2(Signal sel, Signal if0, Signal if1);  // sel ? if1 : if0
  // Full adder; returns {sum, carry}.
  struct SumCarry {
    Signal sum;
    Signal carry;
  };
  SumCarry half_adder(Signal a, Signal b);
  SumCarry full_adder(Signal a, Signal b, Signal c);

  const Netlist& netlist() const { return netlist_; }
  // Moves the finished netlist out of the builder.
  Netlist take() { return std::move(netlist_); }

 private:
  Signal op2(CellKind kind, const char* prefix, Signal a, Signal b);
  Signal op1(CellKind kind, const char* prefix, Signal a);

  Netlist netlist_;
  int next_id_ = 0;
};

// Returns a copy of `netlist` without gates that cannot reach any primary
// output (generators may produce dead prefix terms; SFQ netlists must not
// have dangling outputs).
Netlist prune_unused(const Netlist& netlist);

}  // namespace sfqpart
