// Constant-folded signal algebra for the arithmetic generators.
//
// Generators frequently combine dynamic signals with known-zero bits (the
// divider's initial remainder, a Wallace column's missing second row).
// CSig tracks 0/1 constants symbolically and FoldingOps only instantiates
// gates for genuinely dynamic terms, reproducing what logic synthesis
// would emit. ks_prefix_add() is a shared Kogge-Stone adder used to keep
// generator depth logarithmic (deep ripple structures would otherwise
// drown the SFQ mapping in path-balancing DFFs).
#pragma once

#include <vector>

#include "gen/logic_builder.h"

namespace sfqpart {

struct CSig {
  int konst = -1;  // 0 or 1 when constant, -1 when dynamic
  LogicBuilder::Signal sig{};

  static CSig zero() { return CSig{0, {}}; }
  static CSig one() { return CSig{1, {}}; }
  static CSig dyn(LogicBuilder::Signal s) { return CSig{-1, s}; }
  bool is_const() const { return konst >= 0; }
};

class FoldingOps {
 public:
  explicit FoldingOps(LogicBuilder& b) : b_(b) {}

  CSig and2(CSig a, CSig b);
  CSig or2(CSig a, CSig b);
  CSig xor2(CSig a, CSig b);
  CSig not1(CSig a);
  // sel ? if1 : if0 (sel may be constant).
  CSig mux2(CSig sel, CSig if0, CSig if1);

  struct SumCarry {
    CSig sum;
    CSig carry;
  };
  SumCarry half_adder(CSig a, CSig b);
  SumCarry full_adder(CSig a, CSig b, CSig c);

  LogicBuilder& builder() { return b_; }

 private:
  LogicBuilder& b_;
};

// Kogge-Stone parallel-prefix addition x + y + cin over equal-width bit
// vectors (LSB first). Returns width+1 bits; the last is the carry out.
// Logic depth is O(log width).
std::vector<CSig> ks_prefix_add(FoldingOps& ops, const std::vector<CSig>& x,
                                const std::vector<CSig>& y, CSig cin);

}  // namespace sfqpart
