#include "gen/mutate.h"

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/strings.h"

namespace sfqpart {

Netlist mutate_netlist(const Netlist& before, const MutateParams& params,
                       MutateStats* stats) {
  assert(params.remove_fraction >= 0.0 && params.remove_fraction < 1.0);
  assert(params.add_fraction >= 0.0 && params.add_fraction < 1.0);
  Rng rng(params.seed);

  const int partitionable = before.num_partitionable_gates();
  const int remove_count = static_cast<int>(
      std::llround(params.remove_fraction * partitionable));
  const int add_count =
      static_cast<int>(std::llround(params.add_fraction * partitionable));

  // Sample the removals: shuffle the partitionable ids, drop the prefix.
  std::vector<GateId> candidates;
  candidates.reserve(static_cast<std::size_t>(partitionable));
  for (GateId id = 0; id < before.num_gates(); ++id) {
    if (before.is_partitionable(id)) candidates.push_back(id);
  }
  rng.shuffle(candidates);
  std::vector<char> removed(static_cast<std::size_t>(before.num_gates()), 0);
  for (int i = 0; i < remove_count && i < static_cast<int>(candidates.size());
       ++i) {
    removed[static_cast<std::size_t>(candidates[static_cast<std::size_t>(i)])] =
        1;
  }

  // Rebuild: surviving gates in id order (names and relative order are
  // preserved — core/delta.h joins the two netlists by gate name).
  Netlist after(&before.library(), before.name());
  std::vector<GateId> new_id(static_cast<std::size_t>(before.num_gates()),
                             kInvalidGate);
  for (GateId id = 0; id < before.num_gates(); ++id) {
    if (removed[static_cast<std::size_t>(id)]) continue;
    new_id[static_cast<std::size_t>(id)] =
        after.add_gate(before.gate(id).name.view(), before.gate(id).cell);
  }
  for (NetId n = 0; n < before.num_nets(); ++n) {
    const Net& net = before.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    const GateId from = new_id[static_cast<std::size_t>(net.driver.gate)];
    if (from == kInvalidGate) continue;
    for (const PinRef& sink : net.sinks) {
      const GateId to = new_id[static_cast<std::size_t>(sink.gate)];
      if (to == kInvalidGate) continue;
      if (sink.pin == kClockPin) {
        after.connect_clock(from, net.driver.pin, to);
      } else {
        after.connect(from, net.driver.pin, to, sink.pin);
      }
    }
  }

  // Additions: fresh JTLs spliced onto surviving partitionable outputs.
  // Sources are drawn from the *before* candidate list (minus removals),
  // so the draw sequence is independent of the rebuild.
  std::vector<GateId> sources;
  sources.reserve(candidates.size());
  for (const GateId id : candidates) {
    if (removed[static_cast<std::size_t>(id)]) continue;
    if (before.cell_of(id).num_outputs <= 0) continue;
    sources.push_back(new_id[static_cast<std::size_t>(id)]);
  }
  int added = 0;
  if (!sources.empty()) {
    for (int i = 0; i < add_count; ++i) {
      std::string name = str_format("eco_add_%d", i);
      // Paranoia against a colliding name in the source netlist.
      while (after.find_gate(name) != kInvalidGate) name += "_";
      const GateId jtl = after.add_gate_of_kind(name, CellKind::kJtl);
      const GateId source =
          sources[static_cast<std::size_t>(rng.uniform_index(sources.size()))];
      after.connect(source, 0, jtl, 0);
      ++added;
    }
  }

  if (stats != nullptr) {
    stats->removed = remove_count < static_cast<int>(candidates.size())
                         ? remove_count
                         : static_cast<int>(candidates.size());
    stats->added = added;
  }
  return after;
}

}  // namespace sfqpart
