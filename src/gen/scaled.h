// Scaled synthetic-netlist generator for capacity work (10^5..10^7 gates).
//
// The Table I circuits top out near 10^4 gates, which is the right scale
// for validating the paper's numbers but far below what the V-cycle
// engine exists for. build_scaled() emits a physical SFQ netlist of a
// requested size directly — no logic synthesis, no mapper pass — so a
// million-gate instance materializes in seconds:
//
//   * unclocked cells only (merge / JTL / splitter), so no clock tree is
//     needed and every gate is partitionable;
//   * logical fanout is sampled per signal and legalized on the spot
//     with splitter chains, keeping every physical output single-sink;
//   * connection locality follows a truncated power law over creation
//     distance whose exponent is derived from the Rent exponent knob
//     (alpha = 2 - p; larger p means longer wires), the standard
//     Donath-style link between Rent's rule and wire-length scaling.
//
// Output is deterministic in the seed and independent of thread count.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace sfqpart {

struct ScaledParams {
  std::string name = "scaled";
  // Target number of partitionable gates (merges + JTLs + splitters;
  // interface cells excluded). The realized count lands within a few
  // percent of the target — splitter-chain legalization and dangling-cone
  // folding make an exact hit impossible to guarantee.
  int num_gates = 100000;
  // Rent exponent p of the synthetic hierarchy, in (0, 1). Controls both
  // the I/O count (k * G^p) and the wire-length distribution (power-law
  // exponent 2 - p over creation distance). Typical gate-level logic
  // sits near 0.6..0.75.
  double rent_exponent = 0.65;
  // Cap on the logical fanout of any signal (the leaf count of its
  // splitter tree). Best-effort: exceeded only in degenerate cases where
  // every earlier signal is already saturated.
  int max_fanout = 4;
  // Share of 1-input JTL buffer stages in the logic mix; the remainder
  // are 2-input merges.
  double buffer_fraction = 0.15;
  std::uint64_t seed = 1;
};

Netlist build_scaled(const ScaledParams& params);

}  // namespace sfqpart
