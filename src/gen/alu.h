// ALU generator: a realistic control+datapath circuit (the function class
// of ISCAS85 C3540, an 8-bit ALU) built from the library's own adder.
//
// Operations, selected by op[1:0]:
//   00  ADD   a + b            (Kogge-Stone carry network)
//   01  SUB   a - b            (two's complement through the same adder)
//   10  AND   a & b
//   11  XOR   a ^ b
// Outputs: y[0..W-1] and flags "zero" and "carry".
#pragma once

#include "netlist/netlist.h"

namespace sfqpart {

Netlist build_alu(int width);

}  // namespace sfqpart
