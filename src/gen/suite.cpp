#include "gen/suite.h"

#include <cassert>

#include "gen/alu.h"
#include "gen/divider.h"
#include "gen/ksa.h"
#include "gen/multiplier.h"
#include "gen/random_logic.h"

namespace sfqpart {
namespace {

// ISCAS85-class synthetic stand-ins: I/O counts follow the originals;
// num_gates is calibrated so the SFQ-mapped size lands near the paper's
// Table I gate counts (see gen/random_logic.h for the substitution note).
RandomLogicParams iscas_params(const char* name, int inputs, int outputs,
                               int num_gates, std::uint64_t seed) {
  RandomLogicParams params;
  params.name = name;
  params.num_inputs = inputs;
  params.num_outputs = outputs;
  params.num_gates = num_gates;
  params.seed = seed;
  return params;
}

std::vector<SuiteEntry> make_suite() {
  std::vector<SuiteEntry> suite;
  auto add = [&suite](std::string name, std::string description,
                      PaperTable1Row paper, std::function<Netlist()> build) {
    suite.push_back(SuiteEntry{std::move(name), std::move(description),
                               paper, std::move(build)});
  };

  // Published Table I rows: gates, connections, d<=1, d<=2, B_cir, B_max,
  // I_comp, A_cir, A_max, A_FS.
  add("ksa4", "4-bit Kogge-Stone adder",
      {93, 118, 0.746, 0.975, 80.089, 17.50, 0.0924, 0.4512, 0.0972, 0.0771},
      [] { return build_ksa(4); });
  add("ksa8", "8-bit Kogge-Stone adder",
      {252, 320, 0.703, 0.944, 216.72, 45.27, 0.0443, 1.2192, 0.2520, 0.0335},
      [] { return build_ksa(8); });
  add("ksa16", "16-bit Kogge-Stone adder",
      {650, 826, 0.665, 0.887, 557.66, 118.09, 0.0588, 3.1392, 0.6600, 0.0512},
      [] { return build_ksa(16); });
  add("ksa32", "32-bit Kogge-Stone adder",
      {1592, 2029, 0.644, 0.859, 1362.55, 304.07, 0.1158, 7.6800, 1.7028, 0.1086},
      [] { return build_ksa(32); });
  add("mult4", "4x4 array multiplier",
      {254, 310, 0.732, 0.932, 222.03, 47.70, 0.0742, 1.2192, 0.2616, 0.0728},
      [] { return build_multiplier(4); });
  add("mult8", "8x8 array multiplier",
      {1374, 1678, 0.636, 0.856, 1201.32, 256.85, 0.0690, 6.5952, 1.4004, 0.0617},
      [] { return build_multiplier(8); });
  add("id4", "4-bit restoring integer divider",
      {553, 678, 0.711, 0.914, 467.00, 100.29, 0.0669, 2.6796, 0.5700, 0.0636},
      [] { return build_divider(4); });
  add("id8", "8-bit restoring integer divider",
      {3209, 3705, 0.582, 0.816, 2783.89, 622.39, 0.1178, 15.5400, 3.4860, 0.1216},
      [] { return build_divider(8); });
  add("c432", "ISCAS85 C432-class random logic (27-channel interrupt controller)",
      {1216, 1434, 0.650, 0.875, 1045.17, 222.31, 0.0635, 5.9448, 1.2792, 0.0759},
      [] { return build_random_logic(iscas_params("c432", 36, 7, 260, 432)); });
  add("c499", "ISCAS85 C499-class random logic (32-bit SEC circuit)",
      {991, 1318, 0.635, 0.863, 834.92, 178.17, 0.0670, 4.8060, 1.0212, 0.0624},
      [] { return build_random_logic(iscas_params("c499", 41, 32, 220, 499)); });
  add("c1355", "ISCAS85 C1355-class random logic (32-bit SEC circuit)",
      {1046, 1367, 0.618, 0.854, 883.35, 192.41, 0.0897, 5.0808, 1.1076, 0.0900},
      [] { return build_random_logic(iscas_params("c1355", 41, 32, 230, 1355)); });
  add("c1908", "ISCAS85 C1908-class random logic (16-bit SEC/DED circuit)",
      {1695, 2095, 0.600, 0.850, 1447.03, 328.53, 0.1352, 8.2536, 1.8804, 0.1391},
      [] { return build_random_logic(iscas_params("c1908", 33, 25, 370, 1908)); });
  add("c3540", "ISCAS85 C3540-class random logic (8-bit ALU)",
      {3792, 4927, 0.540, 0.777, 3193.23, 670.01, 0.0491, 18.5556, 3.8784, 0.0451},
      [] { return build_random_logic(iscas_params("c3540", 50, 22, 760, 3540)); });
  return suite;
}

}  // namespace

const std::vector<SuiteEntry>& benchmark_suite() {
  static const std::vector<SuiteEntry> suite = make_suite();
  return suite;
}

const std::vector<SuiteEntry>& extra_circuits() {
  static const std::vector<SuiteEntry> extras = [] {
    std::vector<SuiteEntry> out;
    for (const int width : {4, 8, 16}) {
      out.push_back(SuiteEntry{
          "alu" + std::to_string(width),
          std::to_string(width) + "-bit ALU (add/sub/and/xor + flags)",
          PaperTable1Row{},  // not part of the paper's table
          [width] { return build_alu(width); }});
    }
    return out;
  }();
  return extras;
}

const SuiteEntry* find_benchmark(const std::string& name) {
  for (const SuiteEntry& entry : benchmark_suite()) {
    if (entry.name == name) return &entry;
  }
  for (const SuiteEntry& entry : extra_circuits()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Netlist build_mapped(const SuiteEntry& entry, const SfqMapperOptions& options) {
  return map_to_sfq(entry.build_structural(), options);
}

Netlist build_mapped(const std::string& name, const SfqMapperOptions& options) {
  const SuiteEntry* entry = find_benchmark(name);
  assert(entry != nullptr && "unknown benchmark name");
  return build_mapped(*entry, options);
}

}  // namespace sfqpart
