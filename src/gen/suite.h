// Benchmark suite registry: the 13 circuits of Table I, regenerated.
//
// Each entry carries the paper's published Table I row (for the
// paper-vs-measured comparisons in EXPERIMENTS.md and the benches) and a
// builder for our regenerated structural netlist. build_mapped() runs the
// builder through the SFQ mapper, producing the netlist the partitioner
// consumes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sfq/mapper.h"

namespace sfqpart {

// Published Table I values (K = 5) for reference printing. Percentages are
// stored as fractions of 1.
struct PaperTable1Row {
  int gates = 0;
  int connections = 0;
  double d1 = 0.0;        // share of connections with distance <= 1
  double d2 = 0.0;        // ... distance <= 2
  double bias_ma = 0.0;   // B_cir
  double bmax_ma = 0.0;   // B_max
  double icomp = 0.0;     // I_comp / B_cir
  double area_mm2 = 0.0;  // A_cir
  double amax_mm2 = 0.0;  // A_max
  double afs = 0.0;       // A_FS
};

struct SuiteEntry {
  std::string name;
  std::string description;
  PaperTable1Row paper;
  std::function<Netlist()> build_structural;
};

// All 13 circuits, in Table I order.
const std::vector<SuiteEntry>& benchmark_suite();

// Additional circuits beyond the paper's table (paper fields zeroed):
// ALUs of several widths, for users and the extension benches.
const std::vector<SuiteEntry>& extra_circuits();

// Looks up both the paper suite and the extras; nullptr if unknown.
// Names are lowercase ("ksa4", "c432", "alu8", ...).
const SuiteEntry* find_benchmark(const std::string& name);

// Builds the SFQ-mapped physical netlist for a suite entry.
Netlist build_mapped(const SuiteEntry& entry, const SfqMapperOptions& options = {});
Netlist build_mapped(const std::string& name, const SfqMapperOptions& options = {});

}  // namespace sfqpart
