#include "gen/ksa.h"

#include <cassert>
#include <vector>

#include "gen/logic_builder.h"
#include "util/strings.h"

namespace sfqpart {

Netlist build_ksa(int width) {
  assert(width >= 1);
  LogicBuilder b(str_format("ksa%d", width));
  using Signal = LogicBuilder::Signal;

  std::vector<Signal> a(static_cast<std::size_t>(width));
  std::vector<Signal> bb(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    a[static_cast<std::size_t>(i)] = b.input(str_format("a[%d]", i));
    bb[static_cast<std::size_t>(i)] = b.input(str_format("b[%d]", i));
  }

  // Preprocessing: generate/propagate per bit.
  std::vector<Signal> g(static_cast<std::size_t>(width));
  std::vector<Signal> p(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    g[static_cast<std::size_t>(i)] = b.and2(a[static_cast<std::size_t>(i)],
                                            bb[static_cast<std::size_t>(i)]);
    p[static_cast<std::size_t>(i)] = b.xor2(a[static_cast<std::size_t>(i)],
                                            bb[static_cast<std::size_t>(i)]);
  }

  // Parallel-prefix tree: after the last level, g[i] is the carry out of
  // bit i (i.e. the group generate G[i:0]). Propagate combines use AND of
  // XOR-propagates, which is valid for carry computation.
  std::vector<Signal> gg = g;
  std::vector<Signal> pp = p;
  for (int dist = 1; dist < width; dist *= 2) {
    std::vector<Signal> g_next = gg;
    std::vector<Signal> p_next = pp;
    for (int i = dist; i < width; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const auto li = static_cast<std::size_t>(i - dist);
      g_next[ui] = b.or2(gg[ui], b.and2(pp[ui], gg[li]));
      p_next[ui] = b.and2(pp[ui], pp[li]);
    }
    gg = std::move(g_next);
    pp = std::move(p_next);
  }

  // Postprocessing: s[0] = p[0]; s[i] = p[i] xor carry[i-1]; cout = carry[W-1].
  b.output("s[0]", p[0]);
  for (int i = 1; i < width; ++i) {
    b.output(str_format("s[%d]", i),
             b.xor2(p[static_cast<std::size_t>(i)], gg[static_cast<std::size_t>(i - 1)]));
  }
  b.output("cout", gg[static_cast<std::size_t>(width - 1)]);

  // The last prefix level's propagate terms are dead; drop them.
  return prune_unused(b.take());
}

}  // namespace sfqpart
