// Synthetic random-logic generator.
//
// Stands in for the ISCAS85 control/datapath circuits of the paper's
// benchmark suite (C432..C3540), which are not redistributable in their
// SFQ-mapped DEF form. Produces a seeded random DAG of two-input
// operators whose size, I/O counts and depth class match the originals
// (see DESIGN.md section 4 for the substitution rationale).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace sfqpart {

struct RandomLogicParams {
  std::string name = "rand";
  int num_inputs = 16;
  int num_outputs = 8;
  // Number of random operator gates generated before output consolidation
  // (OR trees that fold dangling cones into the outputs add a few percent).
  int num_gates = 200;
  std::uint64_t seed = 1;
  // Operator mix; weights are normalized internally.
  double weight_and = 0.35;
  double weight_or = 0.25;
  double weight_xor = 0.20;
  double weight_not = 0.20;
};

Netlist build_random_logic(const RandomLogicParams& params);

}  // namespace sfqpart
