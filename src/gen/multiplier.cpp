#include "gen/multiplier.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "gen/fold.h"
#include "gen/logic_builder.h"
#include "util/strings.h"

namespace sfqpart {

Netlist build_multiplier(int width) {
  assert(width >= 2);
  LogicBuilder b(str_format("mult%d", width));
  FoldingOps ops(b);

  std::vector<CSig> a(static_cast<std::size_t>(width));
  std::vector<CSig> bb(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    a[static_cast<std::size_t>(i)] = CSig::dyn(b.input(str_format("a[%d]", i)));
  }
  for (int i = 0; i < width; ++i) {
    bb[static_cast<std::size_t>(i)] = CSig::dyn(b.input(str_format("b[%d]", i)));
  }

  // Partial products by column: column c holds every a[i]&b[j] with i+j==c.
  const std::size_t num_cols = static_cast<std::size_t>(2 * width);
  std::vector<std::vector<CSig>> col(num_cols + 1);
  for (int j = 0; j < width; ++j) {
    for (int i = 0; i < width; ++i) {
      col[static_cast<std::size_t>(i + j)].push_back(
          ops.and2(a[static_cast<std::size_t>(i)], bb[static_cast<std::size_t>(j)]));
    }
  }

  // Wallace-tree reduction: each round compresses every column with full
  // adders (3->1) and half adders (2->1) *in parallel*, so the tree depth
  // is O(log width) -- crucial for SFQ, where every level of extra depth
  // costs a path-balancing DFF row.
  auto max_height = [&col] {
    std::size_t h = 0;
    for (const auto& bits : col) h = std::max(h, bits.size());
    return h;
  };
  while (max_height() > 2) {
    std::vector<std::vector<CSig>> next(col.size());
    for (std::size_t c = 0; c < col.size(); ++c) {
      const auto& bits = col[c];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        const auto fa = ops.full_adder(bits[i], bits[i + 1], bits[i + 2]);
        next[c].push_back(fa.sum);
        assert(c + 1 < next.size());
        next[c + 1].push_back(fa.carry);
        i += 3;
      }
      if (bits.size() - i == 2) {
        const auto ha = ops.half_adder(bits[i], bits[i + 1]);
        next[c].push_back(ha.sum);
        assert(c + 1 < next.size());
        next[c + 1].push_back(ha.carry);
      } else if (bits.size() - i == 1) {
        next[c].push_back(bits[i]);
      }
    }
    col = std::move(next);
  }

  // Final carry-propagate addition of the two remaining rows with a
  // Kogge-Stone prefix adder. The carry out of bit 2W-1 is arithmetically
  // zero (the product fits 2W bits); any structurally dangling prefix
  // terms are pruned below.
  std::vector<CSig> row_x(num_cols, CSig::zero());
  std::vector<CSig> row_y(num_cols, CSig::zero());
  for (std::size_t c = 0; c < num_cols; ++c) {
    if (!col[c].empty()) row_x[c] = col[c][0];
    if (col[c].size() > 1) row_y[c] = col[c][1];
    assert(col[c].size() <= 2);
  }
  assert(col[num_cols].empty() && "carry out of the top product column");
  const std::vector<CSig> sum = ks_prefix_add(ops, row_x, row_y, CSig::zero());

  for (std::size_t c = 0; c < num_cols; ++c) {
    assert(!sum[c].is_const() && "degenerate product bit");
    b.output(str_format("p[%zu]", c), sum[c].sig);
  }
  return prune_unused(b.take());
}

}  // namespace sfqpart
