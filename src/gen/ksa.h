// Kogge-Stone adder generator (the KSA4..KSA32 circuits of Table I).
#pragma once

#include "netlist/netlist.h"

namespace sfqpart {

// Builds a structural W-bit Kogge-Stone adder: inputs a[0..W-1], b[0..W-1];
// outputs s[0..W-1] and carry-out "cout". Use map_to_sfq() to obtain the
// physical SFQ netlist.
Netlist build_ksa(int width);

}  // namespace sfqpart
