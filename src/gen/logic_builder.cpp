#include "gen/logic_builder.h"

#include <cassert>

namespace sfqpart {

LogicBuilder::LogicBuilder(std::string name)
    : netlist_(&structural_library(), std::move(name)) {}

LogicBuilder::Signal LogicBuilder::input(const std::string& name) {
  const GateId g = netlist_.add_gate_of_kind("pin:" + name, CellKind::kInput);
  return Signal{g, 0};
}

void LogicBuilder::output(const std::string& name, Signal value) {
  const GateId g = netlist_.add_gate_of_kind("pin:" + name, CellKind::kOutput);
  netlist_.connect(value.gate, value.pin, g, 0);
}

LogicBuilder::Signal LogicBuilder::op2(CellKind kind, const char* prefix, Signal a,
                                       Signal b) {
  const GateId g = netlist_.add_gate_of_kind(
      std::string(prefix) + "_" + std::to_string(next_id_++), kind);
  netlist_.connect(a.gate, a.pin, g, 0);
  netlist_.connect(b.gate, b.pin, g, 1);
  return Signal{g, 0};
}

LogicBuilder::Signal LogicBuilder::op1(CellKind kind, const char* prefix, Signal a) {
  const GateId g = netlist_.add_gate_of_kind(
      std::string(prefix) + "_" + std::to_string(next_id_++), kind);
  netlist_.connect(a.gate, a.pin, g, 0);
  return Signal{g, 0};
}

LogicBuilder::Signal LogicBuilder::and2(Signal a, Signal b) {
  return op2(CellKind::kAnd2, "and", a, b);
}
LogicBuilder::Signal LogicBuilder::or2(Signal a, Signal b) {
  return op2(CellKind::kOr2, "or", a, b);
}
LogicBuilder::Signal LogicBuilder::xor2(Signal a, Signal b) {
  return op2(CellKind::kXor2, "xor", a, b);
}
LogicBuilder::Signal LogicBuilder::not1(Signal a) {
  return op1(CellKind::kNot, "not", a);
}
LogicBuilder::Signal LogicBuilder::dff(Signal a) {
  return op1(CellKind::kDff, "dff", a);
}

LogicBuilder::Signal LogicBuilder::mux2(Signal sel, Signal if0, Signal if1) {
  const Signal not_sel = not1(sel);
  return or2(and2(not_sel, if0), and2(sel, if1));
}

LogicBuilder::SumCarry LogicBuilder::half_adder(Signal a, Signal b) {
  return SumCarry{xor2(a, b), and2(a, b)};
}

LogicBuilder::SumCarry LogicBuilder::full_adder(Signal a, Signal b, Signal c) {
  const Signal ab = xor2(a, b);
  const Signal sum = xor2(ab, c);
  const Signal carry = or2(and2(a, b), and2(ab, c));
  return SumCarry{sum, carry};
}

Netlist prune_unused(const Netlist& netlist) {
  // Backward reachability from primary outputs (and from gates with no
  // outputs at all, e.g. kOutput cells) over data and clock edges.
  std::vector<bool> keep(static_cast<std::size_t>(netlist.num_gates()), false);
  std::vector<GateId> stack;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.cell_of(g).kind == CellKind::kOutput) {
      keep[static_cast<std::size_t>(g)] = true;
      stack.push_back(g);
    }
  }
  // Primary inputs are always kept: they are the chip interface even when
  // a particular input ends up unused by the pruned logic.
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.cell_of(g).kind == CellKind::kInput) {
      keep[static_cast<std::size_t>(g)] = true;
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    const Cell& cell = netlist.cell_of(g);
    auto visit = [&](NetId net_id) {
      if (net_id == kInvalidNet) return;
      const GateId driver = netlist.net(net_id).driver.gate;
      if (driver == kInvalidGate || keep[static_cast<std::size_t>(driver)]) return;
      keep[static_cast<std::size_t>(driver)] = true;
      stack.push_back(driver);
    };
    for (int pin = 0; pin < cell.num_inputs; ++pin) visit(netlist.input_net(g, pin));
    visit(netlist.clock_net(g));
  }

  Netlist pruned(&netlist.library(), netlist.name());
  std::vector<GateId> new_id(static_cast<std::size_t>(netlist.num_gates()), kInvalidGate);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (keep[static_cast<std::size_t>(g)]) {
      new_id[static_cast<std::size_t>(g)] =
          pruned.add_gate(netlist.gate(g).name, netlist.gate(g).cell);
    }
  }
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    const GateId driver = new_id[static_cast<std::size_t>(net.driver.gate)];
    if (driver == kInvalidGate) continue;
    for (const PinRef& sink : net.sinks) {
      const GateId sink_gate = new_id[static_cast<std::size_t>(sink.gate)];
      if (sink_gate == kInvalidGate) continue;
      if (sink.pin == kClockPin) {
        pruned.connect_clock(driver, net.driver.pin, sink_gate);
      } else {
        pruned.connect(driver, net.driver.pin, sink_gate, sink.pin);
      }
    }
  }
  return pruned;
}

}  // namespace sfqpart
