#include "gen/divider.h"

#include <cassert>
#include <vector>

#include "gen/fold.h"
#include "gen/logic_builder.h"
#include "util/strings.h"

namespace sfqpart {

Netlist build_divider(int width) {
  assert(width >= 2);
  LogicBuilder b(str_format("id%d", width));
  FoldingOps ops(b);
  const auto w = static_cast<std::size_t>(width);

  std::vector<CSig> n(w);
  std::vector<CSig> d(w);
  for (int i = 0; i < width; ++i) {
    n[static_cast<std::size_t>(i)] = CSig::dyn(b.input(str_format("n[%d]", i)));
  }
  for (int i = 0; i < width; ++i) {
    d[static_cast<std::size_t>(i)] = CSig::dyn(b.input(str_format("d[%d]", i)));
  }

  // ~Dext once: the subtraction in every row is Rext + ~Dext + 1 (two's
  // complement), computed with a Kogge-Stone prefix adder so a row costs
  // O(log W) depth instead of a W-deep borrow ripple.
  std::vector<CSig> not_dext(w + 1);
  for (std::size_t j = 0; j < w; ++j) not_dext[j] = ops.not1(d[j]);
  not_dext[w] = CSig::one();  // ~0

  // Restoring division, one row per quotient bit (MSB first):
  //   Rext = (R << 1) | n[i];  S = Rext - D;
  //   q[i] = (S >= 0) = carry out;  R = q[i] ? S : Rext.
  std::vector<CSig> r(w, CSig::zero());
  std::vector<CSig> q(w);
  for (int i = width - 1; i >= 0; --i) {
    std::vector<CSig> rext(w + 1);
    rext[0] = n[static_cast<std::size_t>(i)];
    for (std::size_t j = 0; j < w; ++j) rext[j + 1] = r[j];

    const std::vector<CSig> s = ks_prefix_add(ops, rext, not_dext, CSig::one());
    q[static_cast<std::size_t>(i)] = s[w + 1];  // carry out <=> Rext >= D

    // The invariant R < D keeps the remainder in W bits, so bit W of the
    // selected value is always zero and only bits 0..W-1 are kept.
    for (std::size_t j = 0; j < w; ++j) {
      r[j] = ops.mux2(q[static_cast<std::size_t>(i)], rext[j], s[j]);
    }
  }

  for (int i = 0; i < width; ++i) {
    assert(!q[static_cast<std::size_t>(i)].is_const() && "degenerate quotient bit");
    assert(!r[static_cast<std::size_t>(i)].is_const() && "degenerate remainder bit");
    b.output(str_format("q[%d]", i), q[static_cast<std::size_t>(i)].sig);
    b.output(str_format("r[%d]", i), r[static_cast<std::size_t>(i)].sig);
  }
  return prune_unused(b.take());
}

}  // namespace sfqpart
