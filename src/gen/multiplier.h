// Array multiplier generator (the MULT4/MULT8 circuits of Table I).
#pragma once

#include "netlist/netlist.h"

namespace sfqpart {

// Builds a structural W x W array multiplier: inputs a[0..W-1], b[0..W-1];
// outputs p[0..2W-1] (the full product).
Netlist build_multiplier(int width);

}  // namespace sfqpart
