// Cell library registry.
//
// The paper's benchmark suite ships per-gate bias currents (b_i) and areas
// (a_i); our substitute is default_sfq_library(), a realistic RSFQ cell set
// calibrated so that circuit-level averages match what Table I implies
// (~0.86 mA and ~4.9e-3 mm^2 per gate; see DESIGN.md section 2).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell.h"

namespace sfqpart {

class CellLibrary {
 public:
  CellLibrary() = default;
  explicit CellLibrary(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Registers a cell; returns its index. Cell names must be unique.
  int add_cell(Cell cell);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const Cell& cell(int index) const { return cells_.at(static_cast<std::size_t>(index)); }

  // Lookup by library name; nullopt if absent.
  std::optional<int> find(const std::string& name) const;

  // First cell of the given kind; nullopt if the library has none.
  std::optional<int> find_kind(CellKind kind) const;

  const std::vector<Cell>& cells() const { return cells_; }

  // Multiplies every bias current / area by the given factors. Used to
  // calibrate the library against published circuit-level totals.
  void scale(double bias_factor, double area_factor);

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, int> by_name_;
};

// Physical SFQ library used by all benchmarks ("usc10k": a generic
// 10 kA/cm^2 Nb process cell set).
const CellLibrary& default_sfq_library();

// Idealized structural library (unlimited fanout, no physical data) used
// by the circuit generators before technology mapping.
const CellLibrary& structural_library();

}  // namespace sfqpart
