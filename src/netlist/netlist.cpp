#include "netlist/netlist.h"

#include <algorithm>
#include <cassert>

namespace sfqpart {

Netlist::Netlist(const CellLibrary* library, std::string name)
    : name_(std::move(name)),
      library_(library),
      arena_(std::make_shared<NameArena>()) {
  assert(library_ != nullptr);
}

GateId Netlist::add_gate(std::string_view name, int cell_index) {
  assert(cell_index >= 0 && cell_index < library_->num_cells());
  const auto name_of = [this](GateId g) {
    return gates_[static_cast<std::size_t>(g)].name.view();
  };
  assert(gate_name_index_.find(name, name_of) == NameIndex::kAbsent &&
         "duplicate gate name");
  const GateId id = static_cast<GateId>(gates_.size());
  const NameRef interned = arena_->intern(name);
  gates_.push_back(Gate{interned, cell_index});
  gate_name_index_.insert(interned.view(), id, name_of);
  const Cell& cell = library_->cell(cell_index);
  input_nets_.emplace_back(static_cast<std::size_t>(cell.num_inputs), kInvalidNet);
  output_nets_.emplace_back(static_cast<std::size_t>(cell.num_outputs), kInvalidNet);
  clock_nets_.push_back(kInvalidNet);
  return id;
}

GateId Netlist::add_gate_of_kind(std::string_view name, CellKind kind) {
  const auto cell = library_->find_kind(kind);
  assert(cell.has_value() && "library has no cell of requested kind");
  return add_gate(name, *cell);
}

NetId Netlist::net_for_output(GateId from, int out_pin, std::string_view fallback_name) {
  auto& outputs = output_nets_.at(static_cast<std::size_t>(from));
  assert(out_pin >= 0 && out_pin < static_cast<int>(outputs.size()));
  NetId& slot = outputs[static_cast<std::size_t>(out_pin)];
  if (slot == kInvalidNet) {
    slot = static_cast<NetId>(nets_.size());
    Net net;
    net.name = arena_->intern(fallback_name);
    net.driver = PinRef{from, out_pin};
    nets_.push_back(std::move(net));
  }
  return slot;
}

NetId Netlist::connect(GateId from, int out_pin, GateId to, int in_pin) {
  const Cell& sink_cell = cell_of(to);
  assert(in_pin >= 0 && in_pin < sink_cell.num_inputs);
  (void)sink_cell;
  auto& inputs = input_nets_.at(static_cast<std::size_t>(to));
  assert(inputs[static_cast<std::size_t>(in_pin)] == kInvalidNet &&
         "input pin already connected");
  const NetId net_id =
      net_for_output(from, out_pin, gate(from).name + "_o" + std::to_string(out_pin));
  nets_[static_cast<std::size_t>(net_id)].sinks.push_back(PinRef{to, in_pin});
  inputs[static_cast<std::size_t>(in_pin)] = net_id;
  return net_id;
}

NetId Netlist::connect_clock(GateId from, int out_pin, GateId to) {
  assert(cell_of(to).is_clocked() && "clock connection to unclocked cell");
  assert(clock_nets_.at(static_cast<std::size_t>(to)) == kInvalidNet &&
         "clock pin already connected");
  const NetId net_id =
      net_for_output(from, out_pin, gate(from).name + "_o" + std::to_string(out_pin));
  nets_[static_cast<std::size_t>(net_id)].sinks.push_back(PinRef{to, kClockPin});
  clock_nets_[static_cast<std::size_t>(to)] = net_id;
  return net_id;
}

GateId Netlist::find_gate(std::string_view name) const {
  return gate_name_index_.find(name, [this](GateId g) {
    return gates_[static_cast<std::size_t>(g)].name.view();
  });
}

bool Netlist::is_io(GateId id) const {
  const CellKind kind = cell_of(id).kind;
  return kind == CellKind::kInput || kind == CellKind::kOutput;
}

int Netlist::num_partitionable_gates() const {
  int count = 0;
  for (GateId g = 0; g < num_gates(); ++g) {
    if (is_partitionable(g)) ++count;
  }
  return count;
}

NetId Netlist::output_net(GateId id, int out_pin) const {
  const auto& outputs = output_nets_.at(static_cast<std::size_t>(id));
  assert(out_pin >= 0 && out_pin < static_cast<int>(outputs.size()));
  return outputs[static_cast<std::size_t>(out_pin)];
}

NetId Netlist::input_net(GateId id, int in_pin) const {
  const auto& inputs = input_nets_.at(static_cast<std::size_t>(id));
  assert(in_pin >= 0 && in_pin < static_cast<int>(inputs.size()));
  return inputs[static_cast<std::size_t>(in_pin)];
}

NetId Netlist::clock_net(GateId id) const {
  return clock_nets_.at(static_cast<std::size_t>(id));
}

int Netlist::fanout(GateId id) const {
  int count = 0;
  for (const NetId net_id : output_nets_.at(static_cast<std::size_t>(id))) {
    if (net_id != kInvalidNet) {
      count += static_cast<int>(net(net_id).sinks.size());
    }
  }
  return count;
}

std::vector<Connection> Netlist::connections() const {
  std::vector<Connection> out;
  for (const Net& n : nets_) {
    if (n.driver.gate == kInvalidGate) continue;
    for (const PinRef& sink : n.sinks) {
      out.push_back(Connection{n.driver.gate, sink.gate});
    }
  }
  return out;
}

std::vector<Connection> Netlist::unique_edges() const {
  std::vector<Connection> edges;
  for (const Net& n : nets_) {
    if (n.driver.gate == kInvalidGate) continue;
    if (!is_partitionable(n.driver.gate)) continue;
    for (const PinRef& sink : n.sinks) {
      if (!is_partitionable(sink.gate)) continue;
      if (sink.gate == n.driver.gate) continue;  // self loops carry no cost
      const GateId a = std::min(n.driver.gate, sink.gate);
      const GateId b = std::max(n.driver.gate, sink.gate);
      edges.push_back(Connection{a, b});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Connection& x, const Connection& y) {
    return x.from != y.from ? x.from < y.from : x.to < y.to;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

double Netlist::total_bias_ma() const {
  double total = 0.0;
  for (GateId g = 0; g < num_gates(); ++g) {
    if (is_partitionable(g)) total += bias_of(g);
  }
  return total;
}

double Netlist::total_area_um2() const {
  double total = 0.0;
  for (GateId g = 0; g < num_gates(); ++g) {
    if (is_partitionable(g)) total += area_of(g);
  }
  return total;
}

std::vector<GateId> Netlist::topological_order() const {
  // Kahn's algorithm over data edges (clock edges excluded: the clock
  // network may be generated after data-path construction and can reuse
  // splitters fed by logic, which must not create ordering constraints).
  std::vector<int> in_degree(static_cast<std::size_t>(num_gates()), 0);
  for (const Net& n : nets_) {
    if (n.driver.gate == kInvalidGate) continue;
    for (const PinRef& sink : n.sinks) {
      if (sink.pin == kClockPin) continue;
      ++in_degree[static_cast<std::size_t>(sink.gate)];
    }
  }
  std::vector<GateId> ready;
  for (GateId g = 0; g < num_gates(); ++g) {
    if (in_degree[static_cast<std::size_t>(g)] == 0) ready.push_back(g);
  }
  std::vector<GateId> order;
  order.reserve(static_cast<std::size_t>(num_gates()));
  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    order.push_back(g);
    const auto& outputs = output_nets_[static_cast<std::size_t>(g)];
    for (const NetId net_id : outputs) {
      if (net_id == kInvalidNet) continue;
      for (const PinRef& sink : net(net_id).sinks) {
        if (sink.pin == kClockPin) continue;
        if (--in_degree[static_cast<std::size_t>(sink.gate)] == 0) {
          ready.push_back(sink.gate);
        }
      }
    }
  }
  assert(static_cast<int>(order.size()) == num_gates() &&
         "combinational cycle in netlist");
  return order;
}

}  // namespace sfqpart
