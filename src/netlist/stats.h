// Netlist statistics: the per-circuit properties reported in Table I
// (#gates, #connections, B_cir, A_cir) plus cell-mix and depth data used by
// the generators' calibration tests.
#pragma once

#include <map>
#include <string>

#include "netlist/netlist.h"

namespace sfqpart {

struct NetlistStats {
  int num_gates = 0;          // partitionable gates (G of the paper)
  int num_io = 0;             // interface cells (excluded from G)
  int num_connections = 0;    // |E|: unique partitionable gate pairs
  double total_bias_ma = 0.0; // B_cir
  double total_area_um2 = 0.0;// A_cir
  int total_jj = 0;
  int logic_depth = 0;        // longest data path, in gates
  std::map<CellKind, int> by_kind;

  double total_area_mm2() const { return total_area_um2 * 1e-6; }
  double avg_bias_ma() const {
    return num_gates > 0 ? total_bias_ma / num_gates : 0.0;
  }
  double avg_area_um2() const {
    return num_gates > 0 ? total_area_um2 / num_gates : 0.0;
  }
};

NetlistStats compute_stats(const Netlist& netlist);

// Human-readable one-circuit summary block.
std::string format_stats(const Netlist& netlist, const NetlistStats& stats);

}  // namespace sfqpart
