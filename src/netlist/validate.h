// Structural validation of netlists.
//
// Run at module boundaries (after generation, after mapping, after DEF
// parsing) to catch malformed circuits early with precise messages rather
// than corrupting downstream analyses.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sfqpart {

struct ValidateOptions {
  // Require every data-input pin to be driven.
  bool require_inputs_driven = true;
  // Require every clocked gate to have a clock connection. Off by default:
  // the benchmark flow treats clock distribution as part of routing unless
  // an explicit clock tree is synthesized (see SfqMapperOptions).
  bool require_clocks = false;
  // Enforce the SFQ fanout rule (any physical cell output drives exactly
  // one sink; fanout comes from splitter trees). Applied only to gates
  // whose cells are physical.
  bool enforce_sfq_fanout = true;
  // Require every output pin of a physical cell to drive a net with at
  // least one sink (an SFQ pulse must not dead-end). Unconnected kInput
  // interface cells are tolerated: spare chip pins are common.
  bool require_outputs_used = true;
  // Reject combinational cycles (clock edges excluded).
  bool reject_cycles = true;
};

struct ValidationReport {
  std::vector<std::string> issues;
  bool ok() const { return issues.empty(); }
};

ValidationReport validate(const Netlist& netlist, const ValidateOptions& options = {});

}  // namespace sfqpart
