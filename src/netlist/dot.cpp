#include "netlist/dot.h"

#include "util/strings.h"

namespace sfqpart {
namespace {

// Categorical fill colors cycled by plane index.
const char* plane_color(int plane) {
  static const char* kColors[] = {"#8ecae6", "#ffb703", "#90be6d", "#f28482",
                                  "#cdb4db", "#f9c74f", "#a3b18a", "#e5989b"};
  return kColors[plane % 8];
}

}  // namespace

std::string to_dot(const Netlist& netlist, const DotOptions& options) {
  std::string out = "digraph \"" + netlist.name() + "\" {\n";
  out += "  rankdir=LR;\n  node [shape=box, style=filled, fillcolor=white];\n";
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Cell& cell = netlist.cell_of(g);
    std::string attrs = str_format("label=\"%s\\n%s\"", netlist.gate(g).name.c_str(),
                                   cell.name.c_str());
    if (netlist.is_io(g)) {
      attrs += ", shape=ellipse, fillcolor=\"#dddddd\"";
    } else if (static_cast<std::size_t>(g) < options.plane_of.size()) {
      attrs += str_format(", fillcolor=\"%s\"",
                          plane_color(options.plane_of[static_cast<std::size_t>(g)]));
    }
    out += str_format("  g%d [%s];\n", g, attrs.c_str());
  }
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    for (const PinRef& sink : net.sinks) {
      if (sink.pin == kClockPin) {
        if (!options.show_clock_edges) continue;
        out += str_format("  g%d -> g%d [style=dashed, color=gray];\n",
                          net.driver.gate, sink.gate);
      } else {
        out += str_format("  g%d -> g%d;\n", net.driver.gate, sink.gate);
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace sfqpart
