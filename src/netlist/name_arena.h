// Arena-interned gate/net names — the 10^7-gate memory diet.
//
// A scaled netlist (gen/scaled.h) carries one name per gate and one per
// net; as std::string each costs 32 bytes of object plus a heap block
// (and the name index duplicates every gate name as its key). At 10^7
// gates that is gigabytes of small allocations. A NameRef is a 16-byte
// view into an append-only NameArena of NUL-terminated bytes: no
// per-name allocation, no duplication, and `.c_str()` keeps working so
// the printf-heavy writers (DOT, DEF, Verilog, validate) compile
// unchanged. Implicit conversions to std::string_view / std::string
// cover the remaining call sites (concatenation, map keys, container
// inserts).
//
// The arena is append-only and its blocks never move, so a NameRef is
// stable for the life of the arena; Netlist holds its arena through a
// shared_ptr so copied netlists share one arena and every NameRef in
// the copy stays valid.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sfqpart {

struct NameRef {
  const char* data = "";  // NUL-terminated bytes owned by a NameArena
  std::uint32_t len = 0;

  const char* c_str() const { return data; }
  std::size_t size() const { return len; }
  bool empty() const { return len == 0; }
  std::string_view view() const { return {data, len}; }

  operator std::string_view() const { return {data, len}; }
  operator std::string() const { return std::string(data, len); }

  friend bool operator==(const NameRef& a, const NameRef& b) {
    return a.view() == b.view();
  }
  friend bool operator==(const NameRef& a, std::string_view b) {
    return a.view() == b;
  }
  friend bool operator==(std::string_view a, const NameRef& b) {
    return a == b.view();
  }
  friend bool operator!=(const NameRef& a, std::string_view b) {
    return a.view() != b;
  }
  friend std::string operator+(const NameRef& a, const char* b) {
    return std::string(a.view()) + b;
  }
  friend std::string operator+(const char* a, const NameRef& b) {
    return a + std::string(b.view());
  }
  friend std::string operator+(const NameRef& a, const std::string& b) {
    return std::string(a.view()) + b;
  }
  friend std::string operator+(const std::string& a, const NameRef& b) {
    return a + std::string(b.view());
  }
  friend std::ostream& operator<<(std::ostream& os, const NameRef& n) {
    return os.write(n.data, static_cast<std::streamsize>(n.len));
  }
};

// Bump allocator of NUL-terminated strings. Blocks never move or shrink;
// intern() is the only mutator.
class NameArena {
 public:
  NameRef intern(std::string_view text) {
    const std::size_t need = text.size() + 1;  // trailing NUL
    if (need > remaining_) {
      const std::size_t block = need > kBlockSize ? need : kBlockSize;
      blocks_.push_back(std::make_unique<char[]>(block));
      cursor_ = blocks_.back().get();
      remaining_ = block;
    }
    char* out = cursor_;
    std::memcpy(out, text.data(), text.size());
    out[text.size()] = '\0';
    cursor_ += need;
    remaining_ -= need;
    bytes_ += need;
    return NameRef{out, static_cast<std::uint32_t>(text.size())};
  }

  // Total interned bytes including NULs (capacity bench reporting).
  std::size_t bytes() const { return bytes_; }

 private:
  static constexpr std::size_t kBlockSize = 1 << 16;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace sfqpart
