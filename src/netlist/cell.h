// Cell (library element) model.
//
// Two kinds of libraries exist in the flow:
//  * the *structural* library: idealized boolean operators with unlimited
//    fanout, produced by the circuit generators (src/gen) before SFQ
//    technology mapping;
//  * the *physical* SFQ library: real cells with JJ counts, bias currents
//    and layout areas, the form the partitioner consumes (src/sfq maps
//    structural netlists onto it).
#pragma once

#include <cstdint>
#include <string>

namespace sfqpart {

// Functional class of a cell. Mirrors the gate set of RSFQ/ERSFQ cell
// libraries (see paper section II): clocked logic gates, the unclocked
// splitter/merger/JTL interconnect cells, and storage elements.
enum class CellKind : std::uint8_t {
  kDff,      // destructive read-out storage / pipeline stage (clocked)
  kAnd2,     // clocked 2-input AND
  kOr2,      // clocked 2-input OR
  kXor2,     // clocked 2-input XOR
  kNot,      // clocked inverter
  kSplit,    // unclocked 1-to-2 splitter (paper section II item ii)
  kMerge,    // unclocked confluence buffer (2-to-1 merger)
  kJtl,      // Josephson transmission line buffer (unclocked)
  kNdro,     // non-destructive read-out storage
  kTff,      // toggle flip-flop
  kTxDriver,   // inductive-coupling driver (sending ground plane)
  kTxReceiver, // inductive-coupling receiver (receiving ground plane)
  kInput,    // primary-input interface cell (DC/SFQ converter)
  kOutput,   // primary-output interface cell (SFQ/DC converter)
};

const char* cell_kind_name(CellKind kind);

// True for gates that consume a clock pulse (gate-level pipelining).
bool cell_kind_is_clocked(CellKind kind);

struct Cell {
  std::string name;      // library name, e.g. "AND2T"
  CellKind kind = CellKind::kJtl;
  int num_inputs = 1;    // data inputs (clock pin not counted)
  int num_outputs = 1;
  int jj_count = 2;      // Josephson junctions in the cell
  double bias_ma = 0.0;  // bias current requirement b_i [mA]
  double area_um2 = 0.0; // placed area footprint a_i [um^2]
  // Structural cells have no physical limits: any fanout is allowed until
  // SFQ mapping legalizes it with splitter trees.
  bool physical = true;

  bool is_clocked() const { return cell_kind_is_clocked(kind); }
};

}  // namespace sfqpart
