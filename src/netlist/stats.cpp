#include "netlist/stats.h"

#include <algorithm>

#include "util/strings.h"

namespace sfqpart {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Cell& cell = netlist.cell_of(g);
    ++stats.by_kind[cell.kind];
    if (!netlist.is_partitionable(g)) {
      ++stats.num_io;
      continue;
    }
    ++stats.num_gates;
    stats.total_bias_ma += cell.bias_ma;
    stats.total_area_um2 += cell.area_um2;
    stats.total_jj += cell.jj_count;
  }
  stats.num_connections = static_cast<int>(netlist.unique_edges().size());

  // Longest data path via topological order.
  std::vector<int> depth(static_cast<std::size_t>(netlist.num_gates()), 1);
  for (const GateId g : netlist.topological_order()) {
    const Cell& cell = netlist.cell_of(g);
    for (int pin = 0; pin < cell.num_outputs; ++pin) {
      const NetId net_id = netlist.output_net(g, pin);
      if (net_id == kInvalidNet) continue;
      for (const PinRef& sink : netlist.net(net_id).sinks) {
        if (sink.pin == kClockPin) continue;
        auto& d = depth[static_cast<std::size_t>(sink.gate)];
        d = std::max(d, depth[static_cast<std::size_t>(g)] + 1);
      }
    }
  }
  for (const int d : depth) stats.logic_depth = std::max(stats.logic_depth, d);
  return stats;
}

std::string format_stats(const Netlist& netlist, const NetlistStats& stats) {
  std::string out = str_format(
      "netlist '%s': %d gates (+%d I/O), %d connections, depth %d\n"
      "  B_cir = %.3f mA (avg %.3f mA/gate)\n"
      "  A_cir = %.4f mm^2 (avg %.0f um^2/gate), %d JJs\n",
      netlist.name().c_str(), stats.num_gates, stats.num_io, stats.num_connections,
      stats.logic_depth, stats.total_bias_ma, stats.avg_bias_ma(),
      stats.total_area_mm2(), stats.avg_area_um2(), stats.total_jj);
  out += "  cell mix:";
  for (const auto& [kind, count] : stats.by_kind) {
    out += str_format(" %s=%d", cell_kind_name(kind), count);
  }
  out += "\n";
  return out;
}

}  // namespace sfqpart
