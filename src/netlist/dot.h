// Graphviz DOT export for visual inspection of netlists and partitions.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sfqpart {

struct DotOptions {
  // Optional per-gate plane labels (size num_gates); gates are colored by
  // plane when provided. Entries for I/O gates are ignored.
  std::vector<int> plane_of;
  bool show_clock_edges = false;
};

std::string to_dot(const Netlist& netlist, const DotOptions& options = {});

}  // namespace sfqpart
