// Gate-level netlist.
//
// A Netlist is a set of gates (instances of library cells) connected by
// single-driver nets. Primary I/O is modelled with kInput/kOutput interface
// cells; per the paper (section III-B3) the I/O circuits sit on the shared
// pad ring ground, so they are excluded from the partitionable gate set and
// from the connection set E handed to the partitioner.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/cell_library.h"
#include "netlist/name_arena.h"
#include "netlist/name_index.h"

namespace sfqpart {

using GateId = std::int32_t;
using NetId = std::int32_t;
inline constexpr GateId kInvalidGate = -1;
inline constexpr NetId kInvalidNet = -1;

// One endpoint of a net: a pin on a gate. For drivers `pin` indexes the
// gate's output pins; for sinks it indexes the data-input pins, with the
// special value kClockPin for the clock input of clocked cells.
struct PinRef {
  GateId gate = kInvalidGate;
  int pin = 0;

  bool operator==(const PinRef&) const = default;
};

inline constexpr int kClockPin = -1;

// Names are arena-interned NameRefs (netlist/name_arena.h): 16 bytes, no
// per-name heap block, `.c_str()` / string conversions as before. The
// owning Netlist's arena outlives every Gate/Net it hands out.
struct Gate {
  NameRef name;
  int cell = -1;  // index into the netlist's CellLibrary
};

struct Net {
  NameRef name;
  PinRef driver;               // invalid gate id when undriven (parse error)
  std::vector<PinRef> sinks;
};

// A directed gate-to-gate connection (one per net sink).
struct Connection {
  GateId from = kInvalidGate;
  GateId to = kInvalidGate;

  bool operator==(const Connection&) const = default;
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary* library = &default_sfq_library(),
                   std::string name = "top");

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const CellLibrary& library() const { return *library_; }

  // --- Construction -------------------------------------------------------

  // Adds a gate instance; names must be unique within the netlist.
  GateId add_gate(std::string_view name, int cell_index);

  // Convenience: instantiate the library's first cell of `kind`.
  GateId add_gate_of_kind(std::string_view name, CellKind kind);

  // Connects output pin `out_pin` of `from` to data-input pin `in_pin` of
  // `to`, creating the net on demand (one net per driver output pin).
  // Asserts if the input pin is already connected.
  NetId connect(GateId from, int out_pin, GateId to, int in_pin);

  // Connects `from`'s output pin to the clock pin of a clocked gate `to`.
  NetId connect_clock(GateId from, int out_pin, GateId to);

  // --- Gate access ---------------------------------------------------------

  int num_gates() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(GateId id) const { return gates_.at(static_cast<std::size_t>(id)); }
  const Cell& cell_of(GateId id) const { return library_->cell(gate(id).cell); }
  GateId find_gate(std::string_view name) const;  // kInvalidGate if absent

  double bias_of(GateId id) const { return cell_of(id).bias_ma; }
  double area_of(GateId id) const { return cell_of(id).area_um2; }

  // I/O interface cells sit on the pad-ring ground plane and are not
  // partitioned (paper section III-B3).
  bool is_io(GateId id) const;
  bool is_partitionable(GateId id) const { return !is_io(id); }
  int num_partitionable_gates() const;

  // --- Net access ----------------------------------------------------------

  int num_nets() const { return static_cast<int>(nets_.size()); }
  const Net& net(NetId id) const { return nets_.at(static_cast<std::size_t>(id)); }

  // Net driven by the given output pin; kInvalidNet when unconnected.
  NetId output_net(GateId id, int out_pin) const;
  // Net feeding the given data-input pin; kInvalidNet when unconnected.
  NetId input_net(GateId id, int in_pin) const;
  // Net feeding the clock pin; kInvalidNet when unconnected.
  NetId clock_net(GateId id) const;

  // Number of sinks across all output pins of the gate (clock sinks count).
  int fanout(GateId id) const;

  // --- Partitioner / analysis views ---------------------------------------

  // All directed gate-to-gate connections (one per net sink), including
  // clock edges and I/O gates.
  std::vector<Connection> connections() const;

  // The connection set E of the paper: undirected, deduplicated pairs of
  // *partitionable* gates. Pairs are canonicalized with from < to.
  std::vector<Connection> unique_edges() const;

  // Total bias current [mA] / area [um^2] over partitionable gates
  // (B_cir, A_cir of Table I).
  double total_bias_ma() const;
  double total_area_um2() const;

  // --- Whole-netlist helpers ----------------------------------------------

  // Gate ids in topological order (inputs first). Clock edges are ignored
  // for ordering; clocked gates act as pipeline stages but the SFQ data flow
  // itself is acyclic. Asserts on combinational cycles.
  std::vector<GateId> topological_order() const;

  // Bytes held by the interned name table: arena bytes plus the lookup
  // index's slot table (capacity bench reporting).
  std::size_t name_table_bytes() const {
    return arena_->bytes() + gate_name_index_.bytes();
  }
  // The lookup index's share alone (the open-addressing replacement of
  // the old unordered_map<string_view, GateId>; capacity bench reports
  // the before/after delta).
  std::size_t name_index_bytes() const { return gate_name_index_.bytes(); }

 private:
  NetId net_for_output(GateId from, int out_pin, std::string_view fallback_name);

  std::string name_;
  const CellLibrary* library_;
  // Shared so copied netlists keep their NameRefs valid (the arena is
  // append-only and blocks never move).
  std::shared_ptr<NameArena> arena_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  // Open-addressing id table (netlist/name_index.h): stores no keys at
  // all — probes resolve ids back to their interned names via gates_, so
  // the index costs ~8 bytes per gate instead of an unordered_map node.
  NameIndex gate_name_index_;
  // Per-gate pin-to-net maps, parallel to gates_.
  std::vector<std::vector<NetId>> input_nets_;   // size = cell.num_inputs
  std::vector<std::vector<NetId>> output_nets_;  // size = cell.num_outputs
  std::vector<NetId> clock_nets_;                // kInvalidNet when none
};

}  // namespace sfqpart
