#include "netlist/cell_library.h"

#include <cassert>

namespace sfqpart {

const char* cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kDff:    return "DFF";
    case CellKind::kAnd2:   return "AND2";
    case CellKind::kOr2:    return "OR2";
    case CellKind::kXor2:   return "XOR2";
    case CellKind::kNot:    return "NOT";
    case CellKind::kSplit:  return "SPLIT";
    case CellKind::kMerge:  return "MERGE";
    case CellKind::kJtl:    return "JTL";
    case CellKind::kNdro:   return "NDRO";
    case CellKind::kTff:    return "TFF";
    case CellKind::kTxDriver:   return "TXDRV";
    case CellKind::kTxReceiver: return "TXRCV";
    case CellKind::kInput:  return "INPUT";
    case CellKind::kOutput: return "OUTPUT";
  }
  return "UNKNOWN";
}

bool cell_kind_is_clocked(CellKind kind) {
  switch (kind) {
    case CellKind::kDff:
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kXor2:
    case CellKind::kNot:
    case CellKind::kNdro:
      return true;
    case CellKind::kSplit:
    case CellKind::kMerge:
    case CellKind::kJtl:
    case CellKind::kTff:
    case CellKind::kTxDriver:
    case CellKind::kTxReceiver:
    case CellKind::kInput:
    case CellKind::kOutput:
      return false;
  }
  return false;
}

int CellLibrary::add_cell(Cell cell) {
  assert(by_name_.find(cell.name) == by_name_.end() && "duplicate cell name");
  const int index = static_cast<int>(cells_.size());
  by_name_.emplace(cell.name, index);
  cells_.push_back(std::move(cell));
  return index;
}

std::optional<int> CellLibrary::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<int> CellLibrary::find_kind(CellKind kind) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].kind == kind) return static_cast<int>(i);
  }
  return std::nullopt;
}

void CellLibrary::scale(double bias_factor, double area_factor) {
  for (Cell& cell : cells_) {
    cell.bias_ma *= bias_factor;
    cell.area_um2 *= area_factor;
  }
}

namespace {

CellLibrary make_default_sfq_library() {
  CellLibrary lib("usc10k");
  // name, kind, #in, #out, #JJ, bias mA, area um^2.
  // Bias currents follow the usual RSFQ rule of thumb ~70 uA per JJ of
  // I_c ~100 uA scaled per cell complexity; areas assume a 30 um routing
  // pitch with one to three tracks per cell. The set is calibrated so a
  // mapped netlist averages ~0.86 mA and ~4.9e3 um^2 per gate, the
  // per-gate averages implied by Table I of the paper.
  auto add = [&lib](const char* name, CellKind kind, int ni, int no, int jj,
                    double bias, double area) {
    Cell cell;
    cell.name = name;
    cell.kind = kind;
    cell.num_inputs = ni;
    cell.num_outputs = no;
    cell.jj_count = jj;
    cell.bias_ma = bias;
    cell.area_um2 = area;
    cell.physical = true;
    lib.add_cell(std::move(cell));
  };
  add("DFFT",   CellKind::kDff,   1, 1,  6, 0.95, 4800.0);
  add("AND2T",  CellKind::kAnd2,  2, 1, 11, 1.30, 6600.0);
  add("OR2T",   CellKind::kOr2,   2, 1,  9, 1.15, 6000.0);
  add("XOR2T",  CellKind::kXor2,  2, 1, 11, 1.35, 6600.0);
  add("NOTT",   CellKind::kNot,   1, 1,  8, 1.00, 5100.0);
  add("SPLITT", CellKind::kSplit, 1, 2,  3, 0.50, 2700.0);
  add("CBU",    CellKind::kMerge, 2, 1,  5, 0.80, 3900.0);
  add("JTL",    CellKind::kJtl,   1, 1,  2, 0.30, 1500.0);
  add("NDROT",  CellKind::kNdro,  1, 1,  9, 1.10, 5700.0);
  add("TFFT",   CellKind::kTff,   1, 1,  8, 1.05, 5400.0);
  // Differential inductive-coupling pair (paper section III-A / [16]):
  // driver sits on the sending plane, receiver SQUID on the receiving one.
  add("TXDRV",  CellKind::kTxDriver,   1, 1, 2, 0.12,  600.0);
  add("TXRCV",  CellKind::kTxReceiver, 1, 1, 2, 0.16,  600.0);
  add("DCSFQ",  CellKind::kInput, 0, 1,  4, 0.70, 3600.0);
  add("SFQDC",  CellKind::kOutput,1, 0,  6, 0.90, 4500.0);
  return lib;
}

CellLibrary make_structural_library() {
  CellLibrary lib("structural");
  auto add = [&lib](const char* name, CellKind kind, int ni, int no) {
    Cell cell;
    cell.name = name;
    cell.kind = kind;
    cell.num_inputs = ni;
    cell.num_outputs = no;
    cell.jj_count = 0;
    cell.bias_ma = 0.0;
    cell.area_um2 = 0.0;
    cell.physical = false;
    lib.add_cell(std::move(cell));
  };
  add("and",  CellKind::kAnd2,  2, 1);
  add("or",   CellKind::kOr2,   2, 1);
  add("xor",  CellKind::kXor2,  2, 1);
  add("not",  CellKind::kNot,   1, 1);
  add("dff",  CellKind::kDff,   1, 1);
  add("in",   CellKind::kInput, 0, 1);
  add("out",  CellKind::kOutput,1, 0);
  return lib;
}

}  // namespace

const CellLibrary& default_sfq_library() {
  static const CellLibrary lib = make_default_sfq_library();
  return lib;
}

const CellLibrary& structural_library() {
  static const CellLibrary lib = make_structural_library();
  return lib;
}

}  // namespace sfqpart
