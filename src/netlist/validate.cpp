#include "netlist/validate.h"

#include "util/strings.h"

namespace sfqpart {
namespace {

void check_pins(const Netlist& netlist, const ValidateOptions& options,
                std::vector<std::string>& issues) {
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Cell& cell = netlist.cell_of(g);
    if (options.require_inputs_driven) {
      for (int pin = 0; pin < cell.num_inputs; ++pin) {
        if (netlist.input_net(g, pin) == kInvalidNet) {
          issues.push_back(str_format("gate '%s': input pin %d undriven",
                                      netlist.gate(g).name.c_str(), pin));
        }
      }
    }
    if (options.require_clocks && cell.is_clocked() &&
        netlist.clock_net(g) == kInvalidNet) {
      issues.push_back(str_format("gate '%s': clocked cell %s has no clock",
                                  netlist.gate(g).name.c_str(), cell.name.c_str()));
    }
    if (options.require_outputs_used && cell.physical &&
        cell.kind != CellKind::kInput) {
      for (int pin = 0; pin < cell.num_outputs; ++pin) {
        if (netlist.output_net(g, pin) == kInvalidNet) {
          issues.push_back(str_format("gate '%s': output pin %d unused",
                                      netlist.gate(g).name.c_str(), pin));
        }
      }
    }
  }
}

void check_fanout(const Netlist& netlist, std::vector<std::string>& issues) {
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) {
      issues.push_back(str_format("net '%s': no driver", net.name.c_str()));
      continue;
    }
    if (net.sinks.empty()) {
      issues.push_back(str_format("net '%s': no sinks (dangling output of '%s')",
                                  net.name.c_str(),
                                  netlist.gate(net.driver.gate).name.c_str()));
    }
    if (netlist.cell_of(net.driver.gate).physical && net.sinks.size() > 1) {
      issues.push_back(str_format(
          "net '%s': SFQ output of '%s' drives %zu sinks (needs a splitter tree)",
          net.name.c_str(), netlist.gate(net.driver.gate).name.c_str(),
          net.sinks.size()));
    }
  }
}

void check_cycles(const Netlist& netlist, std::vector<std::string>& issues) {
  // Kahn's algorithm over data edges; leftovers are on a cycle.
  std::vector<int> in_degree(static_cast<std::size_t>(netlist.num_gates()), 0);
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    for (const PinRef& sink : net.sinks) {
      if (sink.pin == kClockPin) continue;
      ++in_degree[static_cast<std::size_t>(sink.gate)];
    }
  }
  std::vector<GateId> ready;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (in_degree[static_cast<std::size_t>(g)] == 0) ready.push_back(g);
  }
  int visited = 0;
  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    ++visited;
    const Cell& cell = netlist.cell_of(g);
    for (int pin = 0; pin < cell.num_outputs; ++pin) {
      const NetId net_id = netlist.output_net(g, pin);
      if (net_id == kInvalidNet) continue;
      for (const PinRef& sink : netlist.net(net_id).sinks) {
        if (sink.pin == kClockPin) continue;
        if (--in_degree[static_cast<std::size_t>(sink.gate)] == 0) {
          ready.push_back(sink.gate);
        }
      }
    }
  }
  if (visited != netlist.num_gates()) {
    issues.push_back(str_format("combinational cycle: %d of %d gates unreachable "
                                "from sources",
                                netlist.num_gates() - visited, netlist.num_gates()));
  }
}

}  // namespace

ValidationReport validate(const Netlist& netlist, const ValidateOptions& options) {
  ValidationReport report;
  check_pins(netlist, options, report.issues);
  if (options.enforce_sfq_fanout) check_fanout(netlist, report.issues);
  if (options.reject_cycles) check_cycles(netlist, report.issues);
  return report;
}

}  // namespace sfqpart
