// Open-addressing gate-name index — the second half of the name-table
// memory diet (DESIGN.md section 14).
//
// The arena interning (name_arena.h) removed the per-name heap blocks,
// but the `unordered_map<string_view, GateId>` lookup index still cost a
// ~56-byte node plus a bucket pointer per gate. This index stores only a
// power-of-two table of int32 gate ids at <= 50% load (~8 bytes per gate
// amortized): keys are never copied — a probe resolves the candidate id
// back to its interned name through the caller's gates array, which is
// the single source of truth for names anyway.
//
// Gates are never removed from a Netlist, so the index needs no
// tombstones; linear probing with FNV-1a keeps lookups one cache miss in
// the common case.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace sfqpart {

class NameIndex {
 public:
  static constexpr std::int32_t kAbsent = -1;

  // Id stored under `name`, or kAbsent. `name_of(id)` must return the
  // string_view the id was inserted with.
  template <typename NameOf>
  std::int32_t find(std::string_view name, NameOf&& name_of) const {
    if (slots_.empty()) return kAbsent;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t p = hash(name) & mask;; p = (p + 1) & mask) {
      const std::int32_t id = slots_[p];
      if (id == kAbsent) return kAbsent;
      if (name_of(id) == name) return id;
    }
  }

  // Inserts `id` under `name`; the caller guarantees the name is absent
  // (Netlist asserts uniqueness before interning).
  template <typename NameOf>
  void insert(std::string_view name, std::int32_t id, NameOf&& name_of) {
    if ((count_ + 1) * 2 > slots_.size()) grow(name_of);
    place(name, id);
    ++count_;
  }

  std::size_t size() const { return count_; }
  // Heap bytes held by the index (capacity bench reporting).
  std::size_t bytes() const { return slots_.capacity() * sizeof(std::int32_t); }

 private:
  static std::size_t hash(std::string_view name) {
    // FNV-1a; the id table is power-of-two so only the low bits matter.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }

  void place(std::string_view name, std::int32_t id) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t p = hash(name) & mask;
    while (slots_[p] != kAbsent) p = (p + 1) & mask;
    slots_[p] = id;
  }

  template <typename NameOf>
  void grow(NameOf&& name_of) {
    std::vector<std::int32_t> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, kAbsent);
    for (const std::int32_t id : old) {
      if (id != kAbsent) place(name_of(id), id);
    }
  }

  std::vector<std::int32_t> slots_;
  std::size_t count_ = 0;
};

}  // namespace sfqpart
