#include "metrics/partition_metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace sfqpart {

double PartitionMetrics::frac_within(int d) const {
  if (num_connections == 0) return 1.0;
  int count = 0;
  const int limit = std::min(d, num_planes - 1);
  for (int i = 0; i <= limit; ++i) {
    count += distance_histogram[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(count) / num_connections;
}

PartitionMetrics compute_metrics(const Netlist& netlist, const Partition& partition) {
  assert(partition.num_planes >= 1);
  assert(static_cast<int>(partition.plane_of.size()) == netlist.num_gates());

  PartitionMetrics metrics;
  metrics.num_planes = partition.num_planes;
  metrics.distance_histogram.assign(static_cast<std::size_t>(partition.num_planes), 0);
  metrics.plane_gates.assign(static_cast<std::size_t>(partition.num_planes), 0);
  metrics.plane_bias_ma.assign(static_cast<std::size_t>(partition.num_planes), 0.0);
  metrics.plane_area_um2.assign(static_cast<std::size_t>(partition.num_planes), 0.0);

  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    const int plane = partition.plane(g);
    assert(plane >= 0 && plane < partition.num_planes &&
           "partition leaves a partitionable gate unassigned");
    ++metrics.num_gates;
    const auto up = static_cast<std::size_t>(plane);
    ++metrics.plane_gates[up];
    metrics.plane_bias_ma[up] += netlist.bias_of(g);
    metrics.plane_area_um2[up] += netlist.area_of(g);
    metrics.total_bias_ma += netlist.bias_of(g);
    metrics.total_area_um2 += netlist.area_of(g);
  }

  for (const Connection& edge : netlist.unique_edges()) {
    const int d = std::abs(partition.plane(edge.from) - partition.plane(edge.to));
    ++metrics.distance_histogram[static_cast<std::size_t>(d)];
    ++metrics.num_connections;
  }

  metrics.bmax_ma = *std::max_element(metrics.plane_bias_ma.begin(),
                                      metrics.plane_bias_ma.end());
  metrics.amax_um2 = *std::max_element(metrics.plane_area_um2.begin(),
                                       metrics.plane_area_um2.end());
  for (int k = 0; k < partition.num_planes; ++k) {
    metrics.icomp_ma += metrics.bmax_ma - metrics.plane_bias_ma[static_cast<std::size_t>(k)];
    metrics.afs_um2 += metrics.amax_um2 - metrics.plane_area_um2[static_cast<std::size_t>(k)];
  }
  return metrics;
}

int cut_count(const Netlist& netlist, const Partition& partition) {
  int cut = 0;
  for (const Connection& edge : netlist.unique_edges()) {
    if (partition.plane(edge.from) != partition.plane(edge.to)) ++cut;
  }
  return cut;
}

}  // namespace sfqpart
