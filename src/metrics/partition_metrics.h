// Partition quality metrics: everything Tables I-III report.
//
//   d <= x        share of connections crossing at most x planes
//   B_max, I_comp bias current of the heaviest plane and the total dummy
//                 (compensation) current (equation 11)
//   A_max, A_FS   heaviest plane area and the free space caused by area
//                 imbalance, as a share of total gate area
#pragma once

#include <string>
#include <vector>

#include "core/partition.h"

namespace sfqpart {

struct PartitionMetrics {
  int num_planes = 0;
  int num_gates = 0;        // partitionable gates
  int num_connections = 0;  // |E|

  // Histogram over connection distance d = |plane(i1) - plane(i2)|,
  // indices 0..num_planes-1.
  std::vector<int> distance_histogram;

  std::vector<int> plane_gates;      // gates per plane
  std::vector<double> plane_bias_ma; // B_k
  std::vector<double> plane_area_um2;// A_k

  double total_bias_ma = 0.0;   // B_cir
  double total_area_um2 = 0.0;  // A_cir
  double bmax_ma = 0.0;         // B_max
  double amax_um2 = 0.0;        // A_max
  double icomp_ma = 0.0;        // sum_k (B_max - B_k)
  double afs_um2 = 0.0;         // sum_k (A_max - A_k)

  // Share of connections with distance <= d (1.0 when there are none).
  double frac_within(int d) const;
  // The paper's percentage metrics, as fractions of 1.
  double icomp_frac() const {
    return total_bias_ma > 0.0 ? icomp_ma / total_bias_ma : 0.0;
  }
  double afs_frac() const {
    return total_area_um2 > 0.0 ? afs_um2 / total_area_um2 : 0.0;
  }
  double amax_mm2() const { return amax_um2 * 1e-6; }
  double total_area_mm2() const { return total_area_um2 * 1e-6; }
  // floor(K/2), the Table II/III distance column.
  int half_k() const { return num_planes / 2; }
};

PartitionMetrics compute_metrics(const Netlist& netlist, const Partition& partition);

// Number of connections whose endpoints sit on different planes — the
// classic K-way objective (the paper's section IV-A argues it cannot
// capture plane-distance cost; the FM baseline optimizes it).
int cut_count(const Netlist& netlist, const Partition& partition);

}  // namespace sfqpart
