// Human-readable partition reports shared by the examples and benches.
#pragma once

#include <string>

#include "metrics/partition_metrics.h"

namespace sfqpart {

// Multi-line report: per-plane gates/bias/area/dummy-current table plus the
// connection distance histogram and the Table I summary metrics.
std::string format_partition_report(const Netlist& netlist, const Partition& partition,
                                    const PartitionMetrics& metrics);

// Simple running average for the AVERAGE rows the paper quotes in
// section V ("On average, 65.1% ...").
class Averager {
 public:
  void add(double value) {
    sum_ += value;
    ++count_;
  }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  int count() const { return count_; }

 private:
  double sum_ = 0.0;
  int count_ = 0;
};

}  // namespace sfqpart
