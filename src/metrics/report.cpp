#include "metrics/report.h"

#include "util/strings.h"
#include "util/table.h"

namespace sfqpart {

std::string format_partition_report(const Netlist& netlist,
                                    const Partition& /*partition*/,
                                    const PartitionMetrics& metrics) {
  std::string out = str_format(
      "partition of '%s' into K=%d ground planes: %d gates, %d connections\n",
      netlist.name().c_str(), metrics.num_planes, metrics.num_gates,
      metrics.num_connections);

  TablePrinter planes({"plane", "gates", "B_k (mA)", "A_k (mm^2)", "dummy (mA)"});
  for (int k = 0; k < metrics.num_planes; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    planes.add_row({std::to_string(k),
                    std::to_string(metrics.plane_gates[uk]),
                    fmt_double(metrics.plane_bias_ma[uk], 2),
                    fmt_double(metrics.plane_area_um2[uk] * 1e-6, 4),
                    fmt_double(metrics.bmax_ma - metrics.plane_bias_ma[uk], 2)});
  }
  out += planes.to_string();

  out += "connection distance histogram:\n";
  for (int d = 0; d < metrics.num_planes; ++d) {
    const int count = metrics.distance_histogram[static_cast<std::size_t>(d)];
    if (d > 1 && count == 0) continue;
    out += str_format("  d = %d : %5d  (cumulative %s)\n", d, count,
                      fmt_percent(metrics.frac_within(d)).c_str());
  }

  out += str_format(
      "B_cir = %.2f mA, B_max = %.2f mA, I_comp = %.2f mA (%s)\n"
      "A_cir = %.4f mm^2, A_max = %.4f mm^2, A_FS = %s\n",
      metrics.total_bias_ma, metrics.bmax_ma, metrics.icomp_ma,
      fmt_percent(metrics.icomp_frac()).c_str(), metrics.total_area_mm2(),
      metrics.amax_mm2(), fmt_percent(metrics.afs_frac()).c_str());
  return out;
}

}  // namespace sfqpart
