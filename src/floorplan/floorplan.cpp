#include "floorplan/floorplan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/strings.h"

namespace sfqpart {
namespace {

double cell_width(const Netlist& netlist, GateId g, double row_height) {
  const double area = netlist.area_of(g);
  return area > 0.0 ? area / row_height : row_height;
}

}  // namespace

Floorplan build_floorplan(const Netlist& netlist, const Partition& partition,
                          const FloorplanOptions& options) {
  assert(options.utilization > 0.05);
  const int num_planes = partition.num_planes;

  // Gates per plane and area per plane.
  std::vector<std::vector<GateId>> plane_gates(static_cast<std::size_t>(num_planes));
  std::vector<double> plane_area(static_cast<std::size_t>(num_planes), 0.0);
  double total_area = 0.0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!partition.assigned(g)) continue;
    const auto plane = static_cast<std::size_t>(partition.plane(g));
    plane_gates[plane].push_back(g);
    plane_area[plane] += netlist.area_of(g);
    total_area += netlist.area_of(g);
  }

  Floorplan plan;
  // Square-ish die: width from total area at target utilization.
  plan.die_width_um = std::ceil(
      std::sqrt(std::max(total_area / options.utilization, 1.0)) /
      options.row_height_um) * options.row_height_um;

  // Stripe heights, top-down (plane 0 on top, matching the bias stack).
  plan.stripes.resize(static_cast<std::size_t>(num_planes));
  double total_height = 0.0;
  for (int k = 0; k < num_planes; ++k) {
    const double needed =
        plane_area[static_cast<std::size_t>(k)] / options.utilization;
    const int rows = std::max(
        1, static_cast<int>(std::ceil(needed / (plan.die_width_um * options.row_height_um))));
    plan.stripes[static_cast<std::size_t>(k)].plane = k;
    plan.stripes[static_cast<std::size_t>(k)].rows = rows;
    total_height += rows * options.row_height_um;
    if (k > 0) total_height += options.stripe_gap_um;
  }
  plan.die_height_um = total_height;

  double y_top = plan.die_height_um;
  for (int k = 0; k < num_planes; ++k) {
    PlaneStripe& stripe = plan.stripes[static_cast<std::size_t>(k)];
    stripe.y_hi_um = y_top;
    stripe.y_lo_um = y_top - stripe.rows * options.row_height_um;
    y_top = stripe.y_lo_um - options.stripe_gap_um;
  }

  plan.x_um.assign(static_cast<std::size_t>(netlist.num_gates()), 0.0);
  plan.y_um.assign(static_cast<std::size_t>(netlist.num_gates()), 0.0);

  // Initial within-stripe order: topological, so connected gates start
  // near each other along x.
  std::vector<int> topo_index(static_cast<std::size_t>(netlist.num_gates()), 0);
  {
    int position = 0;
    for (const GateId g : netlist.topological_order()) {
      topo_index[static_cast<std::size_t>(g)] = position++;
    }
  }
  for (auto& gates : plane_gates) {
    std::sort(gates.begin(), gates.end(), [&](GateId a, GateId b) {
      return topo_index[static_cast<std::size_t>(a)] < topo_index[static_cast<std::size_t>(b)];
    });
  }

  // Neighbor lists over all connections (clock edges included: they are
  // wires too).
  std::vector<std::vector<GateId>> neighbors(static_cast<std::size_t>(netlist.num_gates()));
  for (const Connection& conn : netlist.connections()) {
    neighbors[static_cast<std::size_t>(conn.from)].push_back(conn.to);
    neighbors[static_cast<std::size_t>(conn.to)].push_back(conn.from);
  }

  // Packs a stripe's gates into serpentine rows in their current order.
  auto pack = [&](const PlaneStripe& stripe, const std::vector<GateId>& gates) {
    double x = 0.0;
    int row = 0;
    for (const GateId g : gates) {
      const double width = cell_width(netlist, g, options.row_height_um);
      if (x + width > plan.die_width_um && x > 0.0) {
        x = 0.0;
        row = std::min(row + 1, stripe.rows - 1);  // overflow stays in last row
      }
      plan.x_um[static_cast<std::size_t>(g)] = x;
      plan.y_um[static_cast<std::size_t>(g)] =
          stripe.y_hi_um - (row + 1) * options.row_height_um;
      x += width;
    }
  };
  for (int k = 0; k < num_planes; ++k) {
    pack(plan.stripes[static_cast<std::size_t>(k)], plane_gates[static_cast<std::size_t>(k)]);
  }

  // Wirelength refinement: greedy adjacent-swap sweeps within each row.
  // Swapping two same-row neighbors only moves those two cells, so the
  // exact HPWL delta over their incident nets is cheap to evaluate and a
  // swap is accepted only when it strictly helps -- total wirelength never
  // increases over the topological-order baseline.
  if (options.ordering_passes > 0) {
    // HPWL contribution of the nets touching gate `a` or gate `b`.
    auto incident_hpwl = [&](GateId a, GateId b) {
      double total = 0.0;
      std::vector<NetId> nets;
      for (const GateId g : {a, b}) {
        const Cell& cell = netlist.cell_of(g);
        for (int pin = 0; pin < cell.num_outputs; ++pin) {
          if (const NetId n = netlist.output_net(g, pin); n != kInvalidNet) {
            nets.push_back(n);
          }
        }
        for (int pin = 0; pin < cell.num_inputs; ++pin) {
          if (const NetId n = netlist.input_net(g, pin); n != kInvalidNet) {
            nets.push_back(n);
          }
        }
        if (const NetId n = netlist.clock_net(g); n != kInvalidNet) {
          nets.push_back(n);
        }
      }
      std::sort(nets.begin(), nets.end());
      nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
      for (const NetId n : nets) {
        const Net& net = netlist.net(n);
        if (net.sinks.empty()) continue;
        double x_lo = plan.x_um[static_cast<std::size_t>(net.driver.gate)];
        double x_hi = x_lo;
        double y_lo = plan.y_um[static_cast<std::size_t>(net.driver.gate)];
        double y_hi = y_lo;
        for (const PinRef& sink : net.sinks) {
          const auto us = static_cast<std::size_t>(sink.gate);
          x_lo = std::min(x_lo, plan.x_um[us]);
          x_hi = std::max(x_hi, plan.x_um[us]);
          y_lo = std::min(y_lo, plan.y_um[us]);
          y_hi = std::max(y_hi, plan.y_um[us]);
        }
        total += (x_hi - x_lo) + (y_hi - y_lo);
      }
      return total;
    };

    for (int pass = 0; pass < options.ordering_passes; ++pass) {
      bool improved = false;
      for (auto& gates : plane_gates) {
        for (std::size_t i = 0; i + 1 < gates.size(); ++i) {
          const GateId a = gates[i];
          const GateId b = gates[i + 1];
          const auto ua = static_cast<std::size_t>(a);
          const auto ub = static_cast<std::size_t>(b);
          if (plan.y_um[ua] != plan.y_um[ub]) continue;  // row boundary
          const double xa = plan.x_um[ua];
          const double wa = cell_width(netlist, a, options.row_height_um);
          const double wb = cell_width(netlist, b, options.row_height_um);
          const double before = incident_hpwl(a, b);
          plan.x_um[ub] = xa;
          plan.x_um[ua] = xa + wb;
          if (incident_hpwl(a, b) + 1e-9 < before) {
            std::swap(gates[i], gates[i + 1]);
            improved = true;
          } else {
            plan.x_um[ua] = xa;        // revert
            plan.x_um[ub] = xa + wa;
          }
        }
      }
      if (!improved) break;
    }
  }

  // I/O gates on the left edge of the die, spread vertically (the pad
  // ring shares a common ground; exact pad placement is out of scope).
  std::vector<GateId> io;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_io(g)) io.push_back(g);
  }
  for (std::size_t i = 0; i < io.size(); ++i) {
    plan.x_um[static_cast<std::size_t>(io[i])] = 0.0;
    plan.y_um[static_cast<std::size_t>(io[i])] =
        plan.die_height_um * static_cast<double>(i) /
        std::max<std::size_t>(1, io.size());
  }
  return plan;
}

double total_hpwl_um(const Netlist& netlist, const Floorplan& floorplan) {
  double total = 0.0;
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate || net.sinks.empty()) continue;
    double x_lo = floorplan.x_um[static_cast<std::size_t>(net.driver.gate)];
    double x_hi = x_lo;
    double y_lo = floorplan.y_um[static_cast<std::size_t>(net.driver.gate)];
    double y_hi = y_lo;
    for (const PinRef& sink : net.sinks) {
      const double x = floorplan.x_um[static_cast<std::size_t>(sink.gate)];
      const double y = floorplan.y_um[static_cast<std::size_t>(sink.gate)];
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
    total += (x_hi - x_lo) + (y_hi - y_lo);
  }
  return total;
}

std::string format_floorplan(const Netlist& netlist, const Floorplan& floorplan) {
  std::string out = str_format(
      "floorplan: die %.0f x %.0f um (%.4f mm^2), HPWL %.2f mm\n",
      floorplan.die_width_um, floorplan.die_height_um,
      floorplan.die_width_um * floorplan.die_height_um * 1e-6,
      total_hpwl_um(netlist, floorplan) * 1e-3);
  for (const PlaneStripe& stripe : floorplan.stripes) {
    out += str_format("  GP%-2d stripe y = [%7.0f, %7.0f) um, %d rows\n",
                      stripe.plane, stripe.y_lo_um, stripe.y_hi_um, stripe.rows);
  }
  return out;
}

}  // namespace sfqpart
