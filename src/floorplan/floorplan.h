// Plane-aware floorplanning.
//
// The paper's layout model (section III-B, Fig. 1) stacks the K ground
// planes as full-width horizontal stripes: plane k is physically adjacent
// to planes k-1 and k+1 only, which is where the |plane distance| term of
// the cost function comes from. This module realizes a partition as that
// stripe floorplan: it sizes the die, allocates one stripe of standard-
// cell rows per plane (proportional to the plane's area), orders gates
// within each stripe with barycenter passes to shorten wires, and packs
// them into rows. The result quantifies the wirelength the partition
// implies and feeds the DEF writer for a placed design.
#pragma once

#include <string>
#include <vector>

#include "core/partition.h"

namespace sfqpart {

struct FloorplanOptions {
  double row_height_um = 60.0;
  // Row fill factor: stripe widths are sized so rows are this full.
  double utilization = 0.80;
  // Greedy same-row adjacent-swap wirelength sweeps over the topological
  // seed order (0 = keep the seed order; never increases wirelength).
  int ordering_passes = 4;
  // Gap between adjacent plane stripes (moat separating the ground
  // planes; coupling pairs sit across it).
  double stripe_gap_um = 20.0;
};

struct PlaneStripe {
  int plane = 0;
  double y_lo_um = 0.0;  // bottom edge
  double y_hi_um = 0.0;  // top edge
  int rows = 0;
};

struct Floorplan {
  double die_width_um = 0.0;
  double die_height_um = 0.0;
  // Stripes in stack order: plane 0 at the top of the die (matching the
  // bias stack of Fig. 1), one per plane.
  std::vector<PlaneStripe> stripes;
  // Per-gate placement (lower-left corner), indexed by GateId; I/O gates
  // sit on the die's left/right edges.
  std::vector<double> x_um;
  std::vector<double> y_um;

  const PlaneStripe& stripe_of(int plane) const {
    return stripes.at(static_cast<std::size_t>(plane));
  }
};

Floorplan build_floorplan(const Netlist& netlist, const Partition& partition,
                          const FloorplanOptions& options = {});

// Half-perimeter wirelength over all nets (both endpoints placed).
double total_hpwl_um(const Netlist& netlist, const Floorplan& floorplan);

// Stripe table plus aggregate wirelength, for the examples.
std::string format_floorplan(const Netlist& netlist, const Floorplan& floorplan);

}  // namespace sfqpart
