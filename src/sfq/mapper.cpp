#include "sfq/mapper.h"

#include <cassert>

#include "sfq/balance.h"
#include "sfq/clocktree.h"
#include "sfq/fanout.h"

namespace sfqpart {
namespace {

// Re-instantiates every gate against the target library by cell kind,
// copying all connections (fanout still illegal at this point).
Netlist map_cells(const Netlist& structural, const CellLibrary& target) {
  Netlist mapped(&target, structural.name());
  for (GateId g = 0; g < structural.num_gates(); ++g) {
    const CellKind kind = structural.cell_of(g).kind;
    const auto cell = target.find_kind(kind);
    assert(cell.has_value() && "target library lacks a cell kind used by the netlist");
    mapped.add_gate(structural.gate(g).name, *cell);
  }
  for (NetId n = 0; n < structural.num_nets(); ++n) {
    const Net& net = structural.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    for (const PinRef& sink : net.sinks) {
      if (sink.pin == kClockPin) {
        mapped.connect_clock(net.driver.gate, net.driver.pin, sink.gate);
      } else {
        mapped.connect(net.driver.gate, net.driver.pin, sink.gate, sink.pin);
      }
    }
  }
  return mapped;
}

}  // namespace

Netlist map_to_sfq(const Netlist& structural, const SfqMapperOptions& options) {
  assert(options.target != nullptr);
  Netlist netlist = map_cells(structural, *options.target);
  if (options.balance_paths) {
    BalanceOptions balance_options;
    balance_options.balance_outputs = options.balance_outputs;
    netlist = insert_path_balancing(netlist, balance_options);
  }
  if (options.insert_clock_tree) {
    netlist = insert_clock_tree(netlist);
  }
  return legalize_fanout(netlist);
}

}  // namespace sfqpart
