#include "sfq/fanout.h"

#include <cassert>
#include <span>

namespace sfqpart {
namespace {

class FanoutLegalizer {
 public:
  explicit FanoutLegalizer(const Netlist& input)
      : input_(input), output_(&input.library(), input.name()) {
    splitter_cell_ = input.library().find_kind(CellKind::kSplit).value_or(-1);
    assert(splitter_cell_ >= 0 && "library has no splitter cell");
  }

  Netlist run() {
    for (GateId g = 0; g < input_.num_gates(); ++g) {
      output_.add_gate(input_.gate(g).name, input_.gate(g).cell);
    }
    for (NetId n = 0; n < input_.num_nets(); ++n) {
      const Net& net = input_.net(n);
      if (net.driver.gate == kInvalidGate || net.sinks.empty()) continue;
      emit(net.driver.gate, net.driver.pin, std::span<const PinRef>(net.sinks));
    }
    return std::move(output_);
  }

 private:
  // Connects `driver` to all `sinks`, inserting a balanced splitter tree
  // when there is more than one sink.
  void emit(GateId driver, int out_pin, std::span<const PinRef> sinks) {
    if (sinks.size() == 1) {
      const PinRef& sink = sinks.front();
      if (sink.pin == kClockPin) {
        output_.connect_clock(driver, out_pin, sink.gate);
      } else {
        output_.connect(driver, out_pin, sink.gate, sink.pin);
      }
      return;
    }
    const GateId splitter =
        output_.add_gate("sp_" + std::to_string(next_splitter_++), splitter_cell_);
    output_.connect(driver, out_pin, splitter, 0);
    const std::size_t half = (sinks.size() + 1) / 2;
    emit(splitter, 0, sinks.subspan(0, half));
    emit(splitter, 1, sinks.subspan(half));
  }

  const Netlist& input_;
  Netlist output_;
  int splitter_cell_ = -1;
  int next_splitter_ = 0;
};

}  // namespace

Netlist legalize_fanout(const Netlist& input) {
  return FanoutLegalizer(input).run();
}

}  // namespace sfqpart
