// Clock distribution for SFQ netlists.
//
// SFQ logic is gate-level pipelined: every clocked cell needs a clock
// pulse each cycle, distributed through an active splitter network (paper
// section II, items i and iii). This pass adds a clock source pin and
// connects the clock input of every clocked gate to it; the resulting
// high-fanout clock net is meant to be legalized by legalize_fanout().
#pragma once

#include "netlist/netlist.h"

namespace sfqpart {

struct ClockTreeOptions {
  // Name of the clock source pin gate (a kInput interface cell).
  const char* clock_pin_name = "pin:clk";
};

// Returns a new netlist with a clock source feeding the clock pin of every
// clocked gate that does not already have one. No-op copy when the netlist
// has no clocked gates.
Netlist insert_clock_tree(const Netlist& input, const ClockTreeOptions& options = {});

}  // namespace sfqpart
