// SFQ technology mapper: structural boolean netlist -> physical SFQ netlist.
//
// Reproduces the mapping pipeline the paper's benchmark suite was built
// with ([20], [21]): map idealized operators onto the physical cell
// library, insert full path balancing DFFs, optionally synthesize the
// clock distribution network, then legalize all fanout with splitter
// trees. The result passes validate() with SFQ fanout rules.
#pragma once

#include "netlist/cell_library.h"
#include "netlist/netlist.h"

namespace sfqpart {

struct SfqMapperOptions {
  const CellLibrary* target = &default_sfq_library();
  bool balance_paths = true;
  bool balance_outputs = true;
  // Clock network synthesis. Disabled by default: the DEF benchmark suite
  // of the paper treats clock distribution as part of routing, and gate /
  // connection counts in Table I reflect the data network (see DESIGN.md).
  bool insert_clock_tree = false;
};

// Maps a structural netlist (cells from structural_library()) to the
// physical target library. Gate names are preserved; inserted cells are
// named "bal_<n>" (balancing DFFs) and "sp_<n>" (splitters).
Netlist map_to_sfq(const Netlist& structural, const SfqMapperOptions& options = {});

}  // namespace sfqpart
