#include "sfq/clocktree.h"

#include <cassert>

namespace sfqpart {

Netlist insert_clock_tree(const Netlist& input, const ClockTreeOptions& options) {
  Netlist output(&input.library(), input.name());
  for (GateId g = 0; g < input.num_gates(); ++g) {
    output.add_gate(input.gate(g).name, input.gate(g).cell);
  }
  for (NetId n = 0; n < input.num_nets(); ++n) {
    const Net& net = input.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    for (const PinRef& sink : net.sinks) {
      if (sink.pin == kClockPin) {
        output.connect_clock(net.driver.gate, net.driver.pin, sink.gate);
      } else {
        output.connect(net.driver.gate, net.driver.pin, sink.gate, sink.pin);
      }
    }
  }

  std::vector<GateId> unclocked_sinks;
  for (GateId g = 0; g < output.num_gates(); ++g) {
    if (output.cell_of(g).is_clocked() && output.clock_net(g) == kInvalidNet) {
      unclocked_sinks.push_back(g);
    }
  }
  if (unclocked_sinks.empty()) return output;

  const auto source_cell = output.library().find_kind(CellKind::kInput);
  assert(source_cell.has_value() && "library has no input interface cell");
  const GateId clock_source = output.add_gate(options.clock_pin_name, *source_cell);
  for (const GateId g : unclocked_sinks) {
    output.connect_clock(clock_source, 0, g);
  }
  return output;
}

}  // namespace sfqpart
