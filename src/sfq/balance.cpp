#include "sfq/balance.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace sfqpart {
namespace {

// Gates whose fan-ins must arrive at one common stage depth: clocked cells
// (they fire on the clock) and mergers (their pulse streams must be
// aligned for deterministic behaviour).
bool needs_aligned_inputs(const Cell& cell) {
  return cell.is_clocked() || cell.kind == CellKind::kMerge;
}

}  // namespace

std::vector<int> stage_depths(const Netlist& netlist) {
  std::vector<int> depth(static_cast<std::size_t>(netlist.num_gates()), 0);
  for (const GateId g : netlist.topological_order()) {
    const Cell& cell = netlist.cell_of(g);
    int max_in = 0;
    for (int pin = 0; pin < cell.num_inputs; ++pin) {
      const NetId net_id = netlist.input_net(g, pin);
      if (net_id == kInvalidNet) continue;
      max_in = std::max(max_in, depth[static_cast<std::size_t>(netlist.net(net_id).driver.gate)]);
    }
    depth[static_cast<std::size_t>(g)] = max_in + (cell.is_clocked() ? 1 : 0);
  }
  return depth;
}

Netlist insert_path_balancing(const Netlist& input, const BalanceOptions& options) {
  const int dff_cell = input.library().find_kind(CellKind::kDff).value_or(-1);
  assert(dff_cell >= 0 && "library has no DFF cell");

  const std::vector<int> depth = stage_depths(input);

  // Depth every primary output should be padded to.
  int max_po_depth = 0;
  if (options.balance_outputs) {
    for (GateId g = 0; g < input.num_gates(); ++g) {
      if (input.cell_of(g).kind == CellKind::kOutput) {
        max_po_depth = std::max(max_po_depth, depth[static_cast<std::size_t>(g)]);
      }
    }
  }

  Netlist output(&input.library(), input.name());
  for (GateId g = 0; g < input.num_gates(); ++g) {
    output.add_gate(input.gate(g).name, input.gate(g).cell);
  }

  int next_dff = 0;
  // Per driver output pin, the tails of its shared DFF chain: chains[i] is
  // the pin after i balancing stages. Sinks with different lags share the
  // chain prefix (fanout legalization later splits the multi-sink taps).
  std::map<std::pair<GateId, int>, std::vector<PinRef>> chain_cache;
  auto pad = [&](GateId driver, int out_pin, int lag) -> PinRef {
    std::vector<PinRef>& chain = chain_cache[{driver, out_pin}];
    if (chain.empty()) chain.push_back(PinRef{driver, out_pin});
    while (static_cast<int>(chain.size()) <= lag) {
      const GateId dff = output.add_gate("bal_" + std::to_string(next_dff++), dff_cell);
      output.connect(chain.back().gate, chain.back().pin, dff, 0);
      chain.push_back(PinRef{dff, 0});
    }
    return chain[static_cast<std::size_t>(lag)];
  };

  for (NetId n = 0; n < input.num_nets(); ++n) {
    const Net& net = input.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    const int src_depth = depth[static_cast<std::size_t>(net.driver.gate)];
    for (const PinRef& sink : net.sinks) {
      if (sink.pin == kClockPin) {
        output.connect_clock(net.driver.gate, net.driver.pin, sink.gate);
        continue;
      }
      const Cell& sink_cell = input.cell_of(sink.gate);
      int required = src_depth;  // default: no padding
      if (needs_aligned_inputs(sink_cell)) {
        required = depth[static_cast<std::size_t>(sink.gate)] -
                   (sink_cell.is_clocked() ? 1 : 0);
      } else if (options.balance_outputs && sink_cell.kind == CellKind::kOutput) {
        required = max_po_depth;
      }
      assert(required >= src_depth && "stage depth computation inconsistent");
      const PinRef tail = pad(net.driver.gate, net.driver.pin, required - src_depth);
      output.connect(tail.gate, tail.pin, sink.gate, sink.pin);
    }
  }
  return output;
}

}  // namespace sfqpart
