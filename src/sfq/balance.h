// Full path balancing for gate-level-pipelined SFQ circuits.
//
// Every clocked SFQ gate consumes its inputs one clock cycle after they
// were produced, so all fan-ins of a gate must arrive through the same
// number of clocked stages (paper section II, item i). This pass computes
// per-gate stage depths and inserts DFF chains on lagging edges.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace sfqpart {

struct BalanceOptions {
  // Also pad primary outputs so every output is produced at the same stage
  // depth (needed when the consumer expects an aligned word, as the
  // arithmetic benchmark circuits do).
  bool balance_outputs = true;
};

// Stage depth of each gate's output: 0 at primary inputs, +1 through each
// clocked gate, unchanged through unclocked cells. For multi-input cells
// the depth is taken over the *maximum* input (lagging inputs are exactly
// the edges balancing must pad).
std::vector<int> stage_depths(const Netlist& netlist);

// Returns a new netlist with DFF chains ("bal_<n>") inserted so that every
// multi-input gate sees equal-depth fan-ins. Works on structural or
// physical netlists (multi-sink nets allowed); requires a kDff cell.
Netlist insert_path_balancing(const Netlist& input, const BalanceOptions& options = {});

}  // namespace sfqpart
