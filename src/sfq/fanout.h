// SFQ fanout legalization.
//
// An SFQ cell output drives exactly one sink; fanout of two requires an
// active splitter cell and larger fanouts a tree of splitters (paper
// section II, item ii). This pass rewrites every multi-sink net into a
// balanced binary splitter tree.
#pragma once

#include "netlist/netlist.h"

namespace sfqpart {

// Returns a new netlist over the same library where every net has exactly
// one sink. Inserted splitters are named "sp_<n>". Requires the library to
// provide a kSplit cell. Gate ids of original gates are preserved (they are
// copied first, in order); splitters are appended after them.
Netlist legalize_fanout(const Netlist& input);

}  // namespace sfqpart
