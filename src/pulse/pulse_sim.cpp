#include "pulse/pulse_sim.h"

#include <algorithm>
#include <cassert>

#include "sfq/balance.h"
#include "util/strings.h"

namespace sfqpart {
namespace {

std::string pin_name(const Netlist& netlist, GateId g) {
  const std::string& name = netlist.gate(g).name;
  return starts_with(name, "pin:") ? name.substr(4) : name;
}

// Clock-edge decision of a clocked cell given which data inputs pulsed
// during the closing cycle.
bool fires(CellKind kind, bool in0, bool in1) {
  switch (kind) {
    case CellKind::kDff:
    case CellKind::kNdro:
      return in0;
    case CellKind::kAnd2:
      return in0 && in1;
    case CellKind::kOr2:
      return in0 || in1;
    case CellKind::kXor2:
      return in0 != in1;
    case CellKind::kNot:
      return !in0;  // clocked inverter: pulse on absence
    default:
      assert(false && "fires() called for unclocked cell");
      return false;
  }
}

}  // namespace

PulseSimulator::PulseSimulator(const Netlist& netlist)
    : netlist_(&netlist), topo_(netlist.topological_order()) {
  const std::vector<int> depth = stage_depths(netlist);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.cell_of(g).kind == CellKind::kOutput) {
      latency_ = std::max(latency_, depth[static_cast<std::size_t>(g)]);
    }
  }
}

PulseTrains PulseSimulator::run(const PulseTrains& inputs, int cycles) {
  const Netlist& netlist = *netlist_;
  const auto num_gates = static_cast<std::size_t>(netlist.num_gates());

  // emit[g]: the pulse a clocked gate releases this cycle (decided at the
  // previous clock edge). pulse[g]: the pulse on g's output(s) this cycle.
  std::vector<bool> emit(num_gates, false);
  std::vector<bool> pulse(num_gates, false);
  std::vector<bool> tff_parity(num_gates, false);

  PulseTrains outputs;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.cell_of(g).kind == CellKind::kOutput) {
      outputs[pin_name(netlist, g)].assign(static_cast<std::size_t>(cycles), false);
    }
  }

  auto input_train = [&](GateId g) -> const std::vector<bool>* {
    const auto it = inputs.find(pin_name(netlist, g));
    return it == inputs.end() ? nullptr : &it->second;
  };

  for (int t = 0; t < cycles; ++t) {
    // Propagate this cycle's pulses through the data network.
    for (const GateId g : topo_) {
      const Cell& cell = netlist.cell_of(g);
      const auto ug = static_cast<std::size_t>(g);
      auto arrived = [&](int pin) -> bool {
        const NetId net = netlist.input_net(g, pin);
        if (net == kInvalidNet) return false;
        return pulse[static_cast<std::size_t>(netlist.net(net).driver.gate)];
      };
      switch (cell.kind) {
        case CellKind::kInput: {
          const std::vector<bool>* train = input_train(g);
          pulse[ug] = train != nullptr && t < static_cast<int>(train->size()) &&
                      (*train)[static_cast<std::size_t>(t)];
          break;
        }
        case CellKind::kOutput:
          pulse[ug] = arrived(0);
          outputs[pin_name(netlist, g)][static_cast<std::size_t>(t)] = pulse[ug];
          break;
        case CellKind::kSplit:
        case CellKind::kJtl:
        case CellKind::kTxDriver:
        case CellKind::kTxReceiver:
          pulse[ug] = arrived(0);
          break;
        case CellKind::kMerge:
          pulse[ug] = arrived(0) || arrived(1);
          break;
        case CellKind::kTff:
          if (arrived(0)) {
            tff_parity[ug] = !tff_parity[ug];
            pulse[ug] = !tff_parity[ug];  // emit on every second pulse
          } else {
            pulse[ug] = false;
          }
          break;
        default:  // clocked logic releases the pulse decided last edge
          pulse[ug] = emit[ug];
          break;
      }
    }

    // Clock edge: latch this cycle's arrivals into next cycle's emissions.
    for (const GateId g : topo_) {
      const Cell& cell = netlist.cell_of(g);
      if (!cell.is_clocked()) continue;
      auto arrived = [&](int pin) -> bool {
        if (pin >= cell.num_inputs) return false;
        const NetId net = netlist.input_net(g, pin);
        if (net == kInvalidNet) return false;
        return pulse[static_cast<std::size_t>(netlist.net(net).driver.gate)];
      };
      emit[static_cast<std::size_t>(g)] = fires(cell.kind, arrived(0), arrived(1));
    }
  }
  return outputs;
}

std::vector<std::uint64_t> PulseSimulator::stream_words(
    const std::string& in_a, const std::vector<std::uint64_t>& a,
    const std::string& in_b, const std::vector<std::uint64_t>& b, int in_width,
    const std::string& out, int out_width) {
  assert(a.size() == b.size());
  const int words = static_cast<int>(a.size());
  const int cycles = words + latency_;

  PulseTrains inputs;
  for (int bit = 0; bit < in_width; ++bit) {
    std::vector<bool> train_a(static_cast<std::size_t>(cycles), false);
    std::vector<bool> train_b(static_cast<std::size_t>(cycles), false);
    for (int i = 0; i < words; ++i) {
      train_a[static_cast<std::size_t>(i)] = ((a[static_cast<std::size_t>(i)] >> bit) & 1) != 0;
      train_b[static_cast<std::size_t>(i)] = ((b[static_cast<std::size_t>(i)] >> bit) & 1) != 0;
    }
    inputs[str_format("%s[%d]", in_a.c_str(), bit)] = std::move(train_a);
    inputs[str_format("%s[%d]", in_b.c_str(), bit)] = std::move(train_b);
  }

  const PulseTrains trains = run(inputs, cycles);
  std::vector<std::uint64_t> result(static_cast<std::size_t>(words), 0);
  for (int bit = 0; bit < out_width; ++bit) {
    const auto it = trains.find(str_format("%s[%d]", out.c_str(), bit));
    assert(it != trains.end() && "missing output pin");
    for (int i = 0; i < words; ++i) {
      if (it->second[static_cast<std::size_t>(i + latency_)]) {
        result[static_cast<std::size_t>(i)] |= (1ULL << bit);
      }
    }
  }
  return result;
}

}  // namespace sfqpart
