// Cycle-accurate pulse-level SFQ simulator.
//
// SFQ logic is gate-level pipelined (paper section II): a clocked gate
// collects input pulses during clock cycle t and emits its result pulse in
// cycle t+1; unclocked cells (splitters, JTLs, mergers) forward pulses
// within the cycle. This simulator executes mapped netlists under those
// semantics, which checks what the word-level simulator (gen/sim.h)
// cannot: that path balancing actually aligns every gate's fan-ins, so a
// new input word can be streamed *every* cycle and the answers emerge
// wave-pipelined after exactly `latency()` cycles.
//
// Gate semantics per RSFQ cell conventions:
//   DFF   emits iff a pulse arrived on D          (1-cycle delay element)
//   AND2  emits iff pulses arrived on both inputs
//   OR2   emits iff a pulse arrived on either input
//   XOR2  emits iff a pulse arrived on exactly one input
//   NOT   emits iff NO pulse arrived               (clocked inverter)
//   NDRO  state element: set by D, emits stored state each clock (simplified
//         here to DFF behaviour, matching the mapper's usage)
//   SPLIT/JTL forward immediately; MERGE forwards a pulse if either input
//         pulsed this cycle; TFF emits every second input pulse.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sfqpart {

// Pulse trains keyed by primary-pin name ("pin:" prefix stripped);
// train[t] is whether a pulse occurs in cycle t.
using PulseTrains = std::map<std::string, std::vector<bool>>;

class PulseSimulator {
 public:
  explicit PulseSimulator(const Netlist& netlist);

  // Pipeline latency in clock cycles from primary inputs to the deepest
  // primary output (= the netlist's clocked stage depth).
  int latency() const { return latency_; }

  // Runs for `cycles` clock cycles. Input trains shorter than `cycles`
  // are zero-extended. Returns output trains of length `cycles`.
  PulseTrains run(const PulseTrains& inputs, int cycles);

  // Convenience: streams per-cycle input words through the pipeline and
  // returns the output words aligned by latency: result[i] corresponds to
  // input word i. `width` words use pins "<name>[bit]".
  std::vector<std::uint64_t> stream_words(const std::string& in_a,
                                          const std::vector<std::uint64_t>& a,
                                          const std::string& in_b,
                                          const std::vector<std::uint64_t>& b,
                                          int in_width, const std::string& out,
                                          int out_width);

 private:
  const Netlist* netlist_;
  std::vector<GateId> topo_;
  int latency_ = 0;
};

}  // namespace sfqpart
