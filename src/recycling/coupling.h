// Inductive coupling insertion planning.
//
// Ground planes are isolated islands; an SFQ pulse crossing from plane p
// to plane q must hop through every plane in between, each hop needing one
// driver/receiver inductive coupling pair laid out across the boundary
// (paper section III). This module counts the pairs a partition implies
// and estimates their area and latency overhead -- the physical cost the
// d^4 term of the cost function is minimizing.
#pragma once

#include <string>
#include <vector>

#include "core/partition.h"

namespace sfqpart {

struct CouplingOptions {
  // Area of one driver/receiver pair (both halves), matching the TXDRV +
  // TXRCV cells of the default library.
  double pair_area_um2 = 1200.0;
  // Latency of one inductive hop (driver + coupled receiver + retiming).
  double hop_delay_ps = 15.0;
  // Count clock-pin connections too (only meaningful when the netlist has
  // an explicit clock tree).
  bool include_clock_edges = true;
};

struct CouplingReport {
  int cross_connections = 0;  // directed gate-to-gate links leaving a plane
  int total_pairs = 0;        // driver/receiver pairs (sum of distances)
  // pairs_by_distance[d]: links crossing exactly d planes (d >= 1).
  std::vector<int> links_by_distance;
  // pairs_per_boundary[b]: pairs laid out across the plane b / b+1 seam.
  std::vector<int> pairs_per_boundary;
  double area_overhead_um2 = 0.0;
  double worst_hop_delay_ps = 0.0;  // deepest crossing * hop delay

  double area_overhead_mm2() const { return area_overhead_um2 * 1e-6; }
};

CouplingReport plan_coupling(const Netlist& netlist, const Partition& partition,
                             const CouplingOptions& options = {});

std::string format_coupling_report(const CouplingReport& report);

}  // namespace sfqpart
