#include "recycling/insertion.h"

#include <cassert>
#include <cstdlib>

namespace sfqpart {

CouplingInsertion apply_coupling_insertion(const Netlist& netlist,
                                           const Partition& partition) {
  const auto driver_cell = netlist.library().find_kind(CellKind::kTxDriver);
  const auto receiver_cell = netlist.library().find_kind(CellKind::kTxReceiver);
  assert(driver_cell && receiver_cell && "library has no coupling cells");

  CouplingInsertion result{Netlist(&netlist.library(), netlist.name()),
                           partition, 0, {}};
  result.added_bias_ma.assign(static_cast<std::size_t>(partition.num_planes), 0.0);

  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    result.netlist.add_gate(netlist.gate(g).name, netlist.gate(g).cell);
  }

  int next_pair = 0;
  // Extends the connection from `tail` on plane `from` toward plane `to`,
  // inserting one driver/receiver pair per boundary; returns the new tail.
  auto bridge = [&](PinRef tail, int from, int to) -> PinRef {
    const int step = to > from ? 1 : -1;
    for (int plane = from; plane != to; plane += step) {
      const GateId driver = result.netlist.add_gate(
          "txd_" + std::to_string(next_pair), *driver_cell);
      const GateId receiver = result.netlist.add_gate(
          "txr_" + std::to_string(next_pair), *receiver_cell);
      ++next_pair;
      result.netlist.connect(tail.gate, tail.pin, driver, 0);
      result.netlist.connect(driver, 0, receiver, 0);
      tail = PinRef{receiver, 0};
      // Driver sits on the sending plane, receiver across the boundary.
      result.partition.plane_of.push_back(plane);
      result.partition.plane_of.push_back(plane + step);
      result.added_bias_ma[static_cast<std::size_t>(plane)] +=
          netlist.library().cell(*driver_cell).bias_ma;
      result.added_bias_ma[static_cast<std::size_t>(plane + step)] +=
          netlist.library().cell(*receiver_cell).bias_ma;
      ++result.pairs_inserted;
    }
    return tail;
  };

  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    const bool driver_assigned = partition.assigned(net.driver.gate);
    const int from = driver_assigned ? partition.plane(net.driver.gate) : 0;
    for (const PinRef& sink : net.sinks) {
      PinRef tail = net.driver;
      if (driver_assigned && partition.assigned(sink.gate)) {
        const int to = partition.plane(sink.gate);
        if (to != from) tail = bridge(tail, from, to);
      }
      if (sink.pin == kClockPin) {
        result.netlist.connect_clock(tail.gate, tail.pin, sink.gate);
      } else {
        result.netlist.connect(tail.gate, tail.pin, sink.gate, sink.pin);
      }
    }
  }
  return result;
}

}  // namespace sfqpart
