// Serial bias planning: turns a partition into the current-recycling stack
// of Fig. 1 of the paper.
//
// The planes are biased in series: the external supply feeds plane 0, its
// ground return feeds plane 1, and so on; every plane sees the same supply
// current B_max, with dummy structures burning (B_max - B_k) on plane k.
// The plan also quantifies the paper's section V claim: serial biasing
// needs ceil(B_max / pad_limit) bias pads instead of
// ceil(B_cir / pad_limit) ("we can save 30 bias lines").
#pragma once

#include <string>
#include <vector>

#include "core/partition.h"

namespace sfqpart {

struct BiasPlanOptions {
  double rail_mv = 2.5;         // bias bus voltage per plane (typical, section III-A)
  double pad_limit_ma = 100.0;  // max current per bias pad ([23])
  // Current one dummy structure (a JTL-equivalent JJ stack) passes; the
  // plan sizes ceil(dummy_ma / this) such cells per plane.
  double dummy_cell_ma = 0.3;
};

struct PlaneBias {
  int plane = 0;
  int gates = 0;
  double bias_ma = 0.0;   // B_k
  double dummy_ma = 0.0;  // B_max - B_k through dummy structures
  int dummy_cells = 0;    // JTL-equivalent stacks sized to pass dummy_ma
  double area_um2 = 0.0;  // A_k
  double potential_mv = 0.0;  // plane potential relative to the last plane
};

struct BiasPlan {
  std::vector<PlaneBias> planes;  // stack order: plane 0 first
  double supply_ma = 0.0;         // externally supplied current (= B_max)
  double total_bias_ma = 0.0;     // B_cir
  double total_dummy_ma = 0.0;    // I_comp
  double stack_voltage_mv = 0.0;  // K * rail_mv
  int pads_serial = 0;            // bias pads with current recycling
  int pads_parallel = 0;          // bias pads without (classic parallel bias)

  int pads_saved() const { return pads_parallel - pads_serial; }
  // Supply power overhead of recycling: K*B_max*V vs B_cir*V, equals
  // 1 + I_comp/B_cir.
  double power_overhead() const {
    return total_bias_ma > 0.0
               ? (total_bias_ma + total_dummy_ma) / total_bias_ma
               : 1.0;
  }
};

BiasPlan make_bias_plan(const Netlist& netlist, const Partition& partition,
                        const BiasPlanOptions& options = {});

// ASCII rendering of the serial bias stack (the machine-generated
// equivalent of the paper's Fig. 1).
std::string format_bias_plan(const BiasPlan& plan);

}  // namespace sfqpart
