#include "recycling/power.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/strings.h"

namespace sfqpart {
namespace {

// Single flux quantum, in mA * ps * mV units: Phi0 = 2.07e-15 V*s
// = 2.07 mV*ps... expressed here directly in J when combined with mA.
constexpr double kPhi0_Vs = 2.07e-15;

}  // namespace

PowerReport analyze_power(const Netlist& netlist, const Partition& partition,
                          const PowerOptions& options) {
  PowerReport report;

  std::vector<double> plane_bias(
      static_cast<std::size_t>(std::max(1, partition.num_planes)), 0.0);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    report.total_bias_ma += netlist.bias_of(g);
    if (partition.assigned(g)) {
      plane_bias[static_cast<std::size_t>(partition.plane(g))] += netlist.bias_of(g);
    }
  }
  const double bmax_ma = *std::max_element(plane_bias.begin(), plane_bias.end());
  report.supply_current_ma = partition.num_planes > 0 ? bmax_ma : report.total_bias_ma;

  // RSFQ: every milliamp flows from supply_mv through a resistor down to
  // rail_mv: P = B_cir * supply_mv (the full drop dissipates somewhere).
  // [mA * mV = uW]
  report.rsfq_static_uw = report.total_bias_ma * options.supply_mv;

  // Dynamic switching energy: each active gate releases about
  // I_bias * Phi0 per pulse (Mukhanov 2011), at `activity * f` pulses/s.
  // I[mA]*Phi0[V*s]*f[GHz] -> W: 1e-3 * 2.07e-15 * 1e9 = 2.07e-9 * I;
  // in uW: * 1e6.
  const double pulses_per_second_ghz = options.activity * options.clock_ghz;
  report.dynamic_uw = report.total_bias_ma * 1e-3 * kPhi0_Vs * 1e9 *
                      pulses_per_second_ghz * 1e6;

  // Recycled: the supply sees K * rail_mv at B_max.
  const int planes = std::max(1, partition.num_planes);
  report.recycled_supply_uw = report.supply_current_ma * options.rail_mv * planes;
  const double ideal_uw = report.total_bias_ma * options.rail_mv;
  report.dummy_burn_uw = report.recycled_supply_uw - ideal_uw;
  return report;
}

std::string format_power_report(const PowerReport& report) {
  return str_format(
      "bias power (B_cir = %.2f mA):\n"
      "  RSFQ resistive parallel : %8.2f uW static\n"
      "  ERSFQ dynamic switching : %8.3f uW\n"
      "  recycled serial supply  : %8.2f uW (%.2f uW burnt in dummies)\n"
      "  cryostat supply current : %.2f mA (%.1fx reduction vs parallel)\n",
      report.total_bias_ma, report.rsfq_static_uw, report.dynamic_uw,
      report.recycled_supply_uw, report.dummy_burn_uw, report.supply_current_ma,
      report.current_reduction_factor());
}

}  // namespace sfqpart
