// Bias power accounting: the "why" of current recycling (paper sections
// I-II).
//
// Three biasing schemes for the same circuit:
//   RSFQ     resistive parallel biasing: static power V_rail * B_cir plus
//            the dissipation in the bias resistors (dominant; the resistor
//            drops supply - rail).
//   ERSFQ    inductive parallel biasing: no static dissipation, dynamic
//            switching energy only (I_bias * Phi0 per SFQ pulse).
//   recycled serial (current-recycled) biasing of a K-plane partition:
//            the supply delivers B_max at K * V_rail; dummy structures
//            burn the imbalance.
// Cable/thermal load scales with the *current* brought into the cryostat,
// which is what recycling divides by ~K.
#pragma once

#include <string>

#include "core/partition.h"

namespace sfqpart {

struct PowerOptions {
  double rail_mv = 2.5;       // bias bus voltage
  double supply_mv = 5.0;     // RSFQ external supply (resistor drops the rest)
  double clock_ghz = 20.0;    // operating frequency for dynamic energy
  // Average switching activity per gate per cycle (pulses are data-
  // dependent; 0.5 is the usual planning number).
  double activity = 0.5;
};

struct PowerReport {
  double total_bias_ma = 0.0;   // B_cir
  double supply_current_ma = 0.0;  // current entering the cryostat (recycled)
  // Parallel RSFQ biasing.
  double rsfq_static_uw = 0.0;
  // Dynamic (ERSFQ-style) switching power, common to all schemes.
  double dynamic_uw = 0.0;
  // Serial recycled biasing: supply power incl. dummy burn.
  double recycled_supply_uw = 0.0;
  double dummy_burn_uw = 0.0;

  // Currents brought into the cryostat: the cable-load ratio.
  double current_reduction_factor() const {
    return supply_current_ma > 0.0 ? total_bias_ma / supply_current_ma : 1.0;
  }
};

PowerReport analyze_power(const Netlist& netlist, const Partition& partition,
                          const PowerOptions& options = {});

std::string format_power_report(const PowerReport& report);

}  // namespace sfqpart
