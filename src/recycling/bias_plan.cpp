#include "recycling/bias_plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace sfqpart {

BiasPlan make_bias_plan(const Netlist& netlist, const Partition& partition,
                        const BiasPlanOptions& options) {
  assert(options.pad_limit_ma > 0.0);
  const int num_planes = partition.num_planes;

  BiasPlan plan;
  plan.planes.resize(static_cast<std::size_t>(num_planes));
  for (int k = 0; k < num_planes; ++k) {
    plan.planes[static_cast<std::size_t>(k)].plane = k;
  }
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    const int k = partition.plane(g);
    assert(k >= 0 && k < num_planes);
    PlaneBias& plane = plan.planes[static_cast<std::size_t>(k)];
    ++plane.gates;
    plane.bias_ma += netlist.bias_of(g);
    plane.area_um2 += netlist.area_of(g);
    plan.total_bias_ma += netlist.bias_of(g);
  }

  for (const PlaneBias& plane : plan.planes) {
    plan.supply_ma = std::max(plan.supply_ma, plane.bias_ma);
  }
  for (PlaneBias& plane : plan.planes) {
    plane.dummy_ma = plan.supply_ma - plane.bias_ma;
    plane.dummy_cells = static_cast<int>(
        std::ceil(plane.dummy_ma / std::max(1e-9, options.dummy_cell_ma)));
    plan.total_dummy_ma += plane.dummy_ma;
    // Plane k sits (K - k) rails above the return: plane 0 is at the top
    // of the stack.
    plane.potential_mv = options.rail_mv * (num_planes - plane.plane);
  }
  plan.stack_voltage_mv = options.rail_mv * num_planes;
  plan.pads_serial =
      static_cast<int>(std::ceil(plan.supply_ma / options.pad_limit_ma));
  plan.pads_parallel =
      static_cast<int>(std::ceil(plan.total_bias_ma / options.pad_limit_ma));
  return plan;
}

std::string format_bias_plan(const BiasPlan& plan) {
  std::string out = str_format(
      "serial bias stack: supply %.2f mA, stack voltage %.1f mV\n"
      "   I_supply\n      |\n      v\n",
      plan.supply_ma, plan.stack_voltage_mv);
  for (const PlaneBias& plane : plan.planes) {
    out += str_format(
        "+---------------------------------------------+\n"
        "| GP%-2d  %5d gates  B=%9.2f mA  @%6.1f mV |%s\n",
        plane.plane, plane.gates, plane.bias_ma, plane.potential_mv,
        plane.dummy_ma > 1e-9
            ? str_format("  dummy %.2f mA (%d cells)", plane.dummy_ma,
                         plane.dummy_cells)
                  .c_str()
            : "");
  }
  out += "+---------------------------------------------+\n      |\n      v\n   return (0 mV)\n";
  out += str_format(
      "B_cir = %.2f mA, I_comp = %.2f mA (%.2f%%), power overhead x%.3f\n"
      "bias pads: %d with recycling vs %d parallel (saves %d)\n",
      plan.total_bias_ma, plan.total_dummy_ma,
      plan.total_bias_ma > 0.0 ? 100.0 * plan.total_dummy_ma / plan.total_bias_ma : 0.0,
      plan.power_overhead(), plan.pads_serial, plan.pads_parallel, plan.pads_saved());
  return out;
}

}  // namespace sfqpart
