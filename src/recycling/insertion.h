// Coupling-cell insertion: materialize the partition's inductive links.
//
// plan_coupling() counts the driver/receiver pairs a partition needs; this
// pass actually *inserts* them into the netlist: every connection from
// plane p to plane q is rewired through |p - q| TXDRV/TXRCV pairs, one per
// plane boundary crossed (only adjacent planes can couple; paper section
// III-B3). The inserted cells draw bias current on their own planes, so
// insertion feeds back into the bias balance — an effect the paper's flow
// stops short of quantifying and which coupling_overhead_bench measures.
#pragma once

#include "core/partition.h"

namespace sfqpart {

struct CouplingInsertion {
  Netlist netlist;      // original gates first, inserted cells appended
  Partition partition;  // extended over the inserted cells
  int pairs_inserted = 0;
  // Extra bias the coupling cells add, per plane [mA].
  std::vector<double> added_bias_ma;
};

// `partition` must cover the netlist. Clock-pin connections are rewired
// like data connections (an explicit clock tree crossing planes needs
// coupling just the same).
CouplingInsertion apply_coupling_insertion(const Netlist& netlist,
                                           const Partition& partition);

}  // namespace sfqpart
