#include "recycling/coupling.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "util/strings.h"

namespace sfqpart {

CouplingReport plan_coupling(const Netlist& netlist, const Partition& partition,
                             const CouplingOptions& options) {
  CouplingReport report;
  report.links_by_distance.assign(static_cast<std::size_t>(partition.num_planes), 0);
  report.pairs_per_boundary.assign(
      partition.num_planes > 0 ? static_cast<std::size_t>(partition.num_planes - 1) : 0,
      0);

  // Physical links are directed (driver -> sink), one per net sink; a net
  // fanning out to two planes needs two coupling paths.
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    if (!partition.assigned(net.driver.gate)) continue;
    const int from = partition.plane(net.driver.gate);
    for (const PinRef& sink : net.sinks) {
      if (sink.pin == kClockPin && !options.include_clock_edges) continue;
      if (!partition.assigned(sink.gate)) continue;
      const int to = partition.plane(sink.gate);
      const int distance = std::abs(to - from);
      if (distance == 0) continue;
      ++report.cross_connections;
      ++report.links_by_distance[static_cast<std::size_t>(distance)];
      report.total_pairs += distance;
      for (int b = std::min(from, to); b < std::max(from, to); ++b) {
        ++report.pairs_per_boundary[static_cast<std::size_t>(b)];
      }
      report.worst_hop_delay_ps = std::max(
          report.worst_hop_delay_ps, options.hop_delay_ps * distance);
    }
  }
  report.area_overhead_um2 = options.pair_area_um2 * report.total_pairs;
  return report;
}

std::string format_coupling_report(const CouplingReport& report) {
  std::string out = str_format(
      "inductive coupling plan: %d cross-plane links, %d driver/receiver pairs\n"
      "area overhead %.4f mm^2, worst crossing latency %.1f ps\n",
      report.cross_connections, report.total_pairs, report.area_overhead_mm2(),
      report.worst_hop_delay_ps);
  for (std::size_t d = 1; d < report.links_by_distance.size(); ++d) {
    if (report.links_by_distance[d] == 0) continue;
    out += str_format("  links crossing %zu plane(s): %d\n", d,
                      report.links_by_distance[d]);
  }
  for (std::size_t b = 0; b < report.pairs_per_boundary.size(); ++b) {
    out += str_format("  boundary GP%zu|GP%zu: %d pairs\n", b, b + 1,
                      report.pairs_per_boundary[b]);
  }
  return out;
}

}  // namespace sfqpart
