// Gate-level structural Verilog writer.
//
// Open-source SFQ front-end flows (the paper's reference [21]) exchange
// netlists as structural Verilog before placement; this writer emits a
// mapped netlist as one module with named-port cell instances. Bus-style
// internal names like "a[0]" become Verilog escaped identifiers
// ("\a[0] "), which verilog_parser.h reads back verbatim.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace sfqpart {

std::string write_verilog(const Netlist& netlist);

}  // namespace sfqpart
