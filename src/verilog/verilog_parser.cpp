#include "verilog/verilog_parser.h"

#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "def/def_parser.h"
#include "def/lexer.h"
#include "util/strings.h"

namespace sfqpart {
namespace {

using def::Token;
using def::TokenStream;

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

// Verilog tokenizer: identifiers (plain and escaped), punctuation
// ( ) , ; . and both comment styles. Escaped identifiers lose their
// leading backslash; the trailing whitespace terminator is consumed.
TokenStream tokenize_verilog(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= text.size() ? i + 2 : text.size();
      continue;
    }
    if (c == '\\') {  // escaped identifier: up to the next whitespace
      std::size_t j = i + 1;
      while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      tokens.push_back(Token{text.substr(i + 1, j - i - 1), line});
      i = j;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < text.size() && (is_ident_char(text[j]) || text[j] == '[' ||
                                 text[j] == ']' || text[j] == ':')) {
        ++j;
      }
      tokens.push_back(Token{text.substr(i, j - i), line});
      i = j;
      continue;
    }
    tokens.push_back(Token{std::string(1, c), line});
    ++i;
  }
  return TokenStream(std::move(tokens));
}

Status parse_id_list(TokenStream& ts, std::vector<std::string>& out) {
  for (;;) {
    if (ts.at_end()) return ts.error("unexpected end of file in declaration");
    out.push_back(ts.take());
    if (ts.accept(";")) return Status::ok();
    if (auto st = ts.expect(","); !st) return st;
  }
}

Status parse_instance(TokenStream& ts, const std::string& cell, VerilogModule& module) {
  VerilogInstance instance;
  instance.cell = cell;
  if (ts.at_end()) return ts.error("instance of " + cell + " needs a name");
  instance.name = ts.take();
  if (auto st = ts.expect("("); !st) return st;
  if (!ts.accept(")")) {
    for (;;) {
      if (auto st = ts.expect("."); !st) return st;
      VerilogPortConn conn;
      if (ts.at_end()) return ts.error("port connection needs a pin name");
      conn.pin = ts.take();
      if (auto st = ts.expect("("); !st) return st;
      if (ts.at_end()) return ts.error("port connection needs a net");
      conn.net = ts.take();
      if (auto st = ts.expect(")"); !st) return st;
      instance.connections.push_back(std::move(conn));
      if (ts.accept(")")) break;
      if (auto st = ts.expect(","); !st) return st;
    }
  }
  if (auto st = ts.expect(";"); !st) return st;
  module.instances.push_back(std::move(instance));
  return Status::ok();
}

}  // namespace

StatusOr<VerilogModule> parse_verilog(const std::string& text) {
  TokenStream ts = tokenize_verilog(text);
  VerilogModule module;

  if (auto st = ts.expect("module"); !st) return st;
  if (ts.at_end()) return ts.error("module needs a name");
  module.name = ts.take();
  if (ts.accept("(")) {
    // Port list is redundant with the input/output declarations; skip it.
    while (!ts.at_end() && !ts.accept(")")) ts.take();
  }
  if (auto st = ts.expect(";"); !st) return st;

  while (!ts.at_end()) {
    const std::string word = ts.take();
    if (word == "endmodule") {
      return module;
    } else if (word == "input") {
      if (auto st = parse_id_list(ts, module.inputs); !st) return st;
    } else if (word == "output") {
      if (auto st = parse_id_list(ts, module.outputs); !st) return st;
    } else if (word == "wire") {
      if (auto st = parse_id_list(ts, module.wires); !st) return st;
    } else if (word == "assign" || word == "always" || word == "reg" ||
               word == "initial" || word == "module") {
      return ts.error("behavioral construct '" + word +
                      "' is not supported (structural netlists only)");
    } else {
      if (auto st = parse_instance(ts, word, module); !st) return st;
    }
  }
  return ts.error("missing endmodule");
}

StatusOr<VerilogModule> read_verilog_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_verilog(buffer.str());
}

StatusOr<Netlist> verilog_to_netlist(const VerilogModule& module,
                                     const CellLibrary& library) {
  Netlist netlist(&library, module.name);

  struct Endpoint {
    GateId gate;
    int pin;
    bool is_clock;
  };
  std::map<std::string, Endpoint> driver_of;
  std::map<std::string, std::vector<Endpoint>> sinks_of;

  for (const std::string& port : module.inputs) {
    const GateId g = netlist.add_gate_of_kind("pin:" + port, CellKind::kInput);
    driver_of.emplace(port, Endpoint{g, 0, false});
  }
  for (const std::string& port : module.outputs) {
    const GateId g = netlist.add_gate_of_kind("pin:" + port, CellKind::kOutput);
    sinks_of[port].push_back(Endpoint{g, 0, false});
  }

  for (const VerilogInstance& instance : module.instances) {
    const auto cell_index = library.find(instance.cell);
    if (!cell_index) {
      return Status::error("instance '" + instance.name + "': unknown cell '" +
                           instance.cell + "'");
    }
    if (netlist.find_gate(instance.name) != kInvalidGate) {
      return Status::error("duplicate instance name '" + instance.name + "'");
    }
    const GateId g = netlist.add_gate(instance.name, *cell_index);
    const Cell& cell = library.cell(*cell_index);
    for (const VerilogPortConn& conn : instance.connections) {
      auto resolved = def::resolve_standard_pin(cell, conn.pin);
      if (!resolved) {
        return Status::error("instance '" + instance.name + "': " +
                             resolved.status().message());
      }
      if (resolved->is_output) {
        if (driver_of.count(conn.net) != 0) {
          return Status::error("net '" + conn.net + "': multiple drivers");
        }
        driver_of.emplace(conn.net, Endpoint{g, resolved->index, false});
      } else {
        sinks_of[conn.net].push_back(Endpoint{g, resolved->index, resolved->is_clock});
      }
    }
  }

  std::set<std::pair<GateId, int>> used_pins;  // pin -1 marks the clock
  for (const auto& [net, sinks] : sinks_of) {
    const auto driver = driver_of.find(net);
    if (driver == driver_of.end()) {
      return Status::error("net '" + net + "': no driver");
    }
    for (const Endpoint& sink : sinks) {
      const int pin_key = sink.is_clock ? -1 : sink.pin;
      if (!used_pins.emplace(sink.gate, pin_key).second) {
        return Status::error("gate '" + netlist.gate(sink.gate).name +
                             "': input pin connected twice");
      }
      if (sink.is_clock) {
        netlist.connect_clock(driver->second.gate, driver->second.pin, sink.gate);
      } else {
        netlist.connect(driver->second.gate, driver->second.pin, sink.gate, sink.pin);
      }
    }
  }
  return netlist;
}

}  // namespace sfqpart
