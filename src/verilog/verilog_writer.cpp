#include "verilog/verilog_writer.h"

#include <cctype>

#include "def/lef_parser.h"
#include "util/strings.h"

namespace sfqpart {
namespace {

bool is_simple_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '$') {
      return false;
    }
  }
  return true;
}

// Escaped identifiers start with '\' and end at whitespace (IEEE 1364).
std::string identifier(const std::string& name) {
  return is_simple_identifier(name) ? name : "\\" + name + " ";
}

std::string port_name(const Netlist& netlist, GateId gate) {
  const std::string& name = netlist.gate(gate).name;
  return starts_with(name, "pin:") ? name.substr(4) : name;
}

}  // namespace

std::string write_verilog(const Netlist& netlist) {
  std::string out = "// structural SFQ netlist, library " +
                    netlist.library().name() + "\n";
  out += "module " + identifier(netlist.name()) + " (";

  std::vector<GateId> inputs;
  std::vector<GateId> outputs;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_io(g)) continue;
    (netlist.cell_of(g).kind == CellKind::kInput ? inputs : outputs).push_back(g);
  }
  bool first = true;
  for (const GateId g : inputs) {
    out += (first ? "" : ", ") + identifier(port_name(netlist, g));
    first = false;
  }
  for (const GateId g : outputs) {
    out += (first ? "" : ", ") + identifier(port_name(netlist, g));
    first = false;
  }
  out += ");\n";
  for (const GateId g : inputs) {
    out += "  input " + identifier(port_name(netlist, g)) + ";\n";
  }
  for (const GateId g : outputs) {
    out += "  output " + identifier(port_name(netlist, g)) + ";\n";
  }

  // One wire per net; nets driven by input pins or feeding output pins use
  // the port name directly.
  std::vector<std::string> net_name(static_cast<std::size_t>(netlist.num_nets()));
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.driver.gate == kInvalidGate) continue;
    std::string name;
    if (netlist.is_io(net.driver.gate)) {
      name = port_name(netlist, net.driver.gate);
    } else {
      for (const PinRef& sink : net.sinks) {
        if (netlist.is_io(sink.gate) &&
            netlist.cell_of(sink.gate).kind == CellKind::kOutput) {
          name = port_name(netlist, sink.gate);
          break;
        }
      }
    }
    if (name.empty()) {
      name = "n" + std::to_string(n);
      out += "  wire " + identifier(name) + ";\n";
    }
    net_name[static_cast<std::size_t>(n)] = name;
  }

  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_io(g)) continue;
    const Cell& cell = netlist.cell_of(g);
    out += "  " + cell.name + " " + identifier(netlist.gate(g).name) + " (";
    bool first_pin = true;
    auto term = [&](const std::string& pin, NetId net) {
      if (net == kInvalidNet) return;
      out += (first_pin ? "" : ", ");
      out += "." + pin + "(" + identifier(net_name[static_cast<std::size_t>(net)]) + ")";
      first_pin = false;
    };
    for (int pin = 0; pin < cell.num_inputs; ++pin) {
      term(def::input_pin_name(pin), netlist.input_net(g, pin));
    }
    if (cell.is_clocked()) term(def::kClockPinName, netlist.clock_net(g));
    for (int pin = 0; pin < cell.num_outputs; ++pin) {
      term(def::output_pin_name(pin, cell.num_outputs), netlist.output_net(g, pin));
    }
    out += ");\n";
  }
  out += "endmodule\n";
  return out;
}

}  // namespace sfqpart
