// Gate-level structural Verilog reader (subset).
//
// Accepts what write_verilog() emits plus the common variations a synthesis
// tool would produce: one module, scalar input/output/wire declarations
// (comma lists), named-port cell instances, escaped identifiers,
// // line and /* block */ comments. Behavioral constructs are rejected
// with a clear error, not skipped.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/status.h"

namespace sfqpart {

struct VerilogPortConn {
  std::string pin;
  std::string net;
};

struct VerilogInstance {
  std::string cell;
  std::string name;
  std::vector<VerilogPortConn> connections;
};

struct VerilogModule {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> wires;
  std::vector<VerilogInstance> instances;
};

StatusOr<VerilogModule> parse_verilog(const std::string& text);
StatusOr<VerilogModule> read_verilog_file(const std::string& path);

// Builds a Netlist against `library` using the standard pin-name
// convention (def/lef_parser.h). Ports become kInput/kOutput interface
// gates named "pin:<port>".
StatusOr<Netlist> verilog_to_netlist(const VerilogModule& module,
                                     const CellLibrary& library);

}  // namespace sfqpart
