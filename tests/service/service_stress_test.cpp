// Multi-client stress for the sfqpartd daemon: several client threads
// hammer one daemon with a mix of distinct and duplicate jobs across
// priorities. Run under TSan (CI `tsan` job) this exercises the queue,
// the sharded cache, the single-flight registry and the response path
// for data races; in any build it pins the invariants that matter under
// concurrency — every request answered exactly once, engine runs bounded
// by the number of distinct keys, and counters that add up.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/daemon.h"

namespace sfqpart::service {
namespace {

std::string stress_job(int seed, int priority, const std::string& id) {
  return R"({"schema": "sfqpart.job.v1", "id": ")" + id +
         R"(", "circuit": "ksa4", "priority": )" + std::to_string(priority) +
         R"(, "options": {"restarts": 1, "seed": )" + std::to_string(seed) +
         "}}";
}

TEST(ServiceStress, ConcurrentClientsGetConsistentAnswers) {
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 8;
  constexpr int kDistinctSeeds = 3;

  DaemonOptions options;
  options.workers = 4;
  options.threads_per_job = 1;
  options.queue_capacity = 256;  // ample: no rejections in this test
  options.cache_capacity = 64;
  Daemon daemon(options);

  std::atomic<int> ok_count{0};
  std::atomic<int> hit_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        const int seed = (c + j) % kDistinctSeeds;
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(j);
        const std::string line = stress_job(seed, j % kNumPriorities, id);
        const auto response = Json::parse(daemon.submit_and_wait(line));
        ASSERT_TRUE(response.is_ok());
        ASSERT_NE(response->find("status"), nullptr);
        if (response->find("status")->as_string() == "ok") {
          ok_count.fetch_add(1);
          if (response->find("cache")->as_string() == "hit") {
            hit_count.fetch_add(1);
          }
        }
        ASSERT_EQ(response->find("id")->as_string(), id);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  constexpr int kTotal = kClients * kJobsPerClient;
  EXPECT_EQ(ok_count.load(), kTotal);
  // Only the distinct (netlist, config) keys ever run an engine; every
  // other request is a cache hit or coalesced onto an in-flight run.
  EXPECT_EQ(daemon.engine_runs(), kDistinctSeeds);
  EXPECT_EQ(hit_count.load(), kTotal - kDistinctSeeds);

  const CacheStats cache = daemon.cache_stats();
  EXPECT_EQ(cache.entries, static_cast<std::size_t>(kDistinctSeeds));
  const Json stats = *Json::parse(daemon.submit_and_wait(R"({"cmd":"stats"})"));
  EXPECT_EQ(stats.find("jobs")->find("accepted")->as_int(), kTotal);
  EXPECT_EQ(stats.find("jobs")->find("completed")->as_int(), kTotal);
  EXPECT_EQ(stats.find("jobs")->find("rejected")->as_int(), 0);
}

TEST(ServiceStress, SubmittersRaceTheCacheWithoutDuplicateRuns) {
  // All clients submit the SAME job concurrently; single-flight must
  // collapse every interleaving to exactly one engine run.
  DaemonOptions options;
  options.workers = 2;
  Daemon daemon(options);

  constexpr int kClients = 8;
  std::atomic<int> miss_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto response = Json::parse(daemon.submit_and_wait(
          stress_job(42, 1, "same" + std::to_string(c))));
      ASSERT_TRUE(response.is_ok());
      ASSERT_EQ(response->find("status")->as_string(), "ok");
      if (response->find("cache")->as_string() == "miss") {
        miss_count.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(daemon.engine_runs(), 1);
  EXPECT_EQ(miss_count.load(), 1);
}

}  // namespace
}  // namespace sfqpart::service
