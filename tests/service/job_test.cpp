#include "service/job.h"

#include <gtest/gtest.h>

namespace sfqpart::service {
namespace {

Json parsed(const std::string& text) {
  auto doc = Json::parse(text);
  EXPECT_TRUE(doc.is_ok()) << doc.status().message();
  return *doc;
}

TEST(JobParse, MinimalCircuitJobGetsDefaults) {
  const auto job = parse_job(
      parsed(R"({"schema": "sfqpart.job.v1", "id": "j1", "circuit": "ksa4"})"));
  ASSERT_TRUE(job.is_ok()) << job.status().message();
  EXPECT_EQ(job->id, "j1");
  EXPECT_EQ(job->source, JobRequest::Source::kCircuit);
  EXPECT_EQ(job->circuit, "ksa4");
  EXPECT_EQ(job->engine, "gradient");
  EXPECT_EQ(job->priority, kDefaultPriority);
  EXPECT_EQ(job->options.size(), 0u);
}

TEST(JobParse, AllFieldsLand) {
  const auto job = parse_job(parsed(
      R"({"schema": "sfqpart.job.v1", "id": "x", "netlist_verilog":
          "module m(); endmodule", "engine": "multilevel", "priority": 0,
          "options": {"planes": 3, "seed": 9}})"));
  ASSERT_TRUE(job.is_ok()) << job.status().message();
  EXPECT_EQ(job->source, JobRequest::Source::kInlineVerilog);
  EXPECT_EQ(job->netlist_verilog, "module m(); endmodule");
  EXPECT_EQ(job->engine, "multilevel");
  EXPECT_EQ(job->priority, 0);
  ASSERT_NE(job->options.find("planes"), nullptr);
  EXPECT_EQ(job->options.find("planes")->as_int(), 3);
}

TEST(JobParse, WarmStartIsOptionalAndTypeChecked) {
  const auto without = parse_job(
      parsed(R"({"schema": "sfqpart.job.v1", "id": "j1", "circuit": "ksa4"})"));
  ASSERT_TRUE(without.is_ok());
  EXPECT_TRUE(without->warm_start.empty());

  const auto with = parse_job(parsed(
      R"({"schema": "sfqpart.job.v1", "id": "j2", "circuit": "ksa4",
          "engine": "eco", "warm_start": "seed.csv"})"));
  ASSERT_TRUE(with.is_ok()) << with.status().message();
  EXPECT_EQ(with->warm_start, "seed.csv");

  EXPECT_FALSE(parse_job(parsed(
                   R"({"schema": "sfqpart.job.v1", "id": "j3",
                       "circuit": "ksa4", "warm_start": 5})"))
                   .is_ok());
}

TEST(JobParse, SchemaTagIsRequiredAndChecked) {
  EXPECT_FALSE(parse_job(parsed(R"({"circuit": "ksa4"})")).is_ok());
  const auto wrong = parse_job(
      parsed(R"({"schema": "sfqpart.job.v2", "circuit": "ksa4"})"));
  ASSERT_FALSE(wrong.is_ok());
  EXPECT_NE(wrong.status().message().find("sfqpart.job.v1"),
            std::string::npos);
  EXPECT_TRUE(wrong.status().is_invalid_argument());
}

TEST(JobParse, ExactlyOneNetlistSource) {
  // None.
  EXPECT_FALSE(parse_job(parsed(R"({"schema": "sfqpart.job.v1"})")).is_ok());
  // Two.
  EXPECT_FALSE(parse_job(parsed(
                             R"({"schema": "sfqpart.job.v1", "circuit": "ksa4",
                                 "netlist_file": "a.def"})"))
                   .is_ok());
}

TEST(JobParse, PriorityMustBeAnIntegerInRange) {
  const char* bad[] = {
      R"({"schema": "sfqpart.job.v1", "circuit": "ksa4", "priority": -1})",
      R"({"schema": "sfqpart.job.v1", "circuit": "ksa4", "priority": 4})",
      R"({"schema": "sfqpart.job.v1", "circuit": "ksa4", "priority": 1.5})",
      R"({"schema": "sfqpart.job.v1", "circuit": "ksa4", "priority": "hi"})",
  };
  for (const char* text : bad) {
    const auto job = parse_job(parsed(text));
    ASSERT_FALSE(job.is_ok()) << text;
    EXPECT_TRUE(job.status().is_invalid_argument());
  }
  for (int p = 0; p < kNumPriorities; ++p) {
    const auto job = parse_job(parsed(
        R"({"schema": "sfqpart.job.v1", "circuit": "ksa4", "priority": )" +
        std::to_string(p) + "}"));
    ASSERT_TRUE(job.is_ok()) << p;
    EXPECT_EQ(job->priority, p);
  }
}

TEST(JobParse, FieldTypesAreChecked) {
  EXPECT_FALSE(parse_job(parsed(
                             R"({"schema": "sfqpart.job.v1", "circuit": 42})"))
                   .is_ok());
  EXPECT_FALSE(parse_job(parsed(
                             R"({"schema": "sfqpart.job.v1", "circuit": "ksa4",
                                 "options": [1, 2]})"))
                   .is_ok());
  EXPECT_FALSE(parse_job(Json::string("not an object")).is_ok());
}

TEST(JobParse, AdminCommandsAreNotJobs) {
  EXPECT_TRUE(is_admin_command(parsed(R"({"cmd": "stats"})")));
  EXPECT_TRUE(is_admin_command(parsed(R"({"cmd": "shutdown"})")));
  EXPECT_FALSE(is_admin_command(
      parsed(R"({"schema": "sfqpart.job.v1", "circuit": "ksa4"})")));
  EXPECT_FALSE(is_admin_command(Json::string("cmd")));
}

}  // namespace
}  // namespace sfqpart::service
