#include "service/scheduler.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sfqpart::service {
namespace {

// Drains the queue without blocking and returns the tags the popped work
// units record, in pop order.
std::vector<int> drain_tags(JobQueue& queue, std::vector<int>& tags) {
  while (auto work = queue.try_pop()) (*work)();
  return tags;
}

TEST(JobQueue, FifoWithinOnePriority) {
  JobQueue queue(16);
  std::vector<int> tags;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.push(1, [&tags, i] { tags.push_back(i); }));
  }
  drain_tags(queue, tags);
  EXPECT_EQ(tags, (std::vector<int>{0, 1, 2, 3}));
}

TEST(JobQueue, HigherPriorityDispatchesFirst) {
  JobQueue queue(16);
  std::vector<int> tags;
  // Push in scrambled priority order; tag = priority * 10 + arrival.
  ASSERT_TRUE(queue.push(2, [&tags] { tags.push_back(20); }));
  ASSERT_TRUE(queue.push(0, [&tags] { tags.push_back(0); }));
  ASSERT_TRUE(queue.push(3, [&tags] { tags.push_back(30); }));
  ASSERT_TRUE(queue.push(1, [&tags] { tags.push_back(10); }));
  ASSERT_TRUE(queue.push(0, [&tags] { tags.push_back(1); }));
  drain_tags(queue, tags);
  // Priority classes in order, FIFO inside the two priority-0 entries.
  EXPECT_EQ(tags, (std::vector<int>{0, 1, 10, 20, 30}));
}

TEST(JobQueue, BackpressureWhenFull) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.push(1, [] {}));
  EXPECT_TRUE(queue.push(0, [] {}));
  // Capacity covers all priorities together.
  EXPECT_FALSE(queue.push(0, [] {}));
  EXPECT_EQ(queue.size(), 2u);
  // Popping frees a slot.
  ASSERT_TRUE(queue.try_pop().has_value());
  EXPECT_TRUE(queue.push(2, [] {}));
}

TEST(JobQueue, TryPopOnEmptyReturnsNothing) {
  JobQueue queue(4);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(JobQueue, ShutdownDrainsThenStops) {
  JobQueue queue(4);
  std::vector<int> tags;
  ASSERT_TRUE(queue.push(1, [&tags] { tags.push_back(1); }));
  queue.shutdown();
  // Already-accepted work is still handed out after shutdown...
  auto work = queue.pop();
  ASSERT_TRUE(work.has_value());
  (*work)();
  EXPECT_EQ(tags, std::vector<int>{1});
  // ...then pop reports exhaustion instead of blocking, and pushes are
  // refused.
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.push(0, [] {}));
}

TEST(JobQueue, BlockedPopWakesOnPush) {
  JobQueue queue(4);
  std::vector<int> tags;
  std::thread consumer([&] {
    auto work = queue.pop();  // blocks until the push below
    ASSERT_TRUE(work.has_value());
    (*work)();
  });
  ASSERT_TRUE(queue.push(1, [&tags] { tags.push_back(7); }));
  consumer.join();
  EXPECT_EQ(tags, std::vector<int>{7});
}

TEST(JobQueue, OutOfRangePriorityIsClamped) {
  JobQueue queue(4);
  std::vector<int> tags;
  ASSERT_TRUE(queue.push(99, [&tags] { tags.push_back(99); }));
  ASSERT_TRUE(queue.push(-5, [&tags] { tags.push_back(-5); }));
  drain_tags(queue, tags);
  // -5 clamps to priority 0 and dispatches before 99 (clamped to 3).
  EXPECT_EQ(tags, (std::vector<int>{-5, 99}));
}

}  // namespace
}  // namespace sfqpart::service
