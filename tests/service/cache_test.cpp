#include "service/cache.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sfqpart::service {
namespace {

// Captures CounterEvents so the tests can assert what the cache emits
// through the observability layer.
class CounterRecorder : public obs::SolverObserver {
 public:
  void on_counter(const obs::CounterEvent& e) override {
    counts_.emplace_back(e.name, e.delta);
  }

  long long total(const std::string& name) const {
    long long sum = 0;
    for (const auto& [counter, delta] : counts_) {
      if (counter == name) sum += delta;
    }
    return sum;
  }

 private:
  std::vector<std::pair<std::string, long long>> counts_;
};

CacheKey key_of(std::uint64_t hash, const std::string& config) {
  CacheKey key;
  key.netlist_hash = hash;
  key.config = config;
  return key;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(8, 2);
  const CacheKey key = key_of(0xabc, "gradient;planes=5;");
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, "report-1");
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "report-1");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, KeyDistinguishesNetlistAndConfig) {
  ResultCache cache(8, 1);
  cache.insert(key_of(1, "a"), "r1");
  EXPECT_FALSE(cache.lookup(key_of(2, "a")).has_value());
  EXPECT_FALSE(cache.lookup(key_of(1, "b")).has_value());
  EXPECT_TRUE(cache.lookup(key_of(1, "a")).has_value());
}

TEST(ResultCache, LruEvictionAtCapacity) {
  // One shard so the LRU order is global and deterministic.
  ResultCache cache(2, 1);
  cache.insert(key_of(1, "x"), "r1");
  cache.insert(key_of(2, "x"), "r2");
  cache.insert(key_of(3, "x"), "r3");  // evicts key 1 (least recent)
  EXPECT_FALSE(cache.lookup(key_of(1, "x")).has_value());
  EXPECT_TRUE(cache.lookup(key_of(2, "x")).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3, "x")).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCache, HitRefreshesRecency) {
  ResultCache cache(2, 1);
  cache.insert(key_of(1, "x"), "r1");
  cache.insert(key_of(2, "x"), "r2");
  ASSERT_TRUE(cache.lookup(key_of(1, "x")).has_value());  // 1 now most recent
  cache.insert(key_of(3, "x"), "r3");                     // evicts 2, not 1
  EXPECT_TRUE(cache.lookup(key_of(1, "x")).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2, "x")).has_value());
}

TEST(ResultCache, ReinsertRefreshesInsteadOfEvicting) {
  ResultCache cache(2, 1);
  cache.insert(key_of(1, "x"), "old");
  cache.insert(key_of(2, "x"), "r2");
  cache.insert(key_of(1, "x"), "new");  // refresh, no eviction
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(*cache.lookup(key_of(1, "x")), "new");
  EXPECT_TRUE(cache.lookup(key_of(2, "x")).has_value());
}

TEST(ResultCache, CountersFlowThroughTheObserverLayer) {
  CounterRecorder recorder;
  obs::TraceSink sink(&recorder);
  ResultCache cache(1, 1, &sink);
  const CacheKey a = key_of(1, "x");
  const CacheKey b = key_of(2, "x");
  cache.lookup(a);        // miss
  cache.insert(a, "ra");
  cache.lookup(a);        // hit
  cache.insert(b, "rb");  // evicts a
  cache.lookup(b);        // hit
  EXPECT_EQ(recorder.total("cache_miss"), 1);
  EXPECT_EQ(recorder.total("cache_hit"), 2);
  EXPECT_EQ(recorder.total("cache_evict"), 1);
}

TEST(ResultCache, ShardingPreservesLookupSemantics) {
  ResultCache cache(64, 8);
  for (int i = 0; i < 32; ++i) {
    cache.insert(key_of(static_cast<std::uint64_t>(i), "cfg"),
                 "r" + std::to_string(i));
  }
  for (int i = 0; i < 32; ++i) {
    const auto hit = cache.lookup(key_of(static_cast<std::uint64_t>(i), "cfg"));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, "r" + std::to_string(i));
  }
}

}  // namespace
}  // namespace sfqpart::service
