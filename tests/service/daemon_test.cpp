#include "service/daemon.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/suite.h"
#include "verilog/verilog_writer.h"

namespace sfqpart::service {
namespace {

// Captures CounterEvents from the daemon's sink.
class CounterRecorder : public obs::SolverObserver {
 public:
  void on_counter(const obs::CounterEvent& e) override {
    counts_.emplace_back(e.name, e.delta);
  }

  long long total(const std::string& name) const {
    long long sum = 0;
    for (const auto& [counter, delta] : counts_) {
      if (counter == name) sum += delta;
    }
    return sum;
  }

 private:
  std::vector<std::pair<std::string, long long>> counts_;
};

// A cheap job line: ksa4, one restart. `extra` is spliced into the
// options object.
std::string job_line(const std::string& id, const std::string& extra = "") {
  return R"({"schema": "sfqpart.job.v1", "id": ")" + id +
         R"(", "circuit": "ksa4", "options": {"restarts": 1)" +
         (extra.empty() ? "" : ", " + extra) + "}}";
}

Json parse_response(const std::string& line) {
  auto doc = Json::parse(line);
  EXPECT_TRUE(doc.is_ok()) << doc.status().message() << "\n" << line;
  EXPECT_EQ(doc->find("schema")->as_string(), kResponseSchema);
  return *doc;
}

std::string field(const Json& response, const char* key) {
  const Json* value = response.find(key);
  return value != nullptr && value->is_string() ? value->as_string() : "";
}

TEST(Daemon, WarmRepeatIsACacheHitWithByteIdenticalReport) {
  CounterRecorder recorder;
  DaemonOptions options;
  options.workers = 1;
  options.observer = &recorder;
  Daemon daemon(options);

  const Json first = parse_response(daemon.submit_and_wait(job_line("cold")));
  const Json second = parse_response(daemon.submit_and_wait(job_line("warm")));

  EXPECT_EQ(field(first, "status"), "ok");
  EXPECT_EQ(field(first, "cache"), "miss");
  EXPECT_EQ(field(second, "status"), "ok");
  EXPECT_EQ(field(second, "cache"), "hit");

  // The warm response embeds the byte-identical run_report.v2 payload.
  ASSERT_NE(first.find("report"), nullptr);
  ASSERT_NE(second.find("report"), nullptr);
  EXPECT_EQ(first.find("report")->dump(0), second.find("report")->dump(0));
  EXPECT_EQ(first.find("report")->find("schema")->as_string(),
            "sfqpart.run_report.v2");

  // O(1) warm path, proven by observer event counts: one engine run, one
  // miss, one hit.
  EXPECT_EQ(daemon.engine_runs(), 1);
  EXPECT_EQ(recorder.total("engine_run"), 1);
  EXPECT_EQ(recorder.total("cache_miss"), 1);
  EXPECT_EQ(recorder.total("cache_hit"), 1);
  EXPECT_EQ(daemon.cache_stats().hits, 1);
}

TEST(Daemon, CanonicalizationMakesSpellingAndThreadsIrrelevant) {
  DaemonOptions options;
  options.workers = 1;
  options.threads_per_job = 2;
  Daemon daemon(options);

  const Json first = parse_response(daemon.submit_and_wait(
      job_line("a", R"("planes": 5, "seed": 7)")));
  // Different option order, float spellings, and a different thread
  // request — same canonical configuration, so a cache hit.
  const Json second = parse_response(daemon.submit_and_wait(
      job_line("b", R"("seed": 7.0, "threads": 2, "planes": 5.0)")));

  EXPECT_EQ(field(first, "cache"), "miss");
  EXPECT_EQ(field(second, "cache"), "hit");
  EXPECT_EQ(daemon.engine_runs(), 1);

  // A genuinely different value is a different key.
  const Json third = parse_response(daemon.submit_and_wait(
      job_line("c", R"("planes": 5, "seed": 8)")));
  EXPECT_EQ(field(third, "cache"), "miss");
  EXPECT_EQ(daemon.engine_runs(), 2);
}

TEST(Daemon, ConcurrentDuplicatesCoalesceToOneEngineRun) {
  DaemonOptions options;
  options.workers = 2;
  Daemon daemon(options);

  // Submit identical jobs back-to-back without waiting: whichever
  // interleaving results, only one engine run happens (single-flight).
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(daemon.submit(job_line("dup" + std::to_string(i))));
  }
  int hits = 0;
  int misses = 0;
  for (auto& future : futures) {
    const Json response = parse_response(future.get());
    EXPECT_EQ(field(response, "status"), "ok");
    (field(response, "cache") == "hit" ? hits : misses) += 1;
  }
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(hits, 5);
  EXPECT_EQ(daemon.engine_runs(), 1);
}

TEST(Daemon, QueueFullJobsAreRejectedExplicitly) {
  DaemonOptions options;
  options.workers = 0;  // nothing dispatches: queue behavior is exact
  options.queue_capacity = 2;
  Daemon daemon(options);

  // Distinct seeds so nothing coalesces. The first two fill the queue
  // (their futures stay pending forever in this mode — do not wait).
  auto pending1 = daemon.submit(job_line("q1", R"("seed": 1)"));
  auto pending2 = daemon.submit(job_line("q2", R"("seed": 2)"));
  const Json rejected =
      parse_response(daemon.submit_and_wait(job_line("q3", R"("seed": 3)")));
  EXPECT_EQ(field(rejected, "status"), "rejected");
  EXPECT_EQ(field(rejected, "error"), "queue_full");
  EXPECT_EQ(rejected.find("id")->as_string(), "q3");

  const Json stats = *Json::parse(daemon.submit_and_wait(R"({"cmd":"stats"})"));
  EXPECT_EQ(stats.find("jobs")->find("rejected")->as_int(), 1);
  EXPECT_EQ(stats.find("queue")->find("size")->as_int(), 2);
}

TEST(Daemon, InvalidRequestsGetPreciseErrors) {
  DaemonOptions options;
  options.workers = 1;
  Daemon daemon(options);

  struct Case {
    const char* line;
    const char* needle;  // expected substring of the error
  };
  const Case cases[] = {
      {"{not json", "json"},
      {R"({"schema": "sfqpart.job.v1"})", "netlist source"},
      {R"({"schema": "sfqpart.job.v1", "circuit": "nonsense"})",
       "unknown circuit"},
      {R"({"schema": "sfqpart.job.v1", "circuit": "ksa4",
           "engine": "bogus"})",
       "unknown engine"},
      {R"({"schema": "sfqpart.job.v1", "circuit": "ksa4",
           "options": {"planes": 1}})",
       "planes"},
      {R"({"schema": "sfqpart.job.v1", "circuit": "ksa4",
           "options": {"cooling": 0.9}})",
       "unknown option"},
      {R"({"schema": "sfqpart.job.v1", "netlist_file": "no/such.def"})",
       "cannot open"},
  };
  for (const Case& c : cases) {
    const Json response = parse_response(daemon.submit_and_wait(c.line));
    EXPECT_EQ(field(response, "status"), "invalid") << c.line;
    EXPECT_NE(field(response, "error").find(c.needle), std::string::npos)
        << field(response, "error");
  }
  EXPECT_EQ(daemon.engine_runs(), 0);
}

TEST(Daemon, FileAndInlineNetlistsShareCacheByContent) {
  // Write ksa4 as structural Verilog, submit it once as a file job and
  // once inline: identical bytes -> identical netlist hash -> cache hit.
  const std::string source = write_verilog(build_mapped("ksa4"));
  const std::string path = "daemon_test_ksa4.v";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    out << source;
  }

  DaemonOptions options;
  options.workers = 1;
  Daemon daemon(options);

  Json file_job = Json::object();
  file_job.set("schema", Json::string(kJobSchema));
  file_job.set("id", Json::string("from-file"));
  file_job.set("netlist_file", Json::string(path));
  file_job.set("options", Json::parse(R"({"restarts": 1})").value());
  const Json first = parse_response(daemon.submit_and_wait(file_job.dump(0)));
  ASSERT_EQ(field(first, "status"), "ok") << field(first, "error");
  EXPECT_EQ(field(first, "cache"), "miss");

  Json inline_job = Json::object();
  inline_job.set("schema", Json::string(kJobSchema));
  inline_job.set("id", Json::string("inline"));
  inline_job.set("netlist_verilog", Json::string(source));
  inline_job.set("options", Json::parse(R"({"restarts": 1})").value());
  const Json second =
      parse_response(daemon.submit_and_wait(inline_job.dump(0)));
  ASSERT_EQ(field(second, "status"), "ok") << field(second, "error");
  EXPECT_EQ(field(second, "cache"), "hit");
  EXPECT_EQ(daemon.engine_runs(), 1);
  std::remove(path.c_str());
}

TEST(Daemon, ServeSpeaksJsonLinesAndHonorsShutdown) {
  std::stringstream in;
  in << job_line("s1") << "\n";
  in << "\n";  // blank lines are ignored
  in << job_line("s2") << "\n";
  in << R"({"cmd": "stats"})" << "\n";
  in << R"({"cmd": "shutdown"})" << "\n";
  in << job_line("after-shutdown") << "\n";  // never read

  std::stringstream out;
  DaemonOptions options;
  options.workers = 2;
  Daemon daemon(options);
  daemon.serve(in, out);

  int job_responses = 0;
  bool saw_stats = false;
  bool saw_shutdown_ack = false;
  std::string line;
  while (std::getline(out, line)) {
    const auto doc = Json::parse(line);
    ASSERT_TRUE(doc.is_ok()) << line;
    const std::string schema = doc->find("schema")->as_string();
    if (schema == kResponseSchema) {
      ++job_responses;
      EXPECT_EQ(doc->find("status")->as_string(), "ok");
      const std::string id = doc->find("id")->as_string();
      EXPECT_TRUE(id == "s1" || id == "s2") << id;
    } else if (schema == "sfqpart.daemon_stats.v1") {
      saw_stats = true;
    } else if (schema == "sfqpart.admin.v1") {
      EXPECT_EQ(doc->find("cmd")->as_string(), "shutdown");
      saw_shutdown_ack = true;
    }
  }
  // The post-shutdown job line was never consumed.
  EXPECT_EQ(job_responses, 2);
  EXPECT_TRUE(saw_stats);
  EXPECT_TRUE(saw_shutdown_ack);
}

TEST(Daemon, EnginesAdminServesTheCatalog) {
  DaemonOptions options;
  options.workers = 0;
  Daemon daemon(options);
  const auto doc = Json::parse(daemon.submit_and_wait(R"({"cmd":"engines"})"));
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->find("schema")->as_string(), "sfqpart.engines.v1");
  const Json* engines = doc->find("engines");
  ASSERT_NE(engines, nullptr);
  EXPECT_EQ(engines->size(), 9u);
  // Every entry carries structured option specs.
  for (std::size_t i = 0; i < engines->size(); ++i) {
    const Json& engine = engines->at(i);
    EXPECT_NE(engine.find("name"), nullptr);
    EXPECT_NE(engine.find("description"), nullptr);
    ASSERT_NE(engine.find("options"), nullptr);
    EXPECT_GT(engine.find("options")->size(), 0u);
  }
  // Unknown admin commands answer with an error document, not silence.
  const auto unknown = Json::parse(daemon.submit_and_wait(R"({"cmd":"nope"})"));
  ASSERT_TRUE(unknown.is_ok());
  EXPECT_EQ(unknown->find("status")->as_string(), "error");
}

}  // namespace
}  // namespace sfqpart::service
