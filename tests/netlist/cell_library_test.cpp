#include "netlist/cell_library.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(CellKind, NamesAndClocking) {
  EXPECT_STREQ(cell_kind_name(CellKind::kAnd2), "AND2");
  EXPECT_STREQ(cell_kind_name(CellKind::kSplit), "SPLIT");
  // Clocked logic gates vs asynchronous interconnect cells (paper sec. II).
  EXPECT_TRUE(cell_kind_is_clocked(CellKind::kDff));
  EXPECT_TRUE(cell_kind_is_clocked(CellKind::kAnd2));
  EXPECT_TRUE(cell_kind_is_clocked(CellKind::kXor2));
  EXPECT_FALSE(cell_kind_is_clocked(CellKind::kSplit));
  EXPECT_FALSE(cell_kind_is_clocked(CellKind::kJtl));
  EXPECT_FALSE(cell_kind_is_clocked(CellKind::kInput));
}

TEST(CellLibrary, AddAndFind) {
  CellLibrary lib("test");
  Cell cell;
  cell.name = "FOO";
  cell.kind = CellKind::kJtl;
  const int index = lib.add_cell(cell);
  EXPECT_EQ(lib.num_cells(), 1);
  EXPECT_EQ(lib.find("FOO"), index);
  EXPECT_FALSE(lib.find("BAR").has_value());
  EXPECT_EQ(lib.find_kind(CellKind::kJtl), index);
  EXPECT_FALSE(lib.find_kind(CellKind::kAnd2).has_value());
}

TEST(DefaultSfqLibrary, HasAllKindsTheFlowNeeds) {
  const CellLibrary& lib = default_sfq_library();
  for (const CellKind kind :
       {CellKind::kDff, CellKind::kAnd2, CellKind::kOr2, CellKind::kXor2,
        CellKind::kNot, CellKind::kSplit, CellKind::kMerge, CellKind::kJtl,
        CellKind::kInput, CellKind::kOutput}) {
    EXPECT_TRUE(lib.find_kind(kind).has_value()) << cell_kind_name(kind);
  }
}

TEST(DefaultSfqLibrary, PhysicalDataIsPlausible) {
  const CellLibrary& lib = default_sfq_library();
  for (const Cell& cell : lib.cells()) {
    EXPECT_TRUE(cell.physical);
    EXPECT_GT(cell.bias_ma, 0.0) << cell.name;
    EXPECT_LT(cell.bias_ma, 5.0) << cell.name;
    EXPECT_GT(cell.area_um2, 100.0) << cell.name;
    EXPECT_GT(cell.jj_count, 0) << cell.name;
  }
  // The splitter drives two outputs; logic gates have the right arity.
  const Cell& split = lib.cell(*lib.find_kind(CellKind::kSplit));
  EXPECT_EQ(split.num_inputs, 1);
  EXPECT_EQ(split.num_outputs, 2);
  const Cell& and2 = lib.cell(*lib.find_kind(CellKind::kAnd2));
  EXPECT_EQ(and2.num_inputs, 2);
  EXPECT_EQ(and2.num_outputs, 1);
}

TEST(StructuralLibrary, IsNotPhysical) {
  const CellLibrary& lib = structural_library();
  for (const Cell& cell : lib.cells()) {
    EXPECT_FALSE(cell.physical) << cell.name;
    EXPECT_DOUBLE_EQ(cell.bias_ma, 0.0) << cell.name;
  }
}

TEST(CellLibrary, ScaleCalibratesBiasAndArea) {
  CellLibrary lib("scaled");
  Cell cell;
  cell.name = "X";
  cell.bias_ma = 1.0;
  cell.area_um2 = 100.0;
  lib.add_cell(cell);
  lib.scale(0.5, 2.0);
  EXPECT_DOUBLE_EQ(lib.cell(0).bias_ma, 0.5);
  EXPECT_DOUBLE_EQ(lib.cell(0).area_um2, 200.0);
}

}  // namespace
}  // namespace sfqpart
