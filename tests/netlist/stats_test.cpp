#include "netlist/stats.h"

#include <gtest/gtest.h>

#include "netlist/dot.h"

namespace sfqpart {
namespace {

Netlist make_chain() {
  // pin:a -> AND(with pin:b) -> DFF -> pin:y
  Netlist netlist(&default_sfq_library(), "chain");
  const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId b = netlist.add_gate_of_kind("pin:b", CellKind::kInput);
  const GateId g = netlist.add_gate_of_kind("g", CellKind::kAnd2);
  const GateId d = netlist.add_gate_of_kind("d", CellKind::kDff);
  const GateId y = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(a, 0, g, 0);
  netlist.connect(b, 0, g, 1);
  netlist.connect(g, 0, d, 0);
  netlist.connect(d, 0, y, 0);
  return netlist;
}

TEST(Stats, CountsAndTotals) {
  const Netlist netlist = make_chain();
  const NetlistStats stats = compute_stats(netlist);
  EXPECT_EQ(stats.num_gates, 2);
  EXPECT_EQ(stats.num_io, 3);
  EXPECT_EQ(stats.num_connections, 1);  // only g--d is gate-to-gate
  EXPECT_EQ(stats.by_kind.at(CellKind::kAnd2), 1);
  EXPECT_EQ(stats.by_kind.at(CellKind::kInput), 2);
  const CellLibrary& lib = default_sfq_library();
  const double expected = lib.cell(*lib.find_kind(CellKind::kAnd2)).bias_ma +
                          lib.cell(*lib.find_kind(CellKind::kDff)).bias_ma;
  EXPECT_DOUBLE_EQ(stats.total_bias_ma, expected);
  EXPECT_GT(stats.total_jj, 0);
}

TEST(Stats, LogicDepthCountsGatesOnLongestPath) {
  const Netlist netlist = make_chain();
  const NetlistStats stats = compute_stats(netlist);
  // a -> g -> d -> y: 4 gates on the path.
  EXPECT_EQ(stats.logic_depth, 4);
}

TEST(Stats, AveragesGuardEmpty) {
  Netlist netlist(&default_sfq_library(), "empty");
  const NetlistStats stats = compute_stats(netlist);
  EXPECT_DOUBLE_EQ(stats.avg_bias_ma(), 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_area_um2(), 0.0);
}

TEST(Stats, FormatMentionsKeyNumbers) {
  const Netlist netlist = make_chain();
  const std::string text = format_stats(netlist, compute_stats(netlist));
  EXPECT_NE(text.find("'chain'"), std::string::npos);
  EXPECT_NE(text.find("2 gates"), std::string::npos);
  EXPECT_NE(text.find("B_cir"), std::string::npos);
}

TEST(Dot, ExportsNodesAndEdges) {
  const Netlist netlist = make_chain();
  const std::string dot = to_dot(netlist);
  EXPECT_NE(dot.find("digraph \"chain\""), std::string::npos);
  EXPECT_NE(dot.find("AND2T"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, ColorsByPlane) {
  const Netlist netlist = make_chain();
  DotOptions options;
  options.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()), 0);
  options.plane_of[2] = 1;
  const std::string dot = to_dot(netlist, options);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(Dot, ClockEdgesHiddenByDefault) {
  Netlist netlist(&default_sfq_library(), "clocked");
  const GateId clk = netlist.add_gate_of_kind("pin:clk", CellKind::kInput);
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d = netlist.add_gate_of_kind("d", CellKind::kDff);
  const GateId y = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(in, 0, d, 0);
  netlist.connect_clock(clk, 0, d);
  netlist.connect(d, 0, y, 0);
  EXPECT_EQ(to_dot(netlist).find("dashed"), std::string::npos);
  DotOptions options;
  options.show_clock_edges = true;
  EXPECT_NE(to_dot(netlist, options).find("dashed"), std::string::npos);
}

}  // namespace
}  // namespace sfqpart
