#include "netlist/validate.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(Validate, CleanNetlistPasses) {
  Netlist netlist(&default_sfq_library(), "clean");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d = netlist.add_gate_of_kind("d", CellKind::kDff);
  const GateId out = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(in, 0, d, 0);
  netlist.connect(d, 0, out, 0);
  EXPECT_TRUE(validate(netlist).ok());
}

TEST(Validate, FlagsUndrivenInput) {
  Netlist netlist(&default_sfq_library(), "undriven");
  netlist.add_gate_of_kind("d", CellKind::kDff);
  const auto report = validate(netlist);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].find("input pin 0 undriven"), std::string::npos);
}

TEST(Validate, FlagsIllegalSfqFanout) {
  Netlist netlist(&default_sfq_library(), "fanout");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
  const GateId d2 = netlist.add_gate_of_kind("d2", CellKind::kDff);
  netlist.connect(in, 0, d1, 0);
  netlist.connect(in, 0, d2, 0);  // two sinks on one SFQ output
  const auto report = validate(netlist);
  bool found = false;
  for (const auto& issue : report.issues) {
    found |= issue.find("needs a splitter tree") != std::string::npos;
  }
  EXPECT_TRUE(found);

  ValidateOptions relaxed;
  relaxed.enforce_sfq_fanout = false;
  relaxed.require_outputs_used = false;  // d1/d2 outputs dangle on purpose
  EXPECT_TRUE(validate(netlist, relaxed).ok());
}

TEST(Validate, StructuralFanoutIsLegal) {
  // Unlimited fanout is fine for non-physical (structural) cells.
  Netlist netlist(&structural_library(), "structural");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId n1 = netlist.add_gate_of_kind("n1", CellKind::kNot);
  const GateId n2 = netlist.add_gate_of_kind("n2", CellKind::kNot);
  const GateId out = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(in, 0, n1, 0);
  netlist.connect(in, 0, n2, 0);
  netlist.connect(n1, 0, out, 0);
  const auto report = validate(netlist);
  // n2 output dangles -> one issue, but no fanout complaint.
  for (const auto& issue : report.issues) {
    EXPECT_EQ(issue.find("splitter"), std::string::npos) << issue;
  }
}

TEST(Validate, FlagsDanglingOutput) {
  Netlist netlist(&default_sfq_library(), "dangling");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId s = netlist.add_gate_of_kind("s", CellKind::kSplit);
  const GateId out = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(in, 0, s, 0);
  netlist.connect(s, 0, out, 0);
  // s output 1 never used -> its net does not even exist; that is caught
  // as nothing, but a net with zero sinks is:
  (void)netlist.connect(s, 1, netlist.add_gate_of_kind("d", CellKind::kDff), 0);
  EXPECT_FALSE(validate(netlist).ok());  // the DFF output dangles (no net)
}

TEST(Validate, MissingClockReportedWhenRequired) {
  Netlist netlist(&default_sfq_library(), "clockless");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d = netlist.add_gate_of_kind("d", CellKind::kDff);
  const GateId out = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(in, 0, d, 0);
  netlist.connect(d, 0, out, 0);

  EXPECT_TRUE(validate(netlist).ok());  // default: clocks optional
  ValidateOptions strict;
  strict.require_clocks = true;
  const auto report = validate(netlist, strict);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].find("no clock"), std::string::npos);
}

TEST(Validate, DetectsCombinationalCycle) {
  Netlist netlist(&default_sfq_library(), "cycle");
  const GateId m1 = netlist.add_gate_of_kind("m1", CellKind::kMerge);
  const GateId m2 = netlist.add_gate_of_kind("m2", CellKind::kMerge);
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId in2 = netlist.add_gate_of_kind("pin:b", CellKind::kInput);
  const GateId out = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(in, 0, m1, 0);
  netlist.connect(m2, 0, m1, 1);  // m2 -> m1
  netlist.connect(in2, 0, m2, 0);
  // m1 -> split -> {m2, out} closes the cycle legally fanout-wise.
  const GateId s = netlist.add_gate_of_kind("s", CellKind::kSplit);
  netlist.connect(m1, 0, s, 0);
  netlist.connect(s, 0, m2, 1);
  netlist.connect(s, 1, out, 0);
  const auto report = validate(netlist);
  bool found = false;
  for (const auto& issue : report.issues) {
    found |= issue.find("cycle") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sfqpart
