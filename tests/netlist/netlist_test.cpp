#include "netlist/netlist.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

// in -> DFF(d0) -> SPLIT(s0) -> {DFF(d1), out}; builds the tiny physical
// netlist most tests here share.
struct Fixture {
  Netlist netlist{&default_sfq_library(), "tiny"};
  GateId in, d0, s0, d1, out;

  Fixture() {
    in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
    s0 = netlist.add_gate_of_kind("s0", CellKind::kSplit);
    d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
    out = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
    netlist.connect(in, 0, d0, 0);
    netlist.connect(d0, 0, s0, 0);
    netlist.connect(s0, 0, d1, 0);
    netlist.connect(s0, 1, out, 0);
  }
};

TEST(Netlist, ConstructionBasics) {
  Fixture f;
  EXPECT_EQ(f.netlist.num_gates(), 5);
  EXPECT_EQ(f.netlist.num_nets(), 4);
  EXPECT_EQ(f.netlist.find_gate("s0"), f.s0);
  EXPECT_EQ(f.netlist.find_gate("missing"), kInvalidGate);
  EXPECT_EQ(f.netlist.cell_of(f.s0).kind, CellKind::kSplit);
}

TEST(Netlist, PinConnectivityQueries) {
  Fixture f;
  const NetId net = f.netlist.output_net(f.s0, 0);
  ASSERT_NE(net, kInvalidNet);
  EXPECT_EQ(f.netlist.net(net).driver, (PinRef{f.s0, 0}));
  ASSERT_EQ(f.netlist.net(net).sinks.size(), 1u);
  EXPECT_EQ(f.netlist.net(net).sinks[0], (PinRef{f.d1, 0}));
  EXPECT_EQ(f.netlist.input_net(f.d1, 0), net);
  EXPECT_EQ(f.netlist.output_net(f.d1, 0), kInvalidNet);  // dangling output
  EXPECT_EQ(f.netlist.fanout(f.s0), 2);
  EXPECT_EQ(f.netlist.fanout(f.d0), 1);
}

TEST(Netlist, IoGatesExcludedFromPartitionableSet) {
  Fixture f;
  EXPECT_TRUE(f.netlist.is_io(f.in));
  EXPECT_TRUE(f.netlist.is_io(f.out));
  EXPECT_FALSE(f.netlist.is_io(f.d0));
  EXPECT_EQ(f.netlist.num_partitionable_gates(), 3);
}

TEST(Netlist, TotalsCoverOnlyPartitionableGates) {
  Fixture f;
  const CellLibrary& lib = default_sfq_library();
  const double dff_bias = lib.cell(*lib.find_kind(CellKind::kDff)).bias_ma;
  const double split_bias = lib.cell(*lib.find_kind(CellKind::kSplit)).bias_ma;
  EXPECT_DOUBLE_EQ(f.netlist.total_bias_ma(), 2 * dff_bias + split_bias);
  EXPECT_GT(f.netlist.total_area_um2(), 0.0);
}

TEST(Netlist, UniqueEdgesExcludeIoAndDeduplicate) {
  Fixture f;
  const auto edges = f.netlist.unique_edges();
  // in->d0 and s0->out dropped (I/O); d0->s0 and s0->d1 remain.
  ASSERT_EQ(edges.size(), 2u);
  for (const Connection& edge : edges) {
    EXPECT_LT(edge.from, edge.to);  // canonical order
  }
}

TEST(Netlist, ParallelConnectionsCollapseToOneEdge) {
  Netlist netlist(&default_sfq_library(), "par");
  const GateId s = netlist.add_gate_of_kind("s", CellKind::kSplit);
  const GateId m = netlist.add_gate_of_kind("m", CellKind::kMerge);
  netlist.connect(s, 0, m, 0);
  netlist.connect(s, 1, m, 1);
  EXPECT_EQ(netlist.connections().size(), 2u);
  EXPECT_EQ(netlist.unique_edges().size(), 1u);
}

TEST(Netlist, TopologicalOrderRespectsDataEdges) {
  Fixture f;
  const auto order = f.netlist.topological_order();
  ASSERT_EQ(order.size(), 5u);
  auto position = [&](GateId g) {
    return std::find(order.begin(), order.end(), g) - order.begin();
  };
  EXPECT_LT(position(f.in), position(f.d0));
  EXPECT_LT(position(f.d0), position(f.s0));
  EXPECT_LT(position(f.s0), position(f.d1));
  EXPECT_LT(position(f.s0), position(f.out));
}

TEST(Netlist, ClockEdgesDoNotConstrainTopologicalOrder) {
  Netlist netlist(&default_sfq_library(), "clk");
  const GateId src = netlist.add_gate_of_kind("pin:clk", CellKind::kInput);
  const GateId d = netlist.add_gate_of_kind("d", CellKind::kDff);
  netlist.connect(src, 0, d, 0);
  netlist.connect_clock(src, 0, d);
  EXPECT_EQ(netlist.clock_net(d), netlist.input_net(d, 0));
  EXPECT_EQ(netlist.topological_order().size(), 2u);
  EXPECT_EQ(netlist.fanout(src), 2);
}

TEST(Netlist, AddGateOfKindUsesLibrary) {
  Netlist netlist(&default_sfq_library(), "kinds");
  const GateId g = netlist.add_gate_of_kind("x", CellKind::kXor2);
  EXPECT_EQ(netlist.cell_of(g).kind, CellKind::kXor2);
  EXPECT_EQ(netlist.cell_of(g).name, "XOR2T");
}

}  // namespace
}  // namespace sfqpart
