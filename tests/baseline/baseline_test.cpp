#include "baseline/fm_kway.h"
#include "baseline/layered_partition.h"
#include "baseline/random_partition.h"

#include <gtest/gtest.h>

#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

void expect_complete(const Netlist& netlist, const Partition& partition, int k) {
  EXPECT_EQ(partition.num_planes, k);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      EXPECT_GE(partition.plane(g), 0);
      EXPECT_LT(partition.plane(g), k);
    } else {
      EXPECT_EQ(partition.plane(g), kUnassignedPlane);
    }
  }
}

TEST(RandomPartition, CompleteAndCountBalanced) {
  const Netlist netlist = build_mapped("ksa8");
  const Partition partition = random_partition(netlist, 5, 1);
  expect_complete(netlist, partition, 5);
  const PartitionMetrics metrics = compute_metrics(netlist, partition);
  // Round-robin: plane gate counts differ by at most 1.
  int lo = netlist.num_gates();
  int hi = 0;
  for (const int count : metrics.plane_gates) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(RandomPartition, SeedControlsResult) {
  const Netlist netlist = build_mapped("ksa4");
  EXPECT_EQ(random_partition(netlist, 4, 7).plane_of,
            random_partition(netlist, 4, 7).plane_of);
  EXPECT_NE(random_partition(netlist, 4, 7).plane_of,
            random_partition(netlist, 4, 8).plane_of);
}

TEST(LayeredPartition, BiasBalancedWithinOneGate) {
  const Netlist netlist = build_mapped("ksa8");
  const Partition partition = layered_partition(netlist, 5);
  expect_complete(netlist, partition, 5);
  const PartitionMetrics metrics = compute_metrics(netlist, partition);
  const double ideal = metrics.total_bias_ma / 5;
  for (const double bias : metrics.plane_bias_ma) {
    EXPECT_NEAR(bias, ideal, 2.0);  // max gate bias ~1.35 mA, slack 2
  }
}

TEST(LayeredPartition, ExploitsPipelineLocality) {
  const Netlist netlist = build_mapped("ksa8");
  const PartitionMetrics layered =
      compute_metrics(netlist, layered_partition(netlist, 5));
  const PartitionMetrics random =
      compute_metrics(netlist, random_partition(netlist, 5, 1));
  EXPECT_GT(layered.frac_within(1), random.frac_within(1) + 0.2);
}

TEST(LayeredPartition, AreaModeBalancesArea) {
  const Netlist netlist = build_mapped("mult4");
  LayeredOptions options;
  options.balance_bias = false;
  const PartitionMetrics metrics =
      compute_metrics(netlist, layered_partition(netlist, 4, options));
  const double ideal = metrics.total_area_um2 / 4;
  for (const double area : metrics.plane_area_um2) {
    EXPECT_NEAR(area, ideal, 8000.0);
  }
}

TEST(FmKway, ReducesCutWithinBalance) {
  const Netlist netlist = build_mapped("ksa8");
  FmOptions options;
  options.max_passes = 6;
  const FmResult result = fm_kway_partition(netlist, 5, options);
  expect_complete(netlist, result.partition, 5);
  EXPECT_LT(result.final_cut, result.initial_cut);
  EXPECT_EQ(cut_count(netlist, result.partition), result.final_cut);

  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);
  const double ideal = metrics.total_bias_ma / 5;
  for (const double bias : metrics.plane_bias_ma) {
    EXPECT_LE(bias, ideal * 1.10 + 1.5);
    EXPECT_GE(bias, ideal * 0.90 - 1.5);
  }
}

TEST(FmKway, CutObjectiveIgnoresDistance) {
  // The classic objective can beat the optimizer on raw cut count while
  // being worse on the distance-weighted metrics -- the paper's argument
  // for a new formulation. At minimum, FM must not produce a *better*
  // distance profile than its own cut profile implies: check consistency,
  // d<=0 share == 1 - cut/|E|.
  const Netlist netlist = build_mapped("mult4");
  const FmResult result = fm_kway_partition(netlist, 5);
  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);
  EXPECT_NEAR(metrics.frac_within(0),
              1.0 - static_cast<double>(result.final_cut) / metrics.num_connections,
              1e-9);
}

TEST(CutCount, HandComputed) {
  Netlist netlist(&default_sfq_library(), "cut");
  const GateId a = netlist.add_gate_of_kind("a", CellKind::kDff);
  const GateId b = netlist.add_gate_of_kind("b", CellKind::kDff);
  const GateId c = netlist.add_gate_of_kind("c", CellKind::kDff);
  netlist.connect(a, 0, b, 0);
  netlist.connect(b, 0, c, 0);
  Partition partition;
  partition.num_planes = 2;
  partition.plane_of = {0, 0, 1};
  EXPECT_EQ(cut_count(netlist, partition), 1);
  partition.plane_of = {0, 1, 0};
  EXPECT_EQ(cut_count(netlist, partition), 2);
}

}  // namespace
}  // namespace sfqpart
