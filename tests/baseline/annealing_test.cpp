#include "baseline/annealing.h"

#include <set>

#include <gtest/gtest.h>

#include "baseline/random_partition.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

TEST(Annealing, ImprovesTheRandomStart) {
  const Netlist netlist = build_mapped("ksa8");
  const AnnealingResult result = anneal_partition(netlist, 5);
  EXPECT_LT(result.final_cost, 0.5 * result.initial_cost);
  EXPECT_GT(result.moves_accepted, 0);
  EXPECT_GE(result.moves_tried, result.moves_accepted);
}

TEST(Annealing, ProducesCompleteValidPartition) {
  const Netlist netlist = build_mapped("mult4");
  const AnnealingResult result = anneal_partition(netlist, 4);
  std::set<int> used;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      ASSERT_GE(result.partition.plane(g), 0);
      ASSERT_LT(result.partition.plane(g), 4);
      used.insert(result.partition.plane(g));
    }
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(Annealing, DeterministicForSeed) {
  const Netlist netlist = build_mapped("ksa4");
  AnnealingOptions options;
  options.seed = 11;
  const AnnealingResult a = anneal_partition(netlist, 3, options);
  const AnnealingResult b = anneal_partition(netlist, 3, options);
  EXPECT_EQ(a.partition.plane_of, b.partition.plane_of);
  EXPECT_DOUBLE_EQ(a.final_cost, b.final_cost);
}

TEST(Annealing, CompetitiveQualityMetrics) {
  const Netlist netlist = build_mapped("ksa8");
  const AnnealingResult result = anneal_partition(netlist, 5);
  const PartitionMetrics m = compute_metrics(netlist, result.partition);
  const PartitionMetrics random =
      compute_metrics(netlist, random_partition(netlist, 5, 1));
  EXPECT_GT(m.frac_within(1), random.frac_within(1));
  EXPECT_LT(m.icomp_frac(), 0.2);
}

TEST(Annealing, PatienceStopsEarly) {
  const Netlist netlist = build_mapped("ksa4");
  AnnealingOptions impatient;
  impatient.patience = 1;
  impatient.temperature_steps = 40;
  const AnnealingResult result = anneal_partition(netlist, 3, impatient);
  EXPECT_LT(result.steps, 40);
}

TEST(Annealing, FinalCostMatchesReturnedPartition) {
  const Netlist netlist = build_mapped("mult4");
  AnnealingOptions options;
  const AnnealingResult result = anneal_partition(netlist, 5, options);
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const CostModel model(problem, options.weights);
  std::vector<int> labels;
  for (const GateId g : problem.gate_ids) labels.push_back(result.partition.plane(g));
  EXPECT_NEAR(model.evaluate_discrete(labels).total(options.weights),
              result.final_cost, 1e-9);
}

}  // namespace
}  // namespace sfqpart
