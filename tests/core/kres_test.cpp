#include "core/kres_search.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

TEST(KresSearch, MeetsTheBiasLimit) {
  const Netlist netlist = build_mapped("ksa8");  // B_cir ~ 178 mA
  KresOptions options;
  options.bias_limit_ma = 100.0;
  const KresResult result = find_min_planes(netlist, options).value();
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.bmax_ma, 100.0);
  EXPECT_GE(result.k_res, result.k_lb);
  const PartitionMetrics metrics = compute_metrics(netlist, result.result.partition);
  EXPECT_NEAR(metrics.bmax_ma, result.bmax_ma, 1e-9);
}

TEST(KresSearch, LowerBoundMatchesCeiling) {
  const Netlist netlist = build_mapped("ksa8");
  KresOptions options;
  options.bias_limit_ma = 100.0;
  const KresResult result = find_min_planes(netlist, options).value();
  const int expected =
      std::max(2, static_cast<int>(std::ceil(netlist.total_bias_ma() / 100.0)));
  EXPECT_EQ(result.k_lb, expected);
}

TEST(KresSearch, TighterLimitNeedsMorePlanes) {
  const Netlist netlist = build_mapped("mult4");
  KresOptions loose;
  loose.bias_limit_ma = 120.0;
  KresOptions tight;
  tight.bias_limit_ma = 40.0;
  const KresResult loose_result = find_min_planes(netlist, loose).value();
  const KresResult tight_result = find_min_planes(netlist, tight).value();
  ASSERT_TRUE(loose_result.found);
  ASSERT_TRUE(tight_result.found);
  EXPECT_GT(tight_result.k_res, loose_result.k_res);
  EXPECT_LE(tight_result.bmax_ma, 40.0);
}

TEST(KresSearch, GivesUpAtMaxPlanes) {
  const Netlist netlist = build_mapped("ksa8");
  KresOptions impossible;
  impossible.bias_limit_ma = 1.5;  // one gate already exceeds this
  impossible.max_planes = 12;
  const KresResult result = find_min_planes(netlist, impossible).value();
  EXPECT_FALSE(result.found);
}

TEST(KresSearch, GenerousLimitStillUsesAtLeastTwoPlanes) {
  // Current recycling needs at least a 2-stack to recycle anything.
  const Netlist netlist = build_mapped("ksa4");
  KresOptions options;
  options.bias_limit_ma = 10000.0;
  const KresResult result = find_min_planes(netlist, options).value();
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.k_lb, 2);
  EXPECT_EQ(result.k_res, 2);
}

}  // namespace
}  // namespace sfqpart
