// Optimizer behaviour across the real benchmark suite (property sweep):
// convergence, descent, and hardening sanity on every circuit class.
#include <cmath>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/soft_assign.h"
#include "gen/suite.h"

namespace sfqpart {
namespace {

class OptimizerSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerSuite, ConvergesWithDescendingTrace) {
  const Netlist netlist = build_mapped(GetParam());
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const CostModel model(problem, CostWeights{});
  Rng rng(2026);
  OptimizerOptions options;
  options.record_trace = true;
  const OptimizerResult result = run_gradient_descent(
      model, random_soft_assignment(problem.num_gates, 5, rng), options);

  EXPECT_TRUE(result.converged) << GetParam();
  ASSERT_GE(result.cost_trace.size(), 10u);
  EXPECT_LT(result.cost_trace.back(), result.cost_trace.front());
  for (const double cost : result.cost_trace) {
    EXPECT_TRUE(std::isfinite(cost));
  }
  // The converged W hardens to an assignment that uses several planes and
  // has a decisive argmax for the vast majority of gates.
  const std::vector<int> labels = harden(result.w);
  int decisive = 0;
  for (std::size_t i = 0; i < result.w.rows(); ++i) {
    const auto row = result.w.row(i);
    double best = 0.0;
    double second = 0.0;
    for (const double v : row) {
      if (v > best) {
        second = best;
        best = v;
      } else if (v > second) {
        second = v;
      }
    }
    if (best > second + 0.1) ++decisive;
  }
  EXPECT_GT(decisive, problem.num_gates * 7 / 10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Circuits, OptimizerSuite,
                         ::testing::Values("ksa4", "ksa16", "mult4", "id4",
                                           "c432", "c1908"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace sfqpart
