#include "core/feedback.h"

#include <gtest/gtest.h>

#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "recycling/insertion.h"

namespace sfqpart {
namespace {

TEST(Feedback, NeverWorseThanSingleRound) {
  const Netlist netlist = build_mapped("ksa8");
  FeedbackOptions options;
  options.base.num_planes = 5;
  const FeedbackResult result = partition_with_coupling_feedback(netlist, options);
  EXPECT_LE(result.icomp_final, result.icomp_first + 1e-12);
  EXPECT_GE(result.rounds, 1);
  EXPECT_LE(result.rounds, options.max_rounds);
}

TEST(Feedback, ReportedIcompMatchesImplementedNetlist) {
  const Netlist netlist = build_mapped("mult4");
  FeedbackOptions options;
  options.base.num_planes = 4;
  const FeedbackResult result = partition_with_coupling_feedback(netlist, options);
  const CouplingInsertion inserted =
      apply_coupling_insertion(netlist, result.partition);
  const PartitionMetrics metrics =
      compute_metrics(inserted.netlist, inserted.partition);
  EXPECT_NEAR(metrics.icomp_frac(), result.icomp_final, 1e-12);
  EXPECT_EQ(inserted.pairs_inserted, result.pairs_final);
}

TEST(Feedback, PartitionCoversOriginalNetlist) {
  const Netlist netlist = build_mapped("ksa4");
  FeedbackOptions options;
  options.base.num_planes = 3;
  const FeedbackResult result = partition_with_coupling_feedback(netlist, options);
  ASSERT_EQ(result.partition.plane_of.size(),
            static_cast<std::size_t>(netlist.num_gates()));
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      EXPECT_GE(result.partition.plane(g), 0);
      EXPECT_LT(result.partition.plane(g), 3);
    }
  }
}

TEST(Feedback, SingleRoundEqualsPlainFlow) {
  const Netlist netlist = build_mapped("ksa4");
  FeedbackOptions options;
  options.base.num_planes = 3;
  options.max_rounds = 1;
  const FeedbackResult result = partition_with_coupling_feedback(netlist, options);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_DOUBLE_EQ(result.icomp_first, result.icomp_final);
}

}  // namespace
}  // namespace sfqpart
