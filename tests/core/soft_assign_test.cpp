#include "core/soft_assign.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(RandomSoftAssignment, RowsSumToOne) {
  Rng rng(1);
  const Matrix w = random_soft_assignment(50, 5, rng);
  ASSERT_EQ(w.rows(), 50u);
  ASSERT_EQ(w.cols(), 5u);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double sum = 0.0;
    for (const double v : w.row(r)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(RandomSoftAssignment, SeedDeterminism) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(random_soft_assignment(10, 3, a), random_soft_assignment(10, 3, b));
}

TEST(NormalizeRows, ZeroRowBecomesUniform) {
  Matrix w(2, 4);
  w(0, 1) = 2.0;
  normalize_rows(w);
  EXPECT_DOUBLE_EQ(w(0, 1), 1.0);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(w(1, k), 0.25);
  }
}

TEST(Clip01, ClampsBothEnds) {
  Matrix w(1, 3);
  w(0, 0) = -0.5;
  w(0, 1) = 0.5;
  w(0, 2) = 1.5;
  clip01(w);
  EXPECT_DOUBLE_EQ(w(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(w(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(w(0, 2), 1.0);
}

TEST(Harden, PicksArgmaxWithLowTies) {
  Matrix w(3, 3);
  w(0, 2) = 0.9;               // clear winner
  w(1, 0) = 0.5;
  w(1, 1) = 0.5;               // tie -> lowest plane
  w(2, 1) = 0.1;
  EXPECT_EQ(harden(w), (std::vector<int>{2, 0, 1}));
}

TEST(OneHot, RoundTripsThroughHarden) {
  const std::vector<int> labels{0, 3, 1, 1, 2};
  const Matrix w = one_hot(labels, 4);
  EXPECT_EQ(harden(w), labels);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double sum = 0.0;
    for (const double v : w.row(r)) sum += v;
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

}  // namespace
}  // namespace sfqpart
