#include "core/vcycle.h"

#include <set>
#include <vector>

#include "core/cost_model.h"
#include "core/partition.h"

#include <gtest/gtest.h>

#include "gen/scaled.h"
#include "gen/suite.h"
#include "obs/run_report.h"

namespace sfqpart {
namespace {

// A circuit large enough for several coarsening levels but fast to solve.
Netlist scaled_20k() {
  ScaledParams params;
  params.name = "scaled20k";
  params.num_gates = 20000;
  params.seed = 3;
  return build_scaled(params);
}

TEST(Vcycle, AssignsEveryGateToAValidPlane) {
  const Netlist netlist = scaled_20k();
  const VcycleResult result = vcycle_partition(netlist, 5);
  std::set<int> used;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      ASSERT_GE(result.partition.plane(g), 0);
      ASSERT_LT(result.partition.plane(g), 5);
      used.insert(result.partition.plane(g));
    } else {
      EXPECT_EQ(result.partition.plane(g), kUnassignedPlane);
    }
  }
  EXPECT_EQ(used.size(), 5u);
  EXPECT_GE(result.levels, 2);
  EXPECT_LT(result.coarse_gates, netlist.num_partitionable_gates());
}

// The V-cycle invariant: banded refinement only ever commits strictly
// improving moves, so every level's refined cost is at most its
// projected cost.
TEST(Vcycle, RefinementNeverWorsensALevel) {
  const Netlist netlist = scaled_20k();
  obs::RunReport report;
  VcycleOptions options;
  options.observer = &report;
  const VcycleResult result = vcycle_partition(netlist, 5, options);
  ASSERT_GE(result.levels, 2);

  int refined_levels = 0;
  for (const obs::LevelEvent& level : report.levels()) {
    if (level.level >= result.levels) continue;  // coarsest: no refinement
    EXPECT_LE(level.refined_cost, level.projected_cost + 1e-9)
        << "level " << level.level;
    ++refined_levels;
  }
  EXPECT_EQ(refined_levels, result.levels);
}

// Determinism contract (DESIGN.md section 7): labels are bit-identical
// at any thread count. The proposal sweep parallelizes over frozen
// pass-start labels; the commit is serial in ascending gate order.
TEST(Vcycle, LabelsIdenticalAcrossThreadCounts) {
  const Netlist netlist = scaled_20k();
  std::vector<std::vector<int>> runs;
  for (const int threads : {1, 2, 8}) {
    VcycleOptions options;
    options.threads = threads;
    runs.push_back(vcycle_partition(netlist, 5, options).partition.plane_of);
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(Vcycle, DeterministicInSeed) {
  const Netlist netlist = scaled_20k();
  VcycleOptions options;
  options.seed = 11;
  const VcycleResult a = vcycle_partition(netlist, 4, options);
  const VcycleResult b = vcycle_partition(netlist, 4, options);
  EXPECT_EQ(a.partition.plane_of, b.partition.plane_of);
  EXPECT_EQ(a.discrete_total, b.discrete_total);
}

// The structured report: one merged entry per level carrying both the
// way-down shape facts and the way-up refinement facts.
TEST(Vcycle, ReportCarriesMergedLevels) {
  const Netlist netlist = scaled_20k();
  obs::RunReport report;
  VcycleOptions options;
  options.observer = &report;
  const VcycleResult result = vcycle_partition(netlist, 5, options);

  // Levels 0..result.levels, each exactly once after merging.
  ASSERT_EQ(report.levels().size(), static_cast<std::size_t>(result.levels + 1));
  std::set<int> seen;
  for (const obs::LevelEvent& level : report.levels()) {
    EXPECT_TRUE(seen.insert(level.level).second);
    EXPECT_GT(level.num_vertices, 0);
    if (level.level > 0) {
      EXPECT_GT(level.coarsen_ms, 0.0);
    }
  }
  EXPECT_GT(report.stage_ms("coarsen"), 0.0);
  EXPECT_GT(report.stage_ms("coarse_solve"), 0.0);
  EXPECT_GT(report.stage_ms("uncoarsen"), 0.0);
  const std::string json = report.to_json().dump();
  EXPECT_NE(json.find("sfqpart.run_report.v2"), std::string::npos);
  EXPECT_NE(json.find("\"levels\""), std::string::npos);
}

// Regression for the refined-cost drift bug: the per-level refined cost
// used to be cost_before plus the sum of committed move deltas, which
// drifts from the true cost in floating point over many passes. The
// level report must agree exactly with a fresh evaluation of the final
// labels — that is what run_report consumers compare against.
TEST(Vcycle, RefinedCostMatchesFreshEvaluation) {
  const Netlist netlist = scaled_20k();
  obs::RunReport report;
  VcycleOptions options;
  options.observer = &report;
  const VcycleResult result = vcycle_partition(netlist, 5, options);
  ASSERT_GT(result.refine_moves, 0);

  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  std::vector<int> labels(static_cast<std::size_t>(problem.num_gates));
  for (int i = 0; i < problem.num_gates; ++i) {
    labels[static_cast<std::size_t>(i)] =
        result.partition.plane(problem.gate_ids[static_cast<std::size_t>(i)]);
  }
  const CostModel model(problem, options.coarse.weights);
  const double fresh =
      model.evaluate_discrete(labels).total(options.coarse.weights);

  bool saw_finest = false;
  for (const obs::LevelEvent& level : report.levels()) {
    if (level.level != 0) continue;
    saw_finest = true;
    EXPECT_DOUBLE_EQ(level.refined_cost, fresh);
  }
  EXPECT_TRUE(saw_finest);
  EXPECT_DOUBLE_EQ(result.discrete_total, fresh);
}

// On the paper-suite circuits (small; the V-cycle bottoms out quickly)
// the engine must still produce a sane partition.
TEST(Vcycle, HandlesSmallCircuits) {
  const Netlist netlist = build_mapped("ksa4");  // 62 gates < coarse_target
  const VcycleResult result = vcycle_partition(netlist, 3);
  EXPECT_EQ(result.levels, 0);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (!netlist.is_partitionable(g)) continue;
    ASSERT_GE(result.partition.plane(g), 0);
    ASSERT_LT(result.partition.plane(g), 3);
  }
}

}  // namespace
}  // namespace sfqpart
