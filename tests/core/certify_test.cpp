#include "core/certify.h"

// Certifier contract (DESIGN.md section 13): the independent
// re-derivation agrees with the production CostModel / metrics pipeline
// on every engine's real output, and every tampering of a result —
// moved label, out-of-range plane, wrong plane count, wrong cost claim,
// violated pin — produces its specific structured verdict instead of an
// assert.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/engine.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "netlist/netlist.h"
#include "recycling/coupling.h"

namespace sfqpart {
namespace {

// The seed circuit the heuristics are exercised on; `exact` gets a tiny
// chain instead (it rejects anything above max_gates by design).
Netlist exact_sized_netlist() {
  Netlist netlist;
  std::vector<GateId> gates;
  for (int i = 0; i < 8; ++i) {
    gates.push_back(
        netlist.add_gate_of_kind("g" + std::to_string(i), CellKind::kJtl));
  }
  for (int i = 0; i + 1 < 8; ++i) {
    netlist.connect(gates[static_cast<std::size_t>(i)], 0,
                    gates[static_cast<std::size_t>(i + 1)], 0);
  }
  const GateId merge = netlist.add_gate_of_kind("m0", CellKind::kMerge);
  netlist.connect(gates[1], 0, merge, 0);
  netlist.connect(gates[6], 0, merge, 1);
  return netlist;
}

Netlist netlist_for(const std::string& engine) {
  return engine == "exact" ? exact_sized_netlist() : build_mapped("ksa4");
}

struct EngineOutput {
  Netlist netlist;
  Partition partition;
  CertifyExpectation expect;
};

EngineOutput run_engine(const std::string& name, int num_planes) {
  EngineOutput out{netlist_for(name), {}, {}};
  const auto engine = EngineRegistry::create(name);
  EXPECT_TRUE(engine.is_ok()) << name;
  EngineContext context;
  context.num_planes = num_planes;
  context.restarts = 1;
  // eco refuses to run cold; an all-unassigned warm start marks the whole
  // netlist dirty, so its output covers the generic certification path.
  InitialPartition warm;
  if (name == "eco") {
    warm.plane_of.assign(static_cast<std::size_t>(out.netlist.num_gates()),
                         kUnassignedPlane);
    context.warm_start = &warm;
  }
  const auto run = (*engine)->run(out.netlist, context);
  EXPECT_TRUE(run.is_ok()) << name << ": " << run.status().message();
  out.partition = run->partition;
  out.expect.terms = run->discrete_terms;
  out.expect.total = run->discrete_total;
  return out;
}

int first_partitionable(const Netlist& netlist) {
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) return g;
  }
  return kInvalidGate;
}

TEST(Certify, VerdictNamesAreStable) {
  EXPECT_STREQ(certify_verdict_name(CertifyVerdict::kValid), "valid");
  EXPECT_STREQ(certify_verdict_name(CertifyVerdict::kLabelOutOfRange),
               "label_out_of_range");
  EXPECT_STREQ(certify_verdict_name(CertifyVerdict::kPlaneCountMismatch),
               "plane_count_mismatch");
  EXPECT_STREQ(certify_verdict_name(CertifyVerdict::kCostMismatch),
               "cost_mismatch");
  EXPECT_STREQ(certify_verdict_name(CertifyVerdict::kConstraintViolation),
               "constraint_violation");
}

// The tentpole guarantee: the certifier validates every registry
// engine's output, cost terms included, through its own derivation.
TEST(Certify, ValidatesEveryEngineOutputOnSeedCircuit) {
  const int num_planes = 3;
  for (const std::string& name : EngineRegistry::names()) {
    const EngineOutput out = run_engine(name, num_planes);
    const CertifyReport report =
        certify_partition(out.netlist, out.partition, num_planes,
                          CostWeights{}, &out.expect);
    EXPECT_TRUE(report.valid())
        << name << ": " << certify_verdict_name(report.verdict) << ": "
        << report.message;
  }
}

// Every class of tampering produces its specific verdict, for every
// engine's real output.
TEST(Certify, TamperedOutputsProduceSpecificVerdicts) {
  const int num_planes = 3;
  for (const std::string& name : EngineRegistry::names()) {
    const EngineOutput out = run_engine(name, num_planes);
    const int gate = first_partitionable(out.netlist);
    ASSERT_NE(gate, kInvalidGate);
    const auto ug = static_cast<std::size_t>(gate);

    // Moved label, unchanged cost claim -> the re-derived terms disagree.
    Partition moved = out.partition;
    moved.plane_of[ug] = (moved.plane_of[ug] + 1) % num_planes;
    const CertifyReport moved_report = certify_partition(
        out.netlist, moved, num_planes, CostWeights{}, &out.expect);
    EXPECT_EQ(moved_report.verdict, CertifyVerdict::kCostMismatch) << name;
    EXPECT_FALSE(moved_report.message.empty()) << name;

    // A plane outside [0, K).
    Partition out_of_range = out.partition;
    out_of_range.plane_of[ug] = num_planes;
    EXPECT_EQ(certify_partition(out.netlist, out_of_range, num_planes,
                                CostWeights{})
                  .verdict,
              CertifyVerdict::kLabelOutOfRange)
        << name;

    // An I/O gate assigned to a plane (ksa4 has pads; the tiny chain has
    // none, so skip there).
    for (GateId g = 0; g < out.netlist.num_gates(); ++g) {
      if (out.netlist.is_partitionable(g)) continue;
      Partition io_assigned = out.partition;
      io_assigned.plane_of[static_cast<std::size_t>(g)] = 0;
      EXPECT_EQ(certify_partition(out.netlist, io_assigned, num_planes,
                                  CostWeights{})
                    .verdict,
                CertifyVerdict::kLabelOutOfRange)
          << name;
      break;
    }

    // Plane count disagreeing with the request.
    Partition wrong_k = out.partition;
    wrong_k.num_planes = num_planes + 1;
    EXPECT_EQ(certify_partition(out.netlist, wrong_k, num_planes,
                                CostWeights{})
                  .verdict,
              CertifyVerdict::kPlaneCountMismatch)
        << name;
    Partition truncated = out.partition;
    truncated.plane_of.pop_back();
    EXPECT_EQ(certify_partition(out.netlist, truncated, num_planes,
                                CostWeights{})
                  .verdict,
              CertifyVerdict::kPlaneCountMismatch)
        << name;

    // Correct labels, inflated cost claim.
    CertifyExpectation inflated = out.expect;
    inflated.terms.f1 += 0.5;
    EXPECT_EQ(certify_partition(out.netlist, out.partition, num_planes,
                                CostWeights{}, &inflated)
                  .verdict,
              CertifyVerdict::kCostMismatch)
        << name;

    // A pinned gate on the wrong plane.
    GateConstraints pins;
    pins.pins = {{out.netlist.gate(gate).name,
                  (out.partition.plane(gate) + 1) % num_planes}};
    const auto compiled = compile_constraints(out.netlist, pins, num_planes);
    ASSERT_TRUE(compiled.is_ok()) << name;
    const CertifyReport pin_report =
        certify_partition(out.netlist, out.partition, num_planes,
                          CostWeights{}, nullptr, &*compiled);
    EXPECT_EQ(pin_report.verdict, CertifyVerdict::kConstraintViolation)
        << name;
    EXPECT_NE(pin_report.message.find(out.netlist.gate(gate).name),
              std::string::npos)
        << name << ": " << pin_report.message;
  }
}

// Cost tolerance: a relative perturbation below 1e-9 still certifies
// (the engines and the certifier sum in different orders).
TEST(Certify, CostComparisonUsesRelativeTolerance) {
  const EngineOutput out = run_engine("gradient", 3);
  CertifyExpectation nudged = out.expect;
  nudged.total += nudged.total * 1e-12;
  EXPECT_TRUE(certify_partition(out.netlist, out.partition, 3, CostWeights{},
                                &nudged)
                  .valid());
  CertifyExpectation off = out.expect;
  off.total += 1e-6;
  EXPECT_EQ(certify_partition(out.netlist, out.partition, 3, CostWeights{},
                              &off)
                .verdict,
            CertifyVerdict::kCostMismatch);
}

// The re-derived physical quantities agree with the production metrics
// and coupling pipelines — two code paths, one physics.
TEST(Certify, PhysicalQuantitiesMatchMetricsPipeline) {
  const EngineOutput out = run_engine("gradient", 3);
  const CertifyReport report =
      certify_partition(out.netlist, out.partition, 3, CostWeights{});
  ASSERT_TRUE(report.valid()) << report.message;

  const PartitionMetrics metrics = compute_metrics(out.netlist, out.partition);
  EXPECT_NEAR(report.icomp_ma, metrics.icomp_ma, 1e-9 * (1.0 + metrics.icomp_ma));
  EXPECT_NEAR(report.afs_um2, metrics.afs_um2, 1e-9 * (1.0 + metrics.afs_um2));

  const CouplingReport coupling = plan_coupling(out.netlist, out.partition);
  EXPECT_EQ(report.coupling_pairs,
            static_cast<long long>(coupling.total_pairs));
}

// And the re-derived terms agree with the shared CostModel on arbitrary
// (not engine-produced) labelings.
TEST(Certify, TermsMatchCostModelOnArbitraryLabels) {
  const Netlist netlist = build_mapped("ksa4");
  const int num_planes = 4;
  const PartitionProblem problem =
      PartitionProblem::from_netlist(netlist, num_planes);
  const CostModel model(problem, CostWeights{});
  const CertifiedInstance instance =
      build_certified_instance(netlist, num_planes, CostWeights{});
  ASSERT_EQ(instance.num_gates(), problem.num_gates);

  std::vector<int> labels(static_cast<std::size_t>(problem.num_gates));
  for (int i = 0; i < problem.num_gates; ++i) {
    labels[static_cast<std::size_t>(i)] = (i * 7) % num_planes;
  }
  const CostTerms expected = model.evaluate_discrete(labels);
  const CostTerms derived = instance.terms_of(labels, CostWeights{});
  EXPECT_NEAR(derived.f1, expected.f1, 1e-9 * (1.0 + std::abs(expected.f1)));
  EXPECT_NEAR(derived.f2, expected.f2, 1e-9 * (1.0 + std::abs(expected.f2)));
  EXPECT_NEAR(derived.f3, expected.f3, 1e-9 * (1.0 + std::abs(expected.f3)));
  EXPECT_NEAR(derived.f4, expected.f4, 1e-9 * (1.0 + std::abs(expected.f4)));
}

// With context.certify the adapter records the verdict as counters and
// fails the run on a non-valid one; a valid run reports verdict 0.
TEST(Certify, AdapterRecordsVerdictCounters) {
  const Netlist netlist = build_mapped("ksa4");
  const auto engine = EngineRegistry::create("gradient");
  ASSERT_TRUE(engine.is_ok());
  EngineContext context;
  context.num_planes = 3;
  context.restarts = 1;
  context.certify = true;
  const auto run = (*engine)->run(netlist, context);
  ASSERT_TRUE(run.is_ok()) << run.status().message();
  EXPECT_EQ(run->counter("certified"), 1.0);
  EXPECT_EQ(run->counter("certify_verdict"),
            static_cast<double>(CertifyVerdict::kValid));
}

}  // namespace
}  // namespace sfqpart
