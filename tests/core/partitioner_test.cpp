
// Contract tests of the gradient-descent partitioning flow. These used to
// exercise the deprecated free functions (partition_netlist and friends);
// since their removal (DESIGN.md section 8.4) the same contracts are
// pinned through the Solver facade, which the wrappers were documented to
// be bit-identical to.
#include <set>

#include <gtest/gtest.h>

#include "baseline/random_partition.h"
#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

// The historical partition_netlist(netlist, options) call, expressed on
// the facade: a single-threaded Solver with the same options.
SolverResult run_solver(const Netlist& netlist,
                        const SolverConfig& options = {}) {
  auto result = Solver(options).run(netlist);
  EXPECT_TRUE(result.is_ok()) << result.status().message();
  return std::move(result).value();
}

TEST(PartitionProblem, FromNetlistCompactsIoAway) {
  const Netlist netlist = build_mapped("ksa4");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  EXPECT_EQ(problem.num_gates, netlist.num_partitionable_gates());
  EXPECT_EQ(problem.edges.size(), netlist.unique_edges().size());
  for (const GateId g : problem.gate_ids) {
    EXPECT_TRUE(netlist.is_partitionable(g));
  }
  for (const auto& [a, b] : problem.edges) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, problem.num_gates);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, problem.num_gates);
  }
}

TEST(Partitioner, AssignsEveryPartitionableGate) {
  const Netlist netlist = build_mapped("ksa4");
  const SolverResult result = run_solver(netlist);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      EXPECT_NE(result.partition.plane(g), kUnassignedPlane);
      EXPECT_LT(result.partition.plane(g), 5);
    } else {
      EXPECT_EQ(result.partition.plane(g), kUnassignedPlane);
    }
  }
}

TEST(Partitioner, UsesAllPlanes) {
  const Netlist netlist = build_mapped("ksa8");
  const SolverResult result = run_solver(netlist);
  std::set<int> used;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (result.partition.assigned(g)) used.insert(result.partition.plane(g));
  }
  EXPECT_EQ(used.size(), 5u);
}

TEST(Partitioner, DeterministicForSeed) {
  const Netlist netlist = build_mapped("ksa4");
  SolverConfig options;
  options.seed = 42;
  const SolverResult a = run_solver(netlist, options);
  const SolverResult b = run_solver(netlist, options);
  EXPECT_EQ(a.partition.plane_of, b.partition.plane_of);
  EXPECT_EQ(a.discrete_total, b.discrete_total);
}

TEST(Partitioner, BeatsRandomBaselineOnLocalityAndBalance) {
  const Netlist netlist = build_mapped("ksa8");
  const SolverResult result = run_solver(netlist);
  const PartitionMetrics ours = compute_metrics(netlist, result.partition);
  const PartitionMetrics rand = compute_metrics(netlist, random_partition(netlist, 5, 1));
  // Random round-robin: ~52% of connections within distance 1 at K=5; the
  // optimizer should be far above, with comparable or better balance.
  EXPECT_GT(ours.frac_within(1), rand.frac_within(1) + 0.15);
  EXPECT_LT(ours.icomp_frac(), 0.25);
  EXPECT_LT(ours.afs_frac(), 0.25);
}

class PartitionerSweep : public ::testing::TestWithParam<int> {};

// Property sweep over K: structural invariants that must hold for any K.
TEST_P(PartitionerSweep, InvariantsHoldForEveryK) {
  const int k = GetParam();
  const Netlist netlist = build_mapped("mult4");
  SolverConfig options;
  options.num_planes = k;
  options.restarts = 2;
  const SolverResult result = run_solver(netlist, options);
  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);

  EXPECT_EQ(metrics.num_planes, k);
  EXPECT_EQ(metrics.num_gates, netlist.num_partitionable_gates());
  // I_comp identity: sum(Bmax - Bk) == K*Bmax - Bcir.
  EXPECT_NEAR(metrics.icomp_ma, k * metrics.bmax_ma - metrics.total_bias_ma, 1e-6);
  // Distance CDF is monotone and ends at 1.
  double prev = 0.0;
  for (int d = 0; d < k; ++d) {
    const double cdf = metrics.frac_within(d);
    EXPECT_GE(cdf, prev);
    prev = cdf;
  }
  EXPECT_NEAR(metrics.frac_within(k - 1), 1.0, 1e-12);
  // B_max cannot be below the ideal.
  EXPECT_GE(metrics.bmax_ma, metrics.total_bias_ma / k - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(K, PartitionerSweep, ::testing::Values(2, 3, 5, 7, 10),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(Partitioner, MoreRestartsNeverWorse) {
  const Netlist netlist = build_mapped("ksa4");
  SolverConfig one;
  one.restarts = 1;
  one.seed = 9;
  SolverConfig five;
  five.restarts = 5;
  five.seed = 9;
  const double cost1 = run_solver(netlist, one).discrete_total;
  const double cost5 = run_solver(netlist, five).discrete_total;
  // Restart 0 is identical for both (same split sequence), so the 5-way
  // minimum cannot be worse.
  EXPECT_LE(cost5, cost1 + 1e-12);
}

TEST(Partitioner, RefineOptionNeverHurtsDiscreteCost) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig plain;
  plain.seed = 3;
  SolverConfig refined = plain;
  refined.refine = true;
  const double cost_plain = run_solver(netlist, plain).discrete_total;
  const double cost_refined = run_solver(netlist, refined).discrete_total;
  EXPECT_LE(cost_refined, cost_plain + 1e-12);
}

TEST(Partitioner, PaperGradientStyleProducesComparableQuality) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig paper;
  paper.gradient_style = GradientStyle::kPaperEq10;
  const SolverResult result = run_solver(netlist, paper);
  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);
  EXPECT_GT(metrics.frac_within(1), 0.45);
  EXPECT_LT(metrics.icomp_frac(), 0.35);
}

}  // namespace
}  // namespace sfqpart
