#include "core/constraints.h"

// compile_constraints contract: uniform kInvalidArgument on anything
// infeasible, deterministic group election, and the engine-facing
// guarantee that every registry engine honors compiled pins.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/partition.h"
#include "netlist/netlist.h"

namespace sfqpart {
namespace {

// A small netlist every engine (including `exact`) accepts: a JTL chain
// g0 -> g1 -> ... -> g(n-1) with two extra converging edges into a merge
// gate, plus one primary input to exercise the I/O rejection paths.
Netlist tiny_netlist(int chain = 8) {
  Netlist netlist;
  std::vector<GateId> gates;
  for (int i = 0; i < chain; ++i) {
    gates.push_back(
        netlist.add_gate_of_kind("g" + std::to_string(i), CellKind::kJtl));
  }
  const GateId merge = netlist.add_gate_of_kind("m0", CellKind::kMerge);
  const GateId pad = netlist.add_gate_of_kind("in0", CellKind::kInput);
  for (int i = 0; i + 1 < chain; ++i) {
    netlist.connect(gates[static_cast<std::size_t>(i)], 0,
                    gates[static_cast<std::size_t>(i + 1)], 0);
  }
  netlist.connect(gates[2], 0, merge, 0);
  netlist.connect(gates[static_cast<std::size_t>(chain - 1)], 0, merge, 1);
  netlist.connect(pad, 0, gates[0], 0);
  return netlist;
}

TEST(Constraints, EmptyDeclarationCompilesToNullPointers) {
  const Netlist netlist = tiny_netlist();
  const auto compiled = compile_constraints(netlist, GateConstraints{}, 3);
  ASSERT_TRUE(compiled.is_ok());
  EXPECT_TRUE(compiled->empty());
  EXPECT_EQ(compiled->num_fixed, 0);
  EXPECT_EQ(compiled->compact_or_null(), nullptr);
  EXPECT_EQ(compiled->gate_or_null(), nullptr);
}

TEST(Constraints, PinsCompileIntoBothIndexings) {
  const Netlist netlist = tiny_netlist();
  GateConstraints constraints;
  constraints.pins = {{"g1", 2}, {"g4", 0}};
  const auto compiled = compile_constraints(netlist, constraints, 3);
  ASSERT_TRUE(compiled.is_ok());
  EXPECT_EQ(compiled->num_fixed, 2);
  const GateId g1 = netlist.find_gate("g1");
  EXPECT_EQ(compiled->fixed_of_gate[static_cast<std::size_t>(g1)], 2);
  // Compact order is partitionable gates ascending GateId; g0..g7 then m0
  // (the input pad is skipped), so compact index == GateId here.
  EXPECT_EQ(compiled->fixed_compact[1], 2);
  EXPECT_EQ(compiled->fixed_compact[4], 0);
  EXPECT_EQ(compiled->fixed_compact[0], kUnassignedPlane);
}

TEST(Constraints, InfeasibleDeclarationsAreUniformInvalidArgument) {
  const Netlist netlist = tiny_netlist();
  const auto check = [&](GateConstraints constraints, const char* needle) {
    const auto compiled = compile_constraints(netlist, constraints, 3);
    ASSERT_FALSE(compiled.is_ok()) << needle;
    EXPECT_TRUE(compiled.status().is_invalid_argument()) << needle;
    EXPECT_NE(compiled.status().message().find("constraint"),
              std::string::npos)
        << compiled.status().message();
    EXPECT_NE(compiled.status().message().find(needle), std::string::npos)
        << compiled.status().message();
  };
  GateConstraints unknown;
  unknown.pins = {{"nope", 0}};
  check(unknown, "unknown gate");

  GateConstraints io;
  io.pins = {{"in0", 0}};
  check(io, "I/O");

  GateConstraints range;
  range.pins = {{"g0", 3}};
  check(range, "outside [0, 3)");

  GateConstraints negative;
  negative.pins = {{"g0", -1}};
  check(negative, "outside");

  GateConstraints conflict;
  conflict.pins = {{"g0", 0}, {"g0", 2}};
  check(conflict, "pinned to plane 0 and plane 2");

  GateConstraints group_conflict;
  group_conflict.pins = {{"g0", 0}, {"g1", 2}};
  group_conflict.groups = {{"g0", "g1"}};
  check(group_conflict, "pinned to plane 0 and plane 2");

  GateConstraints group_io;
  group_io.groups = {{"g0", "in0"}};
  check(group_io, "I/O");
}

TEST(Constraints, DuplicateAgreeingPinsAreTolerated) {
  const Netlist netlist = tiny_netlist();
  GateConstraints constraints;
  constraints.pins = {{"g0", 1}, {"g0", 1}};
  const auto compiled = compile_constraints(netlist, constraints, 3);
  ASSERT_TRUE(compiled.is_ok());
  EXPECT_EQ(compiled->num_fixed, 1);
}

TEST(Constraints, GroupInheritsItsPinnedMembersPlane) {
  const Netlist netlist = tiny_netlist();
  GateConstraints constraints;
  constraints.pins = {{"g3", 2}};
  constraints.groups = {{"g3", "g5", "g6"}};
  const auto compiled = compile_constraints(netlist, constraints, 3);
  ASSERT_TRUE(compiled.is_ok());
  for (const char* name : {"g3", "g5", "g6"}) {
    const GateId g = netlist.find_gate(name);
    EXPECT_EQ(compiled->fixed_of_gate[static_cast<std::size_t>(g)], 2) << name;
  }
}

TEST(Constraints, UnpinnedGroupsAreElectedDeterministically) {
  const Netlist netlist = tiny_netlist();
  GateConstraints constraints;
  constraints.groups = {{"g0", "g1"}, {"g4", "g5", "g6"}};
  const auto first = compile_constraints(netlist, constraints, 3);
  ASSERT_TRUE(first.is_ok());
  // Each group shares one plane...
  const auto plane_of = [&](const char* name) {
    return first->fixed_of_gate[static_cast<std::size_t>(
        netlist.find_gate(name))];
  };
  EXPECT_EQ(plane_of("g0"), plane_of("g1"));
  EXPECT_EQ(plane_of("g4"), plane_of("g5"));
  EXPECT_EQ(plane_of("g4"), plane_of("g6"));
  // ... the heavier group is placed first onto the least-loaded plane, so
  // the two groups never collapse onto one plane ...
  EXPECT_NE(plane_of("g0"), plane_of("g4"));
  // ... and a rerun reproduces the election exactly (cache replays
  // depend on it).
  const auto second = compile_constraints(netlist, constraints, 3);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first->fixed_of_gate, second->fixed_of_gate);
}

// The engine-facing guarantee: every registry engine honors compiled
// pins, with certification on so the result is independently checked.
TEST(Constraints, EveryEngineHonorsPins) {
  const Netlist netlist = tiny_netlist();
  // eco refuses to run cold: an all-unassigned warm start makes the whole
  // netlist the dirty region (pins still win inside the adapter).
  InitialPartition warm;
  warm.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                       kUnassignedPlane);
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext context;
    context.num_planes = 3;
    context.restarts = 1;
    context.certify = true;
    if (name == "eco") context.warm_start = &warm;
    context.constraints.pins = {{"g1", 2}, {"g4", 0}, {"m0", 1}};
    const auto run = (*engine)->run(netlist, context);
    ASSERT_TRUE(run.is_ok()) << name << ": " << run.status().message();
    EXPECT_EQ(run->partition.plane(netlist.find_gate("g1")), 2) << name;
    EXPECT_EQ(run->partition.plane(netlist.find_gate("g4")), 0) << name;
    EXPECT_EQ(run->partition.plane(netlist.find_gate("m0")), 1) << name;
    EXPECT_EQ(run->counter("certify_verdict"), 0.0) << name;
  }
}

TEST(Constraints, EveryEngineHonorsGroups) {
  const Netlist netlist = tiny_netlist();
  InitialPartition warm;
  warm.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                       kUnassignedPlane);
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext context;
    context.num_planes = 3;
    context.restarts = 1;
    context.certify = true;
    if (name == "eco") context.warm_start = &warm;
    context.constraints.groups = {{"g2", "g6", "m0"}};
    const auto run = (*engine)->run(netlist, context);
    ASSERT_TRUE(run.is_ok()) << name << ": " << run.status().message();
    const int plane = run->partition.plane(netlist.find_gate("g2"));
    EXPECT_EQ(run->partition.plane(netlist.find_gate("g6")), plane) << name;
    EXPECT_EQ(run->partition.plane(netlist.find_gate("m0")), plane) << name;
  }
}

// Infeasible pins come back as the same kInvalidArgument from every
// engine — the compile happens once in the shared adapter.
TEST(Constraints, EveryEngineRejectsInfeasiblePinsUniformly) {
  const Netlist netlist = tiny_netlist();
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext context;
    context.num_planes = 3;
    context.constraints.pins = {{"g0", 7}};
    const auto run = (*engine)->run(netlist, context);
    ASSERT_FALSE(run.is_ok()) << name;
    EXPECT_TRUE(run.status().is_invalid_argument()) << name;
    EXPECT_NE(run.status().message().find("constraint"), std::string::npos)
        << name << ": " << run.status().message();
  }
}

// Pinning must not perturb the unconstrained code path: a run with an
// empty declaration is bit-identical to a run with no declaration.
TEST(Constraints, EmptyConstraintsAreByteIdenticalNoOp) {
  const Netlist netlist = tiny_netlist();
  InitialPartition warm;
  warm.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                       kUnassignedPlane);
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext plain;
    plain.num_planes = 3;
    plain.restarts = 1;
    if (name == "eco") plain.warm_start = &warm;
    EngineContext declared = plain;
    declared.constraints = GateConstraints{};
    const auto a = (*engine)->run(netlist, plain);
    const auto b = (*engine)->run(netlist, declared);
    ASSERT_TRUE(a.is_ok()) << name;
    ASSERT_TRUE(b.is_ok()) << name;
    EXPECT_EQ(a->partition.plane_of, b->partition.plane_of) << name;
  }
}

}  // namespace
}  // namespace sfqpart
