// The parallel engine's determinism contract (DESIGN.md section 7): for a
// fixed seed, the Solver's output is bit-identical at every thread count,
// and identical through the EngineRegistry's gradient wrapper.
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/optimizer.h"
#include "core/soft_assign.h"
#include "core/solver.h"
#include "gen/suite.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

void expect_terms_eq(const CostTerms& a, const CostTerms& b) {
  // Bit-identical, not approximately equal: the chunked reductions fix
  // the summation order independently of the thread count.
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.f2, b.f2);
  EXPECT_EQ(a.f3, b.f3);
  EXPECT_EQ(a.f4, b.f4);
}

void expect_results_eq(const LabelResult& a, const LabelResult& b) {
  EXPECT_EQ(a.labels, b.labels);
  expect_terms_eq(a.soft_terms, b.soft_terms);
  expect_terms_eq(a.discrete_terms, b.discrete_terms);
  EXPECT_EQ(a.discrete_total, b.discrete_total);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.winning_restart, b.winning_restart);
  EXPECT_EQ(a.converged, b.converged);
}

LabelResult solve_with_threads(const PartitionProblem& problem,
                               std::uint64_t seed, int threads,
                               int restarts = 4, bool refine = false) {
  SolverConfig config;
  config.num_planes = problem.num_planes;
  config.restarts = restarts;
  config.seed = seed;
  config.threads = threads;
  config.refine = refine;
  const auto solved = Solver(std::move(config)).solve(problem);
  EXPECT_TRUE(solved.is_ok()) << solved.status().message();
  return *solved;
}

TEST(ParallelDeterminism, SerialTwoAndEightThreadsAgreeAcrossSeeds) {
  for (const char* circuit : {"ksa8", "mult4"}) {
    const Netlist netlist = build_mapped(circuit);
    const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const LabelResult serial = solve_with_threads(problem, seed, 1);
      expect_results_eq(serial, solve_with_threads(problem, seed, 2));
      expect_results_eq(serial, solve_with_threads(problem, seed, 8));
    }
  }
}

TEST(ParallelDeterminism, RefinementPathAgreesAcrossThreadCounts) {
  const Netlist netlist = build_mapped("ksa8");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 4);
  const LabelResult serial =
      solve_with_threads(problem, 5, /*threads=*/1, /*restarts=*/3, true);
  expect_results_eq(
      serial, solve_with_threads(problem, 5, /*threads=*/8, /*restarts=*/3, true));
}

// The registry's gradient engine is the Solver facade, wrapped: same
// labels, same costs, same winning restart — at any thread count.
TEST(ParallelDeterminism, RegistryGradientMatchesFacade) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig options;
  options.seed = 11;
  options.restarts = 3;
  SolverConfig threaded = options;
  threaded.threads = 8;
  const auto facade = Solver(threaded).run(netlist);
  ASSERT_TRUE(facade.is_ok()) << facade.status().message();

  auto engine = EngineRegistry::create("gradient");
  ASSERT_TRUE(engine.is_ok()) << engine.status().message();
  EngineContext context;
  context.num_planes = options.num_planes;
  context.seed = options.seed;
  context.restarts = options.restarts;
  context.threads = 1;
  const auto run = (*engine)->run(netlist, context);
  ASSERT_TRUE(run.is_ok()) << run.status().message();

  EXPECT_EQ(run->partition.plane_of, facade->partition.plane_of);
  EXPECT_EQ(run->discrete_total, facade->discrete_total);
  EXPECT_EQ(run->counter("winning_restart"), facade->winning_restart);
  expect_terms_eq(run->discrete_terms, facade->discrete_terms);
}

// Regression for winning_restart under concurrency: every restart of a
// one-gate, two-plane problem has the exact same discrete cost (no edges,
// and both labels yield the same two |B_k - Bbar| values, so even the
// floating-point sums are identical), so the tie MUST resolve to restart 0
// no matter which restart finishes first.
TEST(ParallelDeterminism, DiscreteCostTiesBreakToLowestRestartIndex) {
  PartitionProblem problem;
  problem.num_planes = 2;
  problem.num_gates = 1;
  problem.bias = {0.1};
  problem.area = {16.0};
  problem.gate_ids = {0};

  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
    const LabelResult serial = solve_with_threads(problem, seed, 1, 8);
    EXPECT_EQ(serial.winning_restart, 0);
    for (const int threads : {2, 8}) {
      // Repeat the parallel runs: with a racy selection the winner would
      // follow completion order and flap between equal-cost restarts.
      for (int repeat = 0; repeat < 5; ++repeat) {
        expect_results_eq(serial, solve_with_threads(problem, seed, threads, 8));
      }
    }
  }
}

// The chunked reductions themselves: attaching a pool to a CostModel must
// not change any term or gradient entry, even on problems big enough to
// span several reduction chunks (ksa32 has ~1.5k gates / ~1.9k edges).
TEST(ParallelDeterminism, CostModelReductionsAreSchedulingInvariant) {
  const Netlist netlist = build_mapped("ksa32");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  CostModel serial_model(problem, CostWeights{});
  CostModel pooled_model(problem, CostWeights{});
  ThreadPool pool(8);
  pooled_model.set_thread_pool(&pool);

  Rng rng(3);
  const Matrix w = random_soft_assignment(problem.num_gates, 5, rng);
  expect_terms_eq(serial_model.evaluate(w), pooled_model.evaluate(w));

  Matrix serial_grad;
  Matrix pooled_grad;
  expect_terms_eq(serial_model.evaluate_with_gradient(w, serial_grad),
                  pooled_model.evaluate_with_gradient(w, pooled_grad));
  EXPECT_EQ(serial_grad, pooled_grad);
}

// The CSR gather engine must be bit-identical to the serial-scatter
// reference — it replays the exact per-accumulator addition sequence — in
// both gradient styles and regardless of any attached pool.
TEST(ParallelDeterminism, GatherEngineMatchesScatterReferenceBitExact) {
  const Netlist netlist = build_mapped("ksa32");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  ThreadPool pool(8);
  Rng rng(9);
  const Matrix w = random_soft_assignment(problem.num_gates, 5, rng);

  for (const GradientStyle style :
       {GradientStyle::kAnalytic, GradientStyle::kPaperEq10}) {
    CostModel model(problem, CostWeights{}, style);
    model.set_thread_pool(&pool);
    Matrix gather_grad;
    Matrix scatter_grad;
    model.set_gradient_engine(GradientEngine::kCsrGather);
    const CostTerms gather = model.evaluate_with_gradient(w, gather_grad);
    model.set_gradient_engine(GradientEngine::kSerialScatter);
    const CostTerms scatter = model.evaluate_with_gradient(w, scatter_grad);
    expect_terms_eq(gather, scatter);
    EXPECT_EQ(gather_grad, scatter_grad);
  }
}

// The gradient path at 1, 2 and 8 pool threads: multi-chunk problems must
// produce the same bits at every thread count, and evaluate() must report
// the same terms as evaluate_with_gradient() (the F4 sum rides the fused
// pass but keeps the chunk-ordered combine).
TEST(ParallelDeterminism, GradientBitIdenticalAcrossThreadCounts) {
  const Netlist netlist = build_mapped("mult8");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  Rng rng(21);
  const Matrix w = random_soft_assignment(problem.num_gates, 5, rng);

  CostModel serial_model(problem, CostWeights{});
  Matrix serial_grad;
  const CostTerms serial = serial_model.evaluate_with_gradient(w, serial_grad);
  expect_terms_eq(serial, serial_model.evaluate(w));

  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    CostModel model(problem, CostWeights{});
    model.set_thread_pool(&pool);
    Matrix grad;
    expect_terms_eq(serial, model.evaluate_with_gradient(w, grad));
    EXPECT_EQ(serial_grad, grad);
  }
}

// The whole descent loop — gradient reductions, the parallel max|grad|
// normalization, and the parallel step/clamp — through the fork-join
// executor: a pooled descent must reproduce the serial descent bit for
// bit, iteration count included.
TEST(ParallelDeterminism, GradientDescentBitIdenticalWithAndWithoutPool) {
  const Netlist netlist = build_mapped("mult8");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  Rng rng(13);
  const Matrix w0 = random_soft_assignment(problem.num_gates, 5, rng);

  OptimizerOptions options;
  options.max_iterations = 40;

  CostModel serial_model(problem, CostWeights{});
  const OptimizerResult serial =
      run_gradient_descent(serial_model, w0, options);

  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    CostModel model(problem, CostWeights{});
    model.set_thread_pool(&pool);
    const OptimizerResult pooled = run_gradient_descent(model, w0, options);
    EXPECT_EQ(pooled.w, serial.w);
    expect_terms_eq(pooled.final_terms, serial.final_terms);
    EXPECT_EQ(pooled.iterations, serial.iterations);
    EXPECT_EQ(pooled.converged, serial.converged);
  }
}

// Workspace reuse is stateless: evaluating different matrices through one
// warm workspace gives exactly the fresh-workspace bits, in any order.
TEST(ParallelDeterminism, WorkspaceReuseDoesNotLeakStateAcrossIterations) {
  const Netlist netlist = build_mapped("ksa16");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 4);
  const CostModel model(problem, CostWeights{});
  Rng rng(5);
  const Matrix w1 = random_soft_assignment(problem.num_gates, 4, rng);
  const Matrix w2 = random_soft_assignment(problem.num_gates, 4, rng);

  CostModel::Workspace reused;
  Matrix grad_reused;
  Matrix grad_fresh;
  for (const Matrix* w : {&w1, &w2, &w1}) {
    const CostTerms warm = model.evaluate_with_gradient(*w, grad_reused, reused);
    CostModel::Workspace fresh;
    const CostTerms cold = model.evaluate_with_gradient(*w, grad_fresh, fresh);
    expect_terms_eq(warm, cold);
    EXPECT_EQ(grad_reused, grad_fresh);
    expect_terms_eq(model.evaluate(*w, reused), model.evaluate(*w));
  }
}

}  // namespace
}  // namespace sfqpart
