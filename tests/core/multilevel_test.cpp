#include "core/multilevel.h"

#include <set>

#include <gtest/gtest.h>

#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

TEST(Multilevel, CoarsensLargeCircuits) {
  const Netlist netlist = build_mapped("c432");  // ~1200 gates
  const MultilevelResult result = multilevel_partition(netlist, 5);
  EXPECT_GE(result.levels, 2);
  EXPECT_LE(result.coarse_gates, 320);  // well below the input size
  EXPECT_GT(result.coarse_gates, 20);   // but still a real problem
}

TEST(Multilevel, AssignsEveryGateToAValidPlane) {
  const Netlist netlist = build_mapped("mult4");
  const MultilevelResult result = multilevel_partition(netlist, 4);
  std::set<int> used;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      ASSERT_GE(result.partition.plane(g), 0);
      ASSERT_LT(result.partition.plane(g), 4);
      used.insert(result.partition.plane(g));
    } else {
      EXPECT_EQ(result.partition.plane(g), kUnassignedPlane);
    }
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(Multilevel, SmallCircuitSkipsCoarsening) {
  const Netlist netlist = build_mapped("ksa4");  // 62 gates < coarse_target
  const MultilevelResult result = multilevel_partition(netlist, 3);
  EXPECT_EQ(result.levels, 0);
  EXPECT_EQ(result.coarse_gates, netlist.num_partitionable_gates());
}

TEST(Multilevel, QualityAtLeastMatchesFlatGd) {
  // With per-level refinement, multilevel should beat or match the flat
  // gradient-descent run on the discrete objective.
  const Netlist netlist = build_mapped("c499");
  const double flat = Solver().run(netlist).value().discrete_total;
  const double ml = multilevel_partition(netlist, 5).discrete_total;
  EXPECT_LE(ml, flat + 1e-9);
}

TEST(Multilevel, MetricsAreHealthy) {
  const Netlist netlist = build_mapped("c1355");
  const MultilevelResult result = multilevel_partition(netlist, 5);
  const PartitionMetrics m = compute_metrics(netlist, result.partition);
  EXPECT_GT(m.frac_within(1), 0.6);
  EXPECT_LT(m.icomp_frac(), 0.2);
  EXPECT_LT(m.afs_frac(), 0.2);
}

TEST(Multilevel, DeterministicForSeed) {
  const Netlist netlist = build_mapped("mult4");
  MultilevelOptions options;
  options.seed = 9;
  const MultilevelResult a = multilevel_partition(netlist, 4, options);
  const MultilevelResult b = multilevel_partition(netlist, 4, options);
  EXPECT_EQ(a.partition.plane_of, b.partition.plane_of);
}

TEST(Multilevel, HonorsCoarseTarget) {
  const Netlist netlist = build_mapped("c432");
  MultilevelOptions shallow;
  shallow.coarse_target = 800;
  MultilevelOptions deep;
  deep.coarse_target = 100;
  EXPECT_GT(multilevel_partition(netlist, 5, shallow).coarse_gates,
            multilevel_partition(netlist, 5, deep).coarse_gates);
}

}  // namespace
}  // namespace sfqpart
