// Warm-start seam invariants (EngineContext::warm_start).
//
// The adapter contract under test:
//  - a fully assigned warm start is a quality floor: no engine may return
//    a worse discrete cost than the seed it was handed (never-worse
//    fallback, counter "warm_start_kept");
//  - warm runs surface "warm_start" / "warm_assigned" counters;
//  - malformed warm starts (wrong size, out-of-range labels) fail with
//    kInvalidArgument before any compute;
//  - pins win over conflicting warm labels.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "gen/suite.h"
#include "netlist/netlist.h"

namespace sfqpart {
namespace {

constexpr int kPlanes = 3;

// A deterministic full seed: every partitionable gate assigned.
InitialPartition full_warm_from_vcycle(const Netlist& netlist,
                                       double* seed_cost) {
  auto engine = EngineRegistry::create("vcycle");
  EngineContext context;
  context.num_planes = kPlanes;
  auto run = (*engine)->run(netlist, context);
  EXPECT_TRUE(run.is_ok()) << run.status().message();
  if (seed_cost != nullptr) *seed_cost = run->discrete_total;
  InitialPartition warm;
  warm.plane_of = run->partition.plane_of;
  return warm;
}

int partitionable_count(const Netlist& netlist) {
  int count = 0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) ++count;
  }
  return count;
}

TEST(WarmStart, FullyAssignedSeedIsNeverWorseForEveryEngine) {
  const Netlist netlist = build_mapped("ksa4");
  double seed_cost = 0.0;
  const InitialPartition warm = full_warm_from_vcycle(netlist, &seed_cost);
  for (const std::string& name : EngineRegistry::names()) {
    if (name == "exact") continue;  // rejects ksa4 (> max_gates by design)
    auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext context;
    context.num_planes = kPlanes;
    context.warm_start = &warm;
    auto run = (*engine)->run(netlist, context);
    ASSERT_TRUE(run.is_ok()) << name << ": " << run.status().message();
    EXPECT_LE(run->discrete_total, seed_cost + 1e-9)
        << name << " regressed below its warm seed";
    EXPECT_EQ(run->counter("warm_start"), 1.0) << name;
    EXPECT_EQ(run->counter("warm_assigned"),
              static_cast<double>(partitionable_count(netlist)))
        << name;
  }
}

TEST(WarmStart, RandomEnginePreservesTheSeedCost) {
  // A uniformly random labeling beating a refined V-cycle solution is
  // (astronomically) out of reach, so whether "random" replays the seed
  // or the adapter's never-worse fallback replaces its labels, the
  // returned cost must be exactly the seed's.
  const Netlist netlist = build_mapped("ksa4");
  double seed_cost = 0.0;
  const InitialPartition warm = full_warm_from_vcycle(netlist, &seed_cost);
  auto engine = EngineRegistry::create("random");
  EngineContext context;
  context.num_planes = kPlanes;
  context.warm_start = &warm;
  auto run = (*engine)->run(netlist, context);
  ASSERT_TRUE(run.is_ok()) << run.status().message();
  EXPECT_EQ(run->counter("warm_start"), 1.0);
  EXPECT_NEAR(run->discrete_total, seed_cost, 1e-9);
}

TEST(WarmStart, WrongSizeIsInvalidArgument) {
  const Netlist netlist = build_mapped("ksa4");
  InitialPartition warm;
  warm.plane_of.assign(3, kUnassignedPlane);  // netlist has far more gates
  for (const std::string& name : EngineRegistry::names()) {
    auto engine = EngineRegistry::create(name);
    EngineContext context;
    context.num_planes = kPlanes;
    context.warm_start = &warm;
    auto run = (*engine)->run(netlist, context);
    ASSERT_FALSE(run.is_ok()) << name << " accepted a wrong-size warm start";
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument) << name;
    EXPECT_NE(run.status().message().find("warm start"), std::string::npos)
        << name;
  }
}

TEST(WarmStart, OutOfRangeLabelIsInvalidArgument) {
  const Netlist netlist = build_mapped("ksa4");
  InitialPartition warm = full_warm_from_vcycle(netlist, nullptr);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      warm.plane_of[static_cast<std::size_t>(g)] = 99;  // K is 3
      break;
    }
  }
  auto engine = EngineRegistry::create("vcycle");
  EngineContext context;
  context.num_planes = kPlanes;
  context.warm_start = &warm;
  auto run = (*engine)->run(netlist, context);
  ASSERT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(WarmStart, PinsWinOverConflictingWarmLabels) {
  const Netlist netlist = build_mapped("ksa4");
  InitialPartition warm = full_warm_from_vcycle(netlist, nullptr);
  const GateId pinned = netlist.find_gate("and_0");
  ASSERT_NE(pinned, kInvalidGate);
  // Warm says one plane, the pin says another; the pin must prevail.
  const int warm_plane = warm.plane_of[static_cast<std::size_t>(pinned)];
  const int pin_plane = (warm_plane + 1) % kPlanes;
  for (const std::string& name : {std::string("vcycle"), std::string("eco"),
                                  std::string("fm_kway")}) {
    auto engine = EngineRegistry::create(name);
    EngineContext context;
    context.num_planes = kPlanes;
    context.warm_start = &warm;
    context.constraints.pins = {{"and_0", pin_plane}};
    auto run = (*engine)->run(netlist, context);
    ASSERT_TRUE(run.is_ok()) << name << ": " << run.status().message();
    EXPECT_EQ(run->partition.plane(pinned), pin_plane) << name;
  }
}

TEST(WarmStart, EcoRequiresAWarmStart) {
  const Netlist netlist = build_mapped("ksa4");
  auto engine = EngineRegistry::create("eco");
  EngineContext context;
  context.num_planes = kPlanes;
  auto run = (*engine)->run(netlist, context);
  ASSERT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("warm start"), std::string::npos);
}

}  // namespace
}  // namespace sfqpart
