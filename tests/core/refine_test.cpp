#include "core/refine.h"

#include <gtest/gtest.h>

#include "core/soft_assign.h"

namespace sfqpart {
namespace {

PartitionProblem grid_problem(int num_gates, int num_planes, std::uint64_t seed) {
  PartitionProblem problem;
  problem.num_gates = num_gates;
  problem.num_planes = num_planes;
  Rng rng(seed);
  for (int i = 0; i < num_gates; ++i) {
    problem.gate_ids.push_back(i);
    problem.bias.push_back(rng.uniform(0.5, 1.5));
    problem.area.push_back(rng.uniform(2000.0, 7000.0));
    if (i > 0) problem.edges.emplace_back(i - 1, i);
    if (i > 7) problem.edges.emplace_back(i - 8, i);
  }
  return problem;
}

TEST(Refine, NeverIncreasesDiscreteCost) {
  const PartitionProblem problem = grid_problem(60, 4, 1);
  const CostModel model(problem, CostWeights{});
  Rng rng(2);
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(4)));
  }
  const double before = model.evaluate_discrete(labels).total(model.weights());
  const RefineResult result = refine_partition(model, labels, rng);
  EXPECT_NEAR(result.initial_cost, before, 1e-12);
  EXPECT_LE(result.final_cost, result.initial_cost + 1e-12);
  EXPECT_NEAR(result.final_cost,
              model.evaluate_discrete(labels).total(model.weights()), 1e-9);
}

TEST(Refine, ImprovesARandomStartSubstantially) {
  const PartitionProblem problem = grid_problem(80, 5, 3);
  const CostModel model(problem, CostWeights{});
  Rng rng(4);
  std::vector<int> labels;
  for (int i = 0; i < 80; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(5)));
  }
  const RefineResult result = refine_partition(model, labels, rng);
  EXPECT_GT(result.moves, 0);
  EXPECT_LT(result.final_cost, 0.6 * result.initial_cost);
}

TEST(Refine, LabelsStayInRange) {
  const PartitionProblem problem = grid_problem(40, 3, 5);
  const CostModel model(problem, CostWeights{});
  Rng rng(6);
  std::vector<int> labels(40, 0);
  refine_partition(model, labels, rng);
  for (const int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
}

TEST(Refine, FixedPointOfOptimalIsStable) {
  // A two-gate, one-edge problem where both gates on the same plane is
  // optimal for F1 yet bad for balance; with balance weights zeroed the
  // optimum is same-plane and refine must not disturb it.
  PartitionProblem problem;
  problem.num_gates = 2;
  problem.num_planes = 2;
  problem.bias = {1.0, 1.0};
  problem.area = {1.0, 1.0};
  problem.gate_ids = {0, 1};
  problem.edges = {{0, 1}};
  CostWeights weights;
  weights.c2 = 0.0;
  weights.c3 = 0.0;
  const CostModel model(problem, weights);
  Rng rng(7);
  std::vector<int> labels{0, 0};
  const RefineResult result = refine_partition(model, labels, rng);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(labels, (std::vector<int>{0, 0}));
}

TEST(Refine, MaxPassesRespected) {
  const PartitionProblem problem = grid_problem(100, 6, 8);
  const CostModel model(problem, CostWeights{});
  Rng rng(9);
  std::vector<int> labels(100, 0);  // terrible start: everything on plane 0
  RefineOptions options;
  options.max_passes = 1;
  const RefineResult result = refine_partition(model, labels, rng, options);
  EXPECT_EQ(result.passes, 1);
}

std::vector<int> random_labels(int num_gates, int num_planes,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> labels;
  for (int i = 0; i < num_gates; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(
        static_cast<std::size_t>(num_planes))));
  }
  return labels;
}

TEST(BucketRefine, NeverIncreasesCostAndReportsExactFinal) {
  const PartitionProblem problem = grid_problem(80, 5, 11);
  const CostModel model(problem, CostWeights{});
  MoveEvaluator eval(model, random_labels(80, 5, 12));
  const double before = eval.current_cost();
  const BucketRefineStats stats = bucket_refine(eval, 0, RefineOptions{});
  EXPECT_GT(stats.moves, 0);
  EXPECT_LE(stats.cost_after, before + 1e-12);
  EXPECT_NEAR(stats.cost_after, eval.current_cost(), 1e-9);
}

TEST(BucketRefine, DeterministicAcrossRuns) {
  const PartitionProblem problem = grid_problem(70, 4, 13);
  const CostModel model(problem, CostWeights{});
  const std::vector<int> start = random_labels(70, 4, 14);
  MoveEvaluator a(model, start);
  MoveEvaluator b(model, start);
  const BucketRefineStats stats_a = bucket_refine(a, 0, RefineOptions{});
  const BucketRefineStats stats_b = bucket_refine(b, 0, RefineOptions{});
  EXPECT_EQ(stats_a.moves, stats_b.moves);
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(BucketRefine, FixedGatesNeverMove) {
  const PartitionProblem problem = grid_problem(60, 4, 15);
  const CostModel model(problem, CostWeights{});
  const std::vector<int> start = random_labels(60, 4, 16);
  std::vector<int> fixed(60, -1);
  for (int i = 0; i < 60; i += 3) fixed[static_cast<std::size_t>(i)] = start[static_cast<std::size_t>(i)];
  MoveEvaluator eval(model, start);
  bucket_refine(eval, 0, RefineOptions{}, &fixed);
  for (int i = 0; i < 60; i += 3) {
    EXPECT_EQ(eval.label(i), start[static_cast<std::size_t>(i)]) << "fixed gate " << i;
  }
}

TEST(BucketRefine, ActiveSetRestrictsMovesToTheDirtyRegion) {
  const PartitionProblem problem = grid_problem(60, 4, 17);
  const CostModel model(problem, CostWeights{});
  const std::vector<int> start = random_labels(60, 4, 18);
  std::vector<int> active;
  for (int i = 20; i < 40; ++i) active.push_back(i);
  MoveEvaluator eval(model, start);
  bucket_refine(eval, 0, RefineOptions{}, nullptr, &active);
  for (int i = 0; i < 60; ++i) {
    if (i >= 20 && i < 40) continue;
    EXPECT_EQ(eval.label(i), start[static_cast<std::size_t>(i)])
        << "inactive gate " << i << " moved";
  }
}

TEST(BucketRefine, BandLimitsTargetPlanes) {
  const PartitionProblem problem = grid_problem(50, 6, 19);
  const CostModel model(problem, CostWeights{});
  const std::vector<int> start = random_labels(50, 6, 20);
  MoveEvaluator eval(model, start);
  bucket_refine(eval, 1, RefineOptions{});
  // Each applied move strictly improved the cost, so the result can only
  // be <= the start; band correctness is checked by labels staying valid.
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(eval.label(i), 0);
    EXPECT_LT(eval.label(i), 6);
  }
  EXPECT_LE(eval.current_cost(),
            MoveEvaluator(model, start).current_cost() + 1e-12);
}

}  // namespace
}  // namespace sfqpart
