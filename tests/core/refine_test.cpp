#include "core/refine.h"

#include <gtest/gtest.h>

#include "core/soft_assign.h"

namespace sfqpart {
namespace {

PartitionProblem grid_problem(int num_gates, int num_planes, std::uint64_t seed) {
  PartitionProblem problem;
  problem.num_gates = num_gates;
  problem.num_planes = num_planes;
  Rng rng(seed);
  for (int i = 0; i < num_gates; ++i) {
    problem.gate_ids.push_back(i);
    problem.bias.push_back(rng.uniform(0.5, 1.5));
    problem.area.push_back(rng.uniform(2000.0, 7000.0));
    if (i > 0) problem.edges.emplace_back(i - 1, i);
    if (i > 7) problem.edges.emplace_back(i - 8, i);
  }
  return problem;
}

TEST(Refine, NeverIncreasesDiscreteCost) {
  const PartitionProblem problem = grid_problem(60, 4, 1);
  const CostModel model(problem, CostWeights{});
  Rng rng(2);
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(4)));
  }
  const double before = model.evaluate_discrete(labels).total(model.weights());
  const RefineResult result = refine_partition(model, labels, rng);
  EXPECT_NEAR(result.initial_cost, before, 1e-12);
  EXPECT_LE(result.final_cost, result.initial_cost + 1e-12);
  EXPECT_NEAR(result.final_cost,
              model.evaluate_discrete(labels).total(model.weights()), 1e-9);
}

TEST(Refine, ImprovesARandomStartSubstantially) {
  const PartitionProblem problem = grid_problem(80, 5, 3);
  const CostModel model(problem, CostWeights{});
  Rng rng(4);
  std::vector<int> labels;
  for (int i = 0; i < 80; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(5)));
  }
  const RefineResult result = refine_partition(model, labels, rng);
  EXPECT_GT(result.moves, 0);
  EXPECT_LT(result.final_cost, 0.6 * result.initial_cost);
}

TEST(Refine, LabelsStayInRange) {
  const PartitionProblem problem = grid_problem(40, 3, 5);
  const CostModel model(problem, CostWeights{});
  Rng rng(6);
  std::vector<int> labels(40, 0);
  refine_partition(model, labels, rng);
  for (const int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
}

TEST(Refine, FixedPointOfOptimalIsStable) {
  // A two-gate, one-edge problem where both gates on the same plane is
  // optimal for F1 yet bad for balance; with balance weights zeroed the
  // optimum is same-plane and refine must not disturb it.
  PartitionProblem problem;
  problem.num_gates = 2;
  problem.num_planes = 2;
  problem.bias = {1.0, 1.0};
  problem.area = {1.0, 1.0};
  problem.gate_ids = {0, 1};
  problem.edges = {{0, 1}};
  CostWeights weights;
  weights.c2 = 0.0;
  weights.c3 = 0.0;
  const CostModel model(problem, weights);
  Rng rng(7);
  std::vector<int> labels{0, 0};
  const RefineResult result = refine_partition(model, labels, rng);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(labels, (std::vector<int>{0, 0}));
}

TEST(Refine, MaxPassesRespected) {
  const PartitionProblem problem = grid_problem(100, 6, 8);
  const CostModel model(problem, CostWeights{});
  Rng rng(9);
  std::vector<int> labels(100, 0);  // terrible start: everything on plane 0
  RefineOptions options;
  options.max_passes = 1;
  const RefineResult result = refine_partition(model, labels, rng, options);
  EXPECT_EQ(result.passes, 1);
}

}  // namespace
}  // namespace sfqpart
