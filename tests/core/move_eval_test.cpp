#include "core/move_eval.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sfqpart {
namespace {

PartitionProblem random_problem(int num_gates, int num_planes, std::uint64_t seed) {
  PartitionProblem problem;
  problem.num_gates = num_gates;
  problem.num_planes = num_planes;
  Rng rng(seed);
  for (int i = 0; i < num_gates; ++i) {
    problem.gate_ids.push_back(i);
    problem.bias.push_back(rng.uniform(0.3, 1.5));
    problem.area.push_back(rng.uniform(1500.0, 7000.0));
  }
  for (int e = 0; e < num_gates * 2; ++e) {
    const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    if (a == b) b = (b + 1) % num_gates;
    problem.edges.emplace_back(a, b);
  }
  return problem;
}

std::vector<int> random_labels(int num_gates, int num_planes, Rng& rng) {
  std::vector<int> labels;
  for (int i = 0; i < num_gates; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_planes))));
  }
  return labels;
}

// The incremental delta must equal the exact cost difference of the move.
class MoveDeltaExact : public ::testing::TestWithParam<int> {};

TEST_P(MoveDeltaExact, MatchesFullRecompute) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const int num_gates = 30;
  const int num_planes = 2 + GetParam() % 4;
  const PartitionProblem problem = random_problem(num_gates, num_planes, seed);
  const CostModel model(problem, CostWeights{});
  Rng rng(seed + 100);
  MoveEvaluator eval(model, random_labels(num_gates, num_planes, rng));

  for (int trial = 0; trial < 40; ++trial) {
    const int gate = static_cast<int>(rng.uniform_index(num_gates));
    const int target = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(num_planes)));
    const double before = eval.current_cost();
    const double predicted = eval.delta(gate, target);
    eval.apply(gate, target);
    const double after = eval.current_cost();
    ASSERT_NEAR(after - before, predicted, 1e-9)
        << "gate " << gate << " -> " << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveDeltaExact, ::testing::Range(1, 6));

TEST(MoveEvaluator, NoOpMoveIsFree) {
  const PartitionProblem problem = random_problem(10, 3, 2);
  const CostModel model(problem, CostWeights{});
  Rng rng(3);
  MoveEvaluator eval(model, random_labels(10, 3, rng));
  const int gate = 4;
  EXPECT_DOUBLE_EQ(eval.delta(gate, eval.label(gate)), 0.0);
  const double before = eval.current_cost();
  eval.apply(gate, eval.label(gate));
  EXPECT_DOUBLE_EQ(eval.current_cost(), before);
}

TEST(MoveEvaluator, ApplyUpdatesLabels) {
  const PartitionProblem problem = random_problem(10, 4, 5);
  const CostModel model(problem, CostWeights{});
  MoveEvaluator eval(model, std::vector<int>(10, 0));
  eval.apply(7, 3);
  EXPECT_EQ(eval.label(7), 3);
  EXPECT_EQ(eval.labels()[7], 3);
  EXPECT_EQ(eval.label(6), 0);
}

TEST(MoveEvaluator, DeltaRespectsDistanceExponent) {
  PartitionProblem problem;
  problem.num_gates = 2;
  problem.num_planes = 4;
  problem.bias = {1.0, 1.0};
  problem.area = {1.0, 1.0};
  problem.gate_ids = {0, 1};
  problem.edges = {{0, 1}};
  CostWeights f1_only;
  f1_only.c2 = 0.0;
  f1_only.c3 = 0.0;
  const CostModel model(problem, f1_only);
  MoveEvaluator eval(model, {0, 0});
  // Moving gate 1 to plane 3: distance 0 -> 3, cost (3/3)^4 / 1 = 1.
  EXPECT_NEAR(eval.delta(1, 3), 1.0, 1e-12);
  EXPECT_NEAR(eval.delta(1, 1), 1.0 / 81.0, 1e-12);
}

}  // namespace
}  // namespace sfqpart
