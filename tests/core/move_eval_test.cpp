#include "core/move_eval.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sfqpart {
namespace {

PartitionProblem random_problem(int num_gates, int num_planes, std::uint64_t seed) {
  PartitionProblem problem;
  problem.num_gates = num_gates;
  problem.num_planes = num_planes;
  Rng rng(seed);
  for (int i = 0; i < num_gates; ++i) {
    problem.gate_ids.push_back(i);
    problem.bias.push_back(rng.uniform(0.3, 1.5));
    problem.area.push_back(rng.uniform(1500.0, 7000.0));
  }
  for (int e = 0; e < num_gates * 2; ++e) {
    const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    if (a == b) b = (b + 1) % num_gates;
    problem.edges.emplace_back(a, b);
  }
  return problem;
}

std::vector<int> random_labels(int num_gates, int num_planes, Rng& rng) {
  std::vector<int> labels;
  for (int i = 0; i < num_gates; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_planes))));
  }
  return labels;
}

// The incremental delta must equal the exact cost difference of the move.
class MoveDeltaExact : public ::testing::TestWithParam<int> {};

TEST_P(MoveDeltaExact, MatchesFullRecompute) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const int num_gates = 30;
  const int num_planes = 2 + GetParam() % 4;
  const PartitionProblem problem = random_problem(num_gates, num_planes, seed);
  const CostModel model(problem, CostWeights{});
  Rng rng(seed + 100);
  MoveEvaluator eval(model, random_labels(num_gates, num_planes, rng));

  for (int trial = 0; trial < 40; ++trial) {
    const int gate = static_cast<int>(rng.uniform_index(num_gates));
    const int target = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(num_planes)));
    const double before = eval.current_cost();
    const double predicted = eval.delta(gate, target);
    eval.apply(gate, target);
    const double after = eval.current_cost();
    ASSERT_NEAR(after - before, predicted, 1e-9)
        << "gate " << gate << " -> " << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveDeltaExact, ::testing::Range(1, 6));

// The CSR-flattened adjacency must replay the reference vector-of-vectors
// neighbor order exactly: delta() sums the F1 contributions of a gate's
// neighbors in a fixed order, so any reordering would perturb the bits.
// An F1-only model isolates the adjacency-dependent part (the F2/F3 terms
// are zero-weighted and leave the accumulated sum untouched), so the
// comparison is exact equality, not a tolerance.
TEST(MoveEvaluator, CsrDeltaMatchesReferenceAdjacencyBitExact) {
  const int num_gates = 40;
  const int num_planes = 5;
  const PartitionProblem problem = random_problem(num_gates, num_planes, 17);
  CostWeights f1_only;
  f1_only.c2 = 0.0;
  f1_only.c3 = 0.0;
  const CostModel model(problem, f1_only);
  Rng rng(18);
  const std::vector<int> labels = random_labels(num_gates, num_planes, rng);
  MoveEvaluator eval(model, labels);

  // Reference adjacency built the way the evaluator used to store it:
  // per-gate push_back over the edge list in ascending edge order.
  std::vector<std::vector<int>> reference(
      static_cast<std::size_t>(num_gates));
  for (const auto& [a, b] : problem.edges) {
    reference[static_cast<std::size_t>(a)].push_back(b);
    reference[static_cast<std::size_t>(b)].push_back(a);
  }
  const double f1_coef = model.weights().c1 / model.n1();
  const int p = model.weights().distance_exponent;
  const auto ipow = [](double base, int exponent) {
    double result = 1.0;
    for (int i = 0; i < exponent; ++i) result *= base;
    return result;
  };

  for (int gate = 0; gate < num_gates; ++gate) {
    for (int target = 0; target < num_planes; ++target) {
      const int source = labels[static_cast<std::size_t>(gate)];
      if (source == target) continue;
      double f1_reference = 0.0;
      for (const int j : reference[static_cast<std::size_t>(gate)]) {
        const int lj = labels[static_cast<std::size_t>(j)];
        f1_reference +=
            f1_coef * (ipow(std::abs(target - lj), p) -
                       ipow(std::abs(source - lj), p));
      }
      EXPECT_EQ(eval.delta(gate, target), f1_reference)
          << "gate " << gate << " -> " << target;
    }
  }
}

TEST(MoveEvaluator, NoOpMoveIsFree) {
  const PartitionProblem problem = random_problem(10, 3, 2);
  const CostModel model(problem, CostWeights{});
  Rng rng(3);
  MoveEvaluator eval(model, random_labels(10, 3, rng));
  const int gate = 4;
  EXPECT_DOUBLE_EQ(eval.delta(gate, eval.label(gate)), 0.0);
  const double before = eval.current_cost();
  eval.apply(gate, eval.label(gate));
  EXPECT_DOUBLE_EQ(eval.current_cost(), before);
}

TEST(MoveEvaluator, ApplyUpdatesLabels) {
  const PartitionProblem problem = random_problem(10, 4, 5);
  const CostModel model(problem, CostWeights{});
  MoveEvaluator eval(model, std::vector<int>(10, 0));
  eval.apply(7, 3);
  EXPECT_EQ(eval.label(7), 3);
  EXPECT_EQ(eval.labels()[7], 3);
  EXPECT_EQ(eval.label(6), 0);
}

TEST(MoveEvaluator, DeltaRespectsDistanceExponent) {
  PartitionProblem problem;
  problem.num_gates = 2;
  problem.num_planes = 4;
  problem.bias = {1.0, 1.0};
  problem.area = {1.0, 1.0};
  problem.gate_ids = {0, 1};
  problem.edges = {{0, 1}};
  CostWeights f1_only;
  f1_only.c2 = 0.0;
  f1_only.c3 = 0.0;
  const CostModel model(problem, f1_only);
  MoveEvaluator eval(model, {0, 0});
  // Moving gate 1 to plane 3: distance 0 -> 3, cost (3/3)^4 / 1 = 1.
  EXPECT_NEAR(eval.delta(1, 3), 1.0, 1e-12);
  EXPECT_NEAR(eval.delta(1, 1), 1.0 / 81.0, 1e-12);
}

}  // namespace
}  // namespace sfqpart
